//! Where does the time go on each PE? Runs DAKC and PakMan\* on the same
//! workload and renders per-PE utilization timelines — the BSP run shows
//! idle bands at every round barrier, DAKC only at the final drain.
//!
//! ```text
//! cargo run --release -p dakc-examples --example protocol_explorer
//! ```

use dakc::{count_kmers_sim, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_io::datasets::synthetic;
use dakc_sim::{MachineConfig, Timeline};

fn main() {
    let reads = synthetic(25).scaled(12).generate(21);
    let machine = MachineConfig::phoenix_intel(1); // 24 PEs: small enough to draw
    println!(
        "workload: {} reads on {} PEs\n",
        reads.len(),
        machine.num_pes()
    );

    let dakc_run =
        count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(31), &machine).unwrap();
    println!("== DAKC (1 quiescent barrier) ==");
    println!("{}", Timeline::new(&dakc_run.report).render());
    println!("{}\n", Timeline::new(&dakc_run.report).summary());

    let mut bsp = BspConfig::pakman_star(31);
    bsp.batch = 4_096; // force several exchange rounds
    let bsp_run = count_kmers_bsp_sim::<u64>(&reads, &bsp, &machine).unwrap();
    println!(
        "== PakMan* ({} blocking exchange rounds) ==",
        bsp_run.rounds
    );
    println!("{}", Timeline::new(&bsp_run.report).render());
    println!("{}\n", Timeline::new(&bsp_run.report).summary());

    assert_eq!(dakc_run.counts, bsp_run.counts);
    println!(
        "same histogram, different time: DAKC {:.3} ms vs PakMan* {:.3} ms ({:.2}x) —\n\
         the BSP bars carry more '.' (idle) because every round waits for the\n\
         slowest PE (paper §III, Eq 5 vs Eq 6).",
        dakc_run.report.total_time * 1e3,
        bsp_run.report.total_time * 1e3,
        bsp_run.report.total_time / dakc_run.report.total_time,
    );
}
