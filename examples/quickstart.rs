//! Quickstart: count k-mers three ways — serial reference, real threads,
//! and the simulated 4-node cluster — and confirm they agree.
//!
//! ```text
//! cargo run --release -p dakc-examples --example quickstart
//! ```

use dakc::{count_kmers_sim, count_kmers_threaded, DakcConfig};
use dakc_baselines::count_kmers_serial;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
use dakc_kmer::{CanonicalMode, KmerWord};
use dakc_sim::MachineConfig;

fn main() {
    // 1. Make a workload: a 50 kb random genome read at 30x coverage.
    let genome = generate_genome(&GenomeSpec { bases: 50_000, repeats: None }, 7);
    let reads = simulate_reads(&genome, &ReadSimConfig::art_like(10_000), 7);
    let k = 31;
    println!("workload: {} reads x {} bp, k = {k}", reads.len(), 150);

    // 2. Serial reference (Algorithm 1).
    let serial = count_kmers_serial::<u64>(&reads, k, CanonicalMode::Forward, false);
    println!(
        "serial   : {} distinct k-mers in {:?}",
        serial.counts.len(),
        serial.elapsed
    );

    // 3. DAKC on real threads (the shared-memory configuration).
    let threaded = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, 8, None);
    println!(
        "threaded : {} distinct k-mers in {:?} on {} threads",
        threaded.counts.len(),
        threaded.elapsed,
        threaded.threads
    );

    // 4. DAKC on a simulated 4-node cluster (the distributed algorithm,
    //    virtual time).
    let machine = MachineConfig::phoenix_intel(4);
    let cfg = DakcConfig::scaled_defaults(k);
    let sim = count_kmers_sim::<u64>(&reads, &cfg, &machine).expect("simulation");
    println!(
        "simulated: {} distinct k-mers in {:.3} virtual ms on {} PEs ({} barrier)",
        sim.counts.len(),
        sim.report.total_time * 1e3,
        machine.num_pes(),
        sim.report.barriers_completed,
    );

    // 5. All three engines agree bit-for-bit.
    assert_eq!(serial.counts, threaded.counts);
    assert_eq!(serial.counts, sim.counts);
    println!("\nall engines agree ✓");

    // 6. Peek at the most frequent k-mers.
    let mut top: Vec<_> = sim.counts.clone();
    top.sort_unstable_by_key(|c| std::cmp::Reverse(c.count));
    println!("\ntop 5 k-mers:");
    for c in top.iter().take(5) {
        println!("  {}  x{}", c.kmer.to_dna_string(k), c.count);
    }
}
