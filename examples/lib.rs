//! The DAKC example programs live as example targets of this package; see `quickstart.rs` and friends.
