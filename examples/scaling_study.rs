//! A miniature strong-scaling study through the public API: one dataset,
//! one command, a table of virtual times, speedups, communication volumes
//! and load imbalance — the workflow a systems researcher would use to
//! explore DAKC configurations before touching a real cluster.
//!
//! ```text
//! cargo run --release -p dakc-examples --example scaling_study
//! ```

use dakc::{count_kmers_sim, DakcConfig};
use dakc_io::datasets::synthetic;
use dakc_sim::MachineConfig;

fn main() {
    let ds = synthetic(28).scaled(12);
    let reads = ds.generate(11);
    println!(
        "dataset: {} at 2^-12 scale — {} reads, {} bases\n",
        ds.spec.name,
        reads.len(),
        reads.total_bases()
    );

    println!(
        "{:>6} {:>6} {:>12} {:>9} {:>12} {:>12} {:>10}",
        "nodes", "PEs", "time", "speedup", "remote", "local", "imbalance"
    );
    let mut base = None;
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let mut machine = MachineConfig::phoenix_intel(nodes);
        machine.pes_per_node = 6; // scaled concurrency, see DESIGN.md §4
        let cfg = DakcConfig::scaled_defaults(31);
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).expect("simulation");
        let t = run.report.total_time;
        let t0 = *base.get_or_insert(t);
        println!(
            "{:>6} {:>6} {:>10.3}ms {:>8.2}x {:>9.1}MiB {:>9.1}MiB {:>10.2}",
            nodes,
            machine.num_pes(),
            t * 1e3,
            t0 / t,
            run.report.remote_bytes() as f64 / (1 << 20) as f64,
            run.report.local_bytes() as f64 / (1 << 20) as f64,
            run.load_imbalance(),
        );
    }
    println!(
        "\nreading the table: speedup rises until per-PE work no longer amortizes\n\
         communication and the single global barrier — the strong-scaling plateau\n\
         of the paper's Fig 7. Remote bytes grow with (1 - 1/nodes) as more\n\
         k-mer traffic crosses node boundaries."
    );
}
