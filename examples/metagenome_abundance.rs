//! Metagenome abundance estimation — the MetaHipMer-style use case
//! (paper [9], [10]): reads from a *community* of organisms are counted
//! together, and per-organism k-mer sets attribute the counted mass back
//! to community members.
//!
//! ```text
//! cargo run --release -p dakc-examples --example metagenome_abundance
//! ```

use dakc::count_kmers_threaded;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSet, ReadSimConfig};
use dakc_kmer::{kmers_of_read, CanonicalMode};
use std::collections::HashMap;

fn main() {
    let k = 25;
    // A three-member community with 60/30/10 abundance.
    let members = [
        ("org-A", 80_000usize, 0.60f64),
        ("org-B", 50_000, 0.30),
        ("org-C", 30_000, 0.10),
    ];
    let total_reads = 40_000usize;

    let mut community = ReadSet::new();
    let mut genomes = Vec::new();
    for (i, (name, bases, abundance)) in members.iter().enumerate() {
        let genome = generate_genome(&GenomeSpec { bases: *bases, repeats: None }, 1000 + i as u64);
        let n = (total_reads as f64 * abundance) as usize;
        let reads = simulate_reads(
            &genome,
            &ReadSimConfig { read_len: 100, num_reads: n, error_rate: 0.002, both_strands: false },
            2000 + i as u64,
        );
        for r in reads.iter() {
            community.push(r);
        }
        println!("{name}: genome {bases} bp, {n} reads ({:.0}%)", abundance * 100.0);
        genomes.push((name, genome));
    }

    // Count the pooled community with DAKC.
    let run = count_kmers_threaded::<u64>(&community, k, CanonicalMode::Forward, 8, None);
    println!(
        "\npooled count: {} distinct k-mers from {} reads in {:?}",
        run.counts.len(),
        community.len(),
        run.elapsed
    );

    // Attribute counted occurrences to members via their reference k-mers.
    let mut owner: HashMap<u64, usize> = HashMap::new();
    for (i, (_, genome)) in genomes.iter().enumerate() {
        for w in kmers_of_read::<u64>(genome, k, CanonicalMode::Forward) {
            owner.entry(w).or_insert(i); // first member wins rare collisions
        }
    }
    let mut mass = vec![0u64; members.len()];
    let mut unattributed = 0u64;
    for c in &run.counts {
        match owner.get(&c.kmer) {
            Some(&i) => mass[i] += c.count as u64,
            None => unattributed += c.count as u64, // error k-mers
        }
    }
    let total: u64 = mass.iter().sum();
    println!("\nestimated abundances (true -> estimated):");
    for (i, (name, _, abundance)) in members.iter().enumerate() {
        let est = mass[i] as f64 / total as f64;
        println!("  {name}: {:.1}% -> {est:.1}%", abundance * 100.0, est = est * 100.0);
        assert!(
            (est - abundance).abs() < 0.05,
            "estimate should land within 5 points of truth"
        );
    }
    println!(
        "  unattributed (error) k-mer mass: {:.2}%",
        100.0 * unattributed as f64 / (total + unattributed) as f64
    );
}
