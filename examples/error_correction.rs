//! Error detection from the k-mer spectrum — the classic assembler
//! preprocessing step the paper's introduction motivates (Quake-style
//! [12]): sequencing errors produce k-mers that occur once or twice, while
//! genuine genomic k-mers occur ~coverage times. Count with DAKC, pick the
//! spectrum valley, and classify.
//!
//! ```text
//! cargo run --release -p dakc-examples --example error_correction
//! ```

use dakc::count_kmers_threaded;
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
use dakc_kmer::{counts::count_spectrum, kmers_of_read, CanonicalMode};
use std::collections::HashSet;

fn main() {
    let k = 21;
    let genome = generate_genome(&GenomeSpec { bases: 100_000, repeats: None }, 99);
    // 40x coverage with 0.5% substitution errors.
    let cfg = ReadSimConfig {
        read_len: 120,
        num_reads: 33_000,
        error_rate: 0.005,
        both_strands: false,
    };
    let reads = simulate_reads(&genome, &cfg, 99);
    println!(
        "workload: {} reads, {:.0}x coverage, {:.1}% error rate",
        reads.len(),
        reads.total_bases() as f64 / genome.len() as f64,
        cfg.error_rate * 100.0
    );

    // Count with DAKC (threaded engine).
    let run = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, 8, None);
    println!("counted {} distinct k-mers in {:?}", run.counts.len(), run.elapsed);

    // The count spectrum: errors pile up at count 1-2, real k-mers peak
    // near the coverage. Pick the valley as the threshold.
    let spectrum = count_spectrum(&run.counts, 60);
    let valley = (2..40)
        .min_by_key(|&c| spectrum[c])
        .expect("spectrum has a valley");
    println!("spectrum valley at count {valley} (error/solid threshold)");

    // Ground truth: the set of k-mers actually present in the genome.
    let truth: HashSet<u64> =
        kmers_of_read::<u64>(&genome, k, CanonicalMode::Forward).collect();

    let (mut tp, mut fp, mut tn, mut fnn) = (0u64, 0u64, 0u64, 0u64);
    for c in &run.counts {
        let predicted_error = (c.count as usize) < valley;
        let is_error = !truth.contains(&c.kmer);
        match (predicted_error, is_error) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fnn += 1,
        }
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fnn) as f64;
    println!("\nerror-k-mer classification vs ground truth:");
    println!("  true errors flagged   : {tp}");
    println!("  genuine k-mers flagged: {fp}");
    println!("  kept genuine          : {tn}");
    println!("  missed errors         : {fnn}");
    println!("  precision {precision:.3}, recall {recall:.3}");
    assert!(precision > 0.9 && recall > 0.9, "spectrum filtering should be sharp");
}
