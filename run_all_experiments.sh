#!/usr/bin/env bash
# Regenerates every table and figure of the paper. Outputs land in results/.
set -uo pipefail
cd "$(dirname "$0")"
BINS="table2_protocols table3_aggregation_params table4_machine_params table5_datasets \
fig01_speedup_summary fig02_protocol_memory fig03_cache_misses fig04_phase_times \
fig05_time_breakdown fig06_pakman_sort fig07_strong_scaling fig08_strong_scaling_oom \
fig09_shared_memory fig10_weak_scaling fig11_protocol_speedup fig12_aggregation_ablation \
fig13_tuning ext_overlap_ablation ext_kmer128 abl_owner_hash abl_batch_size"
cargo build --release -p dakc-bench
for b in $BINS; do
  echo "=== running $b $* ==="
  cargo run --release -q -p dakc-bench --bin "$b" -- "$@" | tee "results/$b.txt"
done
echo "all outputs in results/"
