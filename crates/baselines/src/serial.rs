//! Algorithm 1: the serial sorting-based reference.
//!
//! Extract every k-mer into one array, sort it, sweep it. Every other
//! engine in the workspace is tested against this one.

use std::time::{Duration, Instant};

use dakc_io::ReadSet;
use dakc_kmer::{kmers_of_read, CanonicalMode, KmerCount, KmerWord};
use dakc_sort::{accumulate, hybrid_sort, quicksort, RadixKey};

/// Result of a serial run.
#[derive(Debug, Clone)]
pub struct SerialRun<W> {
    /// The histogram, sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Runs Algorithm 1. `use_quicksort` selects the comparison sort (the
/// original PakMan kernel choice) instead of the radix-hybrid.
pub fn count_kmers_serial<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    use_quicksort: bool,
) -> SerialRun<W> {
    let start = Instant::now();
    let mut t: Vec<W> = Vec::with_capacity(reads.total_kmers(k));
    for r in reads.iter() {
        t.extend(kmers_of_read::<W>(r, k, canonical));
    }
    if use_quicksort {
        quicksort(&mut t);
    } else {
        hybrid_sort(&mut t);
    }
    let counts = accumulate(&t)
        .into_iter()
        .map(|(w, c)| KmerCount::new(w, c))
        .collect();
    SerialRun {
        counts,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn reads() -> ReadSet {
        let mut rs = ReadSet::new();
        rs.push(b"ACGTACGTAC");
        rs.push(b"GGGGGGG");
        rs.push(b"ACGTACGTAC");
        rs
    }

    #[test]
    fn matches_hashmap_reference() {
        let rs = reads();
        let k = 4;
        let run = count_kmers_serial::<u64>(&rs, k, CanonicalMode::Forward, false);
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in rs.iter() {
            for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                *h.entry(w).or_default() += 1;
            }
        }
        let want: Vec<KmerCount<u64>> =
            h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect();
        assert_eq!(run.counts, want);
    }

    #[test]
    fn quicksort_backend_agrees_with_radix() {
        let rs = reads();
        let a = count_kmers_serial::<u64>(&rs, 5, CanonicalMode::Forward, false);
        let b = count_kmers_serial::<u64>(&rs, 5, CanonicalMode::Forward, true);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn empty_input_is_empty() {
        let rs = ReadSet::new();
        let run = count_kmers_serial::<u64>(&rs, 4, CanonicalMode::Forward, false);
        assert!(run.counts.is_empty());
    }

    #[test]
    fn total_occurrences_match_formula() {
        let rs = reads();
        let k = 3;
        let run = count_kmers_serial::<u64>(&rs, k, CanonicalMode::Forward, false);
        let total: u64 = run.counts.iter().map(|c| c.count as u64).sum();
        assert_eq!(total as usize, rs.total_kmers(k));
    }
}
