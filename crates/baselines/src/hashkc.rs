//! A hash-table-based distributed counter (kmerind / Pan et al. style).
//!
//! The paper's §II-B: "The primary difference between these distributed
//! memory KC algorithms is the choice between hash table and sorting in
//! the third step." DAKC and HySortK sort; KmerInd [43] and the SC'18
//! hash-table work [29] *hash*: owners insert received k-mers into a
//! local table instead of buffering and sorting them.
//!
//! This baseline reuses the BSP exchange structure of Algorithm 2 but
//! counts with an owner-side open-addressing table, exposing the paper's
//! trade-off: hashing avoids the sort pass but pays a random cache miss
//! per insert (the sort-based engines stream), which is why the
//! sorting-based HySortK "surpassed the performance of KmerInd" and why
//! DAKC adopts sorting too.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use dakc_io::ReadSet;
use dakc_kmer::{kmers_of_read, CanonicalMode, KmerCount, KmerWord};
use dakc_sim::{Ctx, MachineConfig, PeId, Program, SimError, SimReport, Simulator, Step};
use dakc_sort::RadixKey;

/// Shared per-PE output slot written by each program at completion.
type OutputSink<W> = Rc<RefCell<Vec<Option<Vec<KmerCount<W>>>>>>;

/// Configuration of the hash-based baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HashKcConfig {
    /// k-mer length.
    pub k: usize,
    /// Exchange batch size (k-mers per PE per round), as in Algorithm 2.
    pub batch: usize,
    /// Forward or canonical counting.
    pub canonical: CanonicalMode,
    /// Reads parsed per simulator step.
    pub batch_reads: usize,
}

impl HashKcConfig {
    /// kmerind-flavoured defaults.
    pub fn defaults(k: usize) -> Self {
        Self {
            k,
            batch: 1 << 16,
            canonical: CanonicalMode::Forward,
            batch_reads: 64,
        }
    }
}

/// Result of a hash-based run.
#[derive(Debug, Clone)]
pub struct HashKcRun<W> {
    /// Global histogram sorted by k-mer (sorted at output for
    /// cross-engine comparison; the algorithm itself never sorts).
    pub counts: Vec<KmerCount<W>>,
    /// Simulator accounting.
    pub report: SimReport,
    /// Exchange rounds.
    pub rounds: usize,
}

/// The owner-side open-addressing table with virtual-time cost charging:
/// each insert costs a handful of ops plus — once the table outgrows this
/// PE's cache share — one random cache-line transfer. That line is the
/// hash-vs-sort trade.
#[derive(Debug)]
struct CostedTable<W> {
    map: HashMap<W, u32>,
    word_bytes: u64,
}

impl<W: KmerWord> CostedTable<W> {
    fn new(word_bytes: u64) -> Self {
        Self {
            map: HashMap::new(),
            word_bytes,
        }
    }

    fn insert(&mut self, ctx: &mut Ctx<'_>, w: W, c: u32) {
        // Probe + compare + update.
        ctx.charge_ops(6);
        let table_bytes = self.map.len() as u64 * (self.word_bytes + 4) * 2; // ~50% load factor
        let cache_share = (ctx.machine().cache_bytes / ctx.machine().pes_per_node) as u64;
        if table_bytes > cache_share {
            // Random probe misses one cache line.
            ctx.charge_cache_lines(1);
        }
        let slot = self.map.entry(w).or_insert(0);
        *slot = slot.saturating_add(c);
    }
}

enum St {
    Init,
    Parsing,
    RoundWait,
    Publish,
    Done,
}

struct HashKcPeProgram<W: KmerWord> {
    cfg: HashKcConfig,
    rounds: usize,
    round: usize,
    reads: Arc<ReadSet>,
    range: std::ops::Range<usize>,
    cursor: usize,
    parsed_this_round: usize,
    send_bufs: HashMap<PeId, Vec<W>>,
    table: CostedTable<W>,
    word_bytes: usize,
    sink: OutputSink<W>,
    st: St,
}

impl<W: KmerWord + RadixKey> HashKcPeProgram<W> {
    fn poll_inserts(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let mut n = 0u64;
        for msg in ctx.poll() {
            let wb = self.word_bytes;
            let mut at = 0;
            while at + wb <= msg.payload.len() {
                let mut padded = [0u8; 16];
                padded[..wb].copy_from_slice(&msg.payload[at..at + wb]);
                let w = W::from_u128(u128::from_le_bytes(padded));
                self.table.insert(ctx, w, 1);
                at += wb;
                n += 1;
            }
        }
        if n > 0 {
            ctx.mem_alloc(n * (self.word_bytes as u64 + 4) / 2); // amortized growth
        }
        n
    }

    fn parse_step(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let last = self.round + 1 == self.rounds;
        let end = (self.cursor + self.cfg.batch_reads).min(self.range.end);
        let mut kmers = 0u64;
        let mut bases = 0u64;
        while self.cursor < end {
            let read = self.reads.get(self.cursor);
            bases += read.len() as u64;
            let before = kmers;
            for w in kmers_of_read::<W>(read, self.cfg.k, self.cfg.canonical) {
                kmers += 1;
                let dst = dakc_kmer::owner_pe(w, ctx.num_pes());
                self.send_bufs.entry(dst).or_default().push(w);
                ctx.charge_ops(2);
            }
            self.cursor += 1;
            self.parsed_this_round += (kmers - before) as usize;
            if !last && self.parsed_this_round >= self.cfg.batch {
                break;
            }
        }
        dakc::costs::charge_parse(ctx, kmers);
        dakc::costs::charge_parse_traffic(ctx, bases, kmers, self.word_bytes as u64);
        let exhausted = self.cursor == self.range.end;
        if last {
            exhausted
        } else {
            exhausted || self.parsed_this_round >= self.cfg.batch
        }
    }

    fn exchange(&mut self, ctx: &mut Ctx<'_>) {
        let mut dsts: Vec<PeId> = self.send_bufs.keys().copied().collect();
        dsts.sort_unstable();
        for dst in dsts {
            let buf = self.send_bufs.remove(&dst).expect("listed");
            // Raw k-mers on the wire — no pre-sort, no pre-accumulate.
            let mut payload = Vec::with_capacity(buf.len() * self.word_bytes);
            for w in &buf {
                payload.extend_from_slice(&w.to_u128().to_le_bytes()[..self.word_bytes]);
            }
            ctx.charge_ops(payload.len() as u64 / 8 + 1);
            ctx.send(dst, self.round as u32, payload);
        }
        self.parsed_this_round = 0;
    }
}

impl<W: KmerWord + RadixKey> Program for HashKcPeProgram<W> {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.st {
            St::Init => {
                ctx.set_phase(0);
                self.st = St::Parsing;
                Step::Yield
            }
            St::Parsing => {
                self.poll_inserts(ctx);
                if !self.parse_step(ctx) {
                    return Step::Yield;
                }
                self.exchange(ctx);
                self.st = St::RoundWait;
                Step::Barrier
            }
            St::RoundWait => {
                if self.poll_inserts(ctx) > 0 || ctx.has_ready() {
                    return Step::Barrier;
                }
                self.round += 1;
                if self.round < self.rounds {
                    self.st = St::Parsing;
                } else {
                    self.st = St::Publish;
                }
                Step::Yield
            }
            St::Publish => {
                ctx.set_phase(1);
                // Emit the table (the algorithm is done once inserts
                // finish; we sort only to compare against other engines).
                let mut counts: Vec<KmerCount<W>> = self
                    .table
                    .map
                    .iter()
                    .map(|(&w, &c)| KmerCount::new(w, c))
                    .collect();
                ctx.charge_ops(counts.len() as u64);
                counts.sort_unstable_by_key(|c| c.kmer);
                self.sink.borrow_mut()[ctx.pe()] = Some(counts);
                self.st = St::Done;
                Step::Done
            }
            St::Done => Step::Done,
        }
    }
}

/// Runs the hash-table baseline on the virtual cluster.
pub fn count_kmers_hash_sim<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    cfg: &HashKcConfig,
    machine: &MachineConfig,
) -> Result<HashKcRun<W>, SimError> {
    assert!((1..=W::MAX_K).contains(&cfg.k));
    let p = machine.num_pes();
    let reads = Arc::new(reads.clone());
    let max_kmers = (0..p)
        .map(|pe| {
            reads
                .pe_range(pe, p)
                .map(|i| dakc_kmer::extract::kmer_count_of_read(reads.get(i), cfg.k))
                .sum::<usize>()
        })
        .max()
        .unwrap_or(0);
    let rounds = max_kmers.div_ceil(cfg.batch).max(1);

    let sink: OutputSink<W> = Rc::new(RefCell::new(vec![None; p]));
    let programs: Vec<Box<dyn Program>> = (0..p)
        .map(|pe| {
            let range = reads.pe_range(pe, p);
            Box::new(HashKcPeProgram::<W> {
                cfg: cfg.clone(),
                rounds,
                round: 0,
                reads: Arc::clone(&reads),
                cursor: range.start,
                range,
                parsed_this_round: 0,
                send_bufs: HashMap::new(),
                table: CostedTable::new((W::BITS / 8) as u64),
                word_bytes: (W::BITS / 8) as usize,
                sink: sink.clone(),
                st: St::Init,
            }) as Box<dyn Program>
        })
        .collect();
    let report = Simulator::new(machine.clone()).run(programs)?;
    let mut counts: Vec<KmerCount<W>> = Rc::try_unwrap(sink)
        .expect("sole owner")
        .into_inner()
        .into_iter()
        .flat_map(|o| o.expect("published"))
        .collect();
    counts.sort_unstable_by_key(|c| c.kmer);
    Ok(HashKcRun {
        counts,
        report,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(n: usize, seed: u64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 3_000, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: 100, num_reads: n, error_rate: 0.005, both_strands: false },
            seed,
        )
    }

    fn reference(rs: &ReadSet, k: usize) -> Vec<KmerCount<u64>> {
        crate::serial::count_kmers_serial::<u64>(rs, k, CanonicalMode::Forward, false).counts
    }

    #[test]
    fn matches_reference() {
        let rs = reads(80, 1);
        let machine = MachineConfig::test_machine(2, 2);
        let run = count_kmers_hash_sim::<u64>(&rs, &HashKcConfig::defaults(15), &machine).unwrap();
        assert_eq!(run.counts, reference(&rs, 15));
    }

    #[test]
    fn multiround_matches_reference() {
        let rs = reads(100, 2);
        let machine = MachineConfig::test_machine(2, 2);
        let mut cfg = HashKcConfig::defaults(17);
        cfg.batch = 400;
        let run = count_kmers_hash_sim::<u64>(&rs, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference(&rs, 17));
        assert!(run.rounds > 1);
    }

    #[test]
    fn sorting_based_dakc_beats_hashing_once_tables_spill_cache() {
        // §II-B: HySortK "surpassed the performance of KmerInd". The
        // hash-vs-sort trade flips on the table-vs-cache ratio: a
        // cache-resident table probes for free, a spilled one misses a
        // line per insert while the sorter keeps streaming. Build a
        // workload whose per-PE distinct-k-mer table clearly outgrows the
        // test machine's 512 KiB per-PE cache share.
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 60_000, repeats: None }, 3);
        let rs = simulate_reads(
            &g,
            &ReadSimConfig { read_len: 100, num_reads: 3_000, error_rate: 0.01, both_strands: false },
            3,
        );
        let machine = MachineConfig::test_machine(1, 2);
        let hash = count_kmers_hash_sim::<u64>(&rs, &HashKcConfig::defaults(21), &machine).unwrap();
        let dakc_run =
            dakc::count_kmers_sim::<u64>(&rs, &dakc::DakcConfig::scaled_defaults(21), &machine)
                .unwrap();
        assert_eq!(hash.counts, dakc_run.counts);
        assert!(
            dakc_run.report.total_time < hash.report.total_time,
            "sorting {} should beat hashing {}",
            dakc_run.report.total_time,
            hash.report.total_time
        );
    }
}
