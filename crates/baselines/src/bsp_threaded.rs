//! Thread-level ports of the BSP baselines for the single-node
//! comparison (Fig 9).
//!
//! The paper benchmarks PakMan\* and HySortK inside one shared-memory node
//! against DAKC and KMC3. These ports keep Algorithm 2's structure —
//! batched parse, per-destination sort+accumulate, exchange, *barrier per
//! round* — on OS threads, so the extra synchronization and the double
//! sorting that distinguish BSP from DAKC are preserved where it matters.
//! (On one node blocking vs non-blocking collectives barely differ — the
//! paper's §VI-E finding — so a single port covers both.)

use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use dakc_io::ReadSet;
use dakc_kmer::{kmers_of_read, owner_pe, CanonicalMode, KmerCount, KmerWord};
use dakc_sort::{
    accumulate, accumulate_weighted, hybrid_sort, lsd_radix_sort_by, quicksort, RadixKey,
};

use crate::bsp::SortBackend;

/// Result of a threaded BSP run.
#[derive(Debug, Clone)]
pub struct BspThreadedRun<W> {
    /// Global histogram sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Exchange rounds executed.
    pub rounds: usize,
}

/// Runs the BSP algorithm on `threads` OS threads with `batch` k-mers per
/// thread per round.
pub fn count_kmers_bsp_threaded<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    k: usize,
    canonical: CanonicalMode,
    threads: usize,
    batch: usize,
    sort: SortBackend,
) -> BspThreadedRun<W> {
    assert!(threads >= 1 && batch >= 1);
    assert!((1..=W::MAX_K).contains(&k));
    let start = Instant::now();

    // Global round count (all threads must hit every barrier).
    let max_kmers = (0..threads)
        .map(|t| {
            reads
                .pe_range(t, threads)
                .map(|i| dakc_kmer::extract::kmer_count_of_read(reads.get(i), k))
                .sum::<usize>()
        })
        .max()
        .unwrap_or(0);
    let rounds = max_kmers.div_ceil(batch).max(1);

    let inboxes: Vec<Mutex<Vec<(W, u32)>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(threads);
    let outputs: Vec<Mutex<Option<Vec<KmerCount<W>>>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for t in 0..threads {
            let inboxes = &inboxes;
            let barrier = &barrier;
            let outputs = &outputs;
            s.spawn(move || {
                let range = reads.pe_range(t, threads);
                let mut cursor = range.start;
                for round in 0..rounds {
                    // Parse up to `batch` k-mers into per-owner buffers.
                    let mut bufs: Vec<Vec<W>> = vec![Vec::new(); threads];
                    let mut parsed = 0usize;
                    let last = round + 1 == rounds;
                    while cursor < range.end && (last || parsed < batch) {
                        for w in kmers_of_read::<W>(reads.get(cursor), k, canonical) {
                            bufs[owner_pe(w, threads)].push(w);
                            parsed += 1;
                        }
                        cursor += 1;
                    }
                    // FlushBuffer: sort + accumulate per destination, ship.
                    for (owner, mut buf) in bufs.into_iter().enumerate() {
                        if buf.is_empty() {
                            continue;
                        }
                        match sort {
                            SortBackend::RadixHybrid => hybrid_sort(&mut buf),
                            SortBackend::Quicksort => quicksort(&mut buf),
                        }
                        let pairs = accumulate(&buf);
                        inboxes[owner].lock().unwrap().extend_from_slice(&pairs);
                    }
                    // The blocking collective's synchronization.
                    barrier.wait();
                }

                // Phase 2 on my partition.
                let mut pairs = std::mem::take(&mut *inboxes[t].lock().unwrap());
                match sort {
                    SortBackend::RadixHybrid => lsd_radix_sort_by(&mut pairs, |p| p.0),
                    SortBackend::Quicksort => quicksort(&mut pairs),
                }
                let counts: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
                    .into_iter()
                    .map(|(w, c)| KmerCount::new(w, c))
                    .collect();
                *outputs[t].lock().unwrap() = Some(counts);
            });
        }
    });

    let mut counts: Vec<KmerCount<W>> = outputs
        .iter()
        .flat_map(|m| m.lock().unwrap().take().expect("published"))
        .collect();
    counts.sort_unstable_by_key(|c| c.kmer);

    BspThreadedRun {
        counts,
        elapsed: start.elapsed(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn random_reads(n: usize, seed: u64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 4000, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: 110, num_reads: n, error_rate: 0.01, both_strands: false },
            seed,
        )
    }

    fn reference(rs: &ReadSet, k: usize) -> Vec<KmerCount<u64>> {
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in rs.iter() {
            for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                *h.entry(w).or_default() += 1;
            }
        }
        h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
    }

    #[test]
    fn matches_reference_multiround() {
        let rs = random_reads(200, 1);
        let run = count_kmers_bsp_threaded::<u64>(
            &rs,
            17,
            CanonicalMode::Forward,
            4,
            1000,
            SortBackend::RadixHybrid,
        );
        assert_eq!(run.counts, reference(&rs, 17));
        assert!(run.rounds > 1);
    }

    #[test]
    fn quicksort_backend_matches() {
        let rs = random_reads(100, 2);
        let run = count_kmers_bsp_threaded::<u64>(
            &rs,
            13,
            CanonicalMode::Forward,
            3,
            100_000,
            SortBackend::Quicksort,
        );
        assert_eq!(run.counts, reference(&rs, 13));
        assert_eq!(run.rounds, 1);
    }

    #[test]
    fn single_thread() {
        let rs = random_reads(50, 3);
        let run = count_kmers_bsp_threaded::<u64>(
            &rs,
            11,
            CanonicalMode::Forward,
            1,
            500,
            SortBackend::RadixHybrid,
        );
        assert_eq!(run.counts, reference(&rs, 11));
    }
}
