//! Algorithm 2: the BSP baseline (PakMan\*, PakMan-quicksort, HySortK-like).
//!
//! Each PE parses its reads in batches of `b` k-mers. A batch ends with a
//! Many-To-Many exchange: every per-destination buffer is locally sorted
//! and accumulated (Algorithm 2's `FlushBuffer`), shipped as `{k-mer,
//! count}` pairs, and the round closes with a global synchronization —
//! realized here as the simulator's quiescent barrier, which is precisely
//! the semantics of a blocking `MPI_Alltoallv` (no PE proceeds until all
//! data of the round is delivered).
//!
//! The number of synchronizations is `R = ⌈max-kmers-per-PE / b⌉` — it
//! *grows with input size* (Eq 1), which is the scalability limit DAKC
//! removes.
//!
//! Two communication disciplines:
//!
//! * **blocking** (PakMan\*): parse → exchange → barrier, strictly.
//! * **non-blocking** (HySortK-like): the round-`r` barrier is deferred
//!   until after round `r+1` has been parsed, overlapping computation with
//!   the in-flight exchange (one outstanding collective, like
//!   `MPI_Ialltoallv` + `MPI_Wait`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use dakc_io::ReadSet;
use dakc_kmer::{kmers_of_read, CanonicalMode, KmerCount, KmerWord};
use dakc_sim::{Ctx, MachineConfig, PeId, Program, SimError, SimReport, Simulator, Step};
use dakc_sort::{
    accumulate, accumulate_weighted, hybrid_sort, lsd_radix_sort_by, quicksort, RadixKey,
};

/// Shared per-PE output slot written by each program at completion.
type OutputSink<W> = Rc<RefCell<Vec<Option<Vec<KmerCount<W>>>>>>;

/// The sort used inside `FlushBuffer` and in phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortBackend {
    /// Radix-hybrid (PakMan\*, HySortK).
    RadixHybrid,
    /// Median-of-three quicksort (original PakMan; Fig 6's slow variant).
    Quicksort,
}

/// Configuration of a BSP baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct BspConfig {
    /// k-mer length.
    pub k: usize,
    /// Batch size `b`: k-mers parsed per PE per exchange round (the
    /// paper's tunable with full-scale values ≈ 10⁹).
    pub batch: usize,
    /// Non-blocking collectives (HySortK) vs blocking (PakMan).
    pub non_blocking: bool,
    /// Sort backend.
    pub sort: SortBackend,
    /// Forward or canonical counting.
    pub canonical: CanonicalMode,
    /// Reads parsed per simulator step.
    pub batch_reads: usize,
    /// Phase-2 working memory as a multiple of received bytes; models the
    /// implementation's buffering discipline (PakMan\* ≈ 2× for the
    /// out-of-place radix scratch, HySortK-like ≈ 4.5× for double-buffered
    /// non-blocking exchange plus multithreaded sort staging — the
    /// footprint difference behind Fig 8's OOM pattern).
    pub mem_factor: f64,
    /// Per-destination staging bytes the collective machinery pins for the
    /// whole run (MPI internal Alltoallv buffers). Grows linearly with the
    /// PE count, which — together with `mem_factor` — reproduces Fig 8's
    /// OOM pattern: PakMan\* pins little (≈1 KiB/destination), the
    /// non-blocking + hybrid HySortK pins persistent double buffers
    /// (≈32 KiB/destination).
    pub staging_per_dst: u64,
}

impl BspConfig {
    /// PakMan\*: blocking Many-To-Many + radix sort (the strengthened
    /// baseline of §VI-A).
    pub fn pakman_star(k: usize) -> Self {
        Self {
            k,
            // Scaled equivalent of a memory-bounded full-scale batch
            // (2^14 k-mers/PE/round here ≈ a ~0.8 GB/PE exchange buffer at
            // paper scale): keeps the round count — and with it Eq 1's
            // growing synchronization term — faithful at 2^-12 inputs.
            batch: 1 << 14,
            non_blocking: false,
            sort: SortBackend::RadixHybrid,
            canonical: CanonicalMode::Forward,
            batch_reads: 64,
            mem_factor: 2.0,
            staging_per_dst: 1024,
        }
    }

    /// Original PakMan: the same kernel with quicksort (Fig 6).
    pub fn pakman_qsort(k: usize) -> Self {
        Self {
            sort: SortBackend::Quicksort,
            ..Self::pakman_star(k)
        }
    }

    /// HySortK-like: non-blocking collectives with overlap, radix-hybrid
    /// sort, heavier memory footprint.
    pub fn hysortk(k: usize) -> Self {
        Self {
            non_blocking: true,
            mem_factor: 4.5,
            staging_per_dst: 32 * 1024,
            ..Self::pakman_star(k)
        }
    }
}

/// Result of a simulated BSP run.
#[derive(Debug, Clone)]
pub struct BspRun<W> {
    /// Global histogram sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Simulator accounting.
    pub report: SimReport,
    /// Exchange rounds executed (== synchronizations with data).
    pub rounds: usize,
}

enum St {
    Init,
    Parsing,
    /// Non-blocking only: waiting out the previous round's barrier before
    /// posting this round's sends.
    WaitPrev,
    /// Blocking: waiting out this round's barrier.
    RoundWait,
    /// Non-blocking: final barrier after the last send.
    FinalWait,
    Phase2,
    Done,
}

struct BspPeProgram<W: KmerWord> {
    cfg: BspConfig,
    rounds: usize,
    reads: Arc<ReadSet>,
    range: std::ops::Range<usize>,
    cursor: usize,
    round: usize,
    parsed_this_round: usize,
    send_bufs: HashMap<PeId, Vec<W>>,
    t_r: Vec<(W, u32)>,
    recv_alloc: u64,
    word_bytes: usize,
    sink: OutputSink<W>,
    st: St,
}

impl<W: KmerWord + RadixKey> BspPeProgram<W> {
    /// Decodes arrived pair messages into `T_r`. Returns records decoded.
    fn poll_receives(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let rec = self.word_bytes + 4;
        let mut decoded = 0u64;
        for msg in ctx.poll() {
            let mut at = 0;
            while at + rec <= msg.payload.len() {
                let mut padded = [0u8; 16];
                padded[..self.word_bytes].copy_from_slice(&msg.payload[at..at + self.word_bytes]);
                let w = W::from_u128(u128::from_le_bytes(padded));
                let c = u32::from_le_bytes(
                    msg.payload[at + self.word_bytes..at + rec]
                        .try_into()
                        .expect("count"),
                );
                self.t_r.push((w, c));
                at += rec;
                decoded += 1;
            }
            ctx.charge_ops(msg.payload.len() as u64 / 8 + 2);
        }
        if decoded > 0 {
            // Account receive-array growth.
            let grown = decoded * rec as u64;
            ctx.mem_alloc(grown);
            self.recv_alloc += grown;
        }
        decoded
    }

    /// Parses one simulator step's worth of reads. Returns `true` when the
    /// round's batch (or the whole range on the final round) is complete.
    /// Reads are parsed whole, so a round may overshoot `b` by at most one
    /// read's worth of k-mers — the same granularity real implementations
    /// accept.
    fn parse_step(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let last_round = self.round + 1 == self.rounds;
        let end = (self.cursor + self.cfg.batch_reads).min(self.range.end);
        let mut kmers = 0u64;
        let mut bases = 0u64;
        while self.cursor < end {
            let read = self.reads.get(self.cursor);
            bases += read.len() as u64;
            let before = kmers;
            for w in kmers_of_read::<W>(read, self.cfg.k, self.cfg.canonical) {
                kmers += 1;
                let dst = dakc_kmer::owner_pe(w, ctx.num_pes());
                self.send_bufs.entry(dst).or_default().push(w);
                ctx.charge_ops(2);
            }
            self.cursor += 1;
            self.parsed_this_round += (kmers - before) as usize;
            if !last_round && self.parsed_this_round >= self.cfg.batch {
                break;
            }
        }
        dakc::costs::charge_parse(ctx, kmers);
        dakc::costs::charge_parse_traffic(ctx, bases, kmers, self.word_bytes as u64);

        let exhausted = self.cursor == self.range.end;
        if last_round {
            exhausted
        } else {
            exhausted || self.parsed_this_round >= self.cfg.batch
        }
    }

    /// `FlushBuffer`: sort + accumulate each destination buffer and ship
    /// it as pairs (tag = round).
    fn exchange(&mut self, ctx: &mut Ctx<'_>) {
        // Collective setup: an Alltoallv posts a send and a receive
        // descriptor for every rank and scans the P-length count and
        // displacement arrays, whether or not data flows to that rank —
        // ~64 integer-op equivalents per rank per round. This is the
        // per-round software cost that the paper's fine-grained one-sided
        // design avoids (§IV: direct `PUT`s touch only the ranks that
        // actually receive data).
        ctx.charge_ops(ctx.num_pes() as u64 * 64);
        let mut dsts: Vec<PeId> = self.send_bufs.keys().copied().collect();
        dsts.sort_unstable();
        let wb = self.word_bytes as u64;
        for dst in dsts {
            let mut buf = self.send_bufs.remove(&dst).expect("listed");
            match self.cfg.sort {
                SortBackend::RadixHybrid => {
                    dakc::costs::charge_hybrid_sort(ctx, buf.len() as u64, wb);
                    hybrid_sort(&mut buf);
                }
                SortBackend::Quicksort => {
                    dakc::costs::charge_comparison_sort(ctx, buf.len() as u64, wb);
                    quicksort(&mut buf);
                }
            }
            dakc::costs::charge_accumulate(ctx, buf.len() as u64, wb);
            let pairs = accumulate(&buf);
            let mut payload = Vec::with_capacity(pairs.len() * (self.word_bytes + 4));
            for (w, c) in pairs {
                payload.extend_from_slice(&w.to_u128().to_le_bytes()[..self.word_bytes]);
                payload.extend_from_slice(&c.to_le_bytes());
            }
            ctx.charge_ops(payload.len() as u64 / 8 + 1);
            ctx.send(dst, self.round as u32, payload);
        }
        self.parsed_this_round = 0;
    }

    /// Phase 2: sort + accumulate the received pairs.
    fn phase2(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_phase(1);
        let wb = self.word_bytes as u64;
        let rec = wb + 4;
        let n = self.t_r.len() as u64;

        // Working-memory discipline of the implementation (OOM model).
        let extra = ((self.cfg.mem_factor - 1.0) * (n * rec) as f64) as u64;
        ctx.mem_alloc(extra);

        let mut pairs = std::mem::take(&mut self.t_r);
        match self.cfg.sort {
            SortBackend::RadixHybrid => {
                dakc::costs::charge_hybrid_sort(ctx, n, rec);
                lsd_radix_sort_by(&mut pairs, |p| p.0);
            }
            SortBackend::Quicksort => {
                dakc::costs::charge_comparison_sort(ctx, n, rec);
                quicksort(&mut pairs);
            }
        }
        dakc::costs::charge_accumulate(ctx, n, rec);
        let counts: Vec<KmerCount<W>> = accumulate_weighted(&pairs)
            .into_iter()
            .map(|(w, c)| KmerCount::new(w, c))
            .collect();
        // The allocation is held, not freed: on a real node all PEs are in
        // phase 2 concurrently, so the node's peak is the SUM of per-PE
        // working sets. (The scheduler serializes equal-virtual-time
        // steps; freeing here would hide that concurrent peak from the
        // OOM accounting.)
        self.sink.borrow_mut()[ctx.pe()] = Some(counts);
    }
}

impl<W: KmerWord + RadixKey> Program for BspPeProgram<W> {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.st {
            St::Init => {
                ctx.set_phase(0);
                // Collective staging pinned for the whole run (see
                // `BspConfig::staging_per_dst`).
                ctx.mem_alloc(ctx.num_pes() as u64 * self.cfg.staging_per_dst);
                self.st = St::Parsing;
                Step::Yield
            }
            St::Parsing => {
                self.poll_receives(ctx);
                let round_done = self.parse_step(ctx);
                if !round_done {
                    return Step::Yield;
                }
                if self.cfg.non_blocking {
                    if self.round == 0 {
                        self.exchange(ctx);
                        self.round = 1;
                        if self.rounds == 1 {
                            self.st = St::FinalWait;
                            return Step::Barrier;
                        }
                        Step::Yield
                    } else {
                        self.st = St::WaitPrev;
                        Step::Barrier
                    }
                } else {
                    self.exchange(ctx);
                    self.st = St::RoundWait;
                    Step::Barrier
                }
            }
            St::WaitPrev => {
                // Waiting out round `round - 1`'s barrier.
                if self.poll_receives(ctx) > 0 || ctx.has_ready() {
                    return Step::Barrier;
                }
                // Barrier released: post this round's sends.
                self.exchange(ctx);
                self.round += 1;
                if self.round < self.rounds {
                    self.st = St::Parsing;
                    Step::Yield
                } else {
                    self.st = St::FinalWait;
                    Step::Barrier
                }
            }
            St::RoundWait => {
                if self.poll_receives(ctx) > 0 || ctx.has_ready() {
                    return Step::Barrier;
                }
                self.round += 1;
                if self.round < self.rounds {
                    self.st = St::Parsing;
                    Step::Yield
                } else {
                    self.st = St::Phase2;
                    Step::Yield
                }
            }
            St::FinalWait => {
                if self.poll_receives(ctx) > 0 || ctx.has_ready() {
                    return Step::Barrier;
                }
                self.st = St::Phase2;
                Step::Yield
            }
            St::Phase2 => {
                self.phase2(ctx);
                self.st = St::Done;
                Step::Done
            }
            St::Done => Step::Done,
        }
    }
}

/// Runs the BSP baseline on the virtual cluster.
pub fn count_kmers_bsp_sim<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    cfg: &BspConfig,
    machine: &MachineConfig,
) -> Result<BspRun<W>, SimError> {
    assert!((1..=W::MAX_K).contains(&cfg.k));
    assert!(cfg.batch >= 1);
    let p = machine.num_pes();
    let reads = Arc::new(reads.clone());

    // Global round count: every PE participates in the same number of
    // exchanges (empty ones for PEs that ran out of data early).
    let max_kmers = (0..p)
        .map(|pe| {
            reads
                .pe_range(pe, p)
                .map(|i| dakc_kmer::extract::kmer_count_of_read(reads.get(i), cfg.k))
                .sum::<usize>()
        })
        .max()
        .unwrap_or(0);
    let rounds = max_kmers.div_ceil(cfg.batch).max(1);

    let sink: OutputSink<W> = Rc::new(RefCell::new(vec![None; p]));
    let programs: Vec<Box<dyn Program>> = (0..p)
        .map(|pe| {
            let range = reads.pe_range(pe, p);
            Box::new(BspPeProgram::<W> {
                cfg: cfg.clone(),
                rounds,
                reads: Arc::clone(&reads),
                cursor: range.start,
                range,
                round: 0,
                parsed_this_round: 0,
                send_bufs: HashMap::new(),
                t_r: Vec::new(),
                recv_alloc: 0,
                word_bytes: (W::BITS / 8) as usize,
                sink: sink.clone(),
                st: St::Init,
            }) as Box<dyn Program>
        })
        .collect();

    let report = Simulator::new(machine.clone()).run(programs)?;
    let mut counts: Vec<KmerCount<W>> = Rc::try_unwrap(sink)
        .expect("simulator dropped program references")
        .into_inner()
        .into_iter()
        .flat_map(|o| o.expect("every PE published"))
        .collect();
    counts.sort_unstable_by_key(|c| c.kmer);

    Ok(BspRun {
        counts,
        report,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(n: usize, seed: u64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 3000, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: 100, num_reads: n, error_rate: 0.005, both_strands: false },
            seed,
        )
    }

    fn reference(rs: &ReadSet, k: usize) -> Vec<KmerCount<u64>> {
        use std::collections::BTreeMap;
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in rs.iter() {
            for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                *h.entry(w).or_default() += 1;
            }
        }
        h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
    }

    #[test]
    fn blocking_matches_reference() {
        let rs = reads(60, 1);
        let mut cfg = BspConfig::pakman_star(15);
        cfg.batch = 500; // force multiple rounds
        let machine = MachineConfig::test_machine(2, 2);
        let run = count_kmers_bsp_sim::<u64>(&rs, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference(&rs, 15));
        assert!(run.rounds > 1, "batch 500 over ~1290 k-mers/PE needs >1 rounds");
        assert_eq!(run.report.barriers_completed as usize, run.rounds);
    }

    #[test]
    fn non_blocking_matches_reference() {
        let rs = reads(60, 2);
        let mut cfg = BspConfig::hysortk(15);
        cfg.batch = 500;
        let machine = MachineConfig::test_machine(2, 2);
        let run = count_kmers_bsp_sim::<u64>(&rs, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference(&rs, 15));
        assert_eq!(run.report.barriers_completed as usize, run.rounds);
    }

    #[test]
    fn quicksort_backend_matches_reference() {
        let rs = reads(40, 3);
        let cfg = BspConfig::pakman_qsort(11);
        let machine = MachineConfig::test_machine(2, 1);
        let run = count_kmers_bsp_sim::<u64>(&rs, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference(&rs, 11));
    }

    #[test]
    fn single_round_single_pe() {
        let rs = reads(10, 4);
        let cfg = BspConfig::pakman_star(9);
        let machine = MachineConfig::test_machine(1, 1);
        let run = count_kmers_bsp_sim::<u64>(&rs, &cfg, &machine).unwrap();
        assert_eq!(run.counts, reference(&rs, 9));
        assert_eq!(run.rounds, 1);
    }

    #[test]
    fn bsp_needs_more_syncs_than_dakc() {
        let rs = reads(120, 5);
        let mut cfg = BspConfig::pakman_star(15);
        cfg.batch = 300;
        let machine = MachineConfig::test_machine(2, 2);
        let bsp = count_kmers_bsp_sim::<u64>(&rs, &cfg, &machine).unwrap();
        let dakc_cfg = dakc::DakcConfig::scaled_defaults(15);
        let dakc_run = dakc::count_kmers_sim::<u64>(&rs, &dakc_cfg, &machine).unwrap();
        assert_eq!(dakc_run.counts, bsp.counts);
        assert!(
            bsp.report.barriers_completed > dakc_run.report.barriers_completed,
            "BSP {} barriers vs DAKC {}",
            bsp.report.barriers_completed,
            dakc_run.report.barriers_completed
        );
    }

    #[test]
    fn non_blocking_is_not_slower_than_blocking() {
        let rs = reads(150, 6);
        let machine = MachineConfig::phoenix_intel(2);
        let mut blocking = BspConfig::pakman_star(15);
        blocking.batch = 200;
        let mut nb = BspConfig::hysortk(15);
        nb.batch = 200;
        let b = count_kmers_bsp_sim::<u64>(&rs, &blocking, &machine).unwrap();
        let n = count_kmers_bsp_sim::<u64>(&rs, &nb, &machine).unwrap();
        assert_eq!(b.counts, n.counts);
        assert!(
            n.report.total_time <= b.report.total_time * 1.02,
            "overlap should not hurt: nb {} vs blocking {}",
            n.report.total_time,
            b.report.total_time
        );
    }
}
