//! # dakc-baselines — every comparator the paper evaluates against
//!
//! | baseline | paper role | module |
//! |----------|-----------|--------|
//! | Serial Algorithm 1 | correctness reference | [`serial`] |
//! | PakMan\* | BSP Algorithm 2, *blocking* Many-To-Many, radix sort | [`bsp`] with [`BspConfig::pakman_star`] |
//! | PakMan (original) | same kernel with quicksort (Fig 6) | [`bsp`] with [`BspConfig::pakman_qsort`] |
//! | HySortK-like | *non-blocking* collectives with compute/communication overlap, hybrid sort | [`bsp`] with [`BspConfig::hysortk`] |
//! | KMC3-like | shared-memory minimizer/super-k-mer counter, forced in-memory | [`kmc3`] |
//!
//! The BSP variants run on the same [`dakc_sim`] virtual cluster as DAKC,
//! so strong/weak-scaling comparisons measure algorithmic differences —
//! synchronization rounds, exchange volume, overlap — under one cost
//! model. The Many-To-Many collective is realized as direct sends of the
//! per-destination buffers followed by a global quiescent barrier per
//! batch, which is exactly the synchronizing semantics of a blocking
//! `MPI_Alltoallv`; the *number of such barriers grows with input size*
//! (`⌈mn/bP⌉`, Eq 1), versus DAKC's constant three.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bsp;
pub mod bsp_threaded;
pub mod hashkc;
pub mod kmc3;
pub mod serial;

pub use bsp::{count_kmers_bsp_sim, BspConfig, BspRun, SortBackend};
pub use bsp_threaded::{count_kmers_bsp_threaded, BspThreadedRun};
pub use hashkc::{count_kmers_hash_sim, HashKcConfig, HashKcRun};
pub use kmc3::{count_kmers_kmc3, Kmc3Config, Kmc3Run};
pub use serial::{count_kmers_serial, SerialRun};
