//! A KMC3-style shared-memory k-mer counter.
//!
//! KMC3 (paper [27]) is the strongest shared-memory baseline: it bins
//! k-mers by *minimizer*, moving whole super-k-mers (maximal read
//! substrings whose k-mers share a minimizer) into per-bin buffers, then
//! sorts each bin with multithreaded radix sort. The paper runs it forced
//! into in-memory mode for best-case performance; this implementation is
//! in-memory by construction.
//!
//! Structure:
//!
//! 1. **Bin** (parallel over read blocks): decompose reads into
//!    super-k-mers, append each to its minimizer's bin (lock-protected,
//!    batched).
//! 2. **Count** (parallel over bins): expand super-k-mers into k-mers,
//!    radix sort, accumulate.
//!
//! Because every occurrence of a k-mer shares its minimizer, bins are
//! independent and the per-bin histograms concatenate into the global one.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use dakc_io::ReadSet;
use dakc_kmer::{
    kmers_of_read, minimizer::super_kmers, CanonicalMode, KmerCount, KmerWord,
};
use dakc_sort::{accumulate, hybrid_sort, RadixKey};

/// KMC3-like configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kmc3Config {
    /// k-mer length.
    pub k: usize,
    /// Minimizer length (KMC3 default is 9; must be ≤ k and ≤ 32).
    pub m: usize,
    /// Number of bins (KMC3 default is 512).
    pub bins: usize,
    /// Worker threads.
    pub threads: usize,
    /// Forward or canonical counting.
    pub canonical: CanonicalMode,
}

impl Kmc3Config {
    /// KMC3-flavoured defaults for a given `k` and thread count.
    pub fn defaults(k: usize, threads: usize) -> Self {
        Self {
            k,
            m: 9.min(k),
            bins: 512,
            threads,
            canonical: CanonicalMode::Forward,
        }
    }
}

/// Result of a KMC3-like run.
#[derive(Debug, Clone)]
pub struct Kmc3Run<W> {
    /// Global histogram sorted by k-mer.
    pub counts: Vec<KmerCount<W>>,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// One binned super-k-mer: the read bytes are copied so bins own their
/// data (KMC3 writes bins to temporary files; in-memory mode keeps them).
#[derive(Debug, Clone)]
struct BinnedSk {
    seq: Vec<u8>,
}

/// Counts k-mers the KMC3 way.
///
/// # Panics
///
/// Panics on invalid configuration (`m > k`, zero bins/threads, `k` out of
/// range for `W`).
pub fn count_kmers_kmc3<W: KmerWord + RadixKey>(
    reads: &ReadSet,
    cfg: &Kmc3Config,
) -> Kmc3Run<W> {
    assert!((1..=W::MAX_K).contains(&cfg.k));
    assert!(cfg.m >= 1 && cfg.m <= cfg.k && cfg.m <= 32);
    assert!(cfg.bins >= 1 && cfg.threads >= 1);
    let start = Instant::now();

    let bins: Vec<Mutex<Vec<BinnedSk>>> = (0..cfg.bins).map(|_| Mutex::new(Vec::new())).collect();

    // --- Stage 1: super-k-mer binning ---
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let bins = &bins;
            s.spawn(move || {
                let mut local: Vec<Vec<BinnedSk>> = vec![Vec::new(); cfg.bins];
                for i in reads.pe_range(t, cfg.threads) {
                    let read = reads.get(i);
                    for sk in super_kmers(read, cfg.k, cfg.m) {
                        let bin = (sk.minimizer.hash64() % cfg.bins as u64) as usize;
                        local[bin].push(BinnedSk {
                            seq: read[sk.start..sk.start + sk.len].to_vec(),
                        });
                        if local[bin].len() >= 64 {
                            bins[bin].lock().unwrap().append(&mut local[bin]);
                        }
                    }
                }
                for (bin, buf) in local.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        bins[bin].lock().unwrap().append(buf);
                    }
                }
            });
        }
    });

    // --- Stage 2: per-bin expand + sort + accumulate ---
    let outputs: Vec<Mutex<Vec<KmerCount<W>>>> =
        (0..cfg.threads).map(|_| Mutex::new(Vec::new())).collect();
    let next_bin = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let bins = &bins;
            let outputs = &outputs;
            let next_bin = &next_bin;
            s.spawn(move || {
                let mut out: Vec<KmerCount<W>> = Vec::new();
                loop {
                    let b = next_bin.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if b >= cfg.bins {
                        break;
                    }
                    let sks = std::mem::take(&mut *bins[b].lock().unwrap());
                    if sks.is_empty() {
                        continue;
                    }
                    let mut kmers: Vec<W> = Vec::new();
                    for sk in &sks {
                        kmers.extend(kmers_of_read::<W>(&sk.seq, cfg.k, cfg.canonical));
                    }
                    hybrid_sort(&mut kmers);
                    out.extend(
                        accumulate(&kmers)
                            .into_iter()
                            .map(|(w, c)| KmerCount::new(w, c)),
                    );
                }
                outputs[t].lock().unwrap().append(&mut out);
            });
        }
    });

    let mut counts: Vec<KmerCount<W>> = outputs
        .iter()
        .flat_map(|m| std::mem::take(&mut *m.lock().unwrap()))
        .collect();
    counts.sort_unstable_by_key(|c| c.kmer);

    Kmc3Run {
        counts,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn random_reads(n: usize, seed: u64) -> ReadSet {
        use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
        let g = generate_genome(&GenomeSpec { bases: 5000, repeats: None }, seed);
        simulate_reads(
            &g,
            &ReadSimConfig { read_len: 120, num_reads: n, error_rate: 0.01, both_strands: false },
            seed,
        )
    }

    fn reference(rs: &ReadSet, k: usize, mode: CanonicalMode) -> Vec<KmerCount<u64>> {
        let mut h: BTreeMap<u64, u32> = BTreeMap::new();
        for r in rs.iter() {
            for w in kmers_of_read::<u64>(r, k, mode) {
                *h.entry(w).or_default() += 1;
            }
        }
        h.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect()
    }

    #[test]
    fn matches_reference() {
        let rs = random_reads(200, 1);
        let cfg = Kmc3Config::defaults(21, 4);
        let run = count_kmers_kmc3::<u64>(&rs, &cfg);
        assert_eq!(run.counts, reference(&rs, 21, CanonicalMode::Forward));
    }

    #[test]
    fn few_bins_one_thread() {
        let rs = random_reads(50, 2);
        let cfg = Kmc3Config {
            k: 11,
            m: 4,
            bins: 3,
            threads: 1,
            canonical: CanonicalMode::Forward,
        };
        let run = count_kmers_kmc3::<u64>(&rs, &cfg);
        assert_eq!(run.counts, reference(&rs, 11, CanonicalMode::Forward));
    }

    #[test]
    fn canonical_mode() {
        let rs = random_reads(80, 3);
        let cfg = Kmc3Config {
            canonical: CanonicalMode::Canonical,
            ..Kmc3Config::defaults(13, 3)
        };
        let run = count_kmers_kmc3::<u64>(&rs, &cfg);
        assert_eq!(run.counts, reference(&rs, 13, CanonicalMode::Canonical));
    }

    #[test]
    fn reads_with_ns() {
        let mut rs = ReadSet::new();
        rs.push(b"ACGTNNACGTACGTNACGTACG");
        rs.push(b"NNNNN");
        rs.push(b"ACGTACGTACGT");
        let cfg = Kmc3Config::defaults(5, 2);
        let run = count_kmers_kmc3::<u64>(&rs, &cfg);
        assert_eq!(run.counts, reference(&rs, 5, CanonicalMode::Forward));
    }

    #[test]
    fn agrees_with_all_other_engines() {
        let rs = random_reads(150, 4);
        let k = 17;
        let kmc = count_kmers_kmc3::<u64>(&rs, &Kmc3Config::defaults(k, 4));
        let serial = crate::serial::count_kmers_serial::<u64>(
            &rs,
            k,
            CanonicalMode::Forward,
            false,
        );
        assert_eq!(kmc.counts, serial.counts);
    }
}
