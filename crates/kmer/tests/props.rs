//! Property-based tests for the k-mer substrate.

use dakc_kmer::{
    encode::{complement_base, pack_sequence, unpack_sequence},
    extract_into, kmers_of_read, minimizer::super_kmers, owner_pe, CanonicalMode, KmerWord,
};
use proptest::prelude::*;

/// Strategy: a DNA sequence of ACGT bases.
fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..max_len)
}

/// Strategy: DNA with occasional Ns.
fn dna_with_n(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T', b'N']),
        0..max_len,
    )
}

fn revcomp_seq(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|&b| complement_base(b).expect("ACGT input"))
        .collect()
}

proptest! {
    #[test]
    fn pack_unpack_round_trip(seq in dna(200)) {
        let packed = pack_sequence(&seq).unwrap();
        prop_assert_eq!(unpack_sequence(&packed, seq.len()), seq);
    }

    #[test]
    fn from_dna_to_string_round_trip(seq in dna(33).prop_filter("nonempty", |s| !s.is_empty())) {
        let k = seq.len().min(32);
        let w = u64::from_dna(&seq, k).unwrap();
        let s = w.to_dna_string(k);
        prop_assert_eq!(s.as_bytes(), &seq[..k]);
    }

    #[test]
    fn revcomp_involution_u64(seq in dna(33).prop_filter("nonempty", |s| !s.is_empty())) {
        let k = seq.len().min(32);
        let w = u64::from_dna(&seq, k).unwrap();
        prop_assert_eq!(w.revcomp(k).revcomp(k), w);
    }

    #[test]
    fn revcomp_matches_string_revcomp(seq in dna(33).prop_filter("len>=1", |s| !s.is_empty())) {
        let k = seq.len().min(32);
        let w = u64::from_dna(&seq, k).unwrap();
        let rc = revcomp_seq(&seq[..k]);
        let wrc = u64::from_dna(&rc, k).unwrap();
        prop_assert_eq!(w.revcomp(k), wrc);
    }

    #[test]
    fn canonical_agrees_across_strands(seq in dna(64).prop_filter("len>=4", |s| s.len() >= 4)) {
        let k = 4;
        let rc = revcomp_seq(&seq);
        let mut fwd: Vec<u64> = kmers_of_read(&seq, k, CanonicalMode::Canonical).collect();
        let mut rev: Vec<u64> = kmers_of_read(&rc, k, CanonicalMode::Canonical).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn extraction_count_formula(seq in dna(300), k in 1usize..=32) {
        let n = kmers_of_read::<u64>(&seq, k, CanonicalMode::Forward).count();
        let expect = seq.len().saturating_sub(k - 1).min(seq.len());
        let expect = if seq.len() >= k { expect } else { 0 };
        prop_assert_eq!(n, expect);
    }

    #[test]
    fn extraction_never_spans_n(seq in dna_with_n(120), k in 2usize..=8) {
        // Every produced k-mer must equal some ACGT window of the read.
        let windows: std::collections::HashSet<u64> = seq
            .windows(k)
            .filter_map(|w| u64::from_dna(w, k))
            .collect();
        for km in kmers_of_read::<u64>(&seq, k, CanonicalMode::Forward) {
            prop_assert!(windows.contains(&km));
        }
    }

    #[test]
    fn u128_and_u64_agree_for_small_k(seq in dna(100), k in 1usize..=32) {
        let a: Vec<u64> = kmers_of_read(&seq, k, CanonicalMode::Forward).collect();
        let b: Vec<u128> = kmers_of_read(&seq, k, CanonicalMode::Forward).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_u128(), *y);
        }
    }

    #[test]
    fn owner_pe_in_range(x in any::<u64>(), p in 1usize..10_000) {
        prop_assert!(owner_pe(x, p) < p);
    }

    #[test]
    fn rolling_canonical_equals_definitional(seq in dna_with_n(150), k in 1usize..=32) {
        // The rolling-revcomp O(1) min must agree with min(w, revcomp(w))
        // at every position, for every k, across N resets.
        let fwd: Vec<u64> = kmers_of_read(&seq, k, CanonicalMode::Forward).collect();
        let can: Vec<u64> = kmers_of_read(&seq, k, CanonicalMode::Canonical).collect();
        prop_assert_eq!(fwd.len(), can.len());
        for (w, c) in fwd.iter().zip(&can) {
            prop_assert_eq!(*c, w.canonical(k));
        }
    }

    #[test]
    fn rolling_canonical_equals_definitional_u128(seq in dna_with_n(150), k in 33usize..=64) {
        let fwd: Vec<u128> = kmers_of_read(&seq, k, CanonicalMode::Forward).collect();
        let can: Vec<u128> = kmers_of_read(&seq, k, CanonicalMode::Canonical).collect();
        prop_assert_eq!(fwd.len(), can.len());
        for (w, c) in fwd.iter().zip(&can) {
            prop_assert_eq!(*c, w.canonical(k));
        }
    }

    #[test]
    fn extract_into_matches_iterator_props(seq in dna_with_n(200), k in 1usize..=32) {
        for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
            let want: Vec<u64> = kmers_of_read(&seq, k, mode).collect();
            let mut got: Vec<u64> = Vec::new();
            extract_into(&seq, k, mode, |w| got.push(w));
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn super_kmers_partition_kmers(seq in dna_with_n(150), k in 3usize..=10) {
        let m = (k / 2).max(1);
        let sks = super_kmers(&seq, k, m);
        let total: usize = sks.iter().map(|sk| sk.len - k + 1).sum();
        let direct = kmers_of_read::<u64>(&seq, k, CanonicalMode::Forward).count();
        prop_assert_eq!(total, direct);
        // Starts strictly increase and runs never overlap.
        for pair in sks.windows(2) {
            prop_assert!(pair[0].start + pair[0].len - k < pair[1].start + 1);
        }
    }
}
