//! Owner-PE assignment.
//!
//! Every distributed engine in the workspace (BSP Algorithm 2, FA-BSP
//! Algorithm 3) relies on the same convention: each distinct k-mer is owned
//! by exactly one PE, so the owner's local count is the global count. The
//! owner is chosen by hashing the k-mer word and reducing modulo `P`.
//!
//! The hash must mix well: DNA k-mers are *not* uniform integers (low bases
//! change fastest as the window rolls), and a weak reduction would produce
//! exactly the load imbalance the paper's L3 layer exists to fight — but for
//! the wrong reason. We use the SplitMix64 finalizer, a full-avalanche
//! bijection on `u64`.

use crate::kmer::KmerWord;

/// SplitMix64 finalizer: a bijective full-avalanche mix of a `u64`.
///
/// Constants are from Sebastiano Vigna's reference implementation.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a k-mer to its owner PE in `0..num_pes` (the paper's `OwnerPE`).
///
/// # Panics
///
/// Panics if `num_pes == 0`.
#[inline]
pub fn owner_pe<W: KmerWord>(kmer: W, num_pes: usize) -> usize {
    assert!(num_pes > 0, "owner_pe requires at least one PE");
    (kmer.hash64() % num_pes as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::KmerWord;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn splitmix_known_vector() {
        // First output of the SplitMix64 sequence seeded with 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn owner_in_range() {
        for p in [1usize, 2, 3, 48, 6144] {
            for x in 0..200u64 {
                assert!(owner_pe(x, p) < p);
            }
        }
    }

    #[test]
    fn owner_is_stable_across_widths_when_value_fits() {
        // u64 and u128 hash the same value differently by design (u128 mixes
        // both halves), so we only require per-width determinism.
        let w: u64 = 0xDEAD_BEEF;
        assert_eq!(owner_pe(w, 7), owner_pe(w, 7));
        let w128: u128 = 0xDEAD_BEEF;
        assert_eq!(owner_pe(w128, 7), owner_pe(w128, 7));
    }

    #[test]
    fn owner_distribution_is_balanced() {
        // Rolling k-mers of a random-ish sequence should spread evenly.
        let p = 16usize;
        let k = 21;
        let mut counts = vec![0usize; p];
        let mut w = 0u64;
        let mut state = 12345u64;
        for i in 0..(k + 50_000) {
            state = splitmix64(state);
            w = w.push_base(k, (state & 3) as u8);
            if i >= k - 1 {
                counts[owner_pe(w, p)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let expect = total as f64 / p as f64;
        for (pe, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.10, "PE {pe} holds {c} of {total} (dev {dev:.3})");
        }
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn owner_zero_pes_panics() {
        owner_pe(0u64, 0);
    }
}
