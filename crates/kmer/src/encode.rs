//! 2-bit DNA encoding.
//!
//! Every parser and k-mer builder in the workspace shares these tables. The
//! encoding follows the usual lexicographic convention:
//!
//! | base | code |
//! |------|------|
//! | `A`  | `0`  |
//! | `C`  | `1`  |
//! | `G`  | `2`  |
//! | `T`  | `3`  |
//!
//! With this encoding the Watson-Crick complement of a code `c` is `3 - c`,
//! i.e. `c ^ 0b11`, which is what makes the branch-free reverse-complement
//! in [`crate::kmer`] possible.

/// Sentinel stored in [`ENCODE_TABLE`] for bytes that are not DNA bases.
pub const INVALID_CODE: u8 = 0xFF;

/// 256-entry ASCII → 2-bit code table. Lower- and upper-case bases map to
/// the same code; everything else maps to [`INVALID_CODE`].
pub static ENCODE_TABLE: [u8; 256] = {
    let mut t = [INVALID_CODE; 256];
    t[b'A' as usize] = 0;
    t[b'a' as usize] = 0;
    t[b'C' as usize] = 1;
    t[b'c' as usize] = 1;
    t[b'G' as usize] = 2;
    t[b'g' as usize] = 2;
    t[b'T' as usize] = 3;
    t[b't' as usize] = 3;
    t
};

/// 2-bit code → upper-case ASCII base.
pub static DECODE_TABLE: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Encodes one ASCII base into its 2-bit code.
///
/// Returns `None` for any byte that is not `ACGTacgt` (e.g. the ambiguity
/// code `N` that real FASTQ data contains); callers decide whether to reset
/// the rolling k-mer window or abort.
#[inline]
pub fn encode_base(b: u8) -> Option<u8> {
    let c = ENCODE_TABLE[b as usize];
    if c == INVALID_CODE {
        None
    } else {
        Some(c)
    }
}

/// Decodes a 2-bit code (`0..=3`) back to its upper-case ASCII base.
///
/// # Panics
///
/// Panics if `code > 3`.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    DECODE_TABLE[code as usize]
}

/// Returns `true` if the byte is one of `ACGTacgt`.
#[inline]
pub fn is_dna_base(b: u8) -> bool {
    ENCODE_TABLE[b as usize] != INVALID_CODE
}

/// Watson-Crick complement of a 2-bit code (`A↔T`, `C↔G`).
#[inline]
pub fn complement_code(code: u8) -> u8 {
    debug_assert!(code <= 3);
    code ^ 0b11
}

/// Complement of an ASCII base, preserving case for `ACGTacgt`.
///
/// Returns `None` for non-DNA bytes.
#[inline]
pub fn complement_base(b: u8) -> Option<u8> {
    Some(match b {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        b'a' => b't',
        b't' => b'a',
        b'c' => b'g',
        b'g' => b'c',
        _ => return None,
    })
}

/// Encodes an entire ASCII sequence into packed 2-bit codes, two bases per
/// nibble boundary (4 bases per byte), most significant pair first.
///
/// This is the compact storage format used by the synthetic genome
/// generator; it is *not* the k-mer wire format (k-mers travel as whole
/// `u64`/`u128` words).
///
/// Returns `None` if the sequence contains a non-DNA byte.
pub fn pack_sequence(seq: &[u8]) -> Option<Vec<u8>> {
    let mut out = vec![0u8; seq.len().div_ceil(4)];
    for (i, &b) in seq.iter().enumerate() {
        let code = encode_base(b)?;
        out[i / 4] |= code << (6 - 2 * (i % 4));
    }
    Some(out)
}

/// Inverse of [`pack_sequence`]; `len` is the number of bases to recover.
pub fn unpack_sequence(packed: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= packed.len() * 4, "len exceeds packed capacity");
    (0..len)
        .map(|i| decode_base((packed[i / 4] >> (6 - 2 * (i % 4))) & 0b11))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_bases() {
        assert_eq!(encode_base(b'A'), Some(0));
        assert_eq!(encode_base(b'C'), Some(1));
        assert_eq!(encode_base(b'G'), Some(2));
        assert_eq!(encode_base(b'T'), Some(3));
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b't'), Some(3));
    }

    #[test]
    fn encode_rejects_non_dna() {
        for b in [b'N', b'n', b'X', b'-', b' ', b'\n', 0u8, 255u8] {
            assert_eq!(encode_base(b), None, "byte {b:?} must be invalid");
        }
    }

    #[test]
    fn decode_round_trips() {
        for code in 0..4u8 {
            assert_eq!(encode_base(decode_base(code)), Some(code));
        }
    }

    #[test]
    fn complement_is_involution() {
        for code in 0..4u8 {
            assert_eq!(complement_code(complement_code(code)), code);
        }
        assert_eq!(complement_code(0), 3); // A -> T
        assert_eq!(complement_code(1), 2); // C -> G
    }

    #[test]
    fn complement_base_preserves_case() {
        assert_eq!(complement_base(b'A'), Some(b'T'));
        assert_eq!(complement_base(b'g'), Some(b'c'));
        assert_eq!(complement_base(b'N'), None);
    }

    #[test]
    fn is_dna_base_matches_encode() {
        for b in 0..=255u8 {
            assert_eq!(is_dna_base(b), encode_base(b).is_some());
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let seq = b"ACGTACGTTGCA";
        let packed = pack_sequence(seq).unwrap();
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack_sequence(&packed, seq.len()), seq.to_vec());
    }

    #[test]
    fn pack_partial_final_byte() {
        let seq = b"ACGTA";
        let packed = pack_sequence(seq).unwrap();
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_sequence(&packed, 5), seq.to_vec());
    }

    #[test]
    fn pack_rejects_invalid() {
        assert!(pack_sequence(b"ACGNT").is_none());
    }

    #[test]
    fn pack_empty() {
        let packed = pack_sequence(b"").unwrap();
        assert!(packed.is_empty());
        assert!(unpack_sequence(&packed, 0).is_empty());
    }
}
