//! A blocked Bloom filter over k-mer words.
//!
//! The paper's related work (§II-A) covers DFCounter [35] and Squeakr
//! [25]: probabilistic pre-filters that skip *singleton* k-mers — the
//! sequencing-error artifacts that dominate distinct-k-mer counts — to
//! shrink the counting workload. This filter is the substrate for the
//! workspace's `count_kmers_filtered` extension: first occurrences go into
//! the filter; only k-mers seen again are counted exactly.
//!
//! The filter is *blocked*: each element's probes all land in one 64-byte
//! cache line, the standard HPC trade (slightly worse false-positive rate
//! for one memory access per query).

use crate::hash::splitmix64;
use crate::kmer::KmerWord;

/// Words per block: 8 × u64 = one 64-byte cache line.
const BLOCK_WORDS: usize = 8;

/// A blocked Bloom filter for k-mer words.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    blocks: Vec<[u64; BLOCK_WORDS]>,
    probes: u32,
}

impl BloomFilter {
    /// Builds a filter sized for `expected_items` at roughly the requested
    /// false-positive rate (clamped to `[1e-6, 0.5]`).
    pub fn with_rate(expected_items: usize, fp_rate: f64) -> Self {
        let fp = fp_rate.clamp(1e-6, 0.5);
        // Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2; blocked
        // filters lose a little accuracy, compensate with ~20% extra bits.
        let n = expected_items.max(1) as f64;
        let m_bits = (-n * fp.ln() / (2f64.ln().powi(2)) * 1.2).ceil() as usize;
        let blocks = m_bits.div_ceil(BLOCK_WORDS * 64).max(1);
        let probes = ((m_bits as f64 / n) * 2f64.ln()).round().clamp(1.0, 12.0) as u32;
        Self {
            blocks: vec![[0u64; BLOCK_WORDS]; blocks],
            probes,
        }
    }

    /// Bits of storage.
    pub fn bits(&self) -> usize {
        self.blocks.len() * BLOCK_WORDS * 64
    }

    /// Number of probe bits per element.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    #[inline]
    fn block_of(&self, h: u64) -> usize {
        // Multiply-shift range reduction.
        ((h as u128 * self.blocks.len() as u128) >> 64) as usize
    }

    /// Inserts the k-mer; returns `true` if it was (probably) already
    /// present — i.e. every probe bit was already set.
    #[inline]
    pub fn insert<W: KmerWord>(&mut self, w: W) -> bool {
        let h0 = w.hash64();
        let block = self.block_of(h0);
        let mut h = splitmix64(h0);
        let mut all_set = true;
        for _ in 0..self.probes {
            let bit = (h % (BLOCK_WORDS as u64 * 64)) as usize;
            let (word, off) = (bit / 64, bit % 64);
            let mask = 1u64 << off;
            if self.blocks[block][word] & mask == 0 {
                all_set = false;
                self.blocks[block][word] |= mask;
            }
            h = splitmix64(h);
        }
        all_set
    }

    /// `true` if the k-mer is (probably) present. Never a false negative.
    #[inline]
    pub fn contains<W: KmerWord>(&self, w: W) -> bool {
        let h0 = w.hash64();
        let block = self.block_of(h0);
        let mut h = splitmix64(h0);
        for _ in 0..self.probes {
            let bit = (h % (BLOCK_WORDS as u64 * 64)) as usize;
            if self.blocks[block][bit / 64] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            h = splitmix64(h);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(10_000, 0.01);
        let items: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for &w in &items {
            f.insert(w);
        }
        for &w in &items {
            assert!(f.contains(w), "false negative for {w}");
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let n = 50_000usize;
        let mut f = BloomFilter::with_rate(n, 0.01);
        for i in 0..n as u64 {
            f.insert(splitmix64(i));
        }
        // Query disjoint values.
        let fps = (0..n as u64)
            .filter(|&i| f.contains(splitmix64(i + 1_000_000_000)))
            .count();
        let rate = fps as f64 / n as f64;
        assert!(rate < 0.05, "observed fp rate {rate} too high");
    }

    #[test]
    fn insert_reports_repeats() {
        let mut f = BloomFilter::with_rate(1_000, 0.001);
        assert!(!f.insert(42u64), "first insert is new");
        assert!(f.insert(42u64), "second insert is a repeat");
    }

    #[test]
    fn works_for_u128_words() {
        let mut f = BloomFilter::with_rate(100, 0.01);
        let w: u128 = (7u128 << 90) | 13;
        assert!(!f.contains(w));
        f.insert(w);
        assert!(f.contains(w));
    }

    #[test]
    fn tiny_filter_does_not_panic() {
        let mut f = BloomFilter::with_rate(1, 0.5);
        f.insert(1u64);
        assert!(f.contains(1u64));
        assert!(f.bits() >= 512);
    }
}
