//! Minimizers and super-k-mers.
//!
//! The KMC3-style shared-memory baseline (paper §II-A, [27], [32]) bins
//! k-mers by *minimizer*: the m-mer of a k-mer that is smallest under a
//! hashed ordering. Consecutive k-mers of a read usually share a minimizer,
//! so a read decomposes into a small number of *super-k-mers* — maximal
//! substrings whose k-mers all share one minimizer — which are dispatched to
//! per-minimizer bins with far less data movement than per-k-mer binning.
//!
//! We order m-mers by [`KmerWord::hash64`] rather than lexicographically:
//! hashed orderings avoid the pathological `AAA…` minimizer skew noted in
//! the minimizer literature.

use crate::encode::ENCODE_TABLE;
use crate::kmer::KmerWord;

/// A maximal run of k-mers of one read sharing a single minimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperKmer {
    /// The shared minimizer (an m-mer packed in a `u64`).
    pub minimizer: u64,
    /// Byte offset of the super-k-mer within the read.
    pub start: usize,
    /// Length in bases; a super-k-mer of length `len` carries
    /// `len - k + 1` k-mers.
    pub len: usize,
}

/// Returns the minimizer (m-mer minimal under hashed order) of the k-mer
/// starting at `seq[at..at + k]`.
///
/// Returns `None` if the window contains a non-ACGT byte or is out of
/// bounds.
pub fn minimizer_of(seq: &[u8], at: usize, k: usize, m: usize) -> Option<u64> {
    assert!(m >= 1 && m <= k && k <= 32, "need 1 <= m <= k <= 32");
    let window = seq.get(at..at + k)?;
    let mut best: Option<(u64, u64)> = None; // (hash, mmer)
    let mut word = 0u64;
    let mut filled = 0usize;
    for &b in window {
        let code = ENCODE_TABLE[b as usize];
        if code == crate::encode::INVALID_CODE {
            return None;
        }
        word = word.push_base(m, code);
        filled = (filled + 1).min(m);
        if filled == m {
            let h = word.hash64();
            if best.is_none_or(|(bh, _)| h < bh) {
                best = Some((h, word));
            }
        }
    }
    best.map(|(_, w)| w)
}

/// Decomposes a read into super-k-mers.
///
/// Non-ACGT bytes split the read: no super-k-mer spans them. The union of
/// k-mers carried by the returned super-k-mers is exactly the set of k-mers
/// [`crate::kmers_of_read`] yields for the read.
pub fn super_kmers(seq: &[u8], k: usize, m: usize) -> Vec<SuperKmer> {
    assert!(m >= 1 && m <= k && k <= 32, "need 1 <= m <= k <= 32");
    let mut out = Vec::new();
    // Split into maximal ACGT runs first, then scan each run.
    let mut run_start = 0usize;
    let mut i = 0usize;
    while i <= seq.len() {
        let at_end = i == seq.len();
        let invalid = !at_end && ENCODE_TABLE[seq[i] as usize] == crate::encode::INVALID_CODE;
        if at_end || invalid {
            if i - run_start >= k {
                scan_run(seq, run_start, i, k, m, &mut out);
            }
            run_start = i + 1;
        }
        i += 1;
    }
    out
}

/// Scans one ACGT run `seq[lo..hi]`, appending its super-k-mers.
fn scan_run(seq: &[u8], lo: usize, hi: usize, k: usize, m: usize, out: &mut Vec<SuperKmer>) {
    let mut cur_min = minimizer_of(seq, lo, k, m).expect("run is pure ACGT");
    let mut sk_start = lo;
    for pos in lo + 1..=hi - k {
        let mz = minimizer_of(seq, pos, k, m).expect("run is pure ACGT");
        if mz != cur_min {
            out.push(SuperKmer {
                minimizer: cur_min,
                start: sk_start,
                // The previous k-mer (at pos-1) is the last sharing cur_min.
                len: (pos - 1) - sk_start + k,
            });
            cur_min = mz;
            sk_start = pos;
        }
    }
    out.push(SuperKmer {
        minimizer: cur_min,
        start: sk_start,
        len: hi - sk_start,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{kmers_of_read, CanonicalMode};
    use crate::kmer::Kmer64;

    #[test]
    fn minimizer_of_is_some_mmer_of_window() {
        let seq = b"ACGTACGGTTACG";
        let (k, m) = (8, 3);
        let mz = minimizer_of(seq, 2, k, m).unwrap();
        // Must equal one of the window's m-mers.
        let window = &seq[2..2 + k];
        let mmers: Vec<u64> = kmers_of_read::<Kmer64>(window, m, CanonicalMode::Forward).collect();
        assert!(mmers.contains(&mz));
        // And must be hash-minimal among them.
        let min_hash = mmers.iter().map(|w| w.hash64()).min().unwrap();
        assert_eq!(mz.hash64(), min_hash);
    }

    #[test]
    fn minimizer_rejects_invalid_window() {
        assert_eq!(minimizer_of(b"ACGNACGT", 0, 6, 3), None);
        assert_eq!(minimizer_of(b"ACG", 0, 6, 3), None); // out of bounds
    }

    #[test]
    fn super_kmers_cover_all_kmers_exactly_once() {
        let seq = b"ACGTACGGTTACGGATTACAGGCATTGACCAT";
        let (k, m) = (9, 4);
        let sks = super_kmers(seq, k, m);
        // Reconstruct k-mer list from super-k-mers in order.
        let mut covered = Vec::new();
        for sk in &sks {
            assert!(sk.len >= k);
            for p in sk.start..=sk.start + sk.len - k {
                covered.push(p);
            }
        }
        let expected: Vec<usize> = (0..=seq.len() - k).collect();
        assert_eq!(covered, expected);
    }

    #[test]
    fn super_kmer_kmers_share_their_minimizer() {
        let seq = b"GGATTCAGACCATTGCAGGACCTTAGGACAT";
        let (k, m) = (7, 3);
        for sk in super_kmers(seq, k, m) {
            for p in sk.start..=sk.start + sk.len - k {
                assert_eq!(minimizer_of(seq, p, k, m), Some(sk.minimizer));
            }
        }
    }

    #[test]
    fn super_kmers_respect_n_breaks() {
        let seq = b"ACGTACGGTNACGGATTACAG";
        let (k, m) = (5, 2);
        let sks = super_kmers(seq, k, m);
        let n_pos = seq.iter().position(|&b| b == b'N').unwrap();
        for sk in &sks {
            assert!(
                sk.start + sk.len <= n_pos || sk.start > n_pos,
                "super-k-mer {sk:?} spans the N at {n_pos}"
            );
        }
        // Total carried k-mers match the extractor.
        let total: usize = sks.iter().map(|sk| sk.len - k + 1).sum();
        let direct = kmers_of_read::<Kmer64>(seq, k, CanonicalMode::Forward).count();
        assert_eq!(total, direct);
    }

    #[test]
    fn short_or_empty_reads_yield_no_super_kmers() {
        assert!(super_kmers(b"", 5, 2).is_empty());
        assert!(super_kmers(b"ACGT", 5, 2).is_empty());
    }

    #[test]
    fn single_kmer_read_is_one_super_kmer() {
        let seq = b"ACGTA";
        let sks = super_kmers(seq, 5, 3);
        assert_eq!(sks.len(), 1);
        assert_eq!(sks[0].start, 0);
        assert_eq!(sks[0].len, 5);
    }
}
