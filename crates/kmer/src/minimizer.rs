//! Minimizers, super-k-mers, and the packed span wire codec.
//!
//! The KMC3-style shared-memory baseline (paper §II-A, [27], [32]) bins
//! k-mers by *minimizer*: the m-mer of a k-mer that is smallest under a
//! hashed ordering. Consecutive k-mers of a read usually share a minimizer,
//! so a read decomposes into a small number of *super-k-mers* — maximal
//! substrings whose k-mers all share one minimizer — which are dispatched to
//! per-minimizer bins with far less data movement than per-k-mer binning.
//!
//! We order m-mers by [`KmerWord::hash64`] rather than lexicographically:
//! hashed orderings avoid the pathological `AAA…` minimizer skew noted in
//! the minimizer literature.
//!
//! Extraction is a rolling scan: m-mers enter a [`MinimizerWindow`]
//! (monotonic deque) as the read streams by, so each base costs O(1)
//! amortized instead of the O(k·m) full-window rescan a naive
//! per-position [`minimizer_of`] incurs. `minimizer_of` is kept as the
//! reference oracle the rolling path is tested against.
//!
//! In canonical mode the minimizer of an m-mer window is its *canonical*
//! form (min of the m-mer and its reverse complement): a k-mer and its
//! reverse complement then select the same minimizer m-mer, so routing by
//! minimizer is strand-symmetric — required for canonical counting to
//! partition k-mers disjointly across owners.

use std::collections::VecDeque;

use crate::encode::ENCODE_TABLE;
use crate::kmer::KmerWord;

/// A maximal run of k-mers of one read sharing a single minimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperKmer {
    /// The shared minimizer (an m-mer packed in a `u64`; the canonical
    /// m-mer when extracted in canonical mode).
    pub minimizer: u64,
    /// Byte offset of the super-k-mer within the read.
    pub start: usize,
    /// Length in bases; a super-k-mer of length `len` carries
    /// `len - k + 1` k-mers.
    pub len: usize,
}

fn check_km(k: usize, m: usize) {
    assert!(m >= 1 && m <= k && m <= 32 && k <= 64, "need 1 <= m <= k, m <= 32, k <= 64");
}

/// Returns the minimizer (m-mer minimal under hashed order) of the k-mer
/// starting at `seq[at..at + k]`.
///
/// Reference implementation: rescans the whole window (O(k·m)). The
/// engines use the rolling [`MinimizerWindow`] path via [`super_kmers`];
/// this stays as the oracle it is tested against.
///
/// Returns `None` if the window contains a non-ACGT byte or is out of
/// bounds.
pub fn minimizer_of(seq: &[u8], at: usize, k: usize, m: usize) -> Option<u64> {
    minimizer_of_mode(seq, at, k, m, false)
}

/// [`minimizer_of`] with a canonical switch: when `canonical` is set the
/// ordering key and the returned minimizer are the canonical form of each
/// m-mer, making the choice strand-symmetric.
pub fn minimizer_of_mode(seq: &[u8], at: usize, k: usize, m: usize, canonical: bool) -> Option<u64> {
    check_km(k, m);
    let window = seq.get(at..at + k)?;
    let mut best: Option<(u64, u64)> = None; // (hash, mmer)
    let mut fwd = 0u64;
    let mut rc = 0u64;
    let mut filled = 0usize;
    for &b in window {
        let code = ENCODE_TABLE[b as usize];
        if code == crate::encode::INVALID_CODE {
            return None;
        }
        fwd = fwd.push_base(m, code);
        rc = rc.push_base_rc(m, code);
        filled = (filled + 1).min(m);
        if filled == m {
            let mmer = if canonical { fwd.min(rc) } else { fwd };
            let h = mmer.hash64();
            if best.is_none_or(|(bh, _)| h < bh) {
                best = Some((h, mmer));
            }
        }
    }
    best.map(|(_, w)| w)
}

/// One m-mer staged in the rolling window.
#[derive(Debug, Clone, Copy)]
struct MinEntry {
    /// Start offset of the m-mer within the read.
    start: usize,
    /// Ordering key (`hash64` of the m-mer).
    key: u64,
    /// The m-mer itself (canonical form in canonical mode).
    mmer: u64,
}

/// Rolling window minimum over m-mer hash keys: a monotonic deque holding
/// the ascending-minima candidates of the last `k - m + 1` m-mers, so the
/// per-k-mer minimizer query is O(1) amortized.
///
/// Ties on the hash key keep the leftmost m-mer, matching
/// [`minimizer_of`]'s strict-less scan.
#[derive(Debug, Default)]
pub struct MinimizerWindow {
    deque: VecDeque<MinEntry>,
}

impl MinimizerWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all staged m-mers (call between reads / ACGT runs).
    pub fn clear(&mut self) {
        self.deque.clear();
    }

    /// Stages the m-mer starting at `start` with ordering key `key`.
    /// Starts must be pushed in strictly increasing order.
    #[inline]
    pub fn push(&mut self, start: usize, mmer: u64, key: u64) {
        while self.deque.back().is_some_and(|e| e.key > key) {
            self.deque.pop_back();
        }
        self.deque.push_back(MinEntry { start, key, mmer });
    }

    /// Evicts m-mers starting before `start` (they left the window).
    #[inline]
    pub fn evict_before(&mut self, start: usize) {
        while self.deque.front().is_some_and(|e| e.start < start) {
            self.deque.pop_front();
        }
    }

    /// Current window minimum as `(mmer, key)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    #[inline]
    pub fn min(&self) -> (u64, u64) {
        let e = self.deque.front().expect("minimizer window is empty");
        (e.mmer, e.key)
    }
}

/// Decomposes a read into super-k-mers (forward-strand minimizers).
///
/// Non-ACGT bytes split the read: no super-k-mer spans them. The union of
/// k-mers carried by the returned super-k-mers is exactly the set of k-mers
/// [`crate::kmers_of_read`] yields for the read.
pub fn super_kmers(seq: &[u8], k: usize, m: usize) -> Vec<SuperKmer> {
    super_kmers_mode(seq, k, m, false)
}

/// [`super_kmers`] with a canonical switch (see [`minimizer_of_mode`]).
pub fn super_kmers_mode(seq: &[u8], k: usize, m: usize, canonical: bool) -> Vec<SuperKmer> {
    let mut out = Vec::new();
    for_each_acgt_run(seq, k, |lo, hi| {
        scan_run(seq, lo, hi, k, m, canonical, |minimizer, start, len| {
            out.push(SuperKmer { minimizer, start, len });
        });
    });
    out
}

/// Streams a read's super-k-mer spans to `f` as
/// `(minimizer, span bases)`, splitting any span longer than
/// [`SPAN_MAX_BASES`] into overlapping chunks (overlap `k - 1`, same
/// minimizer) so every span fits the wire codec's u16 length prefix.
///
/// This is the producer hot path: no allocation, O(1) amortized per base.
pub fn for_each_span<'a>(
    seq: &'a [u8],
    k: usize,
    m: usize,
    canonical: bool,
    mut f: impl FnMut(u64, &'a [u8]),
) {
    for_each_acgt_run(seq, k, |lo, hi| {
        scan_run(seq, lo, hi, k, m, canonical, |minimizer, start, len| {
            let mut at = start;
            let end = start + len;
            loop {
                let take = (end - at).min(SPAN_MAX_BASES);
                f(minimizer, &seq[at..at + take]);
                if at + take == end {
                    break;
                }
                // Overlap k-1 bases so the chunk boundary loses no k-mer.
                at = at + take - (k - 1);
            }
        });
    });
}

/// Calls `f(lo, hi)` for every maximal ACGT run of `seq` at least `k`
/// bases long.
fn for_each_acgt_run(seq: &[u8], k: usize, mut f: impl FnMut(usize, usize)) {
    let mut run_start = 0usize;
    for i in 0..=seq.len() {
        let at_end = i == seq.len();
        let invalid = !at_end && ENCODE_TABLE[seq[i] as usize] == crate::encode::INVALID_CODE;
        if at_end || invalid {
            if i - run_start >= k {
                f(run_start, i);
            }
            run_start = i + 1;
        }
    }
}

/// Scans one pure-ACGT run `seq[lo..hi]` with the rolling window,
/// emitting `(minimizer, start, len)` per super-k-mer.
fn scan_run(
    seq: &[u8],
    lo: usize,
    hi: usize,
    k: usize,
    m: usize,
    canonical: bool,
    mut emit: impl FnMut(u64, usize, usize),
) {
    check_km(k, m);
    let mut win = MinimizerWindow::new();
    let mut fwd = 0u64;
    let mut rc = 0u64;
    // (current minimizer, span start).
    let mut cur: Option<(u64, usize)> = None;
    for i in lo..hi {
        let code = ENCODE_TABLE[seq[i] as usize];
        debug_assert!(code != crate::encode::INVALID_CODE, "run is pure ACGT");
        fwd = fwd.push_base(m, code);
        rc = rc.push_base_rc(m, code);
        if i + 1 >= lo + m {
            let mmer = if canonical { fwd.min(rc) } else { fwd };
            win.push(i + 1 - m, mmer, mmer.hash64());
        }
        if i + 1 >= lo + k {
            let p = i + 1 - k; // k-mer start
            win.evict_before(p);
            let (mz, _) = win.min();
            match cur {
                Some((cm, _)) if cm == mz => {}
                Some((cm, st)) => {
                    // The previous k-mer (at p-1) is the last sharing cm.
                    emit(cm, st, (p - 1) - st + k);
                    cur = Some((mz, p));
                }
                None => cur = Some((mz, p)),
            }
        }
    }
    if let Some((cm, st)) = cur {
        emit(cm, st, hi - st);
    }
}

// ---------------------------------------------------------------------
// Packed span wire codec.
// ---------------------------------------------------------------------

/// Longest span one wire record can carry (u16 length prefix).
pub const SPAN_MAX_BASES: usize = u16::MAX as usize;

/// Wire size of a packed span of `len` bases: 2-byte length prefix plus
/// 2-bit-packed bases.
pub fn packed_span_bytes(len: usize) -> usize {
    2 + len.div_ceil(4)
}

/// A malformed packed-span stream. Corruption on the wire must surface as
/// one of these — never a panic or a silent wrong expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanDecodeError {
    /// The buffer ended inside a record's 2-byte length prefix.
    TruncatedHeader {
        /// Bytes left in the buffer (0 or 1).
        have: usize,
    },
    /// The buffer ended inside a record's packed bases.
    TruncatedBases {
        /// Packed bytes the length prefix announced.
        need: usize,
        /// Packed bytes actually present.
        have: usize,
    },
    /// A record shorter than one k-mer (including a zero length, which
    /// would otherwise stall a decode loop).
    TooShort {
        /// Announced span length in bases.
        len: usize,
        /// The k it must at least reach.
        k: usize,
    },
}

impl std::fmt::Display for SpanDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TruncatedHeader { have } => {
                write!(f, "span record truncated in its length prefix ({have} of 2 bytes)")
            }
            Self::TruncatedBases { need, have } => {
                write!(f, "span record truncated in its bases ({have} of {need} packed bytes)")
            }
            Self::TooShort { len, k } => {
                write!(f, "span of {len} bases cannot carry a k={k} k-mer")
            }
        }
    }
}

impl std::error::Error for SpanDecodeError {}

/// Appends one span record — `[len: u16 LE][2-bit packed bases]` — to
/// `out`. Bases pack little-endian within each byte (base `j` occupies
/// bits `2·(j mod 4)` of byte `j / 4`).
///
/// # Panics
///
/// Panics if the span is empty, longer than [`SPAN_MAX_BASES`], or (debug
/// only) contains a non-ACGT byte — producers only pack pure-ACGT runs.
pub fn pack_span(out: &mut Vec<u8>, bases: &[u8]) {
    assert!(!bases.is_empty() && bases.len() <= SPAN_MAX_BASES);
    out.extend_from_slice(&(bases.len() as u16).to_le_bytes());
    let mut acc = 0u8;
    for (j, &b) in bases.iter().enumerate() {
        let code = ENCODE_TABLE[b as usize];
        debug_assert!(code != crate::encode::INVALID_CODE, "span bases must be ACGT");
        acc |= code << ((j % 4) * 2);
        if j % 4 == 3 {
            out.push(acc);
            acc = 0;
        }
    }
    if !bases.len().is_multiple_of(4) {
        out.push(acc);
    }
}

/// Totals of one packed-span buffer expansion.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span records decoded.
    pub spans: u64,
    /// K-mers expanded out of them.
    pub kmers: u64,
    /// Bases the spans carried.
    pub bases: u64,
}

/// Expands a concatenation of packed span records back into k-mer words,
/// appending to `out` (canonical form when `canonical` is set — the exact
/// words [`crate::kmers_of_read`] would yield for each span).
///
/// Fallible by design: a truncated or bit-flipped buffer yields a typed
/// [`SpanDecodeError`], never a panic or a silent wrong expansion.
pub fn unpack_spans<W: KmerWord>(
    buf: &[u8],
    k: usize,
    canonical: bool,
    out: &mut Vec<W>,
) -> Result<SpanSummary, SpanDecodeError> {
    let mut sum = SpanSummary::default();
    let mut at = 0usize;
    while at < buf.len() {
        if buf.len() - at < 2 {
            return Err(SpanDecodeError::TruncatedHeader { have: buf.len() - at });
        }
        let len = u16::from_le_bytes([buf[at], buf[at + 1]]) as usize;
        at += 2;
        if len < k {
            return Err(SpanDecodeError::TooShort { len, k });
        }
        let need = len.div_ceil(4);
        let have = buf.len() - at;
        if have < need {
            return Err(SpanDecodeError::TruncatedBases { need, have });
        }
        let packed = &buf[at..at + need];
        at += need;
        let mut fwd = W::default();
        let mut rc = W::default();
        for j in 0..len {
            let code = (packed[j / 4] >> ((j % 4) * 2)) & 0b11;
            fwd = fwd.push_base(k, code);
            if canonical {
                rc = rc.push_base_rc(k, code);
                if j + 1 >= k {
                    out.push(fwd.min(rc));
                }
            } else if j + 1 >= k {
                out.push(fwd);
            }
        }
        sum.spans += 1;
        sum.kmers += (len - k + 1) as u64;
        sum.bases += len as u64;
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{kmers_of_read, CanonicalMode};
    use crate::kmer::Kmer64;

    #[test]
    fn minimizer_of_is_some_mmer_of_window() {
        let seq = b"ACGTACGGTTACG";
        let (k, m) = (8, 3);
        let mz = minimizer_of(seq, 2, k, m).unwrap();
        // Must equal one of the window's m-mers.
        let window = &seq[2..2 + k];
        let mmers: Vec<u64> = kmers_of_read::<Kmer64>(window, m, CanonicalMode::Forward).collect();
        assert!(mmers.contains(&mz));
        // And must be hash-minimal among them.
        let min_hash = mmers.iter().map(|w| w.hash64()).min().unwrap();
        assert_eq!(mz.hash64(), min_hash);
    }

    #[test]
    fn minimizer_rejects_invalid_window() {
        assert_eq!(minimizer_of(b"ACGNACGT", 0, 6, 3), None);
        assert_eq!(minimizer_of(b"ACG", 0, 6, 3), None); // out of bounds
    }

    #[test]
    fn super_kmers_cover_all_kmers_exactly_once() {
        let seq = b"ACGTACGGTTACGGATTACAGGCATTGACCAT";
        let (k, m) = (9, 4);
        let sks = super_kmers(seq, k, m);
        // Reconstruct k-mer list from super-k-mers in order.
        let mut covered = Vec::new();
        for sk in &sks {
            assert!(sk.len >= k);
            for p in sk.start..=sk.start + sk.len - k {
                covered.push(p);
            }
        }
        let expected: Vec<usize> = (0..=seq.len() - k).collect();
        assert_eq!(covered, expected);
    }

    #[test]
    fn super_kmer_kmers_share_their_minimizer() {
        let seq = b"GGATTCAGACCATTGCAGGACCTTAGGACAT";
        let (k, m) = (7, 3);
        for sk in super_kmers(seq, k, m) {
            for p in sk.start..=sk.start + sk.len - k {
                assert_eq!(minimizer_of(seq, p, k, m), Some(sk.minimizer));
            }
        }
    }

    #[test]
    fn super_kmers_respect_n_breaks() {
        let seq = b"ACGTACGGTNACGGATTACAG";
        let (k, m) = (5, 2);
        let sks = super_kmers(seq, k, m);
        let n_pos = seq.iter().position(|&b| b == b'N').unwrap();
        for sk in &sks {
            assert!(
                sk.start + sk.len <= n_pos || sk.start > n_pos,
                "super-k-mer {sk:?} spans the N at {n_pos}"
            );
        }
        // Total carried k-mers match the extractor.
        let total: usize = sks.iter().map(|sk| sk.len - k + 1).sum();
        let direct = kmers_of_read::<Kmer64>(seq, k, CanonicalMode::Forward).count();
        assert_eq!(total, direct);
    }

    #[test]
    fn short_or_empty_reads_yield_no_super_kmers() {
        assert!(super_kmers(b"", 5, 2).is_empty());
        assert!(super_kmers(b"ACGT", 5, 2).is_empty());
    }

    #[test]
    fn single_kmer_read_is_one_super_kmer() {
        let seq = b"ACGTA";
        let sks = super_kmers(seq, 5, 3);
        assert_eq!(sks.len(), 1);
        assert_eq!(sks[0].start, 0);
        assert_eq!(sks[0].len, 5);
    }

    /// Deterministic pseudo-random ACGT+N sequence for oracle sweeps.
    fn noisy_seq(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                match x % 37 {
                    0 => b'N',
                    r => b"ACGT"[(r % 4) as usize],
                }
            })
            .collect()
    }

    // The rolling-window path must agree with the per-position rescan
    // oracle on every k-mer's minimizer, both modes, k beyond 32.
    #[test]
    fn rolling_matches_rescan_oracle() {
        for seed in 1..6u64 {
            let seq = noisy_seq(300, seed);
            for &(k, m) in &[(5usize, 2usize), (9, 4), (15, 7), (31, 7), (33, 9), (51, 15)] {
                for canonical in [false, true] {
                    let sks = super_kmers_mode(&seq, k, m, canonical);
                    for sk in &sks {
                        for p in sk.start..=sk.start + sk.len - k {
                            assert_eq!(
                                minimizer_of_mode(&seq, p, k, m, canonical),
                                Some(sk.minimizer),
                                "seed={seed} k={k} m={m} canonical={canonical} p={p}"
                            );
                        }
                    }
                    // Coverage: spans tile the extractable k-mers exactly.
                    let total: usize = sks.iter().map(|sk| sk.len - k + 1).sum();
                    let direct = if k <= 32 {
                        kmers_of_read::<Kmer64>(&seq, k, CanonicalMode::Forward).count()
                    } else {
                        kmers_of_read::<u128>(&seq, k, CanonicalMode::Forward).count()
                    };
                    assert_eq!(total, direct, "seed={seed} k={k} m={m}");
                }
            }
        }
    }

    // A k-mer and its reverse complement must select the same canonical
    // minimizer — the invariant that makes minimizer routing valid for
    // canonical counting.
    #[test]
    fn canonical_minimizer_is_strand_symmetric() {
        for seed in 1..8u64 {
            let seq: Vec<u8> = noisy_seq(64, seed).into_iter().filter(|&b| b != b'N').collect();
            let (k, m) = (11usize, 5usize);
            if seq.len() < k {
                continue;
            }
            let rc: Vec<u8> = seq
                .iter()
                .rev()
                .map(|&b| match b {
                    b'A' => b'T',
                    b'C' => b'G',
                    b'G' => b'C',
                    _ => b'A',
                })
                .collect();
            for p in 0..=seq.len() - k {
                let fwd_mz = minimizer_of_mode(&seq, p, k, m, true);
                let rc_mz = minimizer_of_mode(&rc, seq.len() - k - p, k, m, true);
                assert_eq!(fwd_mz, rc_mz, "seed={seed} p={p}");
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrips_kmers() {
        let seq = b"ACGTACGGTTACGGATTACAGGCATTGACCAT";
        for &(k, m) in &[(5usize, 2usize), (9, 4), (13, 7)] {
            for canonical in [false, true] {
                let mode =
                    if canonical { CanonicalMode::Canonical } else { CanonicalMode::Forward };
                let mut buf = Vec::new();
                for_each_span(seq, k, m, canonical, |_, span| pack_span(&mut buf, span));
                let mut got: Vec<u64> = Vec::new();
                let sum = unpack_spans(&buf, k, canonical, &mut got).unwrap();
                got.sort_unstable();
                let mut want: Vec<u64> = kmers_of_read::<Kmer64>(seq, k, mode).collect();
                want.sort_unstable();
                assert_eq!(got, want, "k={k} m={m} canonical={canonical}");
                assert_eq!(sum.kmers as usize, want.len());
            }
        }
    }

    #[test]
    fn unpack_rejects_malformed_buffers() {
        let mut buf = Vec::new();
        pack_span(&mut buf, b"ACGTACG");
        let mut out: Vec<u64> = Vec::new();
        // Truncated header.
        assert_eq!(
            unpack_spans::<u64>(&buf[..1], 5, false, &mut out),
            Err(SpanDecodeError::TruncatedHeader { have: 1 })
        );
        // Truncated bases.
        assert_eq!(
            unpack_spans::<u64>(&buf[..3], 5, false, &mut out),
            Err(SpanDecodeError::TruncatedBases { need: 2, have: 1 })
        );
        // Span shorter than k (also catches a zeroed length prefix).
        assert_eq!(
            unpack_spans::<u64>(&buf, 8, false, &mut out),
            Err(SpanDecodeError::TooShort { len: 7, k: 8 })
        );
        let zero = [0u8, 0u8];
        assert_eq!(
            unpack_spans::<u64>(&zero, 5, false, &mut out),
            Err(SpanDecodeError::TooShort { len: 0, k: 5 })
        );
    }

    #[test]
    fn long_spans_split_at_wire_cap_without_losing_kmers() {
        // A poly-A read long enough to exceed the u16 record cap is one
        // super-k-mer; for_each_span must chunk it with k-1 overlap so the
        // expanded k-mer multiset is unchanged.
        let k = 9;
        let m = 4;
        let seq = vec![b'A'; SPAN_MAX_BASES + 1000];
        let mut buf = Vec::new();
        let mut chunks = 0usize;
        for_each_span(&seq, k, m, false, |_, span| {
            assert!(span.len() <= SPAN_MAX_BASES);
            chunks += 1;
            pack_span(&mut buf, span);
        });
        assert!(chunks >= 2, "cap never split the span");
        let mut got: Vec<u64> = Vec::new();
        let sum = unpack_spans(&buf, k, false, &mut got).unwrap();
        assert_eq!(sum.kmers as usize, seq.len() - k + 1);
        assert_eq!(got.len(), seq.len() - k + 1);
        assert!(got.iter().all(|&w| w == 0), "poly-A k-mers pack to zero");
    }
}
