//! k-mer spectrum analytics.
//!
//! The paper's introduction motivates k-mer counting through its
//! consumers: assemblers estimate coverage and genome size from the count
//! histogram, error correctors pick solid/weak thresholds from its valley
//! ([2], [12]). This module implements those classic analyses over the
//! `{k-mer, count}` output every engine produces.
//!
//! The model: genomic k-mers appear ≈ `Poisson(λ)` times where `λ` is the
//! k-mer coverage; error k-mers pile up at count 1–2. The spectrum is
//! bimodal — an error spike at the origin, a genomic peak near `λ` — and
//! the valley between them is the natural error threshold.

use crate::counts::{count_spectrum, KmerCount};
use crate::kmer::KmerWord;

/// Summary statistics extracted from a count spectrum.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumSummary {
    /// Histogram: `spectrum[c]` = distinct k-mers with count `c`
    /// (index 0 unused; last bucket is overflow).
    pub spectrum: Vec<u64>,
    /// The valley between the error spike and the genomic peak, if the
    /// spectrum is bimodal.
    pub valley: Option<usize>,
    /// The genomic coverage peak (mode above the valley), if present.
    pub peak: Option<usize>,
    /// Estimated k-mer coverage `λ` (position of the genomic peak).
    pub coverage: Option<f64>,
    /// Estimated number of distinct genomic k-mers ≈ genome size for
    /// `k`-mers (total solid k-mer mass / coverage).
    pub genome_kmers: Option<f64>,
    /// Fraction of distinct k-mers classified as errors (below valley).
    pub error_kmer_fraction: f64,
}

/// Analyzes a histogram. `max_count` bounds the spectrum's explicit
/// buckets; counts beyond it land in the overflow bucket.
pub fn analyze<W: KmerWord>(counts: &[KmerCount<W>], max_count: usize) -> SpectrumSummary {
    assert!(max_count >= 4, "need a few buckets to find structure");
    let spectrum = count_spectrum(counts, max_count);

    // Valley: first local minimum after the initial descent from the
    // error spike. Scan from count 2 to the last explicit bucket.
    let mut valley = None;
    for c in 2..max_count {
        if spectrum[c] <= spectrum[c - 1] && spectrum[c] <= spectrum[c + 1] {
            // Require a genuine rise afterwards (not a flat tail).
            if spectrum[c + 1..=max_count].iter().any(|&v| v > spectrum[c]) {
                valley = Some(c);
                break;
            }
        }
    }

    // Peak: mode strictly above the valley.
    let peak = valley.and_then(|v| {
        let (best, best_n) = spectrum
            .iter()
            .enumerate()
            .take(max_count + 1)
            .skip(v + 1)
            .max_by_key(|&(_, &n)| n)?;
        (*best_n > 0).then_some(best)
    });

    let coverage = peak.map(|p| p as f64);

    // Solid mass: total occurrences above the valley.
    let genome_kmers = match (valley, coverage) {
        (Some(v), Some(cov)) if cov > 0.0 => {
            let solid_mass: f64 = counts
                .iter()
                .filter(|c| (c.count as usize) >= v)
                .map(|c| c.count as f64)
                .sum();
            Some(solid_mass / cov)
        }
        _ => None,
    };

    let error_kmers = match valley {
        Some(v) => counts.iter().filter(|c| (c.count as usize) < v).count(),
        None => 0,
    };
    let error_kmer_fraction = if counts.is_empty() {
        0.0
    } else {
        error_kmers as f64 / counts.len() as f64
    };

    SpectrumSummary {
        spectrum,
        valley,
        peak,
        coverage,
        genome_kmers,
        error_kmer_fraction,
    }
}

/// Converts k-mer coverage to base coverage:
/// `C_base = C_kmer · m / (m − k + 1)` for read length `m`.
pub fn base_coverage(kmer_coverage: f64, read_len: usize, k: usize) -> f64 {
    assert!(k >= 1 && read_len >= k);
    kmer_coverage * read_len as f64 / (read_len - k + 1) as f64
}

/// Estimates the per-base error rate from the error-k-mer fraction: a
/// substitution in the middle of a read damages up to `k` k-mers, so with
/// `E` error k-mers out of `N · λ` total sampled positions,
/// `rate ≈ E / (k · total_kmers)`.
pub fn error_rate_estimate(summary: &SpectrumSummary, k: usize, total_kmers: u64) -> Option<f64> {
    let v = summary.valley?;
    let error_occurrences: u64 = summary.spectrum[1..v]
        .iter()
        .enumerate()
        .map(|(i, &n)| (i as u64 + 1) * n)
        .sum();
    if total_kmers == 0 {
        return None;
    }
    Some(error_occurrences as f64 / (k as f64 * total_kmers as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic bimodal histogram: `errors` singletons and
    /// `genomic` k-mers at counts around `cov`.
    fn bimodal(errors: u64, genomic: u64, cov: u32) -> Vec<KmerCount<u64>> {
        let mut out = Vec::new();
        let mut key = 0u64;
        for _ in 0..errors {
            out.push(KmerCount::new(key, 1));
            key += 1;
        }
        for i in 0..genomic {
            // Spread counts cov-1, cov, cov+1 around the peak.
            let c = cov as i64 + (i % 3) as i64 - 1;
            out.push(KmerCount::new(key, c.max(1) as u32));
            key += 1;
        }
        out
    }

    #[test]
    fn finds_valley_and_peak() {
        let counts = bimodal(5_000, 2_000, 30);
        let s = analyze(&counts, 60);
        let v = s.valley.expect("valley");
        assert!(v > 1 && v < 29, "valley at {v}");
        assert_eq!(s.peak, Some(30));
        assert!((s.coverage.unwrap() - 30.0).abs() < 1.0);
    }

    #[test]
    fn genome_size_estimate_is_close() {
        let counts = bimodal(3_000, 10_000, 40);
        let s = analyze(&counts, 80);
        let est = s.genome_kmers.expect("estimate");
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.1,
            "estimated {est} genomic k-mers"
        );
    }

    #[test]
    fn error_fraction_reflects_singletons() {
        let counts = bimodal(8_000, 2_000, 25);
        let s = analyze(&counts, 50);
        assert!((s.error_kmer_fraction - 0.8).abs() < 0.05);
    }

    #[test]
    fn unimodal_spectrum_has_no_valley() {
        // All singletons (e.g. 1x coverage): nothing to separate.
        let counts: Vec<KmerCount<u64>> =
            (0..1000).map(|i| KmerCount::new(i, 1)).collect();
        let s = analyze(&counts, 20);
        assert_eq!(s.valley, None);
        assert_eq!(s.coverage, None);
        assert_eq!(s.error_kmer_fraction, 0.0);
    }

    #[test]
    fn base_coverage_conversion() {
        // m = 150, k = 31: factor 150/120 = 1.25.
        assert!((base_coverage(40.0, 150, 31) - 50.0).abs() < 1e-9);
        assert!((base_coverage(10.0, 100, 1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_on_simulated_reads() {
        use crate::extract::{kmers_of_read, CanonicalMode};
        use std::collections::HashMap;
        // Hand-rolled workload: fixed genome string repeated via reads.
        let genome: Vec<u8> = (0..2_000u64)
            .map(|i| b"ACGT"[(crate::hash::splitmix64(i) % 4) as usize])
            .collect();
        let k = 15;
        let m = 80;
        let cov = 30;
        let n_reads = cov * genome.len() / m;
        let mut hist: HashMap<u64, u32> = HashMap::new();
        let mut state = 7u64;
        for _ in 0..n_reads {
            state = crate::hash::splitmix64(state);
            let start = (state % (genome.len() as u64 - m as u64)) as usize;
            for w in kmers_of_read::<u64>(&genome[start..start + m], k, CanonicalMode::Forward) {
                *hist.entry(w).or_default() += 1;
            }
        }
        let counts: Vec<KmerCount<u64>> =
            hist.into_iter().map(|(w, c)| KmerCount::new(w, c)).collect();
        let s = analyze(&counts, 100);
        // Error-free reads: the spectrum may be unimodal (no valley) or
        // the estimated coverage lands near the k-mer coverage.
        if let Some(cov_est) = s.coverage {
            let expect = cov as f64 * (m - k + 1) as f64 / m as f64;
            assert!(
                (cov_est - expect).abs() / expect < 0.5,
                "estimated {cov_est}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn error_rate_estimate_sane() {
        let counts = bimodal(6_000, 2_000, 30);
        let s = analyze(&counts, 60);
        let total: u64 = counts.iter().map(|c| c.count as u64).sum();
        let rate = error_rate_estimate(&s, 21, total).expect("rate");
        assert!(rate > 0.0 && rate < 0.05, "rate {rate}");
    }
}
