//! The `{k-mer, count}` output representation shared by all engines.
//!
//! Every counting engine in the workspace — serial Algorithm 1, the BSP
//! baselines, and DAKC itself — produces an ordered array of
//! [`KmerCount`] records (the paper's result type `C`). Keeping the output
//! type identical across engines lets the integration tests assert bitwise
//! agreement between them.


use crate::kmer::KmerWord;

/// One histogram entry: a k-mer and its frequency in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KmerCount<W> {
    /// The packed k-mer word.
    pub kmer: W,
    /// Number of occurrences (paper counts from 1 to the maximum supported
    /// count; we use the full `u32` range, saturating).
    pub count: u32,
}

impl<W: KmerWord> KmerCount<W> {
    /// Creates a new entry.
    #[inline]
    pub fn new(kmer: W, count: u32) -> Self {
        Self { kmer, count }
    }
}

/// Merges two *sorted* count arrays into one sorted array, summing counts of
/// equal k-mers (saturating). Used when an engine accumulates partial
/// histograms (e.g. the L3 heavy-hitter path delivers pre-accumulated
/// pairs).
pub fn merge_sorted_counts<W: KmerWord>(
    a: &[KmerCount<W>],
    b: &[KmerCount<W>],
) -> Vec<KmerCount<W>> {
    debug_assert!(is_sorted_strict(a), "left input not strictly sorted");
    debug_assert!(is_sorted_strict(b), "right input not strictly sorted");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].kmer.cmp(&b[j].kmer) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(KmerCount::new(
                    a[i].kmer,
                    a[i].count.saturating_add(b[j].count),
                ));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// `true` if entries are strictly increasing by k-mer (no duplicates).
pub fn is_sorted_strict<W: KmerWord>(counts: &[KmerCount<W>]) -> bool {
    counts.windows(2).all(|w| w[0].kmer < w[1].kmer)
}

/// Total number of k-mer occurrences a histogram accounts for.
pub fn total_occurrences<W: KmerWord>(counts: &[KmerCount<W>]) -> u64 {
    counts.iter().map(|c| c.count as u64).sum()
}

/// Builds a histogram-of-counts: `result[c]` = number of distinct k-mers
/// occurring exactly `c` times (index 0 unused). This is the classic k-mer
/// spectrum used by assemblers for coverage estimation, capped at
/// `max_count` with an overflow bucket at the end.
pub fn count_spectrum<W: KmerWord>(counts: &[KmerCount<W>], max_count: usize) -> Vec<u64> {
    let mut spectrum = vec![0u64; max_count + 2];
    for c in counts {
        let idx = (c.count as usize).min(max_count + 1);
        spectrum[idx] += 1;
    }
    spectrum
}

/// Magic header of the binary counts format (`DAKC` + version byte).
const BINARY_MAGIC: [u8; 5] = *b"DAKC1";

/// Writes a histogram in the compact binary format: a 5-byte magic, a
/// 1-byte word width, a u64 record count, then `{kmer, count}` records in
/// little-endian. Pipelines that re-read counts (error correction,
/// assembly) prefer this over TSV: 12 bytes per record instead of ~36.
pub fn write_binary<W: KmerWord>(
    out: &mut dyn std::io::Write,
    counts: &[KmerCount<W>],
) -> std::io::Result<()> {
    let wb = (W::BITS / 8) as u8;
    out.write_all(&BINARY_MAGIC)?;
    out.write_all(&[wb])?;
    out.write_all(&(counts.len() as u64).to_le_bytes())?;
    for c in counts {
        out.write_all(&c.kmer.to_u128().to_le_bytes()[..wb as usize])?;
        out.write_all(&c.count.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a histogram written by [`write_binary`].
///
/// Fails if the magic, version or word width do not match `W`.
pub fn read_binary<W: KmerWord>(
    input: &mut dyn std::io::Read,
) -> std::io::Result<Vec<KmerCount<W>>> {
    use std::io::{Error, ErrorKind};
    let mut header = [0u8; 6];
    input.read_exact(&mut header)?;
    if header[..5] != BINARY_MAGIC {
        return Err(Error::new(ErrorKind::InvalidData, "bad magic"));
    }
    let wb = header[5] as usize;
    if wb != (W::BITS / 8) as usize {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("word width {wb} does not match the requested type"),
        ));
    }
    let mut len_bytes = [0u8; 8];
    input.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    let mut rec = vec![0u8; wb + 4];
    for _ in 0..len {
        input.read_exact(&mut rec)?;
        let mut padded = [0u8; 16];
        padded[..wb].copy_from_slice(&rec[..wb]);
        let kmer = W::from_u128(u128::from_le_bytes(padded));
        let count = u32::from_le_bytes(rec[wb..wb + 4].try_into().expect("count"));
        out.push(KmerCount::new(kmer, count));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kc(kmer: u64, count: u32) -> KmerCount<u64> {
        KmerCount::new(kmer, count)
    }

    #[test]
    fn binary_round_trip_u64() {
        let counts = vec![kc(1, 2), kc(0xDEAD_BEEF, 7), kc(u64::MAX, u32::MAX)];
        let mut buf = Vec::new();
        write_binary(&mut buf, &counts).unwrap();
        assert_eq!(buf.len(), 6 + 8 + 3 * 12);
        let back: Vec<KmerCount<u64>> = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back, counts);
    }

    #[test]
    fn binary_round_trip_u128() {
        let counts = vec![KmerCount::new((3u128 << 100) | 9, 5)];
        let mut buf = Vec::new();
        write_binary(&mut buf, &counts).unwrap();
        let back: Vec<KmerCount<u128>> = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back, counts);
    }

    #[test]
    fn binary_rejects_wrong_width_and_magic() {
        let counts = vec![kc(1, 1)];
        let mut buf = Vec::new();
        write_binary(&mut buf, &counts).unwrap();
        assert!(read_binary::<u128>(&mut buf.as_slice()).is_err());
        buf[0] = b'X';
        assert!(read_binary::<u64>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn binary_empty_histogram() {
        let mut buf = Vec::new();
        write_binary::<u64>(&mut buf, &[]).unwrap();
        let back: Vec<KmerCount<u64>> = read_binary(&mut buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn merge_disjoint() {
        let a = vec![kc(1, 2), kc(5, 1)];
        let b = vec![kc(3, 4)];
        assert_eq!(merge_sorted_counts(&a, &b), vec![kc(1, 2), kc(3, 4), kc(5, 1)]);
    }

    #[test]
    fn merge_sums_equal_keys() {
        let a = vec![kc(1, 2), kc(3, 1)];
        let b = vec![kc(3, 4), kc(9, 9)];
        assert_eq!(merge_sorted_counts(&a, &b), vec![kc(1, 2), kc(3, 5), kc(9, 9)]);
    }

    #[test]
    fn merge_with_empty() {
        let a = vec![kc(1, 1)];
        assert_eq!(merge_sorted_counts(&a, &[]), a);
        assert_eq!(merge_sorted_counts(&[], &a), a);
    }

    #[test]
    fn merge_saturates() {
        let a = vec![kc(1, u32::MAX)];
        let b = vec![kc(1, 5)];
        assert_eq!(merge_sorted_counts(&a, &b), vec![kc(1, u32::MAX)]);
    }

    #[test]
    fn sorted_strict_detects_order_and_dups() {
        assert!(is_sorted_strict(&[kc(1, 1), kc(2, 1)]));
        assert!(!is_sorted_strict(&[kc(2, 1), kc(1, 1)]));
        assert!(!is_sorted_strict(&[kc(1, 1), kc(1, 2)]));
        assert!(is_sorted_strict::<u64>(&[]));
    }

    #[test]
    fn totals_and_spectrum() {
        let counts = vec![kc(1, 1), kc(2, 3), kc(3, 1), kc(4, 100)];
        assert_eq!(total_occurrences(&counts), 105);
        let spec = count_spectrum(&counts, 5);
        assert_eq!(spec[1], 2); // two singletons
        assert_eq!(spec[3], 1);
        assert_eq!(spec[6], 1); // overflow bucket
    }
}
