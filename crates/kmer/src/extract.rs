//! k-mer extraction from reads.
//!
//! Implements the parse loop of Algorithms 1–3: build the first k-mer with
//! `GetFirstKmer`, then roll one base at a time. A read of `m` bases yields
//! `m - k + 1` k-mers (when every base is a valid DNA character).
//!
//! Real sequencing data contains ambiguity codes (`N`); on encountering a
//! non-ACGT byte the rolling window resets, so no emitted k-mer spans an
//! invalid base — the behaviour of every production counter.

use crate::encode::ENCODE_TABLE;
use crate::kmer::KmerWord;

/// Whether extraction emits forward k-mers (the paper's Algorithm 1) or
/// canonical k-mers (strand-neutral, the KMC3 convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CanonicalMode {
    /// Emit the k-mer exactly as read (paper default).
    #[default]
    Forward,
    /// Emit `min(kmer, revcomp(kmer))`.
    Canonical,
}

/// Iterator over the k-mers of one read. Created by [`kmers_of_read`].
#[derive(Debug, Clone)]
pub struct KmerIter<'a, W: KmerWord> {
    seq: &'a [u8],
    k: usize,
    mode: CanonicalMode,
    /// Next byte of `seq` to consume.
    pos: usize,
    /// Number of valid bases currently in the rolling window (≤ k).
    filled: usize,
    word: W,
}

impl<'a, W: KmerWord> Iterator for KmerIter<'a, W> {
    type Item = W;

    #[inline]
    fn next(&mut self) -> Option<W> {
        while self.pos < self.seq.len() {
            let code = ENCODE_TABLE[self.seq[self.pos] as usize];
            self.pos += 1;
            if code == crate::encode::INVALID_CODE {
                // Ambiguity code: restart the window after it.
                self.filled = 0;
                self.word = W::zero();
                continue;
            }
            self.word = self.word.push_base(self.k, code);
            self.filled = (self.filled + 1).min(self.k);
            if self.filled == self.k {
                return Some(match self.mode {
                    CanonicalMode::Forward => self.word,
                    CanonicalMode::Canonical => self.word.canonical(self.k),
                });
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Each remaining byte can complete at most one window; an `N` can
        // void everything, so the lower bound is 0.
        (0, Some(self.seq.len() - self.pos))
    }
}

/// Returns an iterator over all k-mers of `seq`, resetting across non-ACGT
/// bytes.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `W::MAX_K`.
///
/// # Examples
///
/// ```
/// use dakc_kmer::{kmers_of_read, CanonicalMode, Kmer64, KmerWord};
/// let kmers: Vec<Kmer64> = kmers_of_read(b"ACGTA", 3, CanonicalMode::Forward).collect();
/// assert_eq!(kmers.len(), 3); // ACG, CGT, GTA
/// assert_eq!(kmers[0].to_dna_string(3), "ACG");
/// ```
pub fn kmers_of_read<W: KmerWord>(seq: &[u8], k: usize, mode: CanonicalMode) -> KmerIter<'_, W> {
    assert!(
        (1..=W::MAX_K).contains(&k),
        "k = {k} out of range 1..={}",
        W::MAX_K
    );
    KmerIter {
        seq,
        k,
        mode,
        pos: 0,
        filled: 0,
        word: W::zero(),
    }
}

/// Counts the k-mers a read would yield without materializing them
/// (`m - k + 1` per maximal ACGT run of length `m ≥ k`).
pub fn kmer_count_of_read(seq: &[u8], k: usize) -> usize {
    let mut total = 0usize;
    let mut run = 0usize;
    for &b in seq {
        if crate::encode::is_dna_base(b) {
            run += 1;
            if run >= k {
                total += 1;
            }
        } else {
            run = 0;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::Kmer64;

    fn strs(seq: &[u8], k: usize, mode: CanonicalMode) -> Vec<String> {
        kmers_of_read::<Kmer64>(seq, k, mode)
            .map(|w| w.to_dna_string(k))
            .collect()
    }

    #[test]
    fn forward_extraction_matches_sliding_window() {
        let got = strs(b"ACGTAC", 3, CanonicalMode::Forward);
        assert_eq!(got, vec!["ACG", "CGT", "GTA", "TAC"]);
    }

    #[test]
    fn yields_m_minus_k_plus_1() {
        let seq = b"ACGTACGTACGTACGT";
        for k in 1..=seq.len() {
            let n = kmers_of_read::<Kmer64>(seq, k, CanonicalMode::Forward).count();
            assert_eq!(n, seq.len() - k + 1, "k = {k}");
            assert_eq!(kmer_count_of_read(seq, k), n, "count helper, k = {k}");
        }
    }

    #[test]
    fn short_read_yields_nothing() {
        assert!(strs(b"AC", 3, CanonicalMode::Forward).is_empty());
        assert_eq!(kmer_count_of_read(b"AC", 3), 0);
    }

    #[test]
    fn n_resets_window() {
        // "ACGNTACG": the N voids windows spanning it ("CGN", "GNT", "NTA").
        let got = strs(b"ACGNTACG", 3, CanonicalMode::Forward);
        assert_eq!(got, vec!["ACG", "TAC", "ACG"]);
        assert_eq!(kmer_count_of_read(b"ACGNTACG", 3), 3);
    }

    #[test]
    fn all_invalid_yields_nothing() {
        assert!(strs(b"NNNNNN", 2, CanonicalMode::Forward).is_empty());
    }

    #[test]
    fn canonical_mode_is_strand_neutral() {
        let fwd = strs(b"GGGCCATT", 4, CanonicalMode::Canonical);
        // Reverse complement of the read.
        let rc: Vec<u8> = b"GGGCCATT"
            .iter()
            .rev()
            .map(|&b| crate::encode::complement_base(b).unwrap())
            .collect();
        let mut rev = strs(&rc, 4, CanonicalMode::Canonical);
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(strs(b"acgt", 2, CanonicalMode::Forward), vec!["AC", "CG", "GT"]);
    }

    #[test]
    fn kmer128_extraction_for_large_k() {
        let seq = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"; // 40 bases
        let k = 36;
        let got: Vec<String> = kmers_of_read::<u128>(seq, k, CanonicalMode::Forward)
            .map(|w| w.to_dna_string(k))
            .collect();
        assert_eq!(got.len(), seq.len() - k + 1);
        assert_eq!(got[0].as_bytes(), &seq[..k]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_too_large_panics() {
        let _ = kmers_of_read::<Kmer64>(b"ACGT", 33, CanonicalMode::Forward);
    }
}
