//! k-mer extraction from reads.
//!
//! Implements the parse loop of Algorithms 1–3: build the first k-mer with
//! `GetFirstKmer`, then roll one base at a time. A read of `m` bases yields
//! `m - k + 1` k-mers (when every base is a valid DNA character).
//!
//! Real sequencing data contains ambiguity codes (`N`); on encountering a
//! non-ACGT byte the rolling window resets, so no emitted k-mer spans an
//! invalid base — the behaviour of every production counter.

use crate::encode::ENCODE_TABLE;
use crate::kmer::KmerWord;

/// Whether extraction emits forward k-mers (the paper's Algorithm 1) or
/// canonical k-mers (strand-neutral, the KMC3 convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CanonicalMode {
    /// Emit the k-mer exactly as read (paper default).
    #[default]
    Forward,
    /// Emit `min(kmer, revcomp(kmer))`.
    Canonical,
}

/// Iterator over the k-mers of one read. Created by [`kmers_of_read`].
///
/// In [`CanonicalMode::Canonical`] the reverse-complement word is
/// maintained incrementally alongside the forward word
/// ([`KmerWord::push_base_rc`]), so each emitted canonical k-mer costs one
/// `min` instead of a full [`KmerWord::revcomp`] bit-reversal.
#[derive(Debug, Clone)]
pub struct KmerIter<'a, W: KmerWord> {
    seq: &'a [u8],
    k: usize,
    mode: CanonicalMode,
    /// Next byte of `seq` to consume.
    pos: usize,
    /// Number of valid bases currently in the rolling window (≤ k).
    filled: usize,
    word: W,
    /// Rolling reverse complement of `word`; only maintained (and only
    /// valid once `filled == k`) in canonical mode.
    rc: W,
}

impl<'a, W: KmerWord> Iterator for KmerIter<'a, W> {
    type Item = W;

    #[inline]
    fn next(&mut self) -> Option<W> {
        while self.pos < self.seq.len() {
            let code = ENCODE_TABLE[self.seq[self.pos] as usize];
            self.pos += 1;
            if code == crate::encode::INVALID_CODE {
                // Ambiguity code: restart the window after it.
                self.filled = 0;
                self.word = W::zero();
                self.rc = W::zero();
                continue;
            }
            self.word = self.word.push_base(self.k, code);
            if self.mode == CanonicalMode::Canonical {
                self.rc = self.rc.push_base_rc(self.k, code);
            }
            self.filled = (self.filled + 1).min(self.k);
            if self.filled == self.k {
                return Some(match self.mode {
                    CanonicalMode::Forward => self.word,
                    CanonicalMode::Canonical => self.word.min(self.rc),
                });
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Each remaining byte can complete at most one window; an `N` can
        // void everything, so the lower bound is 0.
        (0, Some(self.seq.len() - self.pos))
    }
}

/// Returns an iterator over all k-mers of `seq`, resetting across non-ACGT
/// bytes.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `W::MAX_K`.
///
/// # Examples
///
/// ```
/// use dakc_kmer::{kmers_of_read, CanonicalMode, Kmer64, KmerWord};
/// let kmers: Vec<Kmer64> = kmers_of_read(b"ACGTA", 3, CanonicalMode::Forward).collect();
/// assert_eq!(kmers.len(), 3); // ACG, CGT, GTA
/// assert_eq!(kmers[0].to_dna_string(3), "ACG");
/// ```
pub fn kmers_of_read<W: KmerWord>(seq: &[u8], k: usize, mode: CanonicalMode) -> KmerIter<'_, W> {
    assert!(
        (1..=W::MAX_K).contains(&k),
        "k = {k} out of range 1..={}",
        W::MAX_K
    );
    KmerIter {
        seq,
        k,
        mode,
        pos: 0,
        filled: 0,
        word: W::zero(),
        rc: W::zero(),
    }
}

/// Batch extraction: calls `emit` once per k-mer of `seq`, in read order,
/// with the same reset-on-`N` semantics as [`kmers_of_read`].
///
/// This is the hot-path entry used by the threaded engine's phase 1: the
/// emit closure pushes straight into the per-owner route lanes, so there is
/// no per-k-mer iterator state machine between extraction and routing, and
/// the per-mode dispatch happens once per read instead of once per k-mer.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `W::MAX_K`.
#[inline]
pub fn extract_into<W: KmerWord>(
    seq: &[u8],
    k: usize,
    mode: CanonicalMode,
    mut emit: impl FnMut(W),
) {
    assert!(
        (1..=W::MAX_K).contains(&k),
        "k = {k} out of range 1..={}",
        W::MAX_K
    );
    let mut word = W::zero();
    let mut filled = 0usize;
    match mode {
        CanonicalMode::Forward => {
            for &b in seq {
                let code = ENCODE_TABLE[b as usize];
                if code == crate::encode::INVALID_CODE {
                    filled = 0;
                    word = W::zero();
                    continue;
                }
                word = word.push_base(k, code);
                filled += 1;
                if filled >= k {
                    emit(word);
                }
            }
        }
        CanonicalMode::Canonical => {
            let mut rc = W::zero();
            for &b in seq {
                let code = ENCODE_TABLE[b as usize];
                if code == crate::encode::INVALID_CODE {
                    filled = 0;
                    word = W::zero();
                    rc = W::zero();
                    continue;
                }
                word = word.push_base(k, code);
                rc = rc.push_base_rc(k, code);
                filled += 1;
                if filled >= k {
                    emit(word.min(rc));
                }
            }
        }
    }
}

/// Counts the k-mers a read would yield without materializing them
/// (`m - k + 1` per maximal ACGT run of length `m ≥ k`).
pub fn kmer_count_of_read(seq: &[u8], k: usize) -> usize {
    let mut total = 0usize;
    let mut run = 0usize;
    for &b in seq {
        if crate::encode::is_dna_base(b) {
            run += 1;
            if run >= k {
                total += 1;
            }
        } else {
            run = 0;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmer::Kmer64;

    fn strs(seq: &[u8], k: usize, mode: CanonicalMode) -> Vec<String> {
        kmers_of_read::<Kmer64>(seq, k, mode)
            .map(|w| w.to_dna_string(k))
            .collect()
    }

    #[test]
    fn forward_extraction_matches_sliding_window() {
        let got = strs(b"ACGTAC", 3, CanonicalMode::Forward);
        assert_eq!(got, vec!["ACG", "CGT", "GTA", "TAC"]);
    }

    #[test]
    fn yields_m_minus_k_plus_1() {
        let seq = b"ACGTACGTACGTACGT";
        for k in 1..=seq.len() {
            let n = kmers_of_read::<Kmer64>(seq, k, CanonicalMode::Forward).count();
            assert_eq!(n, seq.len() - k + 1, "k = {k}");
            assert_eq!(kmer_count_of_read(seq, k), n, "count helper, k = {k}");
        }
    }

    #[test]
    fn short_read_yields_nothing() {
        assert!(strs(b"AC", 3, CanonicalMode::Forward).is_empty());
        assert_eq!(kmer_count_of_read(b"AC", 3), 0);
    }

    #[test]
    fn n_resets_window() {
        // "ACGNTACG": the N voids windows spanning it ("CGN", "GNT", "NTA").
        let got = strs(b"ACGNTACG", 3, CanonicalMode::Forward);
        assert_eq!(got, vec!["ACG", "TAC", "ACG"]);
        assert_eq!(kmer_count_of_read(b"ACGNTACG", 3), 3);
    }

    #[test]
    fn all_invalid_yields_nothing() {
        assert!(strs(b"NNNNNN", 2, CanonicalMode::Forward).is_empty());
    }

    #[test]
    fn canonical_mode_is_strand_neutral() {
        let fwd = strs(b"GGGCCATT", 4, CanonicalMode::Canonical);
        // Reverse complement of the read.
        let rc: Vec<u8> = b"GGGCCATT"
            .iter()
            .rev()
            .map(|&b| crate::encode::complement_base(b).unwrap())
            .collect();
        let mut rev = strs(&rc, 4, CanonicalMode::Canonical);
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(strs(b"acgt", 2, CanonicalMode::Forward), vec!["AC", "CG", "GT"]);
    }

    #[test]
    fn kmer128_extraction_for_large_k() {
        let seq = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"; // 40 bases
        let k = 36;
        let got: Vec<String> = kmers_of_read::<u128>(seq, k, CanonicalMode::Forward)
            .map(|w| w.to_dna_string(k))
            .collect();
        assert_eq!(got.len(), seq.len() - k + 1);
        assert_eq!(got[0].as_bytes(), &seq[..k]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_too_large_panics() {
        let _ = kmers_of_read::<Kmer64>(b"ACGT", 33, CanonicalMode::Forward);
    }

    fn collect_into(seq: &[u8], k: usize, mode: CanonicalMode) -> Vec<Kmer64> {
        let mut v = Vec::new();
        extract_into::<Kmer64>(seq, k, mode, |w| v.push(w));
        v
    }

    #[test]
    fn extract_into_matches_iterator() {
        for seq in [
            b"ACGTACGTACGT".as_slice(),
            b"ACGNTACGNNGGGCCATTACGT",
            b"NNN",
            b"",
            b"acgtACGT",
        ] {
            for k in [1usize, 3, 5, 11] {
                for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
                    let want: Vec<Kmer64> = kmers_of_read(seq, k, mode).collect();
                    assert_eq!(collect_into(seq, k, mode), want, "k={k} mode={mode:?}");
                }
            }
        }
    }

    #[test]
    fn rolling_canonical_matches_full_revcomp() {
        // The O(1)-per-base rolling min must agree with the definitional
        // canonical(k) at every position, including across N resets.
        let seq = b"GGGCCATTNACGTTGCAGTACGGTAGATTACA";
        for k in [2usize, 7, 13] {
            let fwd: Vec<Kmer64> = kmers_of_read(seq, k, CanonicalMode::Forward).collect();
            let can: Vec<Kmer64> = kmers_of_read(seq, k, CanonicalMode::Canonical).collect();
            assert_eq!(can.len(), fwd.len());
            for (w, c) in fwd.iter().zip(&can) {
                assert_eq!(*c, w.canonical(k), "k={k}");
            }
        }
    }
}
