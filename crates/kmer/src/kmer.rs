//! Packed k-mer words.
//!
//! Following the paper (§V, Phase 1), a k-mer of length `k` is stored in a
//! `2^ceil(log2(2k))`-bit unsigned integer: `u64` for `k ≤ 32` (the paper's
//! production configuration, `k = 31` in all experiments) and `u128` for
//! `k ≤ 64` (the 128-bit extension the paper lists as future work, which we
//! implement).
//!
//! The first base of the k-mer occupies the *most significant* 2-bit slot of
//! the low `2k` bits, so appending the next base of a read is the shift-or
//! step of Algorithm 1:
//!
//! ```text
//! kmer ← (kmer << 2) OR Encode(R[i][j])      (masked to 2k bits)
//! ```
//!
//! [`KmerWord`] abstracts over the two widths so extraction, aggregation and
//! sorting are written once. It is implemented for the plain integer types —
//! k-mers travel through every aggregation layer as raw words, exactly as in
//! the reference implementation, so wrapping them in a newtype would only
//! add conversion friction at the wire boundary. [`Kmer64`]/[`Kmer128`] are
//! documentation aliases.

use std::fmt::Debug;
use std::hash::Hash;

use crate::encode::{decode_base, encode_base};

/// A k-mer packed into a `u64` (`k ≤ 32`).
pub type Kmer64 = u64;

/// A k-mer packed into a `u128` (`33 ≤ k ≤ 64`); the paper's future-work
/// extension for long-read workloads.
pub type Kmer128 = u128;

/// Operations every packed k-mer word supports.
///
/// All methods take `k` explicitly: the word itself does not carry its
/// length (it is a raw integer on the wire).
pub trait KmerWord:
    Copy + Ord + Eq + Hash + Debug + Send + Sync + Default + 'static
{
    /// Largest supported k-mer length for this width.
    const MAX_K: usize;

    /// Width of the word in bits.
    const BITS: u32;

    /// The all-zero word (`AAA…A`).
    fn zero() -> Self;

    /// Bit mask selecting the low `2k` bits.
    fn mask(k: usize) -> Self;

    /// Appends one 2-bit base code on the right, dropping the leftmost base
    /// (the rolling update of Algorithms 1–3).
    fn push_base(self, k: usize, code: u8) -> Self;

    /// The reverse-complement mirror of [`KmerWord::push_base`]: treating
    /// `self` as the reverse complement of the current window, produces the
    /// reverse complement of the window after `push_base(k, code)` — the
    /// complement of `code` enters at the *most significant* base slot while
    /// the least significant base falls off.
    ///
    /// Maintaining this word incrementally makes canonical extraction an
    /// O(1) `min` per base instead of a full [`KmerWord::revcomp`] per
    /// emitted k-mer.
    fn push_base_rc(self, k: usize, code: u8) -> Self;

    /// The 2-bit code of base `i` (0-based from the start of the k-mer).
    fn base_at(self, k: usize, i: usize) -> u8;

    /// Reverse complement of the k-mer.
    fn revcomp(self, k: usize) -> Self;

    /// Canonical form: the lexicographic minimum of the k-mer and its
    /// reverse complement. Strand-neutral counting (the convention of KMC3
    /// and most production counters) counts canonical k-mers.
    #[inline]
    fn canonical(self, k: usize) -> Self {
        self.min(self.revcomp(k))
    }

    /// Widens to `u128` (lossless for both widths); used by generic sorting
    /// and hashing helpers.
    fn to_u128(self) -> u128;

    /// Narrows from `u128`; the inverse of [`KmerWord::to_u128`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the value does not fit.
    fn from_u128(v: u128) -> Self;

    /// A well-mixed 64-bit hash of the word, used for owner-PE assignment
    /// and minimizer ordering.
    fn hash64(self) -> u64;

    /// Builds a k-mer from the first `k` bases of an ASCII sequence
    /// (`GetFirstKmer` of Algorithm 1). Returns `None` if the window is
    /// shorter than `k` or contains a non-ACGT byte.
    fn from_dna(seq: &[u8], k: usize) -> Option<Self> {
        assert!(
            (1..=Self::MAX_K).contains(&k),
            "k = {k} out of range 1..={}",
            Self::MAX_K
        );
        if seq.len() < k {
            return None;
        }
        let mut w = Self::zero();
        for &b in &seq[..k] {
            w = w.push_base(k, encode_base(b)?);
        }
        Some(w)
    }

    /// Decodes back to an ASCII string of length `k`.
    fn to_dna_string(self, k: usize) -> String {
        let bytes: Vec<u8> = (0..k).map(|i| decode_base(self.base_at(k, i))).collect();
        String::from_utf8(bytes).expect("decode_base yields ASCII")
    }
}

impl KmerWord for u64 {
    const MAX_K: usize = 32;
    const BITS: u32 = 64;

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn mask(k: usize) -> Self {
        debug_assert!((1..=32).contains(&k));
        if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        }
    }

    #[inline]
    fn push_base(self, k: usize, code: u8) -> Self {
        debug_assert!(code <= 3);
        ((self << 2) | code as u64) & Self::mask(k)
    }

    #[inline]
    fn push_base_rc(self, k: usize, code: u8) -> Self {
        debug_assert!(code <= 3);
        (self >> 2) | (((3 - code) as u64) << (2 * (k - 1)))
    }

    #[inline]
    fn base_at(self, k: usize, i: usize) -> u8 {
        debug_assert!(i < k);
        ((self >> (2 * (k - 1 - i))) & 0b11) as u8
    }

    #[inline]
    fn revcomp(self, k: usize) -> Self {
        // Complement every base (each 2-bit group c becomes 3-c)…
        let mut x = !self;
        // …then reverse the order of the 2-bit groups across the word…
        x = ((x >> 2) & 0x3333_3333_3333_3333) | ((x & 0x3333_3333_3333_3333) << 2);
        x = ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F) | ((x & 0x0F0F_0F0F_0F0F_0F0F) << 4);
        x = x.swap_bytes();
        // …and drop the groups that were above the 2k-bit window.
        x >> (64 - 2 * k as u32)
    }

    #[inline]
    fn to_u128(self) -> u128 {
        self as u128
    }

    #[inline]
    fn from_u128(v: u128) -> Self {
        debug_assert!(v <= u64::MAX as u128);
        v as u64
    }

    #[inline]
    fn hash64(self) -> u64 {
        crate::hash::splitmix64(self)
    }
}

impl KmerWord for u128 {
    const MAX_K: usize = 64;
    const BITS: u32 = 128;

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn mask(k: usize) -> Self {
        debug_assert!((1..=64).contains(&k));
        if k == 64 {
            u128::MAX
        } else {
            (1u128 << (2 * k)) - 1
        }
    }

    #[inline]
    fn push_base(self, k: usize, code: u8) -> Self {
        debug_assert!(code <= 3);
        ((self << 2) | code as u128) & Self::mask(k)
    }

    #[inline]
    fn push_base_rc(self, k: usize, code: u8) -> Self {
        debug_assert!(code <= 3);
        (self >> 2) | (((3 - code) as u128) << (2 * (k - 1)))
    }

    #[inline]
    fn base_at(self, k: usize, i: usize) -> u8 {
        debug_assert!(i < k);
        ((self >> (2 * (k - 1 - i))) & 0b11) as u8
    }

    #[inline]
    fn revcomp(self, k: usize) -> Self {
        let mut x = !self;
        const M2: u128 = 0x3333_3333_3333_3333_3333_3333_3333_3333;
        const M4: u128 = 0x0F0F_0F0F_0F0F_0F0F_0F0F_0F0F_0F0F_0F0F;
        x = ((x >> 2) & M2) | ((x & M2) << 2);
        x = ((x >> 4) & M4) | ((x & M4) << 4);
        x = x.swap_bytes();
        x >> (128 - 2 * k as u32)
    }

    #[inline]
    fn to_u128(self) -> u128 {
        self
    }

    #[inline]
    fn from_u128(v: u128) -> Self {
        v
    }

    #[inline]
    fn hash64(self) -> u64 {
        // Mix the two halves so both contribute to owner assignment.
        crate::hash::splitmix64((self as u64) ^ crate::hash::splitmix64((self >> 64) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn km(s: &str) -> u64 {
        u64::from_dna(s.as_bytes(), s.len()).unwrap()
    }

    #[test]
    fn from_dna_packs_first_base_high() {
        // "CA": C=1 then A=0 -> 0b0100.
        assert_eq!(km("CA"), 0b0100);
        assert_eq!(km("AC"), 0b0001);
    }

    #[test]
    fn from_dna_rejects_short_or_invalid() {
        assert_eq!(u64::from_dna(b"AC", 3), None);
        assert_eq!(u64::from_dna(b"ANC", 3), None);
    }

    #[test]
    fn push_base_rolls_window() {
        let k = 3;
        let w = km("ACG");
        let rolled = w.push_base(k, encode_base(b'T').unwrap());
        assert_eq!(rolled, km("CGT"));
    }

    #[test]
    fn push_base_rc_tracks_revcomp() {
        // Rolling rc over a window must equal revcomp of the rolled window.
        let k = 7;
        let seq = b"GATTACAGGGCCATTACGT";
        let mut w = 0u64;
        let mut rc = 0u64;
        for (i, &b) in seq.iter().enumerate() {
            let code = encode_base(b).unwrap();
            w = w.push_base(k, code);
            rc = rc.push_base_rc(k, code);
            if i + 1 >= k {
                assert_eq!(rc, w.revcomp(k), "pos {i}");
            }
        }
    }

    #[test]
    fn push_base_rc_tracks_revcomp_u128_full_width() {
        let k = 64; // full-width window: no masking slack
        let seq: Vec<u8> = b"ACGTTGCAGTACGGTA".repeat(6);
        let mut w = 0u128;
        let mut rc = 0u128;
        for (i, &b) in seq.iter().enumerate() {
            let code = encode_base(b).unwrap();
            w = w.push_base(k, code);
            rc = rc.push_base_rc(k, code);
            if i + 1 >= k {
                assert_eq!(rc, w.revcomp(k), "pos {i}");
            }
        }
    }

    #[test]
    fn base_at_round_trips() {
        let s = "ACGTTGCAGTACGGTA";
        let w = km(s);
        for (i, &b) in s.as_bytes().iter().enumerate() {
            assert_eq!(decode_base(w.base_at(s.len(), i)), b);
        }
    }

    #[test]
    fn to_dna_string_round_trips() {
        for s in ["A", "ACGT", "TTTTTTTTTTTTTTTT", "GATTACAGATTACAGATTACAGATTACAGATT"] {
            assert_eq!(km(s).to_dna_string(s.len()), s);
        }
    }

    #[test]
    fn revcomp_known_values() {
        assert_eq!(km("ACGT").revcomp(4), km("ACGT")); // palindrome
        assert_eq!(km("AAAA").revcomp(4), km("TTTT"));
        assert_eq!(km("ACG").revcomp(3), km("CGT"));
        assert_eq!(km("GATTACA").revcomp(7), km("TGTAATC"));
    }

    #[test]
    fn revcomp_is_involution_u64() {
        for s in ["A", "AC", "GATTACA", "ACGTACGTACGTACGTACGTACGTACGTACGT"] {
            let k = s.len();
            let w = km(s);
            assert_eq!(w.revcomp(k).revcomp(k), w, "k = {k}");
        }
    }

    #[test]
    fn revcomp_k32_full_width() {
        let s = "ACGTACGTACGTACGTACGTACGTACGTACGA";
        assert_eq!(s.len(), 32);
        let w = km(s);
        assert_eq!(w.revcomp(32).to_dna_string(32), "TCGTACGTACGTACGTACGTACGTACGTACGT");
    }

    #[test]
    fn canonical_is_strand_neutral() {
        let k = 5;
        let w = km("GGGCC");
        assert_eq!(w.canonical(k), w.revcomp(k).canonical(k));
        assert!(w.canonical(k) <= w);
    }

    #[test]
    fn kmer128_from_dna_and_back() {
        let s = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"; // k = 48 > 32
        let k = s.len();
        let w = u128::from_dna(s.as_bytes(), k).unwrap();
        assert_eq!(w.to_dna_string(k), s);
    }

    #[test]
    fn kmer128_revcomp_involution() {
        let s = "GATTACAGATTACAGATTACAGATTACAGATTACAGATTAC";
        let k = s.len();
        let w = u128::from_dna(s.as_bytes(), k).unwrap();
        assert_eq!(w.revcomp(k).revcomp(k), w);
    }

    #[test]
    fn kmer128_matches_kmer64_on_small_k() {
        let s = "GATTACAGATTACA";
        let k = s.len();
        let w64 = u64::from_dna(s.as_bytes(), k).unwrap();
        let w128 = u128::from_dna(s.as_bytes(), k).unwrap();
        assert_eq!(w64 as u128, w128);
        assert_eq!(w64.revcomp(k) as u128, w128.revcomp(k));
    }

    #[test]
    fn mask_widths() {
        assert_eq!(u64::mask(1), 0b11);
        assert_eq!(u64::mask(32), u64::MAX);
        assert_eq!(u128::mask(64), u128::MAX);
        assert_eq!(u128::mask(32), (1u128 << 64) - 1);
    }

    #[test]
    fn u128_round_trip_through_u128() {
        let v = 0x0123_4567_89AB_CDEF_u64;
        assert_eq!(u64::from_u128(v.to_u128()), v);
        let w = (7u128 << 100) | 42;
        assert_eq!(u128::from_u128(w.to_u128()), w);
    }
}
