//! # dakc-kmer — the k-mer substrate for DAKC
//!
//! This crate provides everything the k-mer counting algorithms need to go
//! from raw DNA text to fixed-width integer k-mers:
//!
//! * [`encode`] — 2-bit DNA base encoding (`A=0, C=1, G=2, T=3`) and the
//!   ASCII lookup tables used by every parser in the workspace.
//! * [`kmer`] — packed k-mer words ([`Kmer64`] for `k ≤ 32`, [`Kmer128`] for
//!   `k ≤ 64`, the paper's named future-work extension), rolling updates,
//!   reverse complements and canonicalization.
//! * [`extract`] — iterators producing every k-mer of a read, exactly as
//!   Algorithm 1's `GetFirstKmer` + shift loop does, with handling for
//!   non-ACGT characters.
//! * [`hash`] — the `OwnerPE` mapping that assigns each distinct k-mer to
//!   the processing element responsible for counting it.
//! * [`minimizer`] — minimizer / super-k-mer segmentation, the binning
//!   scheme used by the KMC3-style shared-memory baseline.
//! * [`counts`] — the `{k-mer, count}` output representation shared by all
//!   engines, plus helpers for comparing results across engines.
//!
//! The types here are deliberately small `Copy` integers: the paper stores a
//! k-mer of length `k` in a `2^ceil(log2(2k))`-bit unsigned integer and all
//! communication layers move them as raw words.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bloom;
pub mod counts;
pub mod encode;
pub mod extract;
pub mod hash;
pub mod kmer;
pub mod minimizer;
pub mod spectrum;

pub use bloom::BloomFilter;
pub use counts::KmerCount;
pub use encode::{complement_code, decode_base, encode_base, is_dna_base};
pub use extract::{extract_into, kmers_of_read, CanonicalMode, KmerIter};
pub use hash::{owner_pe, splitmix64};
pub use kmer::{Kmer128, Kmer64, KmerWord};
pub use minimizer::{
    for_each_span, minimizer_of, minimizer_of_mode, pack_span, packed_span_bytes, super_kmers,
    super_kmers_mode, unpack_spans, MinimizerWindow, SpanDecodeError, SpanSummary, SuperKmer,
    SPAN_MAX_BASES,
};
pub use spectrum::{analyze as analyze_spectrum, SpectrumSummary};
