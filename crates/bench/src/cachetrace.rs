//! Cache-trace drivers for the Fig 3 model-validation experiment.
//!
//! The paper validates its cache-miss model against PAPI last-level-cache
//! counters. Our stand-in is [`dakc_sim::CacheSim`]: we replay the memory
//! access pattern of one PE's phase-1 and phase-2 work through a
//! set-associative LRU cache and count misses.
//!
//! * **Phase 1** streams the read bytes (region A) and appends packed
//!   k-mers to the output array (region B). The model (Eq 10) predicts the
//!   same two streams under an *optimal* replacement policy, so measured
//!   LRU misses land slightly above prediction — the relationship Fig 3
//!   reports.
//! * **Phase 2** replays the byte-wise MSD radix recursion the hybrid
//!   sorter performs: at each level a histogram read pass and a scatter
//!   pass over the level's partition, recursing into 256 sub-buckets until
//!   a bucket falls under the comparison-sort cutoff. Once partitions fit
//!   in cache the recursion stops missing, so measured misses land *below*
//!   the model's worst case of one full stream per key byte (Eq 13) — the
//!   paper's exact observation.

use dakc_sim::CacheSim;

/// Misses for one PE's phase-1 work: parse `input_bytes` of reads and
/// write `kmers × word_bytes` of output.
pub fn phase1_misses(cache: &mut CacheSim, input_bytes: u64, kmers: u64, word_bytes: u64) -> u64 {
    cache.reset_counters();
    let read_base = 0u64;
    let write_base = 1 << 40; // disjoint region
    // Interleaved in reality; the streams are long, so interleaving order
    // barely changes LRU miss counts. Replay them interleaved in chunks to
    // be faithful.
    let out_bytes = kmers * word_bytes;
    let chunk = 4096u64;
    let mut rd = 0u64;
    let mut wr = 0u64;
    while rd < input_bytes || wr < out_bytes {
        let r = chunk.min(input_bytes - rd);
        if r > 0 {
            cache.access_range(read_base + rd, r);
            rd += r;
        }
        // Writes advance proportionally to reads.
        let target = if input_bytes == 0 {
            out_bytes
        } else {
            (rd as f64 / input_bytes as f64 * out_bytes as f64) as u64
        };
        if target > wr {
            cache.access_range(write_base + wr, target - wr);
            wr = target;
        }
    }
    cache.misses()
}

/// Misses for one PE's phase-2 work: byte-wise MSD radix sort of `kmers`
/// keys of `word_bytes` bytes, with a `cutoff`-element comparison
/// fallback (the hybrid sorter's behaviour).
pub fn phase2_misses(cache: &mut CacheSim, kmers: u64, word_bytes: u64, cutoff: u64) -> u64 {
    cache.reset_counters();
    let base_a = 2 << 40;
    let base_b = 3 << 40;
    msd_trace(cache, base_a, base_b, kmers, word_bytes, word_bytes as usize, cutoff);
    cache.misses()
}

/// Recursively replays one MSD level over a partition of `n` keys living
/// at `src`, scattering into `dst`, then recursing into 256 equal
/// sub-buckets (miss counts depend on partition sizes, not key values).
fn msd_trace(
    cache: &mut CacheSim,
    src: u64,
    dst: u64,
    n: u64,
    word_bytes: u64,
    levels_left: usize,
    cutoff: u64,
) {
    if n == 0 || levels_left == 0 {
        return;
    }
    let bytes = n * word_bytes;
    if n <= cutoff {
        // Comparison sort: ~two passes over a tiny (cache-resident) range.
        cache.access_range(src, bytes);
        cache.access_range(src, bytes);
        return;
    }
    // Histogram pass: read the partition.
    cache.access_range(src, bytes);
    // Scatter pass: read again, write to 256 sequential bucket cursors.
    let bucket = n / 256;
    let rem = n % 256;
    let mut read_at = src;
    let mut write_at = dst;
    for b in 0..256u64 {
        let bn = bucket + u64::from(b < rem);
        let bb = bn * word_bytes;
        cache.access_range(read_at, bb);
        cache.access_range(write_at, bb);
        read_at += bb;
        write_at += bb;
    }
    // Recurse (buckets are contiguous in dst; roles of src/dst swap).
    let mut at = 0u64;
    for b in 0..256u64 {
        let bn = bucket + u64::from(b < rem);
        if bn > 1 {
            msd_trace(
                cache,
                dst + at,
                src + at,
                bn,
                word_bytes,
                levels_left - 1,
                cutoff,
            );
        }
        at += bn * word_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CacheSim {
        CacheSim::new(1 << 20, 64, 16) // 1 MiB, 16-way
    }

    #[test]
    fn phase1_measured_at_least_model_prediction() {
        let mut c = cache();
        let (input, kmers, wb) = (1_000_000u64, 800_000u64, 8u64);
        let measured = phase1_misses(&mut c, input, kmers, wb);
        let predicted = (1 + input / 64) + (1 + kmers * wb / 64);
        // Allow the model's two "+1" stream constants as slack.
        assert!(
            measured + 4 >= predicted,
            "LRU can't beat OPT: measured {measured} < predicted {predicted}"
        );
        // …but should be in the same ballpark (within 2×).
        assert!(measured < 2 * predicted, "measured {measured} vs {predicted}");
    }

    #[test]
    fn phase2_measured_below_worst_case_model() {
        let mut c = cache();
        let (kmers, wb) = (400_000u64, 8u64);
        let measured = phase2_misses(&mut c, kmers, wb, 128);
        let worst_case = (1 + kmers * wb / 64) * wb; // Eq 13 bracket
        assert!(
            measured < worst_case,
            "hybrid recursion should beat the 8-pass worst case: {measured} vs {worst_case}"
        );
        assert!(measured > 0);
    }

    #[test]
    fn phase2_misses_grow_with_n() {
        let mut c = cache();
        let small = phase2_misses(&mut c, 50_000, 8, 128);
        let mut c = cache();
        let large = phase2_misses(&mut c, 500_000, 8, 128);
        assert!(large > 5 * small);
    }

    #[test]
    fn empty_workloads() {
        let mut c = cache();
        assert_eq!(phase1_misses(&mut c, 0, 0, 8), 0);
        assert_eq!(phase2_misses(&mut c, 0, 8, 128), 0);
    }
}
