//! Fig 9: single-node shared-memory comparison — DAKC vs KMC3, HySortK
//! and PakMan\* ports, wall-clock on real OS threads.
//!
//! The paper runs one AMD node (128 cores) and one Intel node (24 cores);
//! we run the thread counts this host supports (capped at 24, the Intel
//! node's width) and report the best of three runs, as the paper does.
//! All four engines run identical forward-counting configurations so their
//! outputs are bit-identical (asserted).

use dakc::threaded::count_kmers_threaded;
use dakc_baselines::{count_kmers_bsp_threaded, count_kmers_kmc3, Kmc3Config, SortBackend};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_kmer::CanonicalMode;
use std::time::Duration;

fn best_of_3(mut f: impl FnMut() -> Duration) -> Duration {
    (0..3).map(|_| f()).min().expect("three runs")
}

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Fig 9 — single shared-memory node: DAKC vs KMC3 / HySortK / PakMan*",
        "paper Fig 9",
    );

    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let threads = avail.min(24);
    println!("host threads: {threads} (of {avail} available; Intel node width is 24)\n");

    let dataset_names: Vec<&str> = if args.quick {
        vec!["Synthetic 24", "SRR29163078"]
    } else {
        vec![
            "Synthetic 24",
            "Synthetic 26",
            "SRR29163078",
            "SRR28892189",
            "SRR28206931",
        ]
    };

    let k = 31;
    let mut art = dakc_bench::Artifact::new("fig09_shared_memory", &args);
    let mut t = Table::new(&[
        "Dataset",
        "DAKC",
        "KMC3",
        "PakMan*",
        "HySortK",
        "vsKMC3",
        "vsPakMan*",
        "vsHySortK",
    ]);

    for name in dataset_names {
        let (spec, reads) = dakc_bench::load_dataset(name, &args);
        // L3 pays off whenever duplicate density is high: known
        // heavy-hitter genomes AND very deep coverage (the bacterial
        // datasets run at >200x, so every window is full of repeats).
        let l3 = (spec.needs_l3() || spec.coverage() > 100.0).then_some(4096);

        let dakc_t = best_of_3(|| {
            count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, threads, l3).elapsed
        });
        let kmc3_t = best_of_3(|| {
            count_kmers_kmc3::<u64>(&reads, &Kmc3Config::defaults(k, threads)).elapsed
        });
        let pakman_t = best_of_3(|| {
            count_kmers_bsp_threaded::<u64>(
                &reads,
                k,
                CanonicalMode::Forward,
                threads,
                1 << 16,
                SortBackend::RadixHybrid,
            )
            .elapsed
        });
        // On one node non-blocking ≈ blocking (§VI-E); HySortK's port
        // differs by its larger batching.
        let hysortk_t = best_of_3(|| {
            count_kmers_bsp_threaded::<u64>(
                &reads,
                k,
                CanonicalMode::Forward,
                threads,
                1 << 18,
                SortBackend::RadixHybrid,
            )
            .elapsed
        });

        // Correctness cross-check once per dataset.
        let a = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, threads, l3);
        let b = count_kmers_kmc3::<u64>(&reads, &Kmc3Config::defaults(k, threads));
        assert_eq!(a.counts, b.counts, "engines disagree on {name}");

        let r = |x: Duration| x.as_secs_f64() / dakc_t.as_secs_f64();
        t.row(vec![
            spec.name.to_string(),
            fmt_secs(dakc_t.as_secs_f64()),
            fmt_secs(kmc3_t.as_secs_f64()),
            fmt_secs(pakman_t.as_secs_f64()),
            fmt_secs(hysortk_t.as_secs_f64()),
            format!("{:.2}x", r(kmc3_t)),
            format!("{:.2}x", r(pakman_t)),
            format!("{:.2}x", r(hysortk_t)),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "paper shape: DAKC ≈2× faster than KMC3 and ≈2× faster than the\n\
         distributed baselines run inside one node."
    );
}
