//! Fig 7: strong scaling of DAKC vs HySortK vs PakMan\* on synthetic and
//! real(-surrogate) genomes, up to 256 nodes.
//!
//! As in the paper (§VI-C), the L3 aggregation layer is enabled only for
//! the datasets known to carry high-frequency k-mers (Human,
//! *T. aestivum*). A missing data point means the configuration ran out
//! of memory.

use dakc::{count_kmers_sim, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Fig 7 — strong scaling on synthetic and real genomes",
        "paper Fig 7",
    );

    let dataset_names: Vec<&str> = if args.quick {
        vec!["Synthetic 29", "SRR28206931"]
    } else {
        vec![
            "Synthetic 27",
            "Synthetic 29",
            "Synthetic 31",
            "SRR29163078",
            "SRR26113965",
            "SRR28206931",
            "SRR29871703",
        ]
    };
    // At 2^-12 input scale the strong-scaling plateau arrives by ~64 nodes
    // (see EXPERIMENTS.md); the default sweep stops there. Pass --full for
    // the paper's complete 8–256 range.
    let full = std::env::args().any(|a| a == "--full");
    let node_counts: Vec<usize> = if args.quick {
        vec![4, 16, 64]
    } else if full {
        vec![8, 16, 32, 64, 128, 256]
    } else {
        vec![4, 8, 16, 32, 64]
    };

    let k = 31;
    let mut art = dakc_bench::Artifact::new("fig07_strong_scaling", &args);
    let mut t = Table::new(&[
        "Dataset",
        "Nodes",
        "DAKC",
        "HySortK",
        "PakMan*",
        "HySortK/DAKC",
        "PakMan*/DAKC",
    ]);

    let mut speedup_h = Vec::new();
    let mut speedup_p = Vec::new();

    for name in &dataset_names {
        let (spec, reads) = dakc_bench::load_dataset(name, &args);
        eprintln!(
            "# {name}: {} reads, {} bases{}",
            reads.len(),
            reads.total_bases(),
            if spec.needs_l3() { " (L3 enabled)" } else { "" }
        );
        for &nodes in &node_counts {
            let mut machine = MachineConfig::phoenix_intel(nodes);
            machine.pes_per_node = args.pes_per_node;

            let mut cfg = DakcConfig::scaled_defaults(k);
            if spec.needs_l3() {
                cfg = cfg.with_l3();
            }
            let dakc_run = count_kmers_sim::<u64>(&reads, &cfg, &machine).expect("dakc");
            art.metrics().merge(&dakc_run.report.metrics);
            let hysortk = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::hysortk(k), &machine)
                .expect("hysortk");
            let pakman = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_star(k), &machine)
                .expect("pakman*");
            assert_eq!(dakc_run.counts, pakman.counts, "{name}@{nodes}");

            let d = dakc_run.report.total_time;
            let h = hysortk.report.total_time;
            let p = pakman.report.total_time;
            speedup_h.push(h / d);
            speedup_p.push(p / d);
            t.row(vec![
                spec.name.to_string(),
                nodes.to_string(),
                fmt_secs(d),
                fmt_secs(h),
                fmt_secs(p),
                format!("{:.2}x", h / d),
                format!("{:.2}x", p / d),
            ]);
        }
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average speedup of DAKC: {:.2}x over HySortK (paper: 2.34x), {:.2}x over PakMan* (paper: 2.81x)",
        mean(&speedup_h),
        mean(&speedup_p)
    );
    println!(
        "§VI-E check: HySortK over PakMan* averages {:.2}x (paper: 1.17x — nonblocking\n\
         collectives alone do not resolve the synchronization cost).",
        mean(&speedup_p) / mean(&speedup_h)
    );
}
