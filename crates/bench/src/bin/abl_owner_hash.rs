//! Ablation (DESIGN.md §5): the owner-PE hash must mix well, because DNA
//! k-mers are far from uniform integers. Compares the SplitMix64 owner
//! assignment against naive `kmer mod P` on uniform and heavy-hitter
//! genomes, reporting the owner-side load imbalance each induces.

use dakc_bench::{BenchArgs, Table};
use dakc_kmer::{kmers_of_read, owner_pe, CanonicalMode};

fn imbalance(loads: &[u64]) -> (f64, f64) {
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().expect("nonempty") as f64;
    let cv = {
        let var = loads
            .iter()
            .map(|&l| (l as f64 - mean).powi(2))
            .sum::<f64>()
            / loads.len() as f64;
        var.sqrt() / mean
    };
    (max / mean, cv)
}

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Ablation — owner-PE hash quality vs load balance",
        "DESIGN.md §5 (supports the paper's load-balance assumption 1)",
    );

    let k = 31;
    let p = 192; // 8 nodes x 24 cores
    let mut art = dakc_bench::Artifact::new("abl_owner_hash", &args);
    let mut t = Table::new(&[
        "Dataset",
        "Owner assignment",
        "max/mean",
        "coeff-of-variation",
    ]);
    for name in ["Synthetic 26", "SRR28206931"] {
        let (spec, reads) = dakc_bench::load_dataset(name, &args);
        let mut mixed = vec![0u64; p];
        let mut low = vec![0u64; p];
        let mut top = vec![0u64; p];
        for r in reads.iter() {
            for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                mixed[owner_pe(w, p)] += 1;
                low[(w % p as u64) as usize] += 1;
                // The padding pitfall: a k = 31 k-mer occupies 62 bits of
                // its u64 word, so the top byte is nearly constant.
                top[((w >> 56) % p as u64) as usize] += 1;
            }
        }
        for (hash, loads) in [
            ("splitmix64", &mixed),
            ("low bits (mod P)", &low),
            ("top word byte", &top),
        ] {
            let (mm, cv) = imbalance(loads);
            t.row(vec![
                spec.name.to_string(),
                hash.to_string(),
                format!("{mm:.3}"),
                format!("{cv:.3}"),
            ]);
        }
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "reading the table: on uniform-random genomes the low bits of a k-mer are\n\
         themselves uniform, so `mod P` happens to work — but the equally\n\
         plausible-looking top-byte reduction collapses onto a handful of PEs\n\
         because k = 31 words are zero-padded above bit 62. The full-avalanche\n\
         mix is the only choice that is robust to how the key was packed; the\n\
         residual Human imbalance under splitmix64 is genuine heavy-hitter mass,\n\
         which only the L3 layer can relieve."
    );
}
