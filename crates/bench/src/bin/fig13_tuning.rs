//! Fig 13: tuning the application-layer parameters — C2 (packing factor)
//! and C3 (heavy-hitter buffer length) — as slowdown relative to the
//! defaults (C2 = 32, C3 = 10⁴ at paper scale).

use dakc::{count_kmers_sim, DakcConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner("Fig 13 — C2 and C3 tuning", "paper Fig 13a/13b");

    let nodes = 16usize;
    let k = 31;
    let mut machine = MachineConfig::phoenix_intel(nodes);
    machine.pes_per_node = args.pes_per_node;

    // --- Fig 13a: C2 sweep on a uniform genome ---
    let (_, reads) = dakc_bench::load_dataset(if args.quick { "Synthetic 27" } else { "Synthetic 29" }, &args);
    let default_cfg = DakcConfig::scaled_defaults(k);
    let t_default = count_kmers_sim::<u64>(&reads, &default_cfg, &machine)
        .expect("default")
        .report
        .total_time;

    println!("-- Fig 13a: C2 sweep (default C2 = 32) --");
    let mut art = dakc_bench::Artifact::new("fig13_tuning", &args);
    let mut t = Table::new(&["C2", "Time", "Slowdown vs C2=32"]);
    let c2s: Vec<usize> = if args.quick { vec![2, 8, 32] } else { vec![2, 4, 8, 16, 32, 64, 128] };
    for c2 in c2s {
        let mut cfg = default_cfg.clone();
        cfg.c2 = c2;
        let time = count_kmers_sim::<u64>(&reads, &cfg, &machine)
            .expect("c2 run")
            .report
            .total_time;
        t.row(vec![
            c2.to_string(),
            fmt_secs(time),
            format!("{:.2}x", time / t_default),
        ]);
    }
    t.print();
    art.table(&t);
    println!("paper shape: flat for C2 >= 8, degrades for C2 <= 4.\n");

    // --- Fig 13b: C3 sweep on the skewed Human surrogate ---
    let (_, reads) = dakc_bench::load_dataset("SRR28206931", &args);
    let base_cfg = DakcConfig::scaled_defaults(k).with_l3();
    let t_default = count_kmers_sim::<u64>(&reads, &base_cfg, &machine)
        .expect("default c3")
        .report
        .total_time;

    println!(
        "-- Fig 13b: C3 sweep on the Human surrogate (default C3 = {}) --",
        base_cfg.c3
    );
    let mut t = Table::new(&["C3", "Time", "Slowdown vs default"]);
    let c3s: Vec<usize> = if args.quick {
        vec![128, 2048, 262_144]
    } else {
        vec![32, 128, 512, 2_048, 16_384, 131_072, 1_048_576]
    };
    for c3 in c3s {
        let mut cfg = base_cfg.clone();
        cfg.c3 = c3;
        let time = count_kmers_sim::<u64>(&reads, &cfg, &machine)
            .expect("c3 run")
            .report
            .total_time;
        t.row(vec![
            c3.to_string(),
            fmt_secs(time),
            format!("{:.2}x", time / t_default),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "paper shape: flat over the middle decades (10^3-10^6 at paper scale);\n\
         very low C3 fails to compress the heavy hitters. The paper's high-end\n\
         penalty (the L3 sort spilling out of cache) is not reachable at 2^-12\n\
         input scale: per-PE data runs out before the buffer can outgrow the\n\
         cache share (see EXPERIMENTS.md)."
    );
}
