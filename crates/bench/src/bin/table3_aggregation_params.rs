//! Table III: the aggregation parameters and their memory per PE.

use dakc::DakcConfig;
use dakc_bench::{fmt_bytes, BenchArgs, Table};
use dakc_conveyors::{Protocol, Topology};

fn main() {
    let args = BenchArgs::from_env();
    args.banner("Table III — Aggregation Parameters", "paper Table III");

    let cfg = DakcConfig::paper_defaults(31);
    // The paper quotes per-PE numbers on the full machine: 256 nodes × 24.
    let p = 256 * 24;

    let mut art = dakc_bench::Artifact::new("table3_aggregation_params", &args);
    let mut t = Table::new(&[
        "Scope",
        "Layer",
        "Buffers/PE",
        "Elements/Buffer",
        "Memory/PE",
    ]);
    for proto in [Protocol::OneD, Protocol::TwoD, Protocol::ThreeD] {
        let topo = Topology::new(proto, p);
        let bufs = topo.out_degree(0);
        t.row(vec![
            "Runtime".into(),
            format!("L0 ({proto:?})"),
            format!("{bufs} (P^{:.2})", proto.exponent()),
            "40 KiB each".into(),
            fmt_bytes(bufs as u64 * cfg.c0_bytes as u64),
        ]);
    }
    t.row(vec![
        "Runtime".into(),
        "L1".into(),
        "1".into(),
        format!("C1 = {}", cfg.c1_packets),
        fmt_bytes(cfg.c1_packets as u64 * (cfg.normal_payload::<u64>() as u64 + 24)),
    ]);
    let l2_bytes = p as u64 * (cfg.c2 as u64 * 8 + (cfg.c2 as u64 / 2) * 12);
    t.row(vec![
        "Application".into(),
        "L2".into(),
        format!("{p} (P)"),
        format!("C2 = {}", cfg.c2),
        fmt_bytes(l2_bytes),
    ]);
    t.row(vec![
        "Application".into(),
        "L3".into(),
        "1".into(),
        format!("C3 = {}", cfg.c3),
        fmt_bytes(cfg.c3 as u64 * 8),
    ]);
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper reference values: L0 = 40K x P^x B, L1 = 264 KB (C1 = 1024),\n\
         L2 = 264 x P B (C2 = 32), L3 = 80 KB (C3 = 10^4)."
    );
}
