//! Compares two directories of bench artifacts and gates on regressions.
//!
//! CI's performance gate: after re-running the quick harnesses, compare
//! the fresh `results/` against the committed `results/baselines/` and
//! fail when any duration cell got more than `--threshold` times slower.
//!
//! ```text
//! cargo run --release -p dakc-bench --bin compare_artifacts -- \
//!     results/baselines results [--threshold 2.0]
//! ```
//!
//! Exit status: `0` when every matched cell is within the threshold,
//! `1` on regressions or usage/IO errors. Rows present on only one side
//! are reported but do not fail the gate (baselines may cover a subset).

use std::path::Path;

use dakc_bench::compare::compare_dirs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<&str> = Vec::new();
    let mut threshold = 2.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| *t > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --threshold needs a positive number");
                        std::process::exit(1);
                    });
            }
            other => dirs.push(other),
        }
    }
    let [baseline, current] = dirs[..] else {
        eprintln!("usage: compare_artifacts <baseline_dir> <current_dir> [--threshold 2.0]");
        std::process::exit(1);
    };
    let report = match compare_dirs(Path::new(baseline), Path::new(current)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render(threshold));
    let regressions = report.regressions(threshold);
    println!(
        "{} cell(s) compared, {} unmatched, {} regression(s) at {threshold}x",
        report.deltas.len(),
        report.unmatched.len(),
        regressions.len()
    );
    if !regressions.is_empty() {
        std::process::exit(1);
    }
}
