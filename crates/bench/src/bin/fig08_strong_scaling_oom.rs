//! Fig 8: strong scaling on the largest dataset (*Synthetic 32*, 451 GB at
//! paper scale) with per-node memory budgets enforced.
//!
//! The paper's outcome: PakMan\* hits OOM at 16 and 32 nodes; HySortK
//! fails in *every* configuration; DAKC runs everywhere. The budget here
//! is the scaled equivalent of the usable fraction of a 192 GB Phoenix
//! node (the OS, input reads and MPI runtime hold the rest).

use dakc::{count_kmers_sim, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_bench::{fmt_bytes, fmt_secs, BenchArgs, Table};
use dakc_sim::{MachineConfig, SimError};

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Fig 8 — strong scaling on Synthetic 32 with memory budgets",
        "paper Fig 8",
    );

    let (spec, reads) = dakc_bench::load_dataset("Synthetic 32", &args);
    // Usable memory per node: 112 GB of the 192 GB (OS, file buffers for
    // the 451 GB input, and the MPI runtime hold the rest), scaled down
    // with the workload so footprint-vs-budget ratios match paper scale.
    let budget: u64 = (112u64 << 30) >> args.scale_shift;
    println!(
        "dataset: {} — scaled to {} reads / {} bases; node budget {} (scaled 112 GiB usable)\n",
        spec.name,
        reads.len(),
        reads.total_bases(),
        fmt_bytes(budget)
    );

    let node_counts: Vec<usize> = if args.quick {
        vec![16, 64]
    } else {
        vec![16, 32, 64, 128]
    };
    let k = 31;

    let mut art = dakc_bench::Artifact::new("fig08_strong_scaling_oom", &args);
    let mut t = Table::new(&["Nodes", "DAKC", "PakMan*", "HySortK"]);
    for &nodes in &node_counts {
        let mut machine = MachineConfig::phoenix_intel(nodes);
        machine.pes_per_node = args.pes_per_node;
        machine.node_memory = budget;

        let cell = |r: Result<f64, SimError>| match r {
            Ok(secs) => fmt_secs(secs),
            Err(SimError::Oom(_)) => "OOM".to_string(),
            Err(e) => format!("error: {e}"),
        };

        let dakc_res = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine)
            .map(|r| r.report.total_time);
        let pakman_res =
            count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_star(k), &machine)
                .map(|r| r.report.total_time);
        let hysortk_res = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::hysortk(k), &machine)
            .map(|r| r.report.total_time);

        t.row(vec![
            nodes.to_string(),
            cell(dakc_res),
            cell(pakman_res),
            cell(hysortk_res),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: PakMan* OOMs at 16 and 32 nodes; HySortK fails in every\n\
         configuration; DAKC completes everywhere (its in-place phase 2 keeps the\n\
         footprint at ~1x the received data)."
    );
}
