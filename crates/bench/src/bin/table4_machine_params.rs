//! Table IV (machine model parameters) plus the §VII operational-intensity
//! analysis (op-to-byte ratio vs hardware balance).

use dakc_bench::{BenchArgs, Table};
use dakc_model::{balance, Workload};
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Table IV — Model parameters for Phoenix + §VII op-to-byte analysis",
        "paper Table IV, §VII",
    );

    let m = MachineConfig::phoenix_intel(1);
    let mut art = dakc_bench::Artifact::new("table4_machine_params", &args);
    let mut t = Table::new(&["Parameter", "Symbol", "Intel Node"]);
    t.row(vec![
        "Peak INT64".into(),
        "C_node".into(),
        format!("{:.1} GOp/s", m.node_ops_per_sec / 1e9),
    ]);
    t.row(vec![
        "Memory Bandwidth".into(),
        "beta_mem".into(),
        format!("{:.1} GB/s", m.mem_bandwidth / 1e9),
    ]);
    t.row(vec![
        "Fast Memory".into(),
        "Z".into(),
        format!("{} MB", m.cache_bytes >> 20),
    ]);
    t.row(vec![
        "Cacheline size".into(),
        "L".into(),
        format!("{} B", m.line_bytes),
    ]);
    t.row(vec![
        "Link Bandwidth".into(),
        "beta_link".into(),
        format!("{:.1} GB/s", m.link_bandwidth / 1e9),
    ]);
    t.print();
    art.table(&t);

    println!("== §VII operational intensity ==");
    let w = Workload {
        n_reads: 357_913_900,
        read_len: 150,
        k: 31,
    };
    let intensity = balance::op_to_byte_ratio(&w);
    let mut t = Table::new(&["Quantity", "Value", "Paper"]);
    t.row(vec![
        "DAKC op-to-byte (iadd64/B)".into(),
        format!("{intensity:.3}"),
        "~0.12".into(),
    ]);
    t.row(vec![
        "Phoenix CPU balance".into(),
        format!("{:.2}", balance::hardware_balance(121.9e9, 46.9e9)),
        "~2.6".into(),
    ]);
    t.row(vec![
        "NVIDIA H100 balance".into(),
        format!("{:.2}", balance::hardware_balance(27.8e12, 3.35e12)),
        "~8.3".into(),
    ]);
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "conclusion: intensity {:.3} << balance {:.1} — k-mer counting is bandwidth-bound\n\
         on CPUs and would be even more compute-underutilized on GPUs (paper §VII).",
        intensity,
        balance::hardware_balance(121.9e9, 46.9e9)
    );
}
