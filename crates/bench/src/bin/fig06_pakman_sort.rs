//! Fig 6: replacing PakMan's quicksort with radix sort makes its k-mer
//! kernel ≈2× faster — the strengthening that produces PakMan\*.

use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_sim::MachineConfig;

fn main() {
    let mut args = BenchArgs::from_env();
    // The quicksort-vs-radix gap is a compute effect: use the paper's
    // 24 cores/node (per-PE compute share) unless --ppn overrides.
    if args.pes_per_node == BenchArgs::default().pes_per_node {
        args.pes_per_node = 24;
    }
    args.banner(
        "Fig 6 — PakMan (quicksort) vs PakMan* (radix sort)",
        "paper Fig 6",
    );

    let spec = dakc_io::datasets::synthetic(if args.quick { 24 } else { 26 });
    let reads = spec.scaled(args.scale_shift).generate(args.seed);
    println!(
        "dataset: {} (scaled: {} reads, {} bases)\n",
        spec.name,
        reads.len(),
        reads.total_bases()
    );

    let node_counts: &[usize] = if args.quick { &[2, 8] } else { &[1, 2, 4, 8, 16] };
    let mut art = dakc_bench::Artifact::new("fig06_pakman_sort", &args);
    let mut t = Table::new(&["Nodes", "PakMan(qsort)", "PakMan*(radix)", "Speedup"]);
    for &nodes in node_counts {
        let mut machine = MachineConfig::phoenix_intel(nodes);
        machine.pes_per_node = args.pes_per_node;
        let q = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_qsort(31), &machine)
            .expect("qsort run");
        let r = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_star(31), &machine)
            .expect("radix run");
        assert_eq!(q.counts, r.counts, "both backends must agree");
        t.row(vec![
            nodes.to_string(),
            fmt_secs(q.report.total_time),
            fmt_secs(r.report.total_time),
            format!("{:.2}x", q.report.total_time / r.report.total_time),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!("paper shape: radix sort speeds the kernel up by ≈2×.");
}
