//! Extension — distributed-runtime scaling on localhost.
//!
//! Runs the real-transport engine (`dakc-net` loopback mesh: the same
//! `Transport` protocol `dakc launch` drives over TCP, minus socket
//! syscalls) at ranks ∈ {1, 2, 4, 8} and records wall-clock throughput
//! plus the transport's own byte accounting: total frames, per-rank send
//! volume, and termination-detection rounds — for both wire encodings:
//! per-k-mer words (default) and minimizer-routed super-k-mer spans
//! (`--superkmer`, L2.5), plus a minimizer-length sweep at the widest
//! rank count. Output is checked against the serial baseline every run —
//! this harness doubles as a correctness sweep.

use dakc::{count_kmers_loopback, DakcConfig, NetRun};
use dakc_baselines::count_kmers_serial;
use dakc_bench::{fmt_bytes, fmt_secs, BenchArgs, Table};
use dakc_kmer::KmerCount;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Extension — distributed runtime scaling (loopback transport)",
        "tentpole: real multi-process runtime under Conveyor L0",
    );

    let (spec, reads) = dakc_bench::load_dataset("Synthetic 24", &args);
    let k = 31;
    let cfg = DakcConfig::scaled_defaults(k).with_l3();
    let want = count_kmers_serial::<u64>(&reads, k, cfg.canonical, false).counts;
    let total_kmers: u64 = want.iter().map(|c| c.count as u64).sum();
    println!(
        "dataset: {} ({} reads, {} k-mer occurrences, k = {k})\n",
        spec.name,
        reads.len(),
        total_kmers
    );

    let rank_counts: Vec<usize> = if args.quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let sweep_ranks = *rank_counts.last().unwrap();
    let mut art = dakc_bench::Artifact::new("ext_net_scaling", &args);
    let mut t = Table::new(&[
        "ranks",
        "encoding",
        "wall",
        "kmers/s",
        "frames",
        "net bytes",
        "max rank bytes",
        "term rounds",
    ]);

    let check = |run: &NetRun<u64>, want: &[KmerCount<u64>], what: &str| {
        assert_eq!(run.counts, *want, "{what} diverged from serial");
    };
    let row = |t: &mut Table, run: &NetRun<u64>, ranks: usize, encoding: &str| {
        let m = &run.metrics;
        let per_rank: Vec<u64> = (0..ranks)
            .map(|r| m.counter(&format!("net.rank{r}.bytes_sent")))
            .collect();
        t.row(vec![
            ranks.to_string(),
            encoding.to_string(),
            fmt_secs(run.elapsed_s),
            format!("{:.2e}", total_kmers as f64 / run.elapsed_s.max(1e-9)),
            m.counter("net.frames_sent").to_string(),
            fmt_bytes(m.counter("net.bytes_sent")),
            fmt_bytes(per_rank.iter().copied().max().unwrap_or(0)),
            m.counter("net.term_rounds").to_string(),
        ]);
    };

    // Scaling sweep: per-k-mer words vs super-k-mer spans (m = 7) at
    // every rank count. L3 is off in span mode (spans bypass it).
    let sk7 = DakcConfig::scaled_defaults(k).with_superkmer(7);
    for &ranks in &rank_counts {
        let words = count_kmers_loopback::<u64>(&reads, &cfg, ranks).expect("loopback run");
        check(&words, &want, &format!("words ranks={ranks}"));
        row(&mut t, &words, ranks, "words");
        art.metrics().merge(&words.metrics);

        let spans = count_kmers_loopback::<u64>(&reads, &sk7, ranks).expect("superkmer run");
        check(&spans, &want, &format!("superkmer ranks={ranks}"));
        row(&mut t, &spans, ranks, "sk m=7");
        art.metrics().merge(&spans.metrics);

        let (wb, sb) = (
            words.metrics.counter("net.bytes_sent"),
            spans.metrics.counter("net.bytes_sent"),
        );
        println!(
            "ranks={ranks}: bytes on wire {} -> {} ({:.2}x reduction)",
            fmt_bytes(wb),
            fmt_bytes(sb),
            wb as f64 / sb.max(1) as f64
        );
    }

    // Minimizer-length sweep at the widest rank count: shorter m means
    // longer spans (fewer length prefixes, better packing) but a
    // coarser ownership split; longer m the reverse.
    for m_len in [5usize, 9, 11] {
        let cfg_m = DakcConfig::scaled_defaults(k).with_superkmer(m_len);
        let run = count_kmers_loopback::<u64>(&reads, &cfg_m, sweep_ranks).expect("m sweep run");
        check(&run, &want, &format!("superkmer m={m_len} ranks={sweep_ranks}"));
        row(&mut t, &run, sweep_ranks, &format!("sk m={m_len}"));
    }

    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "expected shape: total net bytes are ~flat across ranks (every k-mer\n\
         crosses the wire once; only the self-delivery share shrinks), while\n\
         per-rank send volume drops ~1/ranks. Termination rounds grow mildly\n\
         with ranks. The sk rows ship each base once (2 bits) instead of once\n\
         per covering k-mer (a full word), so their net bytes sit several-fold\n\
         below the words rows at the same rank count, throughput a bit above."
    );
}
