//! Extension — distributed-runtime scaling on localhost.
//!
//! Runs the real-transport engine (`dakc-net` loopback mesh: the same
//! `Transport` protocol `dakc launch` drives over TCP, minus socket
//! syscalls) at ranks ∈ {1, 2, 4, 8} and records wall-clock throughput
//! plus the transport's own byte accounting: total frames, per-rank send
//! volume, and termination-detection rounds. Output is checked against
//! the serial baseline every run — this harness doubles as a correctness
//! sweep.

use dakc::{count_kmers_loopback, DakcConfig};
use dakc_baselines::count_kmers_serial;
use dakc_bench::{fmt_bytes, fmt_secs, BenchArgs, Table};

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Extension — distributed runtime scaling (loopback transport)",
        "tentpole: real multi-process runtime under Conveyor L0",
    );

    let (spec, reads) = dakc_bench::load_dataset("Synthetic 24", &args);
    let k = 31;
    let cfg = DakcConfig::scaled_defaults(k).with_l3();
    let want = count_kmers_serial::<u64>(&reads, k, cfg.canonical, false).counts;
    let total_kmers: u64 = want.iter().map(|c| c.count as u64).sum();
    println!(
        "dataset: {} ({} reads, {} k-mer occurrences, k = {k})\n",
        spec.name,
        reads.len(),
        total_kmers
    );

    let rank_counts: Vec<usize> = if args.quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let mut art = dakc_bench::Artifact::new("ext_net_scaling", &args);
    let mut t = Table::new(&[
        "ranks",
        "wall",
        "kmers/s",
        "frames",
        "net bytes",
        "max rank bytes",
        "term rounds",
    ]);
    for ranks in rank_counts {
        let run = count_kmers_loopback::<u64>(&reads, &cfg, ranks).expect("loopback run");
        assert_eq!(run.counts, want, "loopback ranks={ranks} diverged from serial");
        let m = &run.metrics;
        let per_rank: Vec<u64> = (0..ranks)
            .map(|r| m.counter(&format!("net.rank{r}.bytes_sent")))
            .collect();
        t.row(vec![
            ranks.to_string(),
            fmt_secs(run.elapsed_s),
            format!("{:.2e}", total_kmers as f64 / run.elapsed_s.max(1e-9)),
            m.counter("net.frames_sent").to_string(),
            fmt_bytes(m.counter("net.bytes_sent")),
            fmt_bytes(per_rank.iter().copied().max().unwrap_or(0)),
            m.counter("net.term_rounds").to_string(),
        ]);
        art.metrics().merge(m);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "expected shape: total net bytes are ~flat across ranks (every k-mer\n\
         crosses the wire once; only the self-delivery share shrinks), while\n\
         per-rank send volume drops ~1/ranks. Termination rounds grow mildly\n\
         with ranks — each round is one all-to-all counter exchange."
    );
}
