//! Validates every bench artifact in `results/` against the schema.
//!
//! Used by CI after running a harness: exits non-zero when the directory
//! has no artifacts or any artifact fails [`dakc_bench::artifact::validate`].
//!
//! ```text
//! cargo run --release -p dakc-bench --bin check_artifacts [-- results_dir]
//! ```

use dakc_bench::artifact::validate;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let mut checked = 0usize;
    let mut failed = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {dir}: {e}");
            std::process::exit(1);
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failed += 1;
                continue;
            }
        };
        match validate(&body) {
            Ok(harness) => {
                println!("ok   {} ({harness})", path.display());
                checked += 1;
            }
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} artifact(s) failed validation");
        std::process::exit(1);
    }
    if checked == 0 {
        eprintln!("error: no artifacts found in {dir}");
        std::process::exit(1);
    }
    println!("{checked} artifact(s) valid");
}
