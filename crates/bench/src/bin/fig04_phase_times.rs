//! Fig 4: per-phase execution time — simulator measurement vs the
//! analytical model's Sum and Max variants, on 8 nodes (192 cores).
//!
//! The paper's finding: the model *underestimates* but stays in the same
//! ballpark. The simulator adds what the model ignores — communication
//! software overhead, barrier costs, load imbalance — so measured ≥
//! predicted is the expected relationship here too.

use dakc::{count_kmers_sim, DakcConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_model::{CommModel, Model, Workload};
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Fig 4 — phase times: simulator vs analytical model (8 nodes / 192 cores)",
        "paper Fig 4",
    );

    let nodes = 8usize;
    let machine = MachineConfig::phoenix_intel(nodes);
    let scales: Vec<u32> = if args.quick {
        vec![23, 25]
    } else {
        vec![21, 22, 23, 24, 25, 26, 27]
    };

    let mut art = dakc_bench::Artifact::new("fig04_phase_times", &args);
    let mut t = Table::new(&[
        "Dataset",
        "P1 sim",
        "P1 model(Max)",
        "P1 model(Sum)",
        "P1 sim/Sum",
        "P2 sim",
        "P2 model",
        "P2 sim/model",
    ]);

    for scale in scales {
        let spec = dakc_io::datasets::synthetic(scale);
        let ds = spec.scaled(args.scale_shift);
        let reads = ds.generate(args.seed);
        let cfg = DakcConfig::scaled_defaults(31);
        let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).expect("sim ok");

        let w = Workload {
            n_reads: ds.num_reads as u64,
            read_len: spec.read_len as u64,
            k: 31,
        };
        let model = Model::new(machine.clone(), w);
        let p1_sim = run.report.phase_time.first().copied().unwrap_or(0.0);
        let p2_sim = run.report.phase_time.get(1).copied().unwrap_or(0.0);

        t.row(vec![
            spec.name.to_string(),
            fmt_secs(p1_sim),
            fmt_secs(model.t1(CommModel::Max)),
            fmt_secs(model.t1(CommModel::Sum)),
            format!("{:.2}", p1_sim / model.t1(CommModel::Sum)),
            fmt_secs(p2_sim),
            fmt_secs(model.t2()),
            format!("{:.2}", p2_sim / model.t2()),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: the model underestimates both phases but stays within the\n\
         same ballpark (the paper calls its software near-optimal on this basis)."
    );
}
