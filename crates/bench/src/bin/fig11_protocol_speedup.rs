//! Fig 11: speedup of 2D and 3D Conveyors over 1D — the paper finds 1D is
//! 10–20% faster (so the plotted ratios sit below 1), at the memory cost
//! Fig 2 quantifies.

use dakc::{count_kmers_sim, DakcConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_conveyors::Protocol;
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner("Fig 11 — 2D/3D Conveyors speedup over 1D", "paper Fig 11");

    let dataset_names: Vec<&str> = if args.quick {
        vec!["Synthetic 27"]
    } else {
        vec!["Synthetic 27", "Synthetic 29", "SRR29163078", "SRR26113965"]
    };
    let nodes = 32usize;
    let k = 31;

    let mut art = dakc_bench::Artifact::new("fig11_protocol_speedup", &args);
    let mut t = Table::new(&["Dataset", "1D", "2D", "3D", "2D/1D speedup", "3D/1D speedup"]);
    for name in &dataset_names {
        let (spec, reads) = dakc_bench::load_dataset(name, &args);
        let mut machine = MachineConfig::phoenix_intel(nodes);
        machine.pes_per_node = args.pes_per_node;

        let run = |proto: Protocol| {
            let mut cfg = DakcConfig::scaled_defaults(k);
            cfg.protocol = proto;
            if spec.needs_l3() {
                cfg = cfg.with_l3();
            }
            count_kmers_sim::<u64>(&reads, &cfg, &machine)
                .expect("run")
                .report
                .total_time
        };
        let t1 = run(Protocol::OneD);
        let t2 = run(Protocol::TwoD);
        let t3 = run(Protocol::ThreeD);
        t.row(vec![
            spec.name.to_string(),
            fmt_secs(t1),
            fmt_secs(t2),
            fmt_secs(t3),
            format!("{:.2}", t1 / t2),
            format!("{:.2}", t1 / t3),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: speedups below 1.0 — 1D is 10–20% faster than 2D/3D (no\n\
         relaying, no per-packet routing header), bought with O(P) buffer memory."
    );
}
