//! Fig 2: per-core memory overhead of 1D/2D/3D Conveyors in the
//! *Synthetic 32* strong-scaling configuration.
//!
//! The overhead is the configured L0 send-buffer capacity
//! (`out_degree × 40 KiB`, Table III), which depends only on the PE count
//! and protocol — so this reproduces at full paper scale (24 cores/node,
//! 40 KiB buffers) with no workload needed. A measured column from a live
//! simulator run validates the computed numbers at a small node count.

use dakc_bench::{fmt_bytes, BenchArgs, Table};
use dakc_conveyors::{Protocol, Topology};

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Fig 2 — per-core memory overhead of Conveyors protocols",
        "paper Fig 2 (Synthetic 32 strong scaling)",
    );

    let c0 = 40 * 1024u64; // Table III production buffer size
    let ppn = 24; // full Phoenix nodes for this figure

    let mut art = dakc_bench::Artifact::new("fig02_protocol_memory", &args);
    let mut t = Table::new(&["Nodes", "PEs", "1D/PE", "2D/PE", "3D/PE"]);
    for nodes in [16usize, 32, 64, 128, 256] {
        let p = nodes * ppn;
        let mem = |proto: Protocol| {
            let topo = Topology::new(proto, p);
            fmt_bytes(topo.out_degree(0) as u64 * c0)
        };
        t.row(vec![
            nodes.to_string(),
            p.to_string(),
            mem(Protocol::OneD),
            mem(Protocol::TwoD),
            mem(Protocol::ThreeD),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: 1D grows linearly in P and becomes excessive at high core\n\
         counts (≈240 MiB/PE at 6144 PEs); 2D/3D stay flat-ish (sqrt/cbrt growth).\n\
         A memory-constrained user should fall back to 2D or 3D (paper §IV-F)."
    );
}
