//! Table II: the three Conveyors protocols — topology, memory scaling,
//! hop counts — verified by measurement over the routing implementation.

use dakc_bench::{BenchArgs, Table};
use dakc_conveyors::{Protocol, Topology};

fn main() {
    let args = BenchArgs::from_env();
    args.banner("Table II — Conveyors protocols", "paper Table II");

    let mut art = dakc_bench::Artifact::new("table2_protocols", &args);
    let mut t = Table::new(&[
        "Protocol",
        "Topology",
        "P",
        "Buffers/PE",
        "P^x (expected)",
        "MaxHops(measured)",
        "MeanHops(measured)",
    ]);

    for proto in [Protocol::OneD, Protocol::TwoD, Protocol::ThreeD] {
        for p in [64usize, 1024, 4096] {
            let topo = Topology::new(proto, p);
            // Measure hops over all (src, dst) pairs (sampled for big P).
            // The stride is forced odd so samples don't align with the
            // power-of-two grid sides (which would only visit one column).
            let stride = ((p / 64).max(1)) | 1;
            let mut max_hops = 0usize;
            let mut total = 0usize;
            let mut pairs = 0usize;
            for s in (0..p).step_by(stride) {
                for d in (0..p).step_by(stride) {
                    if s == d {
                        continue;
                    }
                    let h = topo.hops(s, d);
                    max_hops = max_hops.max(h);
                    total += h;
                    pairs += 1;
                }
            }
            let name = match proto {
                Protocol::OneD => "All-Connected",
                Protocol::TwoD => "2D HyperX",
                Protocol::ThreeD => "3D HyperX",
            };
            t.row(vec![
                format!("{proto:?}"),
                name.into(),
                p.to_string(),
                topo.out_degree(0).to_string(),
                format!("{:.0}", (p as f64).powf(proto.exponent())),
                max_hops.to_string(),
                format!("{:.2}", total as f64 / pairs as f64),
            ]);
        }
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "paper: 1D = O(P^2) total memory / 1 hop; 2D = O(P^1.5) / 2 hops; 3D = O(P^4/3) / 3 hops."
    );
}
