//! Extension (paper §VII future work): eliminating the inter-phase
//! barrier by absorbing deliveries into an asynchronous sorted-run store,
//! so sorting overlaps communication. Stock DAKC vs the overlapped engine.

use dakc::{count_kmers_sim, count_kmers_sim_overlap, DakcConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Extension — phase-overlapped DAKC (sorted-run store)",
        "paper §VII future work: \"allow the phases to overlap via a distributed sorted-set\"",
    );

    let (spec, reads) =
        dakc_bench::load_dataset(if args.quick { "Synthetic 27" } else { "Synthetic 29" }, &args);
    println!("dataset: {} ({} reads)\n", spec.name, reads.len());

    let node_counts: Vec<usize> = if args.quick { vec![4, 16] } else { vec![2, 4, 8, 16, 32, 64] };
    let k = 31;

    let mut art = dakc_bench::Artifact::new("ext_overlap_ablation", &args);
    let mut t = Table::new(&[
        "Nodes",
        "DAKC (barrier)",
        "DAKC (overlap)",
        "Speedup",
        "post-barrier: stock",
        "post-barrier: overlap",
    ]);
    for &nodes in &node_counts {
        let mut machine = MachineConfig::phoenix_intel(nodes);
        machine.pes_per_node = args.pes_per_node;
        let cfg = DakcConfig::scaled_defaults(k);
        let stock = count_kmers_sim::<u64>(&reads, &cfg, &machine).expect("stock");
        let ov = count_kmers_sim_overlap::<u64>(&reads, &cfg, &machine).expect("overlap");
        assert_eq!(stock.counts, ov.counts, "engines must agree");
        let (a, b) = (stock.report.total_time, ov.report.total_time);
        t.row(vec![
            nodes.to_string(),
            fmt_secs(a),
            fmt_secs(b),
            format!("{:.2}x", a / b),
            fmt_secs(stock.report.phase_time.get(1).copied().unwrap_or(0.0)),
            fmt_secs(ov.report.phase_time.get(1).copied().unwrap_or(0.0)),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "reading the table: the post-barrier tail shrinks 2-3x (only the k-way\n\
         merge remains), which is the latency benefit this future-work item\n\
         targets. End-to-end it does NOT pay off at this scale: DAKC's phase 1\n\
         is bandwidth-busy rather than idle, so absorbing sort work early just\n\
         reschedules serial work and adds merge overhead — an honest negative\n\
         result for the paper's conjecture under our cost model."
    );
}
