//! Table V: the dataset registry, with paper-scale and active-scale sizes.

use dakc_bench::{BenchArgs, Table};
use dakc_io::datasets::table_v;

fn main() {
    let args = BenchArgs::from_env();
    args.banner("Table V — Datasets Used in Experiments", "paper Table V");

    let mut art = dakc_bench::Artifact::new("table5_datasets", &args);
    let mut t = Table::new(&[
        "Data",
        "Reads(paper)",
        "ReadLen",
        "FastqSize(paper)",
        "Name",
        "Coverage",
        "L3?",
        "Reads(scaled)",
        "Genome(scaled)",
    ]);
    for d in table_v() {
        let s = d.scaled(args.scale_shift);
        t.row(vec![
            d.name.to_string(),
            d.paper_reads.to_string(),
            d.read_len.to_string(),
            d.fastq_size.to_string(),
            d.organism.unwrap_or("-").to_string(),
            format!("{:.0}x", d.coverage()),
            if d.needs_l3() { "yes" } else { "no" }.to_string(),
            s.num_reads.to_string(),
            s.genome_bases.to_string(),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
}
