//! Fig 5: where the time goes — % compute vs intranode vs internode for
//! *Synthetic 30* on 32 nodes (768 cores), from the analytical model and
//! cross-checked against the simulator's measured busy-time split.

use dakc::{count_kmers_sim, DakcConfig};
use dakc_bench::{BenchArgs, Table};
use dakc_model::{Model, Workload};
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Fig 5 — time breakdown for Synthetic 30 on 32 nodes",
        "paper Fig 5",
    );

    let nodes = 32usize;
    let machine = MachineConfig::phoenix_intel(nodes);
    let spec = dakc_io::datasets::synthetic(30);
    let ds = spec.scaled(args.scale_shift);

    // Model decomposition (no overlap assumed, as in the paper's figure).
    let w = Workload {
        n_reads: ds.num_reads as u64,
        read_len: spec.read_len as u64,
        k: 31,
    };
    let model = Model::new(machine.clone(), w);
    let [mc, mi, me] = model.breakdown_percent();

    // Simulator measurement of the same split.
    let reads = ds.generate(args.seed);
    let cfg = DakcConfig::scaled_defaults(31);
    let run = count_kmers_sim::<u64>(&reads, &cfg, &machine).expect("sim ok");
    let [sc, si, se] = run.report.busy_percentages();

    let mut art = dakc_bench::Artifact::new("fig05_time_breakdown", &args);
    let mut t = Table::new(&["Component", "Model %", "Simulator %"]);
    t.row(vec!["Computation".into(), format!("{mc:.1}"), format!("{sc:.1}")]);
    t.row(vec![
        "Intranode communication".into(),
        format!("{mi:.1}"),
        format!("{si:.1}"),
    ]);
    t.row(vec![
        "Internode communication".into(),
        format!("{me:.1}"),
        format!("{se:.1}"),
    ]);
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: computation is a small slice; the workload is bounded by\n\
         how fast data moves, within the node and between nodes."
    );
    assert!(
        mc < mi + me,
        "model must show communication dominating compute"
    );
}
