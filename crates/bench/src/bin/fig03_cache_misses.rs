//! Fig 3: last-level-cache misses — analytical model prediction vs
//! measurement, for both phases, on 8 nodes (192 cores).
//!
//! The paper measures with PAPI hardware counters; our stand-in is the
//! set-associative LRU cache simulator replaying the instrumented access
//! streams of one node's work (DESIGN.md substitution ledger). The
//! expected relationship, which the paper reports and we verify:
//!
//! * phase 1 measured slightly **above** predicted (LRU vs the model's
//!   optimal replacement);
//! * phase 2 measured **below** predicted (the hybrid sort stops
//!   re-streaming once partitions are cache-resident; the model assumes
//!   the full one-pass-per-byte worst case).

use dakc_bench::{cachetrace, BenchArgs, Table};
use dakc_model::{Model, Workload};
use dakc_sim::{CacheSim, MachineConfig};

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Fig 3 — predicted vs measured LLC misses (8 nodes / 192 cores)",
        "paper Fig 3",
    );

    let nodes = 8usize;
    let machine = MachineConfig::phoenix_intel(nodes);
    let scales: Vec<u32> = if args.quick {
        vec![22, 24]
    } else {
        vec![20, 21, 22, 23, 24, 25, 26]
    };

    let mut art = dakc_bench::Artifact::new("fig03_cache_misses", &args);
    let mut t = Table::new(&[
        "Dataset",
        "kmers(scaled)",
        "P1 predicted",
        "P1 measured",
        "P1 meas/pred",
        "P2 predicted",
        "P2 measured",
        "P2 meas/pred",
    ]);

    for scale in scales {
        let spec = dakc_io::datasets::synthetic(scale);
        let ds = spec.scaled(args.scale_shift);
        let w = Workload {
            n_reads: ds.num_reads as u64,
            read_len: spec.read_len as u64,
            k: 31,
        };
        let model = Model::new(machine.clone(), w);

        // Per-node workload slice, replayed through one node's LLC.
        let input_bytes = (w.input_bytes() / nodes as f64) as u64;
        let kmers = (w.kmers() / nodes as f64) as u64;
        let wb = w.word_bytes() as u64;

        let mut cache = CacheSim::phoenix_llc();
        let p1_meas = cachetrace::phase1_misses(&mut cache, input_bytes, kmers, wb);
        let mut cache = CacheSim::phoenix_llc();
        let p2_meas = cachetrace::phase2_misses(&mut cache, kmers, wb, 128);

        let p1_pred = model.misses_phase1();
        let p2_pred = model.misses_phase2();

        t.row(vec![
            spec.name.to_string(),
            (kmers * nodes as u64).to_string(),
            format!("{p1_pred:.0}"),
            p1_meas.to_string(),
            format!("{:.2}", p1_meas as f64 / p1_pred),
            format!("{p2_pred:.0}"),
            p2_meas.to_string(),
            format!("{:.2}", p2_meas as f64 / p2_pred),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: phase-1 measured lands slightly above the prediction (model\n\
         assumes a perfect replacement policy); phase-2 measured lands below the\n\
         worst-case radix prediction (the sorter skips work on small partitions)."
    );
}
