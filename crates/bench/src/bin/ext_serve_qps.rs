//! Extension — query-service throughput and latency (loopback mesh).
//!
//! Builds the sharded on-disk index format from a counted dataset, goes
//! resident with `dakc-serve`'s loopback cluster (the same server loop
//! and wire frames `dakc serve` runs over TCP, minus socket syscalls),
//! and drives batched point lookups through the query client at
//! ranks × batch-size. Each cell reports aggregate lookups/s plus the
//! client's flow-traced per-query latency percentiles (p50/p95/p99) —
//! the wall and latency columns are duration cells, so the CI
//! bench-compare gate watches them for regressions.

use std::time::Instant;

use dakc::DakcConfig;
use dakc_baselines::count_kmers_serial;
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_net::NetTuning;
use dakc_serve::{build_shards, start_cluster, LookupResult};

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Extension — sharded query service throughput (loopback serve mesh)",
        "tentpole: dakc-serve resident lookups over the dakc-net transport",
    );

    let (spec, reads) = dakc_bench::load_dataset("Synthetic 24", &args);
    let k = 31;
    let cfg = DakcConfig::scaled_defaults(k);
    let truth = count_kmers_serial::<u64>(&reads, k, cfg.canonical, false).counts;
    let keys: Vec<u64> = truth.iter().map(|c| c.kmer).collect();
    println!(
        "dataset: {} ({} reads, {} distinct k-mers, k = {k})\n",
        spec.name,
        reads.len(),
        keys.len()
    );

    let rank_counts: Vec<usize> = if args.quick { vec![4] } else { vec![1, 2, 4] };
    let batches: Vec<usize> = if args.quick {
        vec![256, 1024, 4096]
    } else {
        vec![64, 256, 1024, 4096]
    };
    // Keys per cell: enough round trips for stable percentiles, cycled
    // over the distinct-k-mer universe so every shard stays warm.
    let target: usize = if args.quick { 1 << 18 } else { 1 << 19 };

    let mut art = dakc_bench::Artifact::new("ext_serve_qps", &args);
    let mut t = Table::new(&["ranks", "batch", "lookups", "wall", "lookups/s", "p50", "p95", "p99"]);
    // The artifact's table drops the run-variable lookups/s column: row
    // identity in the compare gate is the non-duration cells, so only
    // deterministic cells (ranks/batch/lookups) may sit beside the gated
    // wall and latency durations. Throughput still lands in the artifact
    // as `serve.qps.*` metrics counters.
    let mut gated = Table::new(&["ranks", "batch", "lookups", "wall", "p50", "p95", "p99"]);

    for &ranks in &rank_counts {
        for &batch in &batches {
            let shards =
                build_shards::<u64>(&reads, &cfg, ranks).expect("shard build");
            let mut cluster =
                start_cluster::<u64>(shards, NetTuning::default(), None).expect("cluster start");

            // One warm-up batch outside the clock (thread spin-up, first
            // allocation of the reply path).
            let warm = cluster.client.lookup_batch(&keys[..batch.min(keys.len())]);
            assert!(warm.expect("warm-up batch").complete(), "warm-up lost a shard");

            let mut done = 0usize;
            let mut hits = 0u64;
            let t0 = Instant::now();
            while done < target {
                let lo = done % keys.len();
                let hi = (lo + batch).min(keys.len());
                let chunk = &keys[lo..hi];
                let outcome = cluster.client.lookup_batch(chunk).expect("lookup batch");
                assert!(outcome.complete(), "lost a shard mid-bench");
                hits += outcome
                    .results
                    .iter()
                    .filter(|r| matches!(r, LookupResult::Count(c) if *c > 0))
                    .count() as u64;
                done += chunk.len();
            }
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(hits, done as u64, "every truth key must hit its shard");

            let qps = done as f64 / wall.max(1e-9);
            let q = |p: f64| {
                cluster
                    .client
                    .metrics()
                    .histogram("flow.serve.lookup_s")
                    .and_then(|h| h.quantile(p))
                    .unwrap_or(0.0)
            };
            let (p50, p95, p99) = (q(0.50), q(0.95), q(0.99));
            t.row(vec![
                ranks.to_string(),
                batch.to_string(),
                done.to_string(),
                fmt_secs(wall),
                format!("{qps:.2e}"),
                fmt_secs(p50),
                fmt_secs(p95),
                fmt_secs(p99),
            ]);
            gated.row(vec![
                ranks.to_string(),
                batch.to_string(),
                done.to_string(),
                fmt_secs(wall),
                fmt_secs(p50),
                fmt_secs(p95),
                fmt_secs(p99),
            ]);
            let m = art.metrics();
            m.inc(&format!("serve.qps.r{ranks}.b{batch}"), qps as u64);
            let (metrics, outcomes) = cluster.shutdown().expect("clean shutdown");
            for o in outcomes {
                o.expect("server ended cleanly");
            }
            art.metrics().merge(&metrics);
        }
    }

    t.print();
    art.table(&gated);
    art.write_or_warn();
    println!(
        "expected shape: lookups/s grows with batch size (one frame per\n\
         owner amortizes over more keys) and with ranks (servers answer in\n\
         parallel); per-query p50 tracks the batch round trip, so bigger\n\
         batches trade latency for throughput. The 4-rank, batch ≥ 1024\n\
         cells should clear 1e6 aggregate lookups/s on a laptop-class host."
    );
}
