//! Fig 12: what each application-specific aggregation layer buys — DAKC
//! run with only the runtime layers (L0–L1), with packing added (L0–L2),
//! with heavy-hitter pre-accumulation added (L0–L3), and with
//! minimizer-routed super-k-mer spans (L2.5, `--superkmer`, which
//! replaces per-k-mer words on the wire), on a uniform genome
//! (*Synthetic 32*) and a skewed one (Human surrogate). The `wire cut`
//! column is L0–L2's remote bytes over L2.5's: the span encoding ships
//! each base once instead of once per covering k-mer.

use dakc::{count_kmers_sim, DakcConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_sim::MachineConfig;

fn main() {
    let mut args = BenchArgs::from_env();
    // This figure's effect (per-item software overhead amortized by L2)
    // depends on the node shape; default to the paper's 24 cores/node
    // unless the user overrode --ppn.
    if args.pes_per_node == BenchArgs::default().pes_per_node {
        args.pes_per_node = 24;
    }
    args.banner(
        "Fig 12 — aggregation-layer ablation (L0-L1 vs +L2 vs +L3)",
        "paper Fig 12",
    );

    let dataset_names: Vec<&str> = vec!["Synthetic 32", "SRR28206931"];
    let node_counts: Vec<usize> = if args.quick {
        vec![8, 32]
    } else {
        vec![4, 8, 16, 32, 64]
    };
    let k = 31;

    let mut art = dakc_bench::Artifact::new("fig12_aggregation_ablation", &args);
    let mut t = Table::new(&[
        "Dataset",
        "Nodes",
        "L0-L1",
        "L0-L2",
        "L0-L3",
        "L2.5",
        "L2 speedup",
        "L3 speedup",
        "wire cut",
        "heavy pairs",
        "occ compressed",
    ]);

    for name in &dataset_names {
        let (spec, reads) = dakc_bench::load_dataset(name, &args);
        eprintln!("# {name}: {} reads", reads.len());
        for &nodes in &node_counts {
            let mut machine = MachineConfig::phoenix_intel(nodes);
            machine.pes_per_node = args.pes_per_node;

            let l01 = count_kmers_sim::<u64>(
                &reads,
                &DakcConfig::scaled_defaults(k).l0_l1_only(),
                &machine,
            )
            .expect("L0-L1");
            let l02 =
                count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine)
                    .expect("L0-L2");
            let l03 = count_kmers_sim::<u64>(
                &reads,
                &DakcConfig::scaled_defaults(k).with_l3(),
                &machine,
            )
            .expect("L0-L3");
            let l25 = count_kmers_sim::<u64>(
                &reads,
                &DakcConfig::scaled_defaults(k).with_superkmer(7),
                &machine,
            )
            .expect("L2.5");
            assert_eq!(l01.counts, l03.counts, "{name}@{nodes}");
            assert_eq!(l01.counts, l25.counts, "{name}@{nodes} superkmer");
            art.metrics().merge(&l03.report.metrics);
            art.metrics().merge(&l25.report.metrics);

            let (a, b, c, s) = (
                l01.report.total_time,
                l02.report.total_time,
                l03.report.total_time,
                l25.report.total_time,
            );
            let agg = l03.total_agg();
            t.row(vec![
                spec.name.to_string(),
                nodes.to_string(),
                fmt_secs(a),
                fmt_secs(b),
                fmt_secs(c),
                fmt_secs(s),
                format!("{:.2}x", a / b),
                format!("{:.2}x", a / c),
                format!(
                    "{:.2}x",
                    l02.report.remote_bytes() as f64
                        / l25.report.remote_bytes().max(1) as f64
                ),
                agg.heavy_pairs.to_string(),
                agg.occurrences_compressed.to_string(),
            ]);
        }
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: on the uniform Synthetic 32, L2's packet packing speeds the\n\
         run up (paper: ≈2x; here ≈1.5x end-to-end, ≈1.8x on phase 1 — the\n\
         shared phase-2 sort caps the total) and L3 adds nothing (no heavy\n\
         hitters to compress). On the Human genome L3 is essential — its\n\
         pre-accumulation collapses the high-frequency k-mers, cutting both\n\
         volume and owner-PE load imbalance (paper: up to 66x at 256 nodes).\n\
         L2.5's span encoding cuts remote bytes several-fold on both datasets\n\
         (the wire cut column) — its wall-clock win depends on how network-\n\
         bound the node shape is."
    );
}
