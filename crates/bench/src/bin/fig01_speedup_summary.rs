//! Fig 1: the headline summary — speedup of DAKC over the distributed
//! baselines and over the shared-memory baseline, per dataset.
//!
//! Two comparisons, matching the paper's scatter:
//!
//! * **vs distributed** (HySortK, PakMan\*): same virtual cluster, same
//!   node count — a pure simulator-to-simulator ratio.
//! * **vs shared memory** (KMC3): the paper compares DAKC at scale against
//!   KMC3 on one node. We compose it the same way: DAKC's strong-scaling
//!   gain (1 node → N nodes, simulator) × KMC3-vs-DAKC on one node
//!   (wall-clock, threaded engines).

use dakc::{count_kmers_sim, threaded::count_kmers_threaded, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, count_kmers_kmc3, BspConfig, Kmc3Config};
use dakc_bench::{BenchArgs, Table};
use dakc_kmer::CanonicalMode;
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner("Fig 1 — speedup of DAKC over baselines", "paper Fig 1");

    let dataset_names: Vec<&str> = if args.quick {
        vec!["Synthetic 27", "SRR29163078"]
    } else {
        vec![
            "Synthetic 27",
            "Synthetic 29",
            "SRR29163078",
            "SRR28892189",
            "SRR26113965",
            "SRR28206931",
        ]
    };
    let nodes = if args.quick { 16 } else { 64 };
    let k = 31;
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(24);

    let mut art = dakc_bench::Artifact::new("fig01_speedup_summary", &args);
    let mut t = Table::new(&[
        "Dataset",
        "vs PakMan*",
        "vs HySortK",
        "vs KMC3 (composed)",
    ]);

    for name in &dataset_names {
        let (spec, reads) = dakc_bench::load_dataset(name, &args);
        let mut one_node = MachineConfig::phoenix_intel(1);
        one_node.pes_per_node = args.pes_per_node;

        let mut cfg = DakcConfig::scaled_defaults(k);
        if spec.needs_l3() {
            cfg = cfg.with_l3();
        }
        // The paper's Fig 1 compares each system's best configuration:
        // take every system's best time over the node sweep.
        let sweep: Vec<usize> = if args.quick { vec![8, nodes] } else { vec![8, 16, 32, nodes] };
        let (mut dakc_n, mut pakman, mut hysortk) = (f64::MAX, f64::MAX, f64::MAX);
        for &n in &sweep {
            let mut machine = MachineConfig::phoenix_intel(n);
            machine.pes_per_node = args.pes_per_node;
            dakc_n = dakc_n.min(
                count_kmers_sim::<u64>(&reads, &cfg, &machine)
                    .expect("dakc")
                    .report
                    .total_time,
            );
            pakman = pakman.min(
                count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_star(k), &machine)
                    .expect("pakman")
                    .report
                    .total_time,
            );
            hysortk = hysortk.min(
                count_kmers_bsp_sim::<u64>(&reads, &BspConfig::hysortk(k), &machine)
                    .expect("hysortk")
                    .report
                    .total_time,
            );
        }
        let dakc_1 = count_kmers_sim::<u64>(&reads, &cfg, &one_node)
            .expect("dakc@1")
            .report
            .total_time;

        // One-node wall-clock ratio KMC3 / DAKC (threaded engines).
        let l3 = (spec.needs_l3() || spec.coverage() > 100.0).then_some(4096);
        let dakc_wall =
            count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, host_threads, l3)
                .elapsed
                .as_secs_f64();
        let kmc3_wall = count_kmers_kmc3::<u64>(&reads, &Kmc3Config::defaults(k, host_threads))
            .elapsed
            .as_secs_f64();
        let kmc3_vs_dakc_1node = kmc3_wall / dakc_wall;
        let vs_kmc3 = (dakc_1 / dakc_n) * kmc3_vs_dakc_1node;

        t.row(vec![
            spec.name.to_string(),
            format!("{:.1}x", pakman / dakc_n),
            format!("{:.1}x", hysortk / dakc_n),
            format!("{vs_kmc3:.0}x"),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: 2–9x over the distributed baselines; 15–102x over the\n\
         shared-memory baseline (which cannot scale past one node). Composed\n\
         column = (DAKC 1-node/best-node strong-scaling gain, simulator) x\n\
         (KMC3/DAKC one-node wall-clock ratio, threaded engines)."
    );
}
