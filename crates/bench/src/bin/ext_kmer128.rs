//! Extension (paper §VII future work): 128-bit k-mer support for long-read
//! k sizes (`33 ≤ k ≤ 64`), which the paper notes 64-bit words cannot
//! represent. Sweeps k across the word-width boundary with both the
//! threaded engine (wall-clock) and the simulator (virtual time).

use dakc::{count_kmers_sim, count_kmers_threaded, DakcConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_kmer::CanonicalMode;
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Extension — 128-bit k-mers (k up to 64)",
        "paper §VII future work: \"larger integer support (e.g., 128-bit)\"",
    );

    let (spec, reads) = dakc_bench::load_dataset("Synthetic 26", &args);
    println!("dataset: {} ({} reads x 150 bp)\n", spec.name, reads.len());
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
    let mut machine = MachineConfig::phoenix_intel(8);
    machine.pes_per_node = args.pes_per_node;

    let ks: Vec<usize> = if args.quick { vec![31, 41] } else { vec![15, 23, 31, 33, 41, 55, 63] };
    let mut art = dakc_bench::Artifact::new("ext_kmer128", &args);
    let mut t = Table::new(&["k", "word", "threaded wall", "sim virtual", "distinct kmers"]);
    for k in ks {
        let (wall, virt, distinct) = if k <= 32 {
            let run = count_kmers_threaded::<u64>(&reads, k, CanonicalMode::Forward, threads, None);
            let sim = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine)
                .expect("sim");
            assert_eq!(run.counts.len(), sim.counts.len());
            (run.elapsed, sim.report.total_time, run.counts.len())
        } else {
            let run =
                count_kmers_threaded::<u128>(&reads, k, CanonicalMode::Forward, threads, None);
            let sim = count_kmers_sim::<u128>(&reads, &DakcConfig::scaled_defaults(k), &machine)
                .expect("sim");
            assert_eq!(run.counts.len(), sim.counts.len());
            (run.elapsed, sim.report.total_time, run.counts.len())
        };
        t.row(vec![
            k.to_string(),
            if k <= 32 { "u64" } else { "u128" }.to_string(),
            format!("{:?}", wall),
            fmt_secs(virt),
            distinct.to_string(),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();
    println!(
        "expected shape: crossing k = 32 doubles the word width — wire volume,\n\
         sort passes and memory footprint roughly double, visible in both the\n\
         wall-clock and virtual times."
    );
}
