//! Ablation (paper Eq 1): the BSP batch size `b` controls the
//! synchronization count `⌈mn/bP⌉`. Sweeping `b` exposes the sync-cost
//! term that DAKC's single barrier removes — the crux of §III's analysis.
//!
//! A second sweep covers the shared-memory engine's analogue: the SPSC
//! route-lane batch ([`ThreadedOpts::route_batch`]), trading handoff
//! frequency against per-batch partition-and-send amortization.

use dakc::{count_kmers_sim, count_kmers_threaded_opts, DakcConfig, ThreadedOpts};
use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_kmer::CanonicalMode;
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner(
        "Ablation — BSP batch size b vs synchronization count (Eq 1)",
        "paper §III-B/Eq 1, Eq 7",
    );

    let (spec, reads) =
        dakc_bench::load_dataset(if args.quick { "Synthetic 25" } else { "Synthetic 27" }, &args);
    let mut machine = MachineConfig::phoenix_intel(4);
    machine.pes_per_node = args.pes_per_node;
    let k = 31;
    println!(
        "dataset: {} ({} k-mers over {} PEs)\n",
        spec.name,
        reads.total_kmers(k),
        machine.num_pes()
    );

    let dakc_run = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine)
        .expect("dakc");
    let dakc_t = dakc_run.report.total_time;

    let batches: Vec<usize> = if args.quick {
        vec![512, 8192, 1 << 20]
    } else {
        vec![256, 1024, 4096, 16_384, 65_536, 1 << 20]
    };
    let mut art = dakc_bench::Artifact::new("abl_batch_size", &args);
    let mut t = Table::new(&["b (kmers/PE/round)", "rounds (syncs)", "PakMan* time", "vs DAKC"]);
    for &b in &batches {
        let mut cfg = BspConfig::pakman_star(k);
        cfg.batch = b;
        let run = count_kmers_bsp_sim::<u64>(&reads, &cfg, &machine).expect("bsp");
        t.row(vec![
            b.to_string(),
            run.rounds.to_string(),
            fmt_secs(run.report.total_time),
            format!("{:.2}x", run.report.total_time / dakc_t),
        ]);
    }
    t.print();
    art.table(&t);

    // Wall-clock analogue: the threaded engine's route-lane batch size.
    let threads = 4;
    let route_batches: Vec<usize> =
        if args.quick { vec![64, 1024, 16_384] } else { vec![16, 64, 256, 1024, 4096, 16_384] };
    let mut rt = Table::new(&["route_batch (words/lane)", "threaded time", "vs default"]);
    let time_with = |rb: usize| {
        let opts = ThreadedOpts { route_batch: rb, ..ThreadedOpts::default() };
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let run = count_kmers_threaded_opts::<u64>(
                &reads,
                k,
                CanonicalMode::Forward,
                threads,
                None,
                &opts,
            );
            best = best.min(run.elapsed.as_secs_f64());
        }
        best
    };
    let default_t = time_with(ThreadedOpts::default().route_batch);
    for &rb in &route_batches {
        let t_rb =
            if rb == ThreadedOpts::default().route_batch { default_t } else { time_with(rb) };
        rt.row(vec![
            rb.to_string(),
            fmt_secs(t_rb),
            format!("{:.2}x", t_rb / default_t),
        ]);
    }
    println!("\nthreaded engine ({threads} threads, default route_batch = {}):", ThreadedOpts::default().route_batch);
    rt.print();
    art.table(&rt);
    art.write_or_warn();
    println!(
        "DAKC reference: {} with {} barrier (constant, Eq 6).\n\
         expected shape: small b ⇒ many rounds ⇒ the τ·(mn/bP)·logP term of Eq 5\n\
         dominates; large b amortizes syncs but can never beat the single-barrier\n\
         FA-BSP (Eq 8) and costs Θ(b) buffer memory.",
        fmt_secs(dakc_t),
        dakc_run.report.barriers_completed
    );
}
