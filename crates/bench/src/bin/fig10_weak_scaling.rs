//! Fig 10: weak scaling on the synthetic datasets — dataset size grows
//! with the node count, so ideal scaling is a flat line.
//!
//! As in the paper, the input at `n` nodes is the synthetic scale whose
//! size is `n×` the base dataset's (Synthetic 24 at 1 node, 25 at 2, …).

use dakc::{count_kmers_sim, DakcConfig};
use dakc_baselines::{count_kmers_bsp_sim, BspConfig};
use dakc_bench::{fmt_secs, BenchArgs, Table};
use dakc_sim::MachineConfig;

fn main() {
    let args = BenchArgs::from_env();
    args.banner("Fig 10 — weak scaling on synthetic datasets", "paper Fig 10");

    let base_scale = 24u32;
    let steps: Vec<u32> = if args.quick {
        vec![0, 2, 4]
    } else {
        vec![0, 1, 2, 3, 4, 5, 6]
    };
    let k = 31;

    let mut art = dakc_bench::Artifact::new("fig10_weak_scaling", &args);
    let mut t = Table::new(&[
        "Nodes",
        "Dataset",
        "DAKC",
        "HySortK",
        "PakMan*",
        "DAKC eff",
        "HySortK eff",
        "PakMan* eff",
    ]);

    let mut base: Option<(f64, f64, f64)> = None;
    for &step in &steps {
        let nodes = 1usize << step;
        let spec = dakc_io::datasets::synthetic(base_scale + step);
        let reads = spec.scaled(args.scale_shift).generate(args.seed);
        let mut machine = MachineConfig::phoenix_intel(nodes);
        machine.pes_per_node = args.pes_per_node;

        let d = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(k), &machine)
            .expect("dakc")
            .report
            .total_time;
        let h = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::hysortk(k), &machine)
            .expect("hysortk")
            .report
            .total_time;
        let p = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_star(k), &machine)
            .expect("pakman")
            .report
            .total_time;
        let (d0, h0, p0) = *base.get_or_insert((d, h, p));

        t.row(vec![
            nodes.to_string(),
            spec.name.to_string(),
            fmt_secs(d),
            fmt_secs(h),
            fmt_secs(p),
            format!("{:.0}%", 100.0 * d0 / d),
            format!("{:.0}%", 100.0 * h0 / h),
            format!("{:.0}%", 100.0 * p0 / p),
        ]);
    }
    t.print();
    art.table(&t);
    art.write_or_warn();

    println!(
        "paper shape: DAKC is 1.7–3.4x faster than HySortK and 2.0–6.3x faster than\n\
         PakMan*; PakMan* weak-scales worst, HySortK next; DAKC holds efficiency\n\
         longest (to 32 nodes / 768 cores at paper scale)."
    );
}
