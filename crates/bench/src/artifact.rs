//! Machine-readable bench artifacts.
//!
//! Every harness binary writes a JSON artifact to `results/<harness>.json`
//! next to its human-readable table, so figure regeneration, CI schema
//! checks and cross-run diffing never scrape stdout. The schema is
//! deliberately small and versioned:
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "harness": "fig07_strong_scaling",
//!   "params": { "scale_shift": N, "pes_per_node": N, "seed": N, "quick": bool },
//!   "rows":   [ { "<column header>": "<cell>", ... }, ... ],
//!   "metrics": { "counters": {...}, "histograms": {...} }
//! }
//! ```
//!
//! Rows are objects keyed by column header (not positional arrays) so a
//! harness with several differently-shaped tables can concatenate them,
//! and so readers survive column reordering. [`validate`] is the single
//! source of truth for the schema — the `check_artifacts` binary and the
//! CI workflow both go through it.

use std::path::PathBuf;

use dakc_sim::telemetry::json::{escape, parse, JsonValue};
use dakc_sim::telemetry::MetricsRegistry;

use crate::{BenchArgs, Table};

/// Version of the artifact schema emitted by this crate.
pub const SCHEMA_VERSION: u64 = 1;

/// Directory (relative to the working directory) artifacts are written to.
pub const RESULTS_DIR: &str = "results";

/// One harness run's machine-readable output.
#[derive(Debug, Clone)]
pub struct Artifact {
    harness: String,
    scale_shift: u32,
    pes_per_node: usize,
    seed: u64,
    quick: bool,
    rows: Vec<Vec<(String, String)>>,
    metrics: MetricsRegistry,
}

impl Artifact {
    /// An empty artifact for `harness` (the binary name), stamped with the
    /// run's seed parameters.
    pub fn new(harness: &str, args: &BenchArgs) -> Self {
        Self {
            harness: harness.to_string(),
            scale_shift: args.scale_shift,
            pes_per_node: args.pes_per_node,
            seed: args.seed,
            quick: args.quick,
            rows: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Appends every row of `t`, keyed by its column headers.
    pub fn table(&mut self, t: &Table) {
        for row in t.rows() {
            self.rows.push(
                t.headers()
                    .iter()
                    .zip(row)
                    .map(|(h, c)| (h.clone(), c.clone()))
                    .collect(),
            );
        }
    }

    /// The artifact's metrics registry, for harnesses that fold in
    /// [`dakc_sim::SimReport::metrics`] or record their own.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Deterministic JSON rendering of the whole artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\"harness\":\"");
        out.push_str(&escape(&self.harness));
        out.push_str("\",\"params\":{\"scale_shift\":");
        out.push_str(&self.scale_shift.to_string());
        out.push_str(",\"pes_per_node\":");
        out.push_str(&self.pes_per_node.to_string());
        out.push_str(",\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"quick\":");
        out.push_str(if self.quick { "true" } else { "false" });
        out.push_str("},\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (k, v)) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape(k));
                out.push_str("\":\"");
                out.push_str(&escape(v));
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("],\"metrics\":");
        out.push_str(&self.metrics.to_json());
        out.push_str("}\n");
        out
    }

    /// Writes `results/<harness>.json`, creating the directory if needed.
    pub fn write(&self) -> Result<PathBuf, String> {
        let dir = PathBuf::from(RESULTS_DIR);
        std::fs::create_dir_all(&dir).map_err(|e| format!("{RESULTS_DIR}: {e}"))?;
        let path = dir.join(format!("{}.json", self.harness));
        std::fs::write(&path, self.to_json())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(path)
    }

    /// [`Artifact::write`], reporting the outcome on stderr instead of
    /// failing the harness (artifacts are a side product of the run).
    pub fn write_or_warn(&self) {
        match self.write() {
            Ok(path) => eprintln!("artifact   : {}", path.display()),
            Err(e) => eprintln!("warning: could not write artifact: {e}"),
        }
    }
}

/// Checks that `body` is a schema-conformant artifact, returning the
/// harness name on success.
pub fn validate(body: &str) -> Result<String, String> {
    let v = parse(body)?;
    let version = v
        .get("schema_version")
        .and_then(JsonValue::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let harness = v
        .get("harness")
        .and_then(JsonValue::as_str)
        .ok_or("missing harness")?
        .to_string();
    let params = v.get("params").ok_or("missing params")?;
    for key in ["scale_shift", "pes_per_node", "seed"] {
        params
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("params.{key} missing or not a number"))?;
    }
    if !matches!(params.get("quick"), Some(JsonValue::Bool(_))) {
        return Err("params.quick missing or not a bool".into());
    }
    let rows = v
        .get("rows")
        .and_then(JsonValue::as_arr)
        .ok_or("rows missing or not an array")?;
    if rows.is_empty() {
        return Err("rows is empty (harness produced no measurements)".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let obj = row
            .as_obj()
            .ok_or_else(|| format!("rows[{i}] is not an object"))?;
        if obj.is_empty() {
            return Err(format!("rows[{i}] is empty"));
        }
    }
    let metrics = v.get("metrics").ok_or("missing metrics")?;
    for key in ["counters", "histograms"] {
        if metrics.get(key).and_then(JsonValue::as_obj).is_none() {
            return Err(format!("metrics.{key} missing or not an object"));
        }
    }
    let histograms = metrics.get("histograms").and_then(JsonValue::as_obj).unwrap();
    for (name, h) in histograms {
        validate_histogram(name, h)?;
    }
    Ok(harness)
}

/// Checks the internal consistency of one serialized histogram: `counts`
/// must have exactly one more bucket than `bounds` (the overflow bucket),
/// and the scalar `count` must equal the sum of the per-bucket counts.
fn validate_histogram(name: &str, h: &JsonValue) -> Result<(), String> {
    let arr = |key: &str| {
        h.get(key)
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("histogram {name:?}: {key} missing or not an array"))
    };
    let bounds = arr("bounds")?;
    let counts = arr("counts")?;
    if counts.len() != bounds.len() + 1 {
        return Err(format!(
            "histogram {name:?}: {} counts for {} bounds (want bounds+1)",
            counts.len(),
            bounds.len()
        ));
    }
    let total = h
        .get("count")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("histogram {name:?}: count missing or not a number"))?;
    let sum: f64 = counts.iter().filter_map(JsonValue::as_f64).sum();
    if sum != total {
        return Err(format!(
            "histogram {name:?}: count {total} != sum of bucket counts {sum}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let args = BenchArgs { scale_shift: 13, quick: true, ..Default::default() };
        let mut t = Table::new(&["Nodes", "Time"]);
        t.row(vec!["4".into(), "1.5ms".into()]);
        t.row(vec!["8".into(), "0.9ms".into()]);
        let mut a = Artifact::new("unit_test", &args);
        a.table(&t);
        a.metrics().inc("runs", 2);
        a
    }

    #[test]
    fn artifact_json_validates() {
        let j = sample().to_json();
        assert_eq!(validate(&j).unwrap(), "unit_test");
        let v = parse(&j).unwrap();
        assert_eq!(
            v.get("rows").and_then(|r| r.idx(1)).and_then(|r| r.get("Time")).and_then(|t| t.as_str()),
            Some("0.9ms")
        );
        assert_eq!(
            v.get("params").and_then(|p| p.get("scale_shift")).and_then(|s| s.as_f64()),
            Some(13.0)
        );
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate("{\"schema_version\":99}").is_err());
        // Right version but no params.
        assert!(validate("{\"schema_version\":1,\"harness\":\"x\"}").is_err());
    }

    #[test]
    fn validate_rejects_empty_rows() {
        let args = BenchArgs::default();
        let a = Artifact::new("no_rows", &args);
        let err = validate(&a.to_json()).unwrap_err();
        assert!(err.contains("rows is empty"), "{err}");
    }

    #[test]
    fn validate_checks_histogram_consistency() {
        let mut a = sample();
        a.metrics().observe("lat", &[1.0, 2.0], 1.5);
        let good = a.to_json();
        assert!(validate(&good).is_ok());
        // Bucket counts that no longer sum to `count`.
        let bad_sum = good.replace("\"counts\":[0,1,0],\"count\":1", "\"counts\":[0,1,1],\"count\":1");
        assert_ne!(bad_sum, good, "replacement must hit");
        let err = validate(&bad_sum).unwrap_err();
        assert!(err.contains("sum of bucket counts"), "{err}");
        // A counts array that lost its overflow bucket.
        let bad_len = good.replace("\"counts\":[0,1,0]", "\"counts\":[0,1]");
        let err = validate(&bad_len).unwrap_err();
        assert!(err.contains("want bounds+1"), "{err}");
    }

    #[test]
    fn write_creates_results_file() {
        let dir = std::env::temp_dir().join("dakc-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        // Serialize with other tests that might chdir (none today).
        std::env::set_current_dir(&dir).unwrap();
        let path = sample().write().unwrap();
        std::env::set_current_dir(prev).unwrap();
        let body = std::fs::read_to_string(dir.join(&path)).unwrap();
        assert!(validate(&body).is_ok());
    }
}
