//! # dakc-bench — harnesses that regenerate every table and figure
//!
//! One binary per experiment (see DESIGN.md §2 for the full index):
//!
//! ```text
//! cargo run --release -p dakc-bench --bin fig07_strong_scaling
//! cargo run --release -p dakc-bench --bin fig12_aggregation_ablation -- --scale-shift 13
//! ```
//!
//! Every binary prints an aligned table (the paper's rows/series) followed
//! by a machine-readable CSV block, and always states the active scale
//! shift so paper-vs-measured comparisons are explicit.
//!
//! This library holds what the binaries share: argument parsing
//! ([`BenchArgs`]), table/CSV rendering ([`Table`]), dataset construction
//! at the active scale ([`load_dataset`]), and the cache-trace driver for
//! the Fig 3 model-validation experiment ([`cachetrace`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod artifact;
pub mod cachetrace;
pub mod compare;

pub use artifact::Artifact;

use dakc_io::datasets::{table_v, DatasetSpec};
use dakc_io::{ReadSet, DEFAULT_SCALE_SHIFT};

/// Common command-line arguments shared by every harness binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload shrink exponent (DESIGN.md §4). Default 12.
    pub scale_shift: u32,
    /// Simulated cores per node. The paper's Phoenix Intel nodes have 24;
    /// scaling harnesses default to 6 so per-PE work stays meaningful at
    /// ~4000× smaller inputs (stated in every output header).
    pub pes_per_node: usize,
    /// `--quick`: trim sweeps for a fast sanity pass.
    pub quick: bool,
    /// RNG seed for dataset generation.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale_shift: DEFAULT_SCALE_SHIFT,
            pes_per_node: 6,
            quick: false,
            seed: 42,
        }
    }
}

impl BenchArgs {
    /// Parses `--scale-shift N`, `--ppn N`, `--seed N` and `--quick` from
    /// `std::env::args`. Unrecognized flags are warned about on stderr
    /// (never fatal — harnesses accept extra, harness-specific flags like
    /// `--full`, which callers list in `extra`).
    pub fn from_env() -> Self {
        Self::from_env_with(&["--full"])
    }

    /// Like [`BenchArgs::from_env`] but with an explicit list of known
    /// harness-specific flags that should not trigger a warning.
    pub fn from_env_with(extra: &[&str]) -> Self {
        Self::from_iter(std::env::args().skip(1), extra)
    }

    /// The testable core of [`BenchArgs::from_env`].
    pub fn from_iter(args: impl Iterator<Item = String>, extra: &[&str]) -> Self {
        let mut out = Self::default();
        let mut args = args;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale-shift" => {
                    out.scale_shift = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale-shift needs an integer");
                }
                "--ppn" => {
                    out.pes_per_node = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--ppn needs an integer");
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--quick" => out.quick = true,
                other if extra.contains(&other) => {}
                other => eprintln!("warning: unknown arg {other:?}"),
            }
        }
        out
    }

    /// Prints the standard experiment header.
    pub fn banner(&self, experiment: &str, paper_ref: &str) {
        println!("== {experiment} ==");
        println!("reproduces : {paper_ref}");
        println!(
            "scale      : inputs shrunk 2^{} (≈{}×); node counts as in the paper; {} simulated cores/node",
            self.scale_shift,
            1u64 << self.scale_shift,
            self.pes_per_node
        );
        println!();
    }
}

/// Finds a Table V dataset by name and generates it at the active scale.
pub fn load_dataset(name: &str, args: &BenchArgs) -> (DatasetSpec, ReadSet) {
    let spec = table_v()
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name:?}"));
    let reads = spec.scaled(args.scale_shift).generate(args.seed);
    (spec, reads)
}

/// A simple aligned-text table that also emits CSV.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Prints the aligned table followed by a CSV block.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{c:>w$}", w = w));
            }
            s
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", line(row));
        }
        println!();
        println!("-- CSV --");
        println!("{}", self.headers.join(","));
        for row in &self.rows {
            println!("{}", row.join(","));
        }
        println!();
    }
}

/// Formats seconds with engineering-friendly precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Formats byte counts.
pub fn fmt_bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b >= K * K * K {
        format!("{:.2}GiB", b / (K * K * K))
    } else if b >= K * K {
        format!("{:.2}MiB", b / (K * K))
    } else if b >= K {
        format!("{:.2}KiB", b / K)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_mismatched_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["1".into()]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(2.5e-3), "2.500ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500us");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
    }

    #[test]
    fn load_dataset_by_name() {
        let args = BenchArgs { scale_shift: 16, ..Default::default() };
        let (spec, reads) = load_dataset("Synthetic 20", &args);
        assert_eq!(spec.name, "Synthetic 20");
        assert!(!reads.is_empty());
    }

    #[test]
    fn default_args() {
        let a = BenchArgs::default();
        assert_eq!(a.scale_shift, 12);
        assert!(!a.quick);
    }

    #[test]
    fn from_iter_parses_known_and_survives_unknown_flags() {
        let argv = ["--scale-shift", "14", "--quick", "--tpyo", "--full", "--seed", "9"];
        let a = BenchArgs::from_iter(argv.iter().map(|s| s.to_string()), &["--full"]);
        // "--tpyo" only warns on stderr; parsing continues past it.
        assert_eq!(a.scale_shift, 14);
        assert_eq!(a.seed, 9);
        assert!(a.quick);
    }
}
