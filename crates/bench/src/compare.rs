//! Artifact-to-artifact regression comparison.
//!
//! Loads two directories of bench artifacts (see [`crate::artifact`]),
//! matches artifacts by harness name and rows by their non-duration cells,
//! parses every duration cell ([`crate::fmt_secs`] format: `2.500s` /
//! `2.500ms` / `2.500us`), and reports the per-cell ratio
//! `current / baseline`. A cell whose ratio exceeds a configurable
//! threshold is a **regression** — the `compare_artifacts` binary exits
//! non-zero when any exists, which is the CI performance gate.
//!
//! Only duration cells participate: counters, byte sizes and speedup
//! factors identify the row but are never themselves compared, so a
//! legitimate change in distinct-k-mer counts does not trip the gate.

use std::path::Path;

use dakc_sim::telemetry::json::{parse, JsonValue};

/// Parses one table cell in [`crate::fmt_secs`] format into seconds.
///
/// Returns `None` for anything that is not a plain duration (`"8"`,
/// `"1.25x"`, `"3.20KiB"`, `"OOM"`), which is how the comparator decides
/// whether a cell is part of the row key or a measured value.
pub fn parse_duration(cell: &str) -> Option<f64> {
    let cell = cell.trim();
    let (num, scale) = if let Some(n) = cell.strip_suffix("us") {
        (n, 1e-6)
    } else if let Some(n) = cell.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = cell.strip_suffix('s') {
        (n, 1.0)
    } else {
        return None;
    };
    let v: f64 = num.trim().parse().ok()?;
    (v.is_finite() && v >= 0.0).then_some(v * scale)
}

/// One matched duration cell across the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// Harness the cell came from (artifact file stem).
    pub harness: String,
    /// The row's identity: its non-duration cells as `header=value`.
    pub row_key: String,
    /// Column header of the duration cell.
    pub column: String,
    /// Baseline value in seconds.
    pub baseline_s: f64,
    /// Current value in seconds.
    pub current_s: f64,
}

impl CellDelta {
    /// Slowdown factor `current / baseline` (`> 1` means slower).
    pub fn ratio(&self) -> f64 {
        if self.baseline_s > 0.0 {
            self.current_s / self.baseline_s
        } else if self.current_s > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Outcome of comparing two artifact directories.
#[derive(Debug, Default)]
pub struct CompareReport {
    /// Every matched duration cell.
    pub deltas: Vec<CellDelta>,
    /// Rows or harnesses present on one side only (informational).
    pub unmatched: Vec<String>,
}

impl CompareReport {
    /// Cells whose slowdown exceeds `threshold` (e.g. `2.0` = 2× slower).
    pub fn regressions(&self, threshold: f64) -> Vec<&CellDelta> {
        self.deltas.iter().filter(|d| d.ratio() > threshold).collect()
    }

    /// Human-readable table of all deltas, worst first.
    pub fn render(&self, threshold: f64) -> String {
        let mut sorted: Vec<&CellDelta> = self.deltas.iter().collect();
        sorted.sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
        let mut out = String::new();
        for d in sorted {
            let flag = if d.ratio() > threshold { "  REGRESSION" } else { "" };
            out.push_str(&format!(
                "{:>6.2}x  {} [{}] {}: {} -> {}{flag}\n",
                d.ratio(),
                d.harness,
                d.row_key,
                d.column,
                crate::fmt_secs(d.baseline_s),
                crate::fmt_secs(d.current_s),
            ));
        }
        for u in &self.unmatched {
            out.push_str(&format!("   n/a  {u}\n"));
        }
        out
    }
}

/// A parsed artifact row, split into identity and measured cells.
struct SplitRow {
    key: String,
    durations: Vec<(String, f64)>,
}

fn split_rows(v: &JsonValue) -> Vec<SplitRow> {
    let Some(rows) = v.get("rows").and_then(JsonValue::as_arr) else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| {
            let obj = row.as_obj()?;
            let mut key = String::new();
            let mut durations = Vec::new();
            for (h, cell) in obj {
                let cell = cell.as_str().unwrap_or_default();
                match parse_duration(cell) {
                    Some(s) => durations.push((h.clone(), s)),
                    None => {
                        if !key.is_empty() {
                            key.push(' ');
                        }
                        key.push_str(&format!("{h}={cell}"));
                    }
                }
            }
            Some(SplitRow { key, durations })
        })
        .collect()
}

/// True when the two artifacts were produced with identical run
/// parameters (scale shift, PE count, seed, quick mode) — comparing
/// across different parameters would be meaningless.
fn params_match(a: &JsonValue, b: &JsonValue) -> bool {
    let get = |v: &JsonValue, k: &str| v.get("params").and_then(|p| p.get(k)).cloned();
    ["scale_shift", "pes_per_node", "seed", "quick"]
        .iter()
        .all(|k| match (get(a, k), get(b, k)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        })
}

/// Compares two artifact JSON bodies from the same harness.
pub fn compare_bodies(
    harness: &str,
    baseline: &str,
    current: &str,
    report: &mut CompareReport,
) -> Result<(), String> {
    let b = parse(baseline).map_err(|e| format!("{harness} baseline: {e}"))?;
    let c = parse(current).map_err(|e| format!("{harness} current: {e}"))?;
    if !params_match(&b, &c) {
        return Err(format!(
            "{harness}: baseline and current were run with different params"
        ));
    }
    let b_rows = split_rows(&b);
    let mut c_rows = split_rows(&c);
    for br in b_rows {
        // First unconsumed current row with the same identity cells.
        let Some(pos) = c_rows.iter().position(|cr| cr.key == br.key) else {
            report.unmatched.push(format!("{harness}: row [{}] missing from current", br.key));
            continue;
        };
        let cr = c_rows.swap_remove(pos);
        for (col, base_s) in br.durations {
            match cr.durations.iter().find(|(h, _)| *h == col) {
                Some(&(_, cur_s)) => report.deltas.push(CellDelta {
                    harness: harness.to_string(),
                    row_key: br.key.clone(),
                    column: col,
                    baseline_s: base_s,
                    current_s: cur_s,
                }),
                None => report.unmatched.push(format!(
                    "{harness}: column {col:?} of row [{}] missing from current",
                    br.key
                )),
            }
        }
    }
    for cr in c_rows {
        report.unmatched.push(format!("{harness}: row [{}] missing from baseline", cr.key));
    }
    Ok(())
}

/// Compares every `*.json` artifact present in **both** directories.
///
/// Errors on unreadable/invalid files or mismatched run parameters;
/// harnesses present on one side only are listed in
/// [`CompareReport::unmatched`] but are not an error (the baseline set is
/// allowed to cover a subset of the current run).
pub fn compare_dirs(baseline: &Path, current: &Path) -> Result<CompareReport, String> {
    let mut report = CompareReport::default();
    let entries = std::fs::read_dir(baseline)
        .map_err(|e| format!("{}: {e}", baseline.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("{}: no artifacts", baseline.display()));
    }
    for name in names {
        let harness = name.trim_end_matches(".json").to_string();
        let cur_path = current.join(&name);
        if !cur_path.exists() {
            report.unmatched.push(format!("{harness}: artifact missing from current run"));
            continue;
        }
        let read = |p: &Path| {
            std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))
        };
        compare_bodies(&harness, &read(&baseline.join(&name))?, &read(&cur_path)?, &mut report)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(times: &[(&str, &str)]) -> String {
        let rows: Vec<String> = times
            .iter()
            .map(|(n, t)| format!("{{\"Nodes\":\"{n}\",\"Time\":\"{t}\"}}"))
            .collect();
        format!(
            "{{\"schema_version\":1,\"harness\":\"h\",\"params\":{{\"scale_shift\":12,\
             \"pes_per_node\":6,\"seed\":42,\"quick\":true}},\"rows\":[{}],\
             \"metrics\":{{\"counters\":{{}},\"histograms\":{{}}}}}}",
            rows.join(",")
        )
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("2.500s"), Some(2.5));
        assert_eq!(parse_duration("2.500ms"), Some(2.5e-3));
        assert!((parse_duration("2.500us").unwrap() - 2.5e-6).abs() < 1e-18);
        assert_eq!(parse_duration("8"), None);
        assert_eq!(parse_duration("1.25x"), None);
        assert_eq!(parse_duration("3.20KiB"), None);
        assert_eq!(parse_duration("OOM"), None);
        assert_eq!(parse_duration("-1.0s"), None);
    }

    #[test]
    fn identical_artifacts_have_no_regressions() {
        let body = artifact(&[("4", "1.500ms"), ("8", "0.900ms")]);
        let mut r = CompareReport::default();
        compare_bodies("h", &body, &body, &mut r).unwrap();
        assert_eq!(r.deltas.len(), 2);
        assert!(r.regressions(1.01).is_empty());
        assert!(r.unmatched.is_empty());
    }

    #[test]
    fn synthetic_2x_regression_detected() {
        let base = artifact(&[("4", "1.500ms"), ("8", "0.900ms")]);
        let cur = artifact(&[("4", "1.600ms"), ("8", "1.900ms")]);
        let mut r = CompareReport::default();
        compare_bodies("h", &base, &cur, &mut r).unwrap();
        let bad = r.regressions(2.0);
        assert_eq!(bad.len(), 1, "{}", r.render(2.0));
        assert_eq!(bad[0].row_key, "Nodes=8");
        assert!((bad[0].ratio() - 1.9 / 0.9).abs() < 1e-12);
        // The 1.07x cell passes a 2x gate but fails a tight one.
        assert_eq!(r.regressions(1.05).len(), 2);
    }

    #[test]
    fn mismatched_rows_are_reported_not_compared() {
        let base = artifact(&[("4", "1.500ms"), ("16", "0.500ms")]);
        let cur = artifact(&[("4", "1.500ms"), ("8", "0.900ms")]);
        let mut r = CompareReport::default();
        compare_bodies("h", &base, &cur, &mut r).unwrap();
        assert_eq!(r.deltas.len(), 1);
        assert_eq!(r.unmatched.len(), 2);
    }

    #[test]
    fn different_params_error() {
        let base = artifact(&[("4", "1.500ms")]);
        let cur = base.replace("\"scale_shift\":12", "\"scale_shift\":14");
        let mut r = CompareReport::default();
        assert!(compare_bodies("h", &base, &cur, &mut r).is_err());
    }

    #[test]
    fn compare_dirs_end_to_end() {
        let root = std::env::temp_dir().join("dakc-compare-test");
        let (bd, cd) = (root.join("base"), root.join("cur"));
        std::fs::create_dir_all(&bd).unwrap();
        std::fs::create_dir_all(&cd).unwrap();
        std::fs::write(bd.join("h.json"), artifact(&[("4", "1.000ms")])).unwrap();
        std::fs::write(cd.join("h.json"), artifact(&[("4", "3.000ms")])).unwrap();
        let r = compare_dirs(&bd, &cd).unwrap();
        assert_eq!(r.regressions(2.0).len(), 1);
        assert!(r.render(2.0).contains("REGRESSION"));
    }
}
