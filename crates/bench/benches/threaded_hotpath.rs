//! Criterion microbenchmarks for the contention-free threaded hot path:
//! batch extraction vs the per-k-mer iterator, SPSC route-lane batch
//! sizes end to end, and monolithic vs radix-partitioned phase 2.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dakc::{count_kmers_threaded_opts, ThreadedOpts};
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
use dakc_kmer::{
    extract_into, kmers_of_read, minimizer_of, super_kmers, CanonicalMode, KmerCount, KmerWord,
};
use dakc_sort::{accumulate, distinct_runs_estimate, hybrid_sort, hybrid_sort_from, RadixKey};

fn reads(n: usize) -> dakc_io::ReadSet {
    let genome = generate_genome(&GenomeSpec { bases: 200_000, repeats: None }, 1);
    simulate_reads(&genome, &ReadSimConfig::art_like(n), 1)
}

fn kmer_vec(n: usize, mut x: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & u64::mask(31)
        })
        .collect()
}

/// Iterator-based extraction vs the batch `extract_into` path (which
/// carries the rolling reverse complement for O(1) canonical emits).
fn bench_extract_paths(c: &mut Criterion) {
    let rs = reads(2_000);
    let bases = rs.total_bases() as u64;
    let mut g = c.benchmark_group("extract_paths");
    g.throughput(Throughput::Bytes(bases));
    for mode in [CanonicalMode::Forward, CanonicalMode::Canonical] {
        let label = match mode {
            CanonicalMode::Forward => "forward",
            CanonicalMode::Canonical => "canonical",
        };
        g.bench_with_input(BenchmarkId::new("iterator", label), &mode, |b, &mode| {
            b.iter(|| {
                let mut acc = 0u64;
                for r in rs.iter() {
                    for w in kmers_of_read::<u64>(r, 31, mode) {
                        acc ^= w;
                    }
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("extract_into", label), &mode, |b, &mode| {
            b.iter(|| {
                let mut acc = 0u64;
                for r in rs.iter() {
                    extract_into::<u64>(r, 31, mode, |w| acc ^= w);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// End-to-end threaded counting across route-lane batch sizes: the
/// handoff-frequency vs amortization trade the `route_batch` knob exposes.
fn bench_route_batch(c: &mut Criterion) {
    let rs = reads(4_000);
    let kmers = rs.total_kmers(31) as u64;
    let mut g = c.benchmark_group("route_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(kmers));
    for rb in [64usize, 1024, 16_384] {
        g.bench_with_input(BenchmarkId::from_parameter(rb), &rb, |b, &rb| {
            let opts = ThreadedOpts { route_batch: rb, ..ThreadedOpts::default() };
            b.iter(|| {
                black_box(
                    count_kmers_threaded_opts::<u64>(
                        &rs,
                        31,
                        CanonicalMode::Forward,
                        4,
                        None,
                        &opts,
                    )
                    .counts
                    .len(),
                )
            })
        });
    }
    g.finish();
}

/// Per-k-mer minimizer maintenance: the reference O(k·m) full-window
/// rescan (`minimizer_of`, one call per k-mer position) vs the
/// monotonic-deque rolling window behind `super_kmers` (amortized O(1)
/// per base) — the path the super-k-mer producers and the KMC3 baseline
/// binning run on.
fn bench_minimizer(c: &mut Criterion) {
    let rs = reads(2_000);
    let bases = rs.total_bases() as u64;
    let (k, m) = (31usize, 7usize);
    let mut g = c.benchmark_group("minimizer");
    g.throughput(Throughput::Bytes(bases));
    g.bench_function("rescan_per_kmer", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in rs.iter() {
                for at in 0..r.len().saturating_sub(k - 1) {
                    if let Some(mz) = minimizer_of(r, at, k, m) {
                        acc ^= mz;
                    }
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("rolling_window", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in rs.iter() {
                for sk in super_kmers(r, k, m) {
                    // One emit per super-k-mer covers len - k + 1 k-mer
                    // positions; fold both in so the work is comparable.
                    acc ^= sk.minimizer.wrapping_mul((sk.len - k + 1) as u64);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Phase 2 on one owner's partition: one monolithic sort + accumulate vs
/// the engine's pre-partitioned form (scatter by top radix byte, sort each
/// cache-resident bucket from the next level down, fused accumulate).
fn bench_phase2(c: &mut Criterion) {
    let n = 1 << 18;
    let data = kmer_vec(n, 42);
    // k = 31 keys occupy 62 bits, so the top in-window byte is level 7.
    let bucket_level = (2 * 31 - 1) / 8;
    let mut g = c.benchmark_group("phase2_256k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("monolithic_sort_accumulate", |b| {
        b.iter(|| {
            let mut v = data.clone();
            hybrid_sort(&mut v);
            let counts: Vec<(u64, u32)> = accumulate(&v);
            black_box(counts.len())
        })
    });
    g.bench_function("radix_bucketed_fused", |b| {
        b.iter(|| {
            // Producer-side partition: counting-scatter by top byte.
            let mut hist = [0usize; 256];
            for &w in &data {
                hist[w.radix_at(bucket_level) as usize] += 1;
            }
            let mut starts = [0usize; 256];
            let mut sum = 0usize;
            for (s, &c) in starts.iter_mut().zip(hist.iter()) {
                *s = sum;
                sum += c;
            }
            let mut cursor = starts;
            let mut v = vec![0u64; data.len()];
            for &w in &data {
                let bkt = w.radix_at(bucket_level) as usize;
                v[cursor[bkt]] = w;
                cursor[bkt] += 1;
            }
            // Owner-side: sort each cache-resident bucket, fused sweep.
            for bkt in 0..256 {
                let (lo, hi) = (starts[bkt], cursor[bkt]);
                if hi - lo > 1 {
                    hybrid_sort_from(&mut v[lo..hi], bucket_level - 1);
                }
            }
            let mut counts: Vec<KmerCount<u64>> =
                Vec::with_capacity(distinct_runs_estimate(&v));
            for &w in &v {
                match counts.last_mut() {
                    Some(c) if c.kmer == w => c.count = c.count.saturating_add(1),
                    _ => counts.push(KmerCount::new(w, 1)),
                }
            }
            black_box(counts.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_extract_paths, bench_route_batch, bench_minimizer, bench_phase2);
criterion_main!(benches);
