//! Criterion microbenchmarks for the hot kernels: k-mer extraction,
//! owner hashing, the sorting substrate, and end-to-end threaded counting.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
use dakc_kmer::{kmers_of_read, owner_pe, CanonicalMode, KmerWord};
use dakc_sort::{hybrid_sort, lsd_radix_sort, msd_radix_sort, parallel_radix_sort, quicksort};

fn reads(n: usize) -> dakc_io::ReadSet {
    let genome = generate_genome(&GenomeSpec { bases: 200_000, repeats: None }, 1);
    simulate_reads(&genome, &ReadSimConfig::art_like(n), 1)
}

fn xorshift_vec(n: usize, mut x: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

fn bench_extraction(c: &mut Criterion) {
    let rs = reads(2_000);
    let bases = rs.total_bases() as u64;
    let mut g = c.benchmark_group("extraction");
    g.throughput(Throughput::Bytes(bases));
    for k in [15usize, 31] {
        g.bench_with_input(BenchmarkId::new("forward_u64", k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = 0u64;
                for r in rs.iter() {
                    for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                        acc ^= w;
                    }
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("canonical_u64", k), &k, |b, &k| {
            b.iter(|| {
                let mut acc = 0u64;
                for r in rs.iter() {
                    for w in kmers_of_read::<u64>(r, k, CanonicalMode::Canonical) {
                        acc ^= w;
                    }
                }
                black_box(acc)
            })
        });
    }
    g.bench_function("forward_u128_k41", |b| {
        b.iter(|| {
            let mut acc = 0u128;
            for r in rs.iter() {
                for w in kmers_of_read::<u128>(r, 41, CanonicalMode::Forward) {
                    acc ^= w;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_owner_hash(c: &mut Criterion) {
    let kmers = xorshift_vec(100_000, 7);
    let mut g = c.benchmark_group("owner_pe");
    g.throughput(Throughput::Elements(kmers.len() as u64));
    for p in [48usize, 6144] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let mut acc = 0usize;
                for &w in &kmers {
                    acc = acc.wrapping_add(owner_pe(w, p));
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_sorts(c: &mut Criterion) {
    let n = 1 << 17;
    let data = xorshift_vec(n, 42);
    // k = 31 k-mers occupy 62 bits; mask to be representative.
    let data: Vec<u64> = data.into_iter().map(|x| x & u64::mask(31)).collect();

    let mut g = c.benchmark_group("sort_128k_kmers");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("lsd_radix", |b| {
        b.iter(|| {
            let mut v = data.clone();
            lsd_radix_sort(&mut v);
            black_box(v.len())
        })
    });
    g.bench_function("msd_radix", |b| {
        b.iter(|| {
            let mut v = data.clone();
            msd_radix_sort(&mut v);
            black_box(v.len())
        })
    });
    g.bench_function("ska_hybrid", |b| {
        b.iter(|| {
            let mut v = data.clone();
            hybrid_sort(&mut v);
            black_box(v.len())
        })
    });
    g.bench_function("quicksort", |b| {
        b.iter(|| {
            let mut v = data.clone();
            quicksort(&mut v);
            black_box(v.len())
        })
    });
    g.bench_function("std_unstable", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            black_box(v.len())
        })
    });
    g.bench_function("parallel_radix_4t", |b| {
        b.iter(|| {
            let mut v = data.clone();
            parallel_radix_sort(&mut v, 4);
            black_box(v.len())
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let rs = reads(4_000);
    let kmers = rs.total_kmers(31) as u64;
    let mut g = c.benchmark_group("count_threaded");
    g.sample_size(10);
    g.throughput(Throughput::Elements(kmers));
    for t in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("dakc", t), &t, |b, &t| {
            b.iter(|| {
                black_box(
                    dakc::count_kmers_threaded::<u64>(&rs, 31, CanonicalMode::Forward, t, None)
                        .counts
                        .len(),
                )
            })
        });
    }
    g.bench_function("kmc3_4t", |b| {
        b.iter(|| {
            black_box(
                dakc_baselines::count_kmers_kmc3::<u64>(
                    &rs,
                    &dakc_baselines::Kmc3Config::defaults(31, 4),
                )
                .counts
                .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_owner_hash,
    bench_sorts,
    bench_end_to_end
);
criterion_main!(benches);
