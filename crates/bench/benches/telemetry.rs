//! Verifies the zero-cost claim: running the full aggregation cascade
//! under the simulator with tracing *disabled* must cost the same as
//! before the telemetry hooks existed (the `TraceSink::Off` arm is one
//! discriminant test, the event-constructing closures never run, and a
//! disabled `FlowSampler` is a single `Option` check per packet open).
//! Compare `cascade/trace_off` against `cascade/trace_ring` to see what
//! enabling the flight recorder costs, and against `cascade/flow_full`
//! for flight recorder + full-rate causal flow tagging.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dakc::{count_kmers_sim_traced, DakcConfig};
use dakc_io::{generate_genome, simulate_reads, GenomeSpec, ReadSimConfig};
use dakc_sim::{MachineConfig, TraceSink};

fn reads(n: usize) -> dakc_io::ReadSet {
    let genome = generate_genome(&GenomeSpec { bases: 120_000, repeats: None }, 7);
    simulate_reads(&genome, &ReadSimConfig::art_like(n), 7)
}

fn bench_cascade_tracing(c: &mut Criterion) {
    let rs = reads(1_500);
    let cfg = DakcConfig::scaled_defaults(31).with_l3();
    let mut machine = MachineConfig::phoenix_intel(2);
    machine.pes_per_node = 4;

    let mut g = c.benchmark_group("cascade");
    g.bench_function("trace_off", |b| {
        b.iter(|| {
            let mut sink = TraceSink::Off;
            let run = count_kmers_sim_traced::<u64>(&rs, &cfg, &machine, &mut sink).unwrap();
            black_box(run.counts.len())
        })
    });
    g.bench_function("trace_ring", |b| {
        b.iter(|| {
            let mut sink = TraceSink::ring_default();
            let run = count_kmers_sim_traced::<u64>(&rs, &cfg, &machine, &mut sink).unwrap();
            black_box((run.counts.len(), sink.events().len()))
        })
    });
    let flow_cfg = cfg.clone().with_trace_sample(1);
    g.bench_function("flow_full", |b| {
        b.iter(|| {
            let mut sink = TraceSink::ring_default();
            let run = count_kmers_sim_traced::<u64>(&rs, &flow_cfg, &machine, &mut sink).unwrap();
            black_box((run.counts.len(), sink.events().len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cascade_tracing);
criterion_main!(benches);
