//! # dakc-net — a real multi-process transport under the Conveyor L0
//!
//! The simulator (`dakc-sim`) delivers L0 `PUT` buffers in virtual time;
//! this crate delivers the *same wire bytes* between real endpoints:
//!
//! * [`frame`] — length-prefixed message framing (`[len: u32 LE][kind: u8]
//!   [payload]`) with an incremental decoder that tolerates arbitrarily
//!   split reads;
//! * [`transport`] — the [`Transport`] trait: rank identity, nonblocking
//!   `send`/`try_recv` of data frames, `flush`, a full barrier, and a
//!   four-counter (Mattern/Dijkstra-style) termination-detection round;
//! * [`loopback`] — an in-process backend over shared queues, for tests
//!   and single-host thread-per-rank runs;
//! * [`tcp`] — a backend over `std::net::TcpStream` with per-peer buffered
//!   writers sized to the L0 buffer config, reader threads feeding a
//!   shared inbox, and all-to-all connection setup from an address list or
//!   a rendezvous directory;
//! * [`fabric`] — [`NetFabric`], the [`dakc_conveyors::Fabric`]
//!   implementation that lets the whole L1–L3 cascade (HEAVY channel and
//!   `{kmer, count}` wire format included) run unchanged over a
//!   [`Transport`];
//! * [`error`] — the typed [`NetError`] taxonomy every fallible operation
//!   returns: rank-attributed disconnects, corrupt/oversized frames, and
//!   phase-attributed timeouts, instead of panics and hangs;
//! * [`chaos`] — [`ChaosTransport`], seeded deterministic fault injection
//!   (drops, duplicates, delays, corrupt writes, scripted rank death and
//!   freezes) over any transport;
//! * [`supervisor`] — worker heartbeat frames and the launcher-side
//!   [`Supervisor`] that detects dead or silently hung ranks and renders
//!   the per-rank diagnostic report;
//! * [`clock`] — NTP-style offset estimation against rank 0, run over
//!   ordinary data frames, so per-rank wall-clock traces merge onto one
//!   timeline (the distributed flight recorder's clock model).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod clock;
pub mod error;
pub mod fabric;
pub mod frame;
pub mod loopback;
pub mod supervisor;
pub mod tcp;
pub mod transport;

pub use chaos::{splitmix64, ChaosConfig, ChaosTransport};
pub use clock::{estimate_offset, sync_offset, PingSample, DEFAULT_PINGS};
pub use error::{NetError, NetResult};
pub use fabric::NetFabric;
pub use frame::{encode_frame, FrameDecoder, FrameError, FrameKind, MAX_FRAME_LEN};
pub use loopback::{Loopback, TimedBarrier};
pub use supervisor::{
    send_obituary, send_obituary_inc, Heartbeat, HeartbeatSender, HeartbeatState, PeerHealth,
    Phase, Supervisor, NO_BLAME,
};
pub use tcp::{announce_recovery, TcpTransport, RECOVER_HELLO};
pub use transport::{NetNote, NetStats, NetTuning, PeerStats, Rank, TermDetector, Transport};
