//! Length-prefixed message framing.
//!
//! One frame on the wire is
//!
//! ```text
//! [len: u32 LE] [kind: u8] [payload: len − 1 bytes]
//! ```
//!
//! where `len` counts the kind byte plus the payload. `Data` frames carry
//! one L0 `PUT` buffer verbatim — the conveyor's record wire format
//! (routing header, channel id, length prefix, payload) is opaque here.
//! `Barrier` and `Term` frames carry the collective-protocol payloads of
//! [`crate::transport`].
//!
//! [`FrameDecoder`] is incremental: feed it whatever byte ranges the
//! socket returns (frames may arrive split at any offset, or many per
//! read) and pull complete frames out.

/// Hard upper bound on one frame's length field, as a corruption guard.
/// L0 buffers are at most `c0_bytes` (40 KiB in production) plus one
/// oversized record; gather frames stay under 1 MiB by construction.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Application bytes (one conveyor `PUT` buffer, or a gather chunk).
    Data,
    /// Barrier announcement: `[epoch: u64 LE]`.
    Barrier,
    /// Termination-detection contribution:
    /// `[round: u64 LE][sent: u64 LE][received: u64 LE]`.
    Term,
    /// Worker liveness beacon to the launch supervisor
    /// ([`crate::supervisor::Heartbeat`] wire format).
    Heartbeat,
    /// A serve-mode request (point/batched lookup, histogram, top-N).
    /// The payload's leading opcode byte belongs to the serve wire
    /// protocol; the framing layer does not interpret it.
    Query,
    /// A serve-mode response paired to an earlier [`FrameKind::Query`].
    Reply,
    /// Recovery announcement from the launch supervisor:
    /// `[rank: u32 LE][incarnation: u32 LE]` — the named rank died and is
    /// being respawned under the given incarnation number. Survivors mask
    /// the rank until its new incarnation dials back in.
    Recover,
}

impl FrameKind {
    /// Wire tag for this kind.
    pub fn to_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Barrier => 1,
            FrameKind::Term => 2,
            FrameKind::Heartbeat => 3,
            FrameKind::Query => 4,
            FrameKind::Reply => 5,
            FrameKind::Recover => 6,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Barrier),
            2 => Some(FrameKind::Term),
            3 => Some(FrameKind::Heartbeat),
            4 => Some(FrameKind::Query),
            5 => Some(FrameKind::Reply),
            6 => Some(FrameKind::Recover),
            _ => None,
        }
    }
}

/// Encodes one frame: length prefix, kind tag, payload.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    assert!(len <= MAX_FRAME_LEN, "frame payload too large: {len}");
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(kind.to_u8());
    out.extend_from_slice(payload);
    out
}

/// A malformed byte stream (corrupt length or unknown kind tag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`] or is zero.
    BadLength(u32),
    /// The kind tag is not a known [`FrameKind`].
    BadKind(u8),
    /// The length prefix exceeds the decoder's configured bound (a
    /// corruption guard: a flipped 4-byte prefix must not trigger a
    /// multi-GB allocation).
    Oversized {
        /// The announced frame length.
        len: u32,
        /// The decoder's configured maximum.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(l) => write!(f, "bad frame length {l}"),
            FrameError::BadKind(k) => write!(f, "bad frame kind {k}"),
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: length {len} > max {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder over an arbitrarily-chunked byte stream.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so feeding many small
    /// chunks stays O(bytes).
    at: usize,
    /// Largest acceptable frame length; prefixes past this are rejected
    /// as [`FrameError::Oversized`] before any payload is buffered.
    max_len: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self { buf: Vec::new(), at: 0, max_len: MAX_FRAME_LEN }
    }
}

impl FrameDecoder {
    /// A fresh decoder accepting frames up to [`MAX_FRAME_LEN`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A decoder with a tighter length bound (clamped to
    /// [`MAX_FRAME_LEN`]). Transports size this from the job's L0 buffer
    /// config so a corrupt prefix cannot demand a giant allocation.
    pub fn with_max_len(max_len: usize) -> Self {
        Self { max_len: max_len.clamp(1, MAX_FRAME_LEN), ..Self::default() }
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.at > 0 && self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
        } else if self.at > (64 << 10).min(self.buf.len()) {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one has fully arrived.
    pub fn next_frame(&mut self) -> Result<Option<(FrameKind, Vec<u8>)>, FrameError> {
        let avail = self.buf.len() - self.at;
        if avail < 4 {
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.at..self.at + 4].try_into().expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes);
        if len == 0 {
            return Err(FrameError::BadLength(len));
        }
        if len as usize > self.max_len {
            return Err(FrameError::Oversized { len, max: self.max_len as u32 });
        }
        let len = len as usize;
        if avail < 4 + len {
            return Ok(None);
        }
        let kind_byte = self.buf[self.at + 4];
        let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
        let payload = self.buf[self.at + 5..self.at + 4 + len].to_vec();
        self.at += 4 + len;
        Ok(Some((kind, payload)))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_one_frame() {
        let mut dec = FrameDecoder::new();
        dec.feed(&encode_frame(FrameKind::Data, b"hello"));
        assert_eq!(
            dec.next_frame().unwrap(),
            Some((FrameKind::Data, b"hello".to_vec()))
        );
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn empty_payload_frame() {
        let mut dec = FrameDecoder::new();
        dec.feed(&encode_frame(FrameKind::Barrier, &[]));
        assert_eq!(dec.next_frame().unwrap(), Some((FrameKind::Barrier, vec![])));
    }

    #[test]
    fn byte_at_a_time() {
        let wire = encode_frame(FrameKind::Term, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut dec = FrameDecoder::new();
        for (i, b) in wire.iter().enumerate() {
            dec.feed(std::slice::from_ref(b));
            let got = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some((FrameKind::Term, vec![1, 2, 3, 4, 5, 6, 7, 8])));
            }
        }
    }

    #[test]
    fn rejects_bad_kind() {
        let mut wire = encode_frame(FrameKind::Data, b"x");
        wire[4] = 9;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame(), Err(FrameError::BadKind(9)));
    }

    #[test]
    fn rejects_zero_length() {
        let mut dec = FrameDecoder::new();
        dec.feed(&0u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(FrameError::BadLength(0)));
    }

    #[test]
    fn rejects_oversized_prefix_before_payload_arrives() {
        // A corrupt 4-byte prefix announcing a huge frame fails as soon
        // as the prefix is complete — no payload bytes are demanded or
        // buffered first.
        let mut dec = FrameDecoder::with_max_len(1024);
        dec.feed(&u32::MAX.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::Oversized { len: u32::MAX, max: 1024 })
        );
        assert!(dec.pending_bytes() <= 4, "nothing beyond the prefix buffered");
    }

    #[test]
    fn max_len_bound_is_inclusive() {
        let mut dec = FrameDecoder::with_max_len(6);
        // len = 6: kind byte + 5-byte payload — exactly at the bound.
        dec.feed(&encode_frame(FrameKind::Data, b"01234"));
        assert_eq!(
            dec.next_frame().unwrap(),
            Some((FrameKind::Data, b"01234".to_vec()))
        );
        // One byte more is rejected.
        let mut dec = FrameDecoder::with_max_len(6);
        dec.feed(&encode_frame(FrameKind::Data, b"012345"));
        assert_eq!(dec.next_frame(), Err(FrameError::Oversized { len: 7, max: 6 }));
    }

    // Any sequence of frames, split at arbitrary points, decodes back to
    // the same sequence.
    proptest! {
        #[test]
        fn split_read_roundtrip(
            frames in prop::collection::vec(
                (0u8..7, prop::collection::vec(any::<u8>(), 0..300)),
                1..20,
            ),
            splits in prop::collection::vec(1usize..97, 1..40),
        ) {
            let frames: Vec<(FrameKind, Vec<u8>)> = frames
                .into_iter()
                .map(|(k, p)| (FrameKind::from_u8(k).unwrap(), p))
                .collect();
            let mut wire = Vec::new();
            for (k, p) in &frames {
                wire.extend_from_slice(&encode_frame(*k, p));
            }
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let mut at = 0usize;
            let mut si = 0usize;
            while at < wire.len() {
                let step = splits[si % splits.len()].min(wire.len() - at);
                si += 1;
                dec.feed(&wire[at..at + step]);
                at += step;
                while let Some(f) = dec.next_frame().unwrap() {
                    got.push(f);
                }
            }
            prop_assert_eq!(got, frames);
            prop_assert_eq!(dec.pending_bytes(), 0);
        }
    }
}
