//! Clock alignment for merged multi-rank traces.
//!
//! Every rank's flight recorder stamps events against its own process
//! clock (seconds since that rank's fabric was created), so naively
//! merging per-rank traces interleaves unrelated clock domains and the
//! cross-rank flow arrows point backwards in time. This module estimates
//! each rank's offset to rank 0's clock with the classic NTP ping
//! exchange, run over ordinary data frames before the Parse phase:
//!
//! ```text
//!   rank i                rank 0
//!   t0: ping(seq,t0) ───▶ t1: receipt stamped
//!                         t2: pong(seq,t0,t1,t2) sent
//!   t3: pong received
//!
//!   offset  θ = ((t1 − t0) + (t2 − t3)) / 2      (rank-0 minus local)
//!   delay   δ = (t3 − t0) − (t2 − t1)            (round-trip, minus turn)
//! ```
//!
//! θ is exact when the outbound and return paths are equally fast; path
//! asymmetry biases it by half the asymmetry, which is why each rank
//! exchanges several pings and keeps the minimum-delay sample — the round
//! least likely to have queued behind other traffic (DESIGN.md §6). Rank 0
//! is the reference and has offset 0 by definition.
//!
//! The exchange uses only [`Transport::send`] / [`Transport::try_recv`],
//! so it works identically over TCP and the in-process loopback, and its
//! sends and receives are symmetric: every ping and pong is consumed
//! before the closing barrier, leaving the four-counter termination
//! totals balanced when Parse begins.

use std::time::{Duration, Instant};

use crate::error::{NetError, NetResult};
use crate::transport::Transport;

/// Pings each non-zero rank exchanges with rank 0.
pub const DEFAULT_PINGS: u32 = 8;

/// Ping wire format: `[0u8][seq u32 LE][t0 f64 LE]`.
const PING_LEN: usize = 13;
/// Pong wire format: `[1u8][seq u32 LE][t0 f64 LE][t1 f64 LE][t2 f64 LE]`.
const PONG_LEN: usize = 29;

/// One completed ping round's four timestamps: `t0`/`t3` on the probing
/// rank's clock, `t1`/`t2` on the reference clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingSample {
    /// Ping send time (local clock).
    pub t0: f64,
    /// Ping receipt time (reference clock).
    pub t1: f64,
    /// Pong send time (reference clock).
    pub t2: f64,
    /// Pong receipt time (local clock).
    pub t3: f64,
}

impl PingSample {
    /// The NTP offset estimate: reference-clock minus local-clock.
    pub fn offset(&self) -> f64 {
        ((self.t1 - self.t0) + (self.t2 - self.t3)) / 2.0
    }

    /// Round-trip delay with the reference's turn-around time removed.
    pub fn delay(&self) -> f64 {
        (self.t3 - self.t0) - (self.t2 - self.t1)
    }
}

/// Offset of the minimum-delay sample — the standard NTP filter: the
/// fastest round trip queued the least, so its symmetric-path assumption
/// is the most trustworthy. `None` on an empty slice.
pub fn estimate_offset(samples: &[PingSample]) -> Option<f64> {
    samples
        .iter()
        .min_by(|a, b| a.delay().total_cmp(&b.delay()))
        .map(PingSample::offset)
}

/// Runs the clock-alignment exchange and returns this rank's offset to
/// rank 0 (add it to local timestamps to land on rank 0's clock).
///
/// `now` reads this rank's trace clock. All ranks must call this at the
/// same protocol point: non-zero ranks each send `pings` pings and await
/// the pongs, rank 0 serves exactly `(num_ranks − 1) × pings` pings, and
/// everyone meets at a closing barrier. A silent peer fails the exchange
/// with a typed `Timeout` after `deadline`.
pub fn sync_offset<T: Transport>(
    t: &mut T,
    mut now: impl FnMut() -> f64,
    pings: u32,
    deadline: Duration,
) -> NetResult<f64> {
    let offset = if t.num_ranks() < 2 {
        0.0
    } else if t.rank() == 0 {
        serve_pings(t, &mut now, pings, deadline)?;
        0.0
    } else {
        probe(t, &mut now, pings, deadline)?
    };
    t.barrier()?;
    Ok(offset)
}

/// Rank 0: stamp and answer every expected ping.
fn serve_pings<T: Transport>(
    t: &mut T,
    now: &mut impl FnMut() -> f64,
    pings: u32,
    deadline: Duration,
) -> NetResult<()> {
    let mut remaining = (t.num_ranks() as u64 - 1) * u64::from(pings);
    let started = Instant::now();
    while remaining > 0 {
        let Some((src, frame)) = t.try_recv()? else {
            if started.elapsed() > deadline {
                return Err(NetError::timeout("clock_sync", started.elapsed(), t.diagnostics()));
            }
            std::thread::yield_now();
            continue;
        };
        let t1 = now();
        if frame.len() != PING_LEN || frame[0] != 0 {
            return Err(NetError::Protocol {
                detail: format!("rank {src} sent a malformed clock ping ({} bytes)", frame.len()),
            });
        }
        let mut pong = Vec::with_capacity(PONG_LEN);
        pong.push(1u8);
        pong.extend_from_slice(&frame[1..PING_LEN]); // echo seq + t0
        pong.extend_from_slice(&t1.to_le_bytes());
        pong.extend_from_slice(&now().to_le_bytes()); // t2: as late as possible
        t.send(src, &pong)?;
        t.flush()?;
        remaining -= 1;
    }
    Ok(())
}

/// Non-zero rank: ping rank 0 `pings` times and keep the best sample.
fn probe<T: Transport>(
    t: &mut T,
    now: &mut impl FnMut() -> f64,
    pings: u32,
    deadline: Duration,
) -> NetResult<f64> {
    let started = Instant::now();
    let mut samples = Vec::with_capacity(pings as usize);
    for seq in 0..pings.max(1) {
        let t0 = now();
        let mut ping = Vec::with_capacity(PING_LEN);
        ping.push(0u8);
        ping.extend_from_slice(&seq.to_le_bytes());
        ping.extend_from_slice(&t0.to_le_bytes());
        t.send(0, &ping)?;
        t.flush()?;
        loop {
            let Some((src, frame)) = t.try_recv()? else {
                if started.elapsed() > deadline {
                    return Err(NetError::timeout(
                        "clock_sync",
                        started.elapsed(),
                        t.diagnostics(),
                    ));
                }
                std::thread::yield_now();
                continue;
            };
            let t3 = now();
            if src != 0 || frame.len() != PONG_LEN || frame[0] != 1 {
                return Err(NetError::Protocol {
                    detail: format!(
                        "rank {src} sent a malformed clock pong ({} bytes)",
                        frame.len()
                    ),
                });
            }
            // Infallible: the PONG_LEN check above fixes the frame size,
            // so every fixed-range slice below is in bounds.
            let echoed_seq = u32::from_le_bytes(frame[1..5].try_into().unwrap());
            if echoed_seq != seq {
                // A pong from an earlier (slow) round; ignore it — its
                // ping's sample would be stale anyway.
                continue;
            }
            let t0 = f64::from_le_bytes(frame[5..13].try_into().unwrap());
            let t1 = f64::from_le_bytes(frame[13..21].try_into().unwrap());
            let t2 = f64::from_le_bytes(frame[21..29].try_into().unwrap());
            samples.push(PingSample { t0, t1, t2, t3 });
            break;
        }
    }
    Ok(estimate_offset(&samples).unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::Loopback;

    /// Builds the sample a probe would record when the true offset is
    /// `theta` (reference minus local), the outbound path takes `out_s`,
    /// and the return path takes `back_s`.
    fn sample(t0: f64, theta: f64, out_s: f64, back_s: f64) -> PingSample {
        let t1 = t0 + out_s + theta;
        let t2 = t1 + 1e-6; // turn-around at the reference
        let t3 = t2 + back_s - theta;
        PingSample { t0, t1, t2, t3 }
    }

    #[test]
    fn symmetric_delay_recovers_exact_offset() {
        for theta in [-42.0, -0.5, 0.0, 0.5, 1e3] {
            let s = sample(10.0, theta, 2e-3, 2e-3);
            assert!((s.offset() - theta).abs() < 1e-12, "theta={theta}: {}", s.offset());
            assert!((s.delay() - 4e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn asymmetric_delay_bias_is_half_the_asymmetry() {
        // Outbound 9 ms, return 1 ms: the estimate is off by (9−1)/2 = 4 ms
        // (the slow outbound leg makes the reference look 4 ms later).
        let theta = 7.5;
        let s = sample(0.0, theta, 9e-3, 1e-3);
        let bias = s.offset() - theta;
        assert!((bias - 4e-3).abs() < 1e-12, "bias={bias}");
        // The bias is bounded by delay/2 regardless of the split.
        assert!(bias.abs() <= s.delay() / 2.0 + 1e-12);
    }

    #[test]
    fn min_delay_sample_wins() {
        let theta = -3.0;
        let samples = vec![
            sample(0.0, theta, 20e-3, 2e-3), // badly asymmetric, slow
            sample(1.0, theta, 1e-3, 1e-3),  // clean, fast round
            sample(2.0, theta, 2e-3, 30e-3), // asymmetric the other way
        ];
        let est = estimate_offset(&samples).unwrap();
        assert!((est - theta).abs() < 1e-12, "est={est}");
        assert_eq!(estimate_offset(&[]), None);
    }

    #[test]
    fn loopback_exchange_recovers_injected_skew() {
        // Rank 1's trace clock runs 100 s ahead of rank 0's; the estimated
        // offset (rank 0 minus rank 1) must come out near −100 s. Loopback
        // round trips are microseconds, so millisecond tolerance is ample.
        let start = Instant::now();
        let mut mesh = Loopback::mesh(2);
        let r1 = mesh.pop().unwrap();
        let r0 = mesh.pop().unwrap();
        let h0 = std::thread::spawn(move || {
            let mut t = r0;
            sync_offset(&mut t, || start.elapsed().as_secs_f64(), DEFAULT_PINGS, Duration::from_secs(10))
        });
        let h1 = std::thread::spawn(move || {
            let mut t = r1;
            sync_offset(
                &mut t,
                || start.elapsed().as_secs_f64() + 100.0,
                DEFAULT_PINGS,
                Duration::from_secs(10),
            )
        });
        let off0 = h0.join().unwrap().expect("rank 0 syncs");
        let off1 = h1.join().unwrap().expect("rank 1 syncs");
        assert_eq!(off0, 0.0, "the reference rank never moves");
        assert!((off1 + 100.0).abs() < 50e-3, "estimated {off1}, wanted ≈ −100");
        // Aligned clocks agree: local + offset lands on rank 0's domain.
        let local1 = start.elapsed().as_secs_f64() + 100.0;
        let aligned1 = local1 + off1;
        assert!((aligned1 - start.elapsed().as_secs_f64()).abs() < 50e-3);
    }

    /// Runs the 2-rank loopback exchange with rank 1's clock shifted by
    /// `skew` seconds relative to rank 0, returning rank 1's estimate.
    fn loopback_offset_with_skew(skew: f64, pings: u32) -> f64 {
        let start = Instant::now();
        let mut mesh = Loopback::mesh(2);
        let r1 = mesh.pop().unwrap();
        let r0 = mesh.pop().unwrap();
        let h0 = std::thread::spawn(move || {
            let mut t = r0;
            sync_offset(&mut t, || start.elapsed().as_secs_f64(), pings, Duration::from_secs(10))
        });
        let h1 = std::thread::spawn(move || {
            let mut t = r1;
            sync_offset(
                &mut t,
                move || start.elapsed().as_secs_f64() + skew,
                pings,
                Duration::from_secs(10),
            )
        });
        assert_eq!(h0.join().unwrap().expect("rank 0 syncs"), 0.0);
        h1.join().unwrap().expect("rank 1 syncs")
    }

    #[test]
    fn loopback_exchange_recovers_negative_skew() {
        // Rank 1's clock runs 100 s *behind* rank 0 (spawn skew can go
        // either way); the offset (rank 0 minus rank 1) must come out
        // near +100 s — the mirror of the positive-skew test above.
        let off1 = loopback_offset_with_skew(-100.0, DEFAULT_PINGS);
        assert!((off1 - 100.0).abs() < 50e-3, "estimated {off1}, wanted ≈ +100");
    }

    #[test]
    fn loopback_exchange_resolves_sub_millisecond_skew() {
        // A 500 µs skew is the same order as scheduler noise, so this is
        // the regime where the min-delay filter earns its keep: loopback
        // round trips are single-digit µs, and the best of 16 pings must
        // recover the offset to well under the skew itself.
        let skew = 500e-6;
        let off1 = loopback_offset_with_skew(skew, 16);
        assert!(
            (off1 + skew).abs() < 250e-6,
            "estimated {off1}, wanted ≈ {:.0} µs",
            -skew * 1e6
        );
    }

    #[test]
    fn synthetic_negative_and_tiny_offsets_are_exact() {
        // Deterministic counterpart of the loopback tests: with symmetric
        // paths the estimator is exact for skew of either sign and any
        // magnitude, down to microseconds.
        for theta in [-100.0, -1e-3, -250e-6, 250e-6, 1e-3] {
            let samples = vec![
                sample(0.0, theta, 5e-3, 1e-3), // asymmetric decoy
                sample(1.0, theta, 40e-6, 40e-6), // clean fast round
            ];
            let est = estimate_offset(&samples).unwrap();
            assert!((est - theta).abs() < 1e-12, "theta={theta}: est={est}");
        }
    }

    #[test]
    fn single_rank_skips_the_exchange() {
        let mut t = Loopback::mesh(1).pop().unwrap();
        let off = sync_offset(&mut t, || 0.0, DEFAULT_PINGS, Duration::from_secs(1)).unwrap();
        assert_eq!(off, 0.0);
        assert_eq!(t.stats().frames_sent(), 0, "no pings for a 1-rank job");
    }
}
