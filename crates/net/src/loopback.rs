//! In-process [`Transport`] backend over shared queues.
//!
//! [`Loopback::mesh`] builds all N endpoints at once; hand one to each
//! thread (they are `Send`). Delivery is a per-rank FIFO of `(src, bytes)`
//! pairs, so per-peer ordering matches the TCP backend. Barriers use a
//! deadline-aware [`TimedBarrier`]: when a peer errors out and never
//! arrives, the survivors fail with [`NetError::Timeout`] after the
//! configured collective deadline instead of hanging forever — the same
//! contract the TCP backend gives. Termination rounds publish per-rank
//! totals to a shared table between two barrier waits, so every rank sums
//! the same snapshot.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::{NetError, NetResult};
use crate::transport::{NetStats, NetTuning, Rank, TermDetector, Transport};

/// A reusable N-party barrier whose wait takes a deadline.
///
/// Unlike [`std::sync::Barrier`], a waiter that times out *withdraws* its
/// arrival, so a partially-assembled generation does not strand later
/// arrivals: every survivor of a failed generation times out, and the
/// barrier is left consistent for (hypothetical) later use.
#[derive(Debug)]
pub struct TimedBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
    n: usize,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl TimedBarrier {
    /// A barrier for `n` parties.
    pub fn new(n: usize) -> Self {
        Self {
            state: Mutex::new(BarrierState { arrived: 0, generation: 0 }),
            cvar: Condvar::new(),
            n,
        }
    }

    /// Blocks until all `n` parties arrive or `timeout` passes. `Ok`
    /// means the barrier tripped; `Err` carries the time actually waited.
    pub fn wait(&self, timeout: Duration) -> Result<(), Duration> {
        let start = Instant::now();
        let mut state = self.state.lock().expect("barrier state");
        state.arrived += 1;
        if state.arrived == self.n {
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = state.generation;
        while state.generation == gen {
            let waited = start.elapsed();
            if waited >= timeout {
                // Withdraw our arrival so a straggler that shows up later
                // does not trip the barrier with a phantom party.
                state.arrived = state.arrived.saturating_sub(1);
                return Err(waited);
            }
            let (s, _) = self
                .cvar
                .wait_timeout(state, timeout.saturating_sub(waited))
                .expect("barrier wait");
            state = s;
        }
        Ok(())
    }
}

/// A rank's delivery FIFO of `(src, frame bytes)` pairs.
type Inbox = Mutex<VecDeque<(Rank, Vec<u8>)>>;

#[derive(Debug)]
struct Shared {
    /// One inbox per rank.
    inboxes: Vec<Inbox>,
    barrier: TimedBarrier,
    /// Per-rank `(sent, received)` contributions for the current
    /// termination round.
    term: Mutex<Vec<(u64, u64)>>,
}

/// One rank's endpoint of an in-process mesh.
#[derive(Debug)]
pub struct Loopback {
    rank: Rank,
    n: usize,
    shared: Arc<Shared>,
    detector: TermDetector,
    stats: NetStats,
    tuning: NetTuning,
}

impl Loopback {
    /// Builds the full mesh with default tuning: element `i` is rank `i`'s
    /// endpoint.
    pub fn mesh(n: usize) -> Vec<Loopback> {
        Self::mesh_tuned(n, NetTuning::default())
    }

    /// Builds the full mesh with explicit deadlines/retry tuning.
    pub fn mesh_tuned(n: usize, tuning: NetTuning) -> Vec<Loopback> {
        assert!(n > 0, "mesh needs at least one rank");
        let shared = Arc::new(Shared {
            inboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            barrier: TimedBarrier::new(n),
            term: Mutex::new(vec![(0, 0); n]),
        });
        (0..n)
            .map(|rank| Loopback {
                rank,
                n,
                shared: Arc::clone(&shared),
                detector: TermDetector::new(),
                stats: NetStats::new(n),
                tuning: tuning.clone(),
            })
            .collect()
    }

    fn wait_barrier(&self, phase: &str) -> NetResult<()> {
        self.shared
            .barrier
            .wait(self.tuning.collective_timeout)
            .map_err(|waited| NetError::timeout(phase, waited, self.diagnostics()))
    }
}

impl Transport for Loopback {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn send(&mut self, dest: Rank, frame: &[u8]) -> NetResult<()> {
        self.stats.peers[dest].frames_sent += 1;
        self.stats.peers[dest].bytes_sent += frame.len() as u64;
        self.shared.inboxes[dest]
            .lock()
            .expect("inbox")
            .push_back((self.rank, frame.to_vec()));
        Ok(())
    }

    fn try_recv(&mut self) -> NetResult<Option<(Rank, Vec<u8>)>> {
        let got = self.shared.inboxes[self.rank]
            .lock()
            .expect("inbox")
            .pop_front();
        if let Some((src, ref bytes)) = got {
            self.stats.peers[src].frames_recv += 1;
            self.stats.peers[src].bytes_recv += bytes.len() as u64;
        }
        Ok(got)
    }

    fn flush(&mut self) -> NetResult<()> {
        // Sends are delivered eagerly; nothing is buffered.
        Ok(())
    }

    fn barrier(&mut self) -> NetResult<()> {
        self.wait_barrier("barrier")?;
        self.stats.barriers += 1;
        Ok(())
    }

    fn termination_round(&mut self) -> NetResult<bool> {
        self.flush()?;
        {
            let mut term = self.shared.term.lock().expect("term table");
            term[self.rank] = (self.stats.frames_sent(), self.stats.frames_recv());
        }
        // Everyone has published; the table is stable while we sum it.
        self.wait_barrier("termination")?;
        let (sent, received) = {
            let term = self.shared.term.lock().expect("term table");
            term.iter()
                .fold((0, 0), |(s, r), &(ps, pr)| (s + ps, r + pr))
        };
        // Everyone has summed; the table may be overwritten next round.
        self.wait_barrier("termination")?;
        self.stats.term_rounds += 1;
        Ok(self.detector.decide(sent, received))
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn last_global_totals(&self) -> Option<(u64, u64)> {
        self.detector.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_terminates_after_two_rounds() {
        let mut mesh = Loopback::mesh(1);
        let mut t = mesh.remove(0);
        assert!(!t.termination_round().unwrap());
        assert!(t.termination_round().unwrap());
        assert_eq!(t.stats().term_rounds, 2);
    }

    #[test]
    fn self_send_roundtrip() {
        let mut mesh = Loopback::mesh(1);
        let mut t = mesh.remove(0);
        t.send(0, b"abc").unwrap();
        assert_eq!(t.try_recv().unwrap(), Some((0, b"abc".to_vec())));
        assert_eq!(t.try_recv().unwrap(), None);
        assert!(!t.termination_round().unwrap());
        assert!(t.termination_round().unwrap());
    }

    #[test]
    fn two_ranks_exchange_and_terminate() {
        let mut mesh = Loopback::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        let h = std::thread::spawn(move || {
            t1.send(0, b"from1").unwrap();
            let mut got = None;
            while got.is_none() {
                got = t1.try_recv().unwrap();
            }
            assert_eq!(got, Some((0, b"from0".to_vec())));
            while !t1.termination_round().unwrap() {}
            t1.barrier().unwrap();
            t1.stats().frames_sent()
        });
        t0.send(1, b"from0").unwrap();
        let mut got = None;
        while got.is_none() {
            got = t0.try_recv().unwrap();
        }
        assert_eq!(got, Some((1, b"from1".to_vec())));
        while !t0.termination_round().unwrap() {}
        t0.barrier().unwrap();
        assert_eq!(h.join().unwrap(), 1);
        assert_eq!(t0.stats().frames_sent(), 1);
        assert_eq!(t0.stats().frames_recv(), 1);
    }

    #[test]
    fn per_peer_fifo_order() {
        let mut mesh = Loopback::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        for i in 0..10u8 {
            t0.send(1, &[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(t1.try_recv().unwrap(), Some((0, vec![i])));
        }
    }

    #[test]
    fn abandoned_barrier_times_out_with_typed_error() {
        let tuning = NetTuning::default().with_timeout(Duration::from_millis(80));
        let mut mesh = Loopback::mesh_tuned(2, tuning);
        // Rank 1's endpoint never calls barrier (simulated dead peer).
        let mut t0 = mesh.remove(0);
        let err = t0.barrier().unwrap_err();
        match err {
            NetError::Timeout { phase, waited_ms, .. } => {
                assert_eq!(phase, "barrier");
                assert!(waited_ms >= 80, "waited {waited_ms} ms");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn timed_barrier_withdraws_timed_out_waiters() {
        let b = Arc::new(TimedBarrier::new(2));
        // First waiter times out alone and withdraws.
        assert!(b.wait(Duration::from_millis(30)).is_err());
        // Two fresh waiters then trip the barrier normally — the stale
        // arrival did not leave a phantom party behind.
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait(Duration::from_secs(5)));
        assert!(b.wait(Duration::from_secs(5)).is_ok());
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn stalled_termination_round_times_out() {
        let tuning = NetTuning::default().with_timeout(Duration::from_millis(80));
        let mut mesh = Loopback::mesh_tuned(2, tuning);
        let mut t0 = mesh.remove(0);
        let err = t0.termination_round().unwrap_err();
        assert!(matches!(err, NetError::Timeout { ref phase, .. } if phase == "termination"));
    }
}
