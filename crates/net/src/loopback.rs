//! In-process [`Transport`] backend over shared queues.
//!
//! [`Loopback::mesh`] builds all N endpoints at once; hand one to each
//! thread (they are `Send`). Delivery is a per-rank FIFO of `(src, bytes)`
//! pairs, so per-peer ordering matches the TCP backend. Barriers use
//! [`std::sync::Barrier`]; termination rounds publish per-rank totals to a
//! shared table between two barrier waits, so every rank sums the same
//! snapshot.

use std::collections::VecDeque;
use std::sync::{Arc, Barrier, Mutex};

use crate::transport::{NetStats, Rank, TermDetector, Transport};

/// A rank's delivery FIFO of `(src, frame bytes)` pairs.
type Inbox = Mutex<VecDeque<(Rank, Vec<u8>)>>;

#[derive(Debug)]
struct Shared {
    /// One inbox per rank.
    inboxes: Vec<Inbox>,
    barrier: Barrier,
    /// Per-rank `(sent, received)` contributions for the current
    /// termination round.
    term: Mutex<Vec<(u64, u64)>>,
}

/// One rank's endpoint of an in-process mesh.
#[derive(Debug)]
pub struct Loopback {
    rank: Rank,
    n: usize,
    shared: Arc<Shared>,
    detector: TermDetector,
    stats: NetStats,
}

impl Loopback {
    /// Builds the full mesh: element `i` is rank `i`'s endpoint.
    pub fn mesh(n: usize) -> Vec<Loopback> {
        assert!(n > 0, "mesh needs at least one rank");
        let shared = Arc::new(Shared {
            inboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            barrier: Barrier::new(n),
            term: Mutex::new(vec![(0, 0); n]),
        });
        (0..n)
            .map(|rank| Loopback {
                rank,
                n,
                shared: Arc::clone(&shared),
                detector: TermDetector::new(),
                stats: NetStats::new(n),
            })
            .collect()
    }
}

impl Transport for Loopback {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn send(&mut self, dest: Rank, frame: &[u8]) {
        self.stats.peers[dest].frames_sent += 1;
        self.stats.peers[dest].bytes_sent += frame.len() as u64;
        self.shared.inboxes[dest]
            .lock()
            .expect("inbox")
            .push_back((self.rank, frame.to_vec()));
    }

    fn try_recv(&mut self) -> Option<(Rank, Vec<u8>)> {
        let got = self.shared.inboxes[self.rank]
            .lock()
            .expect("inbox")
            .pop_front();
        if let Some((src, ref bytes)) = got {
            self.stats.peers[src].frames_recv += 1;
            self.stats.peers[src].bytes_recv += bytes.len() as u64;
        }
        got
    }

    fn flush(&mut self) {
        // Sends are delivered eagerly; nothing is buffered.
    }

    fn barrier(&mut self) {
        self.shared.barrier.wait();
        self.stats.barriers += 1;
    }

    fn termination_round(&mut self) -> bool {
        self.flush();
        {
            let mut term = self.shared.term.lock().expect("term table");
            term[self.rank] = (self.stats.frames_sent(), self.stats.frames_recv());
        }
        // Everyone has published; the table is stable while we sum it.
        self.shared.barrier.wait();
        let (sent, received) = {
            let term = self.shared.term.lock().expect("term table");
            term.iter()
                .fold((0, 0), |(s, r), &(ps, pr)| (s + ps, r + pr))
        };
        // Everyone has summed; the table may be overwritten next round.
        self.shared.barrier.wait();
        self.stats.term_rounds += 1;
        self.detector.decide(sent, received)
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_terminates_after_two_rounds() {
        let mut mesh = Loopback::mesh(1);
        let mut t = mesh.remove(0);
        assert!(!t.termination_round());
        assert!(t.termination_round());
        assert_eq!(t.stats().term_rounds, 2);
    }

    #[test]
    fn self_send_roundtrip() {
        let mut mesh = Loopback::mesh(1);
        let mut t = mesh.remove(0);
        t.send(0, b"abc");
        assert_eq!(t.try_recv(), Some((0, b"abc".to_vec())));
        assert_eq!(t.try_recv(), None);
        assert!(!t.termination_round());
        assert!(t.termination_round());
    }

    #[test]
    fn two_ranks_exchange_and_terminate() {
        let mut mesh = Loopback::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        let h = std::thread::spawn(move || {
            t1.send(0, b"from1");
            let mut got = None;
            while got.is_none() {
                got = t1.try_recv();
            }
            assert_eq!(got, Some((0, b"from0".to_vec())));
            while !t1.termination_round() {}
            t1.barrier();
            t1.stats().frames_sent()
        });
        t0.send(1, b"from0");
        let mut got = None;
        while got.is_none() {
            got = t0.try_recv();
        }
        assert_eq!(got, Some((1, b"from1".to_vec())));
        while !t0.termination_round() {}
        t0.barrier();
        assert_eq!(h.join().unwrap(), 1);
        assert_eq!(t0.stats().frames_sent(), 1);
        assert_eq!(t0.stats().frames_recv(), 1);
    }

    #[test]
    fn per_peer_fifo_order() {
        let mut mesh = Loopback::mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        for i in 0..10u8 {
            t0.send(1, &[i]);
        }
        for i in 0..10u8 {
            assert_eq!(t1.try_recv(), Some((0, vec![i])));
        }
    }
}
