//! [`Transport`] backend over `std::net::TcpStream`.
//!
//! Topology is a full mesh: rank `i` connects to every lower rank and
//! accepts from every higher rank, identifying itself with a 4-byte rank
//! hello, so each socket's peer is known up front. Per peer the endpoint
//! keeps a send-side [`BufWriter`] sized to the L0 buffer config (one L0
//! `PUT` should flush in one syscall) and a reader thread that decodes
//! frames incrementally and pushes them onto a shared inbox channel.
//!
//! Control traffic (barrier announcements, termination contributions)
//! shares the sockets with data. Because peers progress at different
//! speeds, control frames for a *future* round can arrive while this rank
//! still waits on the current one; they are keyed by their epoch/round
//! number and buffered until the local rank catches up. Data frames that
//! arrive during a collective wait are stashed and handed to the next
//! `try_recv` — they are *not* counted as received until then, which the
//! termination protocol requires.
//!
//! Address discovery is either an explicit list (a rank file, one
//! `host:port` per line) or a rendezvous directory: every rank binds an
//! ephemeral port, atomically publishes `rank<i>.addr`, and polls until
//! all N files exist — which is how `dakc launch` wires up self-spawned
//! workers on localhost.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::frame::{encode_frame, FrameDecoder, FrameKind};
use crate::transport::{NetStats, Rank, TermDetector, Transport};

/// How long connection setup retries a peer that is not listening yet.
const CONNECT_DEADLINE: Duration = Duration::from_secs(30);

/// How long a collective waits for stragglers before declaring the job
/// wedged (a peer died mid-protocol).
const COLLECTIVE_DEADLINE: Duration = Duration::from_secs(120);

/// A send (or flush) slower than this counts as one backpressure stall.
const STALL_THRESHOLD: Duration = Duration::from_millis(1);

/// One decoded frame arriving from a reader thread.
struct Event {
    src: Rank,
    kind: FrameKind,
    payload: Vec<u8>,
}

/// One rank's TCP endpoint.
pub struct TcpTransport {
    rank: Rank,
    n: usize,
    /// Per-peer buffered writers (`None` at `rank` — self-sends bypass
    /// the wire).
    writers: Vec<Option<BufWriter<TcpStream>>>,
    /// Shared inbox fed by one reader thread per peer.
    rx: mpsc::Receiver<Event>,
    /// Keeps the channel open when there are no peers (single-rank jobs).
    _tx: mpsc::Sender<Event>,
    /// Self-sends and data frames that arrived during a collective wait.
    pending: VecDeque<(Rank, Vec<u8>)>,
    /// Barrier announcements seen, per epoch.
    bar_seen: HashMap<u64, usize>,
    /// Termination contributions seen, per round.
    term_seen: HashMap<u64, Vec<(u64, u64)>>,
    epoch: u64,
    round: u64,
    detector: TermDetector,
    stats: NetStats,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Connects a full mesh from an explicit address list; `addrs[rank]`
    /// must be bindable locally. `buf_bytes` sizes the per-peer send and
    /// receive buffers (pass the job's L0 `c0_bytes`).
    pub fn connect(rank: Rank, addrs: &[SocketAddr], buf_bytes: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addrs[rank])?;
        Self::with_listener(rank, addrs, listener, buf_bytes)
    }

    /// Like [`TcpTransport::connect`], reading the address list from a
    /// rank file: one `host:port` per line, line `i` for rank `i`.
    pub fn from_rank_file(
        rank: Rank,
        path: &Path,
        buf_bytes: usize,
    ) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let addrs = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                l.parse::<SocketAddr>().map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("rank file line {l:?}: {e}"),
                    )
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Self::connect(rank, &addrs, buf_bytes)
    }

    /// Binds an ephemeral localhost port, publishes it as
    /// `<dir>/rank<i>.addr` (atomic write), waits for all `n` ranks to
    /// publish, then connects the mesh. This is the `dakc launch`
    /// self-spawn path.
    pub fn rendezvous(
        rank: Rank,
        n: usize,
        dir: &Path,
        buf_bytes: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let tmp = dir.join(format!(".rank{rank}.addr.tmp"));
        std::fs::write(&tmp, addr.to_string())?;
        std::fs::rename(&tmp, dir.join(format!("rank{rank}.addr")))?;

        let deadline = Instant::now() + CONNECT_DEADLINE;
        let mut addrs = vec![None; n];
        addrs[rank] = Some(addr);
        while addrs.iter().any(Option::is_none) {
            for (i, slot) in addrs.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Ok(text) = std::fs::read_to_string(dir.join(format!("rank{i}.addr"))) {
                        *slot = Some(text.trim().parse().map_err(|e| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("rank {i} addr: {e}"),
                            )
                        })?);
                    }
                }
            }
            if addrs.iter().any(Option::is_none) {
                if Instant::now() > deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "rendezvous: not all ranks published an address",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let addrs: Vec<SocketAddr> = addrs.into_iter().map(|a| a.expect("filled")).collect();
        Self::with_listener(rank, &addrs, listener, buf_bytes)
    }

    fn with_listener(
        rank: Rank,
        addrs: &[SocketAddr],
        listener: TcpListener,
        buf_bytes: usize,
    ) -> std::io::Result<Self> {
        let n = addrs.len();
        assert!(rank < n, "rank {rank} out of range for {n} ranks");
        let buf_bytes = buf_bytes.max(4 << 10);
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();

        // Lower ranks are dialed (they listen first by construction);
        // higher ranks dial us.
        for (peer, addr) in addrs.iter().enumerate().take(rank) {
            let deadline = Instant::now() + CONNECT_DEADLINE;
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() > deadline {
                            return Err(std::io::Error::new(
                                e.kind(),
                                format!("rank {rank}: connecting to rank {peer} at {addr}: {e}"),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            };
            stream.set_nodelay(true)?;
            let mut s = stream;
            s.write_all(&(rank as u32).to_le_bytes())?;
            s.flush()?;
            streams[peer] = Some(s);
        }
        for _ in rank + 1..n {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut hello = [0u8; 4];
            stream.read_exact(&mut hello)?;
            let src = u32::from_le_bytes(hello) as usize;
            if src <= rank || src >= n || streams[src].is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("rank {rank}: unexpected hello from rank {src}"),
                ));
            }
            streams[src] = Some(stream);
        }

        let (tx, rx) = mpsc::channel();
        let mut writers: Vec<Option<BufWriter<TcpStream>>> = Vec::with_capacity(n);
        for (peer, stream) in streams.into_iter().enumerate() {
            match stream {
                None => writers.push(None),
                Some(s) => {
                    let reader = s.try_clone()?;
                    let tx = tx.clone();
                    std::thread::Builder::new()
                        .name(format!("dakc-net-r{rank}p{peer}"))
                        .spawn(move || reader_loop(peer, reader, tx, buf_bytes))
                        .expect("spawn reader thread");
                    writers.push(Some(BufWriter::with_capacity(buf_bytes, s)));
                }
            }
        }
        Ok(Self {
            rank,
            n,
            writers,
            rx,
            _tx: tx,
            pending: VecDeque::new(),
            bar_seen: HashMap::new(),
            term_seen: HashMap::new(),
            epoch: 0,
            round: 0,
            detector: TermDetector::new(),
            stats: NetStats::new(n),
        })
    }

    /// Writes one frame to a peer's buffered writer, counting a stall when
    /// the OS pushes back.
    fn write_frame(&mut self, dest: Rank, kind: FrameKind, payload: &[u8]) {
        let wire = encode_frame(kind, payload);
        let w = self.writers[dest]
            .as_mut()
            .unwrap_or_else(|| panic!("rank {} has no writer for {dest}", self.rank));
        let t0 = Instant::now();
        w.write_all(&wire)
            .unwrap_or_else(|e| panic!("rank {} send to {dest}: {e}", self.rank));
        if t0.elapsed() >= STALL_THRESHOLD {
            self.stats.send_stalls += 1;
        }
    }

    /// Handles one event from the inbox: data is stashed for `try_recv`,
    /// control is recorded under its epoch/round key.
    fn absorb(&mut self, ev: Event) {
        match ev.kind {
            FrameKind::Data => self.pending.push_back((ev.src, ev.payload)),
            FrameKind::Barrier => {
                let epoch = u64::from_le_bytes(ev.payload[..8].try_into().expect("epoch"));
                *self.bar_seen.entry(epoch).or_insert(0) += 1;
            }
            FrameKind::Term => {
                let round = u64::from_le_bytes(ev.payload[..8].try_into().expect("round"));
                let sent = u64::from_le_bytes(ev.payload[8..16].try_into().expect("sent"));
                let recv = u64::from_le_bytes(ev.payload[16..24].try_into().expect("recv"));
                self.term_seen.entry(round).or_default().push((sent, recv));
            }
        }
    }

    /// Blocks for the next inbox event and absorbs it.
    fn pump_blocking(&mut self, what: &str) {
        match self.rx.recv_timeout(COLLECTIVE_DEADLINE) {
            Ok(ev) => self.absorb(ev),
            Err(e) => panic!(
                "rank {} wedged waiting for {what} ({} of {} ranks): {e}",
                self.rank, self.n, self.n
            ),
        }
    }
}

fn reader_loop(src: Rank, mut stream: TcpStream, tx: mpsc::Sender<Event>, buf_bytes: usize) {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; buf_bytes];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(k) => {
                dec.feed(&buf[..k]);
                loop {
                    match dec.next_frame() {
                        Ok(Some((kind, payload))) => {
                            if tx.send(Event { src, kind, payload }).is_err() {
                                // Endpoint dropped: stop reading.
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => panic!("corrupt stream from rank {src}: {e}"),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn send(&mut self, dest: Rank, frame: &[u8]) {
        self.stats.peers[dest].frames_sent += 1;
        self.stats.peers[dest].bytes_sent += frame.len() as u64;
        if dest == self.rank {
            self.pending.push_back((self.rank, frame.to_vec()));
        } else {
            self.write_frame(dest, FrameKind::Data, frame);
        }
    }

    fn try_recv(&mut self) -> Option<(Rank, Vec<u8>)> {
        loop {
            if let Some((src, bytes)) = self.pending.pop_front() {
                self.stats.peers[src].frames_recv += 1;
                self.stats.peers[src].bytes_recv += bytes.len() as u64;
                return Some((src, bytes));
            }
            match self.rx.try_recv() {
                Ok(ev) => self.absorb(ev),
                Err(_) => return None,
            }
        }
    }

    fn flush(&mut self) {
        for dest in 0..self.n {
            if let Some(w) = self.writers[dest].as_mut() {
                let t0 = Instant::now();
                w.flush()
                    .unwrap_or_else(|e| panic!("rank {} flush to {dest}: {e}", self.rank));
                if t0.elapsed() >= STALL_THRESHOLD {
                    self.stats.send_stalls += 1;
                }
            }
        }
    }

    fn barrier(&mut self) {
        let epoch = self.epoch;
        self.epoch += 1;
        let payload = epoch.to_le_bytes();
        for dest in 0..self.n {
            if dest != self.rank {
                self.write_frame(dest, FrameKind::Barrier, &payload);
            }
        }
        self.flush();
        while self.bar_seen.get(&epoch).copied().unwrap_or(0) < self.n - 1 {
            self.pump_blocking("barrier");
        }
        self.bar_seen.remove(&epoch);
        self.stats.barriers += 1;
    }

    fn termination_round(&mut self) -> bool {
        self.flush();
        let round = self.round;
        self.round += 1;
        let mine = (self.stats.frames_sent(), self.stats.frames_recv());
        let mut payload = [0u8; 24];
        payload[..8].copy_from_slice(&round.to_le_bytes());
        payload[8..16].copy_from_slice(&mine.0.to_le_bytes());
        payload[16..24].copy_from_slice(&mine.1.to_le_bytes());
        for dest in 0..self.n {
            if dest != self.rank {
                self.write_frame(dest, FrameKind::Term, &payload);
            }
        }
        self.flush();
        while self
            .term_seen
            .get(&round)
            .map(Vec::len)
            .unwrap_or(0)
            < self.n - 1
        {
            self.pump_blocking("termination round");
        }
        let contribs = self.term_seen.remove(&round).unwrap_or_default();
        let (sent, received) = contribs
            .iter()
            .fold(mine, |(s, r), &(ps, pr)| (s + ps, r + pr));
        self.stats.term_rounds += 1;
        self.detector.decide(sent, received)
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an in-process TCP mesh on localhost ephemeral ports.
    fn tcp_mesh(n: usize) -> Vec<TcpTransport> {
        let dir = std::env::temp_dir().join(format!(
            "dakc-net-test-{}-{n}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    TcpTransport::rendezvous(rank, n, &dir, 8 << 10).unwrap()
                })
            })
            .collect();
        let mesh = handles.into_iter().map(|h| h.join().unwrap()).collect();
        std::fs::remove_dir_all(&dir).ok();
        mesh
    }

    #[test]
    fn single_rank_needs_no_sockets() {
        let dir = std::env::temp_dir().join(format!("dakc-net-1r-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = TcpTransport::rendezvous(0, 1, &dir, 8 << 10).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        t.send(0, b"self");
        assert_eq!(t.try_recv(), Some((0, b"self".to_vec())));
        assert!(!t.termination_round());
        assert!(t.termination_round());
        t.barrier();
    }

    #[test]
    fn mesh_exchange_and_terminate() {
        let mesh = tcp_mesh(3);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    let n = t.num_ranks();
                    for dest in 0..n {
                        t.send(dest, format!("hi from {me} to {dest}").as_bytes());
                    }
                    t.flush();
                    let mut got = Vec::new();
                    while got.len() < n {
                        if let Some((src, bytes)) = t.try_recv() {
                            got.push((src, bytes));
                        }
                    }
                    got.sort();
                    for (i, (src, bytes)) in got.iter().enumerate() {
                        assert_eq!(*src, i);
                        assert_eq!(bytes, format!("hi from {i} to {me}").as_bytes());
                    }
                    while !t.termination_round() {}
                    t.barrier();
                    (t.stats().frames_sent(), t.stats().frames_recv())
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), (3, 3));
        }
    }

    #[test]
    fn skewed_ranks_still_terminate() {
        // Rank 0 sends a burst late; ranks spin termination rounds in the
        // meantime and must not declare quiescence before the burst lands.
        let mesh = tcp_mesh(2);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    if me == 0 {
                        std::thread::sleep(Duration::from_millis(50));
                        for i in 0..100u32 {
                            t.send(1, &i.to_le_bytes());
                        }
                    }
                    let mut recvd = 0u64;
                    loop {
                        while t.try_recv().is_some() {
                            recvd += 1;
                        }
                        if t.termination_round() {
                            break;
                        }
                    }
                    (me, recvd)
                })
            })
            .collect();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec![(0, 0), (1, 100)]);
    }
}
