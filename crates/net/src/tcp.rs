//! [`Transport`] backend over `std::net::TcpStream`.
//!
//! Topology is a full mesh: rank `i` connects to every lower rank and
//! accepts from every higher rank, identifying itself with a 4-byte rank
//! hello, so each socket's peer is known up front. Per peer the endpoint
//! keeps a send-side [`BufWriter`] sized to the L0 buffer config (one L0
//! `PUT` should flush in one syscall) and a reader thread that decodes
//! frames incrementally and pushes them onto a shared inbox channel.
//!
//! Control traffic (barrier announcements, termination contributions)
//! shares the sockets with data. Because peers progress at different
//! speeds, control frames for a *future* round can arrive while this rank
//! still waits on the current one; they are keyed by their epoch/round
//! number and buffered until the local rank catches up. Data frames that
//! arrive during a collective wait are stashed and handed to the next
//! `try_recv` — they are *not* counted as received until then, which the
//! termination protocol requires.
//!
//! Failure semantics: nothing here panics or hangs forever. A reader
//! thread that sees EOF, a reset, or a corrupt stream reports a `Gone`
//! event instead of panicking; a clean EOF marks the peer dead (it may
//! simply have finished first), while a decode failure or reset surfaces
//! as a typed [`NetError`] on the next `try_recv`/collective. Collectives
//! fast-fail with [`NetError::PeerDisconnected`] as soon as a dead peer is
//! known to owe a contribution, and otherwise time out after the tuned
//! collective deadline with a four-counter diagnostic dump. Connection
//! setup and transient send stalls retry with capped exponential backoff
//! plus deterministic jitter, within the tuned deadlines.
//!
//! Address discovery is either an explicit list (a rank file, one
//! `host:port` per line) or a rendezvous directory: every rank binds an
//! ephemeral port, atomically publishes `rank<i>.addr`, and polls until
//! all N files exist — which is how `dakc launch` wires up self-spawned
//! workers on localhost.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::error::{NetError, NetResult};
use crate::frame::{encode_frame, FrameDecoder, FrameKind};
use crate::transport::{NetNote, NetStats, NetTuning, Rank, TermDetector, Transport};

/// A send (or flush) slower than this counts as one backpressure stall.
const STALL_THRESHOLD: Duration = Duration::from_millis(1);

/// How long one inbox wait blocks before re-checking deadlines and dead
/// peers. Bounds the latency of fast-fail detection during collectives.
const PUMP_SLICE: Duration = Duration::from_millis(50);

/// One message from a reader thread.
enum Event {
    /// A decoded frame from `src`.
    Frame {
        src: Rank,
        kind: FrameKind,
        payload: Vec<u8>,
    },
    /// `src`'s connection ended. `error` is `None` for a clean EOF (the
    /// peer may legitimately have finished first) and carries the typed
    /// failure for resets and corrupt streams.
    Gone {
        src: Rank,
        error: Option<NetError>,
    },
}

/// One rank's TCP endpoint.
pub struct TcpTransport {
    rank: Rank,
    n: usize,
    /// Per-peer buffered writers (`None` at `rank` — self-sends bypass
    /// the wire).
    writers: Vec<Option<BufWriter<TcpStream>>>,
    /// Shared inbox fed by one reader thread per peer.
    rx: mpsc::Receiver<Event>,
    /// Keeps the channel open when there are no peers (single-rank jobs).
    _tx: mpsc::Sender<Event>,
    /// Self-sends and data frames that arrived during a collective wait.
    pending: VecDeque<(Rank, Vec<u8>)>,
    /// Why each gone peer's connection ended (`None` while alive).
    gone: Vec<Option<String>>,
    /// Barrier announcements seen, per epoch, per peer.
    bar_seen: HashMap<u64, Vec<bool>>,
    /// Termination contributions seen, per round, per peer.
    term_seen: HashMap<u64, Vec<Option<(u64, u64)>>>,
    epoch: u64,
    round: u64,
    detector: TermDetector,
    stats: NetStats,
    tuning: NetTuning,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

fn io_err(context: String, peer: Option<Rank>, e: &std::io::Error) -> NetError {
    NetError::from_io(context, peer, e)
}

impl TcpTransport {
    /// Connects a full mesh from an explicit address list with default
    /// tuning; `addrs[rank]` must be bindable locally. `buf_bytes` sizes
    /// the per-peer send and receive buffers (pass the job's L0
    /// `c0_bytes`).
    pub fn connect(rank: Rank, addrs: &[SocketAddr], buf_bytes: usize) -> NetResult<Self> {
        Self::connect_tuned(rank, addrs, buf_bytes, NetTuning::default())
    }

    /// [`TcpTransport::connect`] with explicit deadlines/retry tuning.
    pub fn connect_tuned(
        rank: Rank,
        addrs: &[SocketAddr],
        buf_bytes: usize,
        tuning: NetTuning,
    ) -> NetResult<Self> {
        let listener = TcpListener::bind(addrs[rank])
            .map_err(|e| io_err(format!("rank {rank}: bind {}", addrs[rank]), None, &e))?;
        Self::with_listener(rank, addrs, listener, buf_bytes, tuning)
    }

    /// Like [`TcpTransport::connect`], reading the address list from a
    /// rank file: one `host:port` per line, line `i` for rank `i`.
    pub fn from_rank_file(rank: Rank, path: &Path, buf_bytes: usize) -> NetResult<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| io_err(format!("rank file {}", path.display()), None, &e))?;
        let addrs = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                l.parse::<SocketAddr>().map_err(|e| NetError::Protocol {
                    detail: format!("rank file line {l:?}: {e}"),
                })
            })
            .collect::<NetResult<Vec<_>>>()?;
        Self::connect(rank, &addrs, buf_bytes)
    }

    /// Binds an ephemeral localhost port, publishes it as
    /// `<dir>/rank<i>.addr` (atomic write), waits for all `n` ranks to
    /// publish, then connects the mesh with default tuning. This is the
    /// `dakc launch` self-spawn path.
    pub fn rendezvous(rank: Rank, n: usize, dir: &Path, buf_bytes: usize) -> NetResult<Self> {
        Self::rendezvous_tuned(rank, n, dir, buf_bytes, NetTuning::default())
    }

    /// [`TcpTransport::rendezvous`] with explicit deadlines/retry tuning.
    pub fn rendezvous_tuned(
        rank: Rank,
        n: usize,
        dir: &Path,
        buf_bytes: usize,
        tuning: NetTuning,
    ) -> NetResult<Self> {
        let ctx = |what: &str| format!("rank {rank}: rendezvous {what}");
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| io_err(ctx("bind"), None, &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err(ctx("local_addr"), None, &e))?;
        let tmp = dir.join(format!(".rank{rank}.addr.tmp"));
        std::fs::write(&tmp, addr.to_string())
            .map_err(|e| io_err(ctx("publish"), None, &e))?;
        std::fs::rename(&tmp, dir.join(format!("rank{rank}.addr")))
            .map_err(|e| io_err(ctx("publish"), None, &e))?;

        let start = Instant::now();
        let mut addrs = vec![None; n];
        addrs[rank] = Some(addr);
        while addrs.iter().any(Option::is_none) {
            for (i, slot) in addrs.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Ok(text) = std::fs::read_to_string(dir.join(format!("rank{i}.addr"))) {
                        *slot = Some(text.trim().parse().map_err(|e| NetError::Protocol {
                            detail: format!("rank {i} published a bad address: {e}"),
                        })?);
                    }
                }
            }
            if addrs.iter().any(Option::is_none) {
                if start.elapsed() > tuning.connect_timeout {
                    let missing: Vec<usize> = addrs
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    return Err(NetError::timeout(
                        "connect",
                        start.elapsed(),
                        format!("rank {rank}: rendezvous missing addresses for ranks {missing:?}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let addrs: Vec<SocketAddr> = addrs.into_iter().map(|a| a.expect("filled")).collect();
        Self::with_listener(rank, &addrs, listener, buf_bytes, tuning)
    }

    fn with_listener(
        rank: Rank,
        addrs: &[SocketAddr],
        listener: TcpListener,
        buf_bytes: usize,
        tuning: NetTuning,
    ) -> NetResult<Self> {
        let n = addrs.len();
        assert!(rank < n, "rank {rank} out of range for {n} ranks");
        let buf_bytes = buf_bytes.max(4 << 10);
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut setup_retries = 0u64;

        // Lower ranks are dialed (they listen first by construction);
        // higher ranks dial us.
        for (peer, addr) in addrs.iter().enumerate().take(rank) {
            let start = Instant::now();
            let mut attempt = 0u32;
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if start.elapsed() > tuning.connect_timeout {
                            return Err(NetError::timeout(
                                "connect",
                                start.elapsed(),
                                format!(
                                    "rank {rank}: dialing rank {peer} at {addr} \
                                     ({attempt} retries, last error: {e})"
                                ),
                            ));
                        }
                        attempt += 1;
                        setup_retries += 1;
                        let salt = ((rank as u64) << 32) | peer as u64;
                        std::thread::sleep(tuning.backoff(attempt, salt));
                    }
                }
            };
            let peer_ctx = |what: &str| format!("rank {rank}: {what} to rank {peer}");
            stream
                .set_nodelay(true)
                .map_err(|e| io_err(peer_ctx("nodelay"), Some(peer), &e))?;
            let mut s = stream;
            s.write_all(&(rank as u32).to_le_bytes())
                .and_then(|()| s.flush())
                .map_err(|e| io_err(peer_ctx("hello"), Some(peer), &e))?;
            streams[peer] = Some(s);
        }
        // Accept the higher ranks without blocking forever on a spawn
        // that never happened: poll a nonblocking listener under the
        // connect deadline.
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err(format!("rank {rank}: listener nonblocking"), None, &e))?;
        let start = Instant::now();
        let expected = n - rank - 1;
        let mut accepted = 0usize;
        while accepted < expected {
            match listener.accept() {
                Ok((stream, _)) => {
                    let ctx = |what: &str| format!("rank {rank}: accept {what}");
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| io_err(ctx("blocking"), None, &e))?;
                    stream
                        .set_nodelay(true)
                        .map_err(|e| io_err(ctx("nodelay"), None, &e))?;
                    // A connected-but-mute dialer must not wedge setup.
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .map_err(|e| io_err(ctx("read timeout"), None, &e))?;
                    let mut stream = stream;
                    let mut hello = [0u8; 4];
                    stream
                        .read_exact(&mut hello)
                        .map_err(|e| io_err(ctx("hello"), None, &e))?;
                    stream
                        .set_read_timeout(None)
                        .map_err(|e| io_err(ctx("read timeout"), None, &e))?;
                    let src = u32::from_le_bytes(hello) as usize;
                    if src <= rank || src >= n || streams[src].is_some() {
                        return Err(NetError::Protocol {
                            detail: format!("rank {rank}: unexpected hello from rank {src}"),
                        });
                    }
                    streams[src] = Some(stream);
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if start.elapsed() > tuning.connect_timeout {
                        return Err(NetError::timeout(
                            "connect",
                            start.elapsed(),
                            format!(
                                "rank {rank}: accepted {accepted} of {expected} higher ranks"
                            ),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(format!("rank {rank}: accept"), None, &e)),
            }
        }

        let (tx, rx) = mpsc::channel();
        // Bound incoming frames well above any frame the job legitimately
        // produces (one L0 PUT, a gather chunk, a metrics blob) so a
        // flipped length prefix cannot demand a giant allocation.
        let max_frame = (buf_bytes * 4).max(1 << 20);
        let mut writers: Vec<Option<BufWriter<TcpStream>>> = Vec::with_capacity(n);
        for (peer, stream) in streams.into_iter().enumerate() {
            match stream {
                None => writers.push(None),
                Some(s) => {
                    // A send that sits in the OS buffer past the
                    // collective deadline is a wedge, not backpressure.
                    s.set_write_timeout(Some(tuning.collective_timeout))
                        .map_err(|e| io_err(format!("rank {rank}: write timeout"), Some(peer), &e))?;
                    let reader = s
                        .try_clone()
                        .map_err(|e| io_err(format!("rank {rank}: clone stream"), Some(peer), &e))?;
                    let tx = tx.clone();
                    std::thread::Builder::new()
                        .name(format!("dakc-net-r{rank}p{peer}"))
                        .spawn(move || reader_loop(peer, reader, tx, buf_bytes, max_frame))
                        .map_err(|e| io_err(format!("rank {rank}: spawn reader"), None, &e))?;
                    writers.push(Some(BufWriter::with_capacity(buf_bytes, s)));
                }
            }
        }
        let mut stats = NetStats::new(n);
        stats.retries = setup_retries;
        Ok(Self {
            rank,
            n,
            writers,
            rx,
            _tx: tx,
            pending: VecDeque::new(),
            gone: vec![None; n],
            bar_seen: HashMap::new(),
            term_seen: HashMap::new(),
            epoch: 0,
            round: 0,
            detector: TermDetector::new(),
            stats,
            tuning,
        })
    }

    /// Writes raw wire bytes to a peer, retrying transient stalls with
    /// backoff and classifying failures.
    fn write_wire(&mut self, dest: Rank, wire: &[u8]) -> NetResult<()> {
        let me = self.rank;
        let Some(w) = self.writers[dest].as_mut() else {
            return Err(NetError::Protocol {
                detail: format!("rank {me} has no connection to rank {dest}"),
            });
        };
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            match w.write_all(wire) {
                Ok(()) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if attempt >= self.tuning.retries {
                        return Err(NetError::timeout(
                            "send",
                            t0.elapsed(),
                            format!("rank {me} to rank {dest}: {attempt} retries exhausted ({e})"),
                        ));
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    let salt = ((me as u64) << 32) | dest as u64;
                    let delay = self.tuning.backoff(attempt, salt);
                    self.stats.note(NetNote::Retry {
                        dest,
                        attempt,
                        delay_us: delay.as_micros() as u64,
                    });
                    std::thread::sleep(delay);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(io_err(format!("rank {me} send to rank {dest}"), Some(dest), &e))
                }
            }
        }
        if t0.elapsed() >= STALL_THRESHOLD {
            self.stats.send_stalls += 1;
        }
        Ok(())
    }

    /// Encodes and writes one frame to a peer's buffered writer.
    fn write_frame(&mut self, dest: Rank, kind: FrameKind, payload: &[u8]) -> NetResult<()> {
        let wire = encode_frame(kind, payload);
        self.write_wire(dest, &wire)
    }

    /// Flushes one peer's buffered writer with the same retry policy as
    /// [`TcpTransport::write_wire`].
    fn flush_peer(&mut self, dest: Rank) -> NetResult<()> {
        let me = self.rank;
        let Some(w) = self.writers[dest].as_mut() else {
            return Ok(());
        };
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            match w.flush() {
                Ok(()) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if attempt >= self.tuning.retries {
                        return Err(NetError::timeout(
                            "send",
                            t0.elapsed(),
                            format!("rank {me} flush to rank {dest}: {attempt} retries exhausted"),
                        ));
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    let salt = ((me as u64) << 32) | dest as u64 | 1 << 63;
                    let delay = self.tuning.backoff(attempt, salt);
                    self.stats.note(NetNote::Retry {
                        dest,
                        attempt,
                        delay_us: delay.as_micros() as u64,
                    });
                    std::thread::sleep(delay);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(io_err(format!("rank {me} flush to rank {dest}"), Some(dest), &e))
                }
            }
        }
        if t0.elapsed() >= STALL_THRESHOLD {
            self.stats.send_stalls += 1;
        }
        Ok(())
    }

    /// Handles one event from the inbox: data is stashed for `try_recv`,
    /// control is recorded under its epoch/round key, and connection ends
    /// mark the peer dead (erroring immediately when the end itself was a
    /// failure rather than a clean EOF).
    fn absorb(&mut self, ev: Event) -> NetResult<()> {
        match ev {
            Event::Gone { src, error } => {
                let detail = error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "clean eof".to_string());
                if self.gone[src].is_none() {
                    self.gone[src] = Some(detail);
                }
                match error {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            Event::Frame { src, kind, payload } => match kind {
                // Query/Reply frames are serve-protocol application
                // payloads: delivered through `try_recv` exactly like
                // data (the payload's opcode byte disambiguates), and
                // counted as received only when the application pulls
                // them, as the four-counter protocol requires.
                FrameKind::Data | FrameKind::Query | FrameKind::Reply => {
                    self.pending.push_back((src, payload));
                    Ok(())
                }
                FrameKind::Barrier => {
                    let epoch = parse_u64(&payload, 0, src, "barrier epoch")?;
                    let seen = self.bar_seen.entry(epoch).or_insert_with(|| vec![false; self.n]);
                    if std::mem::replace(&mut seen[src], true) {
                        return Err(NetError::Protocol {
                            detail: format!(
                                "duplicate barrier announcement for epoch {epoch} from rank {src}"
                            ),
                        });
                    }
                    Ok(())
                }
                FrameKind::Term => {
                    let round = parse_u64(&payload, 0, src, "termination round")?;
                    let sent = parse_u64(&payload, 8, src, "termination sent")?;
                    let recv = parse_u64(&payload, 16, src, "termination received")?;
                    let seen =
                        self.term_seen.entry(round).or_insert_with(|| vec![None; self.n]);
                    if seen[src].replace((sent, recv)).is_some() {
                        return Err(NetError::Protocol {
                            detail: format!(
                                "duplicate termination contribution for round {round} from rank {src}"
                            ),
                        });
                    }
                    Ok(())
                }
                FrameKind::Heartbeat => Err(NetError::Protocol {
                    detail: format!("unexpected heartbeat frame on the data mesh from rank {src}"),
                }),
            },
        }
    }

    /// Waits up to one slice for an inbox event and absorbs it. Errors
    /// with a diagnostic [`NetError::Timeout`] once `start` is older than
    /// the collective deadline.
    fn pump(&mut self, start: Instant, phase: &str) -> NetResult<()> {
        match self.rx.recv_timeout(PUMP_SLICE) {
            Ok(ev) => self.absorb(ev),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let waited = start.elapsed();
                if waited >= self.tuning.collective_timeout {
                    Err(NetError::timeout(phase, waited, self.diagnostics()))
                } else {
                    Ok(())
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Protocol {
                detail: format!("rank {}: inbox channel closed", self.rank),
            }),
        }
    }

    /// The first dead peer that has not contributed, per `contributed`.
    fn dead_straggler(&self, contributed: impl Fn(Rank) -> bool) -> Option<(Rank, &str)> {
        (0..self.n).find_map(|p| {
            if p == self.rank || contributed(p) {
                return None;
            }
            self.gone[p].as_deref().map(|d| (p, d))
        })
    }
}

/// Reads one little-endian `u64` out of a control payload, typing a short
/// payload as a corrupt frame instead of panicking on the slice.
fn parse_u64(payload: &[u8], at: usize, src: Rank, what: &str) -> NetResult<u64> {
    payload
        .get(at..at + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| NetError::CorruptFrame {
            rank: src,
            detail: format!("{what}: control payload is {} bytes", payload.len()),
        })
}

fn reader_loop(
    src: Rank,
    mut stream: TcpStream,
    tx: mpsc::Sender<Event>,
    buf_bytes: usize,
    max_frame: usize,
) {
    let mut dec = FrameDecoder::with_max_len(max_frame);
    let mut buf = vec![0u8; buf_bytes];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = tx.send(Event::Gone { src, error: None });
                return;
            }
            Ok(k) => {
                dec.feed(&buf[..k]);
                loop {
                    match dec.next_frame() {
                        Ok(Some((kind, payload))) => {
                            if tx.send(Event::Frame { src, kind, payload }).is_err() {
                                // Endpoint dropped: stop reading.
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Event::Gone {
                                src,
                                error: Some(NetError::from_frame(src, &e)),
                            });
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                let _ = tx.send(Event::Gone {
                    src,
                    error: Some(NetError::from_io(
                        format!("read from rank {src}"),
                        Some(src),
                        &e,
                    )),
                });
                return;
            }
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn send(&mut self, dest: Rank, frame: &[u8]) -> NetResult<()> {
        self.stats.peers[dest].frames_sent += 1;
        self.stats.peers[dest].bytes_sent += frame.len() as u64;
        if dest == self.rank {
            self.pending.push_back((self.rank, frame.to_vec()));
            Ok(())
        } else {
            self.write_frame(dest, FrameKind::Data, frame)
        }
    }

    fn send_kind(&mut self, dest: Rank, kind: FrameKind, frame: &[u8]) -> NetResult<()> {
        self.stats.peers[dest].frames_sent += 1;
        self.stats.peers[dest].bytes_sent += frame.len() as u64;
        if dest == self.rank {
            self.pending.push_back((self.rank, frame.to_vec()));
            Ok(())
        } else {
            self.write_frame(dest, kind, frame)
        }
    }

    fn try_recv(&mut self) -> NetResult<Option<(Rank, Vec<u8>)>> {
        loop {
            if let Some((src, bytes)) = self.pending.pop_front() {
                self.stats.peers[src].frames_recv += 1;
                self.stats.peers[src].bytes_recv += bytes.len() as u64;
                return Ok(Some((src, bytes)));
            }
            match self.rx.try_recv() {
                Ok(ev) => self.absorb(ev)?,
                Err(_) => return Ok(None),
            }
        }
    }

    fn flush(&mut self) -> NetResult<()> {
        for dest in 0..self.n {
            self.flush_peer(dest)?;
        }
        Ok(())
    }

    fn barrier(&mut self) -> NetResult<()> {
        let epoch = self.epoch;
        self.epoch += 1;
        let payload = epoch.to_le_bytes();
        for dest in 0..self.n {
            if dest != self.rank {
                self.write_frame(dest, FrameKind::Barrier, &payload)?;
            }
        }
        self.flush()?;
        let start = Instant::now();
        loop {
            let done = match self.bar_seen.get(&epoch) {
                Some(seen) => (0..self.n).all(|p| p == self.rank || seen[p]),
                None => self.n == 1,
            };
            if done {
                break;
            }
            let straggler = self.dead_straggler(|p| {
                self.bar_seen.get(&epoch).map(|s| s[p]).unwrap_or(false)
            });
            if let Some((p, why)) = straggler {
                return Err(NetError::PeerDisconnected {
                    rank: p,
                    detail: format!("died before barrier epoch {epoch} ({why})"),
                });
            }
            self.pump(start, "barrier")?;
        }
        self.bar_seen.remove(&epoch);
        self.stats.barriers += 1;
        Ok(())
    }

    fn termination_round(&mut self) -> NetResult<bool> {
        self.flush()?;
        let round = self.round;
        self.round += 1;
        let mine = (self.stats.frames_sent(), self.stats.frames_recv());
        let mut payload = [0u8; 24];
        payload[..8].copy_from_slice(&round.to_le_bytes());
        payload[8..16].copy_from_slice(&mine.0.to_le_bytes());
        payload[16..24].copy_from_slice(&mine.1.to_le_bytes());
        for dest in 0..self.n {
            if dest != self.rank {
                self.write_frame(dest, FrameKind::Term, &payload)?;
            }
        }
        self.flush()?;
        let start = Instant::now();
        loop {
            let done = match self.term_seen.get(&round) {
                Some(seen) => (0..self.n).all(|p| p == self.rank || seen[p].is_some()),
                None => self.n == 1,
            };
            if done {
                break;
            }
            let straggler = self.dead_straggler(|p| {
                self.term_seen
                    .get(&round)
                    .map(|s| s[p].is_some())
                    .unwrap_or(false)
            });
            if let Some((p, why)) = straggler {
                return Err(NetError::PeerDisconnected {
                    rank: p,
                    detail: format!("died before termination round {round} ({why})"),
                });
            }
            self.pump(start, "termination")?;
        }
        let contribs = self.term_seen.remove(&round).unwrap_or_default();
        let (sent, received) = contribs
            .iter()
            .flatten()
            .fold(mine, |(s, r), &(ps, pr)| (s + ps, r + pr));
        self.stats.term_rounds += 1;
        Ok(self.detector.decide(sent, received))
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn last_global_totals(&self) -> Option<(u64, u64)> {
        self.detector.last()
    }

    fn first_dead_peer(&self) -> Option<Rank> {
        self.gone.iter().position(Option::is_some)
    }

    fn peer_dead(&self, rank: Rank) -> bool {
        self.gone.get(rank).map(Option::is_some).unwrap_or(false)
    }

    fn send_corrupt(&mut self, dest: Rank) -> NetResult<()> {
        if dest == self.rank {
            return Ok(());
        }
        // An all-ones length prefix: the peer's decoder must reject it as
        // oversized without buffering a giant payload.
        self.write_wire(dest, &[0xFF; 16])?;
        self.flush_peer(dest)
    }

    fn diagnostics(&self) -> String {
        let gone: Vec<String> = self
            .gone
            .iter()
            .enumerate()
            .filter_map(|(p, g)| g.as_ref().map(|d| format!("rank {p} gone ({d})")))
            .collect();
        format!(
            "rank {}/{}: epoch={} round={} sent={} recv={} pending={} last_global={:?}{}{}",
            self.rank,
            self.n,
            self.epoch,
            self.round,
            self.stats.frames_sent(),
            self.stats.frames_recv(),
            self.pending.len(),
            self.detector.last(),
            if gone.is_empty() { "" } else { "; " },
            gone.join(", "),
        )
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Flush buffered frames, then shut each socket down both ways.
        // The write shutdown puts FIN on the wire immediately, so peers'
        // reader threads see EOF (and raise `Gone`) even if this rank's
        // own reader threads are parked in a blocking read — death
        // detection must not depend on a peer sending us something first.
        // The read shutdown unblocks those parked reader threads so they
        // exit instead of lingering until process exit.
        for w in self.writers.iter_mut().flatten() {
            let _ = w.flush();
            let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an in-process TCP mesh on localhost ephemeral ports.
    fn tcp_mesh(n: usize) -> Vec<TcpTransport> {
        let dir = std::env::temp_dir().join(format!(
            "dakc-net-test-{}-{n}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    TcpTransport::rendezvous(rank, n, &dir, 8 << 10).unwrap()
                })
            })
            .collect();
        let mesh = handles.into_iter().map(|h| h.join().unwrap()).collect();
        std::fs::remove_dir_all(&dir).ok();
        mesh
    }

    #[test]
    fn single_rank_needs_no_sockets() {
        let dir = std::env::temp_dir().join(format!("dakc-net-1r-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = TcpTransport::rendezvous(0, 1, &dir, 8 << 10).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        t.send(0, b"self").unwrap();
        assert_eq!(t.try_recv().unwrap(), Some((0, b"self".to_vec())));
        assert!(!t.termination_round().unwrap());
        assert!(t.termination_round().unwrap());
        t.barrier().unwrap();
    }

    #[test]
    fn mesh_exchange_and_terminate() {
        let mesh = tcp_mesh(3);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    let n = t.num_ranks();
                    for dest in 0..n {
                        t.send(dest, format!("hi from {me} to {dest}").as_bytes())
                            .unwrap();
                    }
                    t.flush().unwrap();
                    let mut got = Vec::new();
                    while got.len() < n {
                        if let Some((src, bytes)) = t.try_recv().unwrap() {
                            got.push((src, bytes));
                        }
                    }
                    got.sort();
                    for (i, (src, bytes)) in got.iter().enumerate() {
                        assert_eq!(*src, i);
                        assert_eq!(bytes, format!("hi from {i} to {me}").as_bytes());
                    }
                    while !t.termination_round().unwrap() {}
                    t.barrier().unwrap();
                    (t.stats().frames_sent(), t.stats().frames_recv())
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), (3, 3));
        }
    }

    #[test]
    fn skewed_ranks_still_terminate() {
        // Rank 0 sends a burst late; ranks spin termination rounds in the
        // meantime and must not declare quiescence before the burst lands.
        let mesh = tcp_mesh(2);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    if me == 0 {
                        std::thread::sleep(Duration::from_millis(50));
                        for i in 0..100u32 {
                            t.send(1, &i.to_le_bytes()).unwrap();
                        }
                    }
                    let mut recvd = 0u64;
                    loop {
                        while t.try_recv().unwrap().is_some() {
                            recvd += 1;
                        }
                        if t.termination_round().unwrap() {
                            break;
                        }
                    }
                    (me, recvd)
                })
            })
            .collect();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec![(0, 0), (1, 100)]);
    }

    #[test]
    fn dead_peer_fails_barrier_with_its_rank() {
        let mut mesh = tcp_mesh(2);
        let t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        drop(t1); // rank 1 "dies": its sockets close, rank 0 sees EOF
        let err = t0.barrier().expect_err("barrier must not complete against a dead peer");
        match err {
            NetError::PeerDisconnected { rank, .. } => assert_eq!(rank, 1),
            // The send itself may observe the closed socket first.
            other => assert_eq!(other.rank(), Some(1), "{other}"),
        }
    }

    #[test]
    fn dead_peer_fails_termination_round_fast() {
        let mut mesh = tcp_mesh(2);
        let t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        drop(t1);
        let start = Instant::now();
        let err = t0.termination_round().unwrap_err();
        assert_eq!(err.rank(), Some(1), "{err}");
        // Fast-fail, not the 120 s collective deadline.
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn corrupt_wire_bytes_surface_as_typed_error() {
        let mut mesh = tcp_mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        t1.send_corrupt(0).unwrap();
        let start = Instant::now();
        let err = loop {
            match t0.try_recv() {
                Ok(_) => {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "corrupt frame never surfaced"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break e,
            }
        };
        assert!(
            matches!(
                err,
                NetError::OversizedFrame { rank: 1, .. } | NetError::CorruptFrame { rank: 1, .. }
            ),
            "{err}"
        );
    }
}
