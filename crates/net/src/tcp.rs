//! [`Transport`] backend over `std::net::TcpStream`.
//!
//! Topology is a full mesh: rank `i` connects to every lower rank and
//! accepts from every higher rank, identifying itself with a 4-byte rank
//! hello, so each socket's peer is known up front. Per peer the endpoint
//! keeps a send-side [`BufWriter`] sized to the L0 buffer config (one L0
//! `PUT` should flush in one syscall) and a reader thread that decodes
//! frames incrementally and pushes them onto a shared inbox channel.
//!
//! Control traffic (barrier announcements, termination contributions)
//! shares the sockets with data. Because peers progress at different
//! speeds, control frames for a *future* round can arrive while this rank
//! still waits on the current one; they are keyed by their epoch/round
//! number and buffered until the local rank catches up. Data frames that
//! arrive during a collective wait are stashed and handed to the next
//! `try_recv` — they are *not* counted as received until then, which the
//! termination protocol requires.
//!
//! Failure semantics: nothing here panics or hangs forever. A reader
//! thread that sees EOF, a reset, or a corrupt stream reports a `Gone`
//! event instead of panicking; a clean EOF marks the peer dead (it may
//! simply have finished first), while a decode failure or reset surfaces
//! as a typed [`NetError`] on the next `try_recv`/collective. Collectives
//! fast-fail with [`NetError::PeerDisconnected`] as soon as a dead peer is
//! known to owe a contribution, and otherwise time out after the tuned
//! collective deadline with a four-counter diagnostic dump. Connection
//! setup and transient send stalls retry with capped exponential backoff
//! plus deterministic jitter, within the tuned deadlines.
//!
//! Address discovery is either an explicit list (a rank file, one
//! `host:port` per line) or a rendezvous directory: every rank binds an
//! ephemeral port, atomically publishes `rank<i>.addr`, and polls until
//! all N files exist — which is how `dakc launch` wires up self-spawned
//! workers on localhost.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::error::{NetError, NetResult};
use crate::frame::{encode_frame, FrameDecoder, FrameKind, MAX_FRAME_LEN};
use crate::transport::{NetNote, NetStats, NetTuning, Rank, Recovered, TermDetector, Transport};

/// A send (or flush) slower than this counts as one backpressure stall.
const STALL_THRESHOLD: Duration = Duration::from_millis(1);

/// How long one inbox wait blocks before re-checking deadlines and dead
/// peers. Bounds the latency of fast-fail detection during collectives.
const PUMP_SLICE: Duration = Duration::from_millis(50);

/// Hello rank tag for a supervisor recovery announcement: the connection
/// is not a mesh peer dialing in but the launcher delivering one framed
/// [`FrameKind::Recover`] and closing.
pub const RECOVER_HELLO: u32 = u32::MAX;

/// Announces a respawn to every surviving rank of a recovery-mode mesh:
/// dials each `rank<i>.addr` published under `dir` (skipping `dead`
/// itself), identifies as [`RECOVER_HELLO`], and delivers one typed
/// [`FrameKind::Recover`] frame naming the dead rank and its new
/// incarnation. Best-effort by design — a survivor that cannot be
/// reached still learns of the respawn when the replacement dials it
/// directly; the announcement's job is to refresh reconnect deadlines
/// and pre-authorize the incarnation. Returns how many survivors were
/// notified.
pub fn announce_recovery(dir: &Path, n: usize, dead: Rank, incarnation: u32) -> usize {
    let mut payload = [0u8; 8];
    payload[..4].copy_from_slice(&(dead as u32).to_le_bytes());
    payload[4..].copy_from_slice(&incarnation.to_le_bytes());
    let frame = encode_frame(FrameKind::Recover, &payload);
    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&RECOVER_HELLO.to_le_bytes());
    hello[4..].copy_from_slice(&incarnation.to_le_bytes());
    let mut notified = 0;
    for peer in (0..n).filter(|&p| p != dead) {
        let Ok(text) = std::fs::read_to_string(dir.join(format!("rank{peer}.addr"))) else {
            continue;
        };
        let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() else { continue };
        let Ok(mut s) = TcpStream::connect(addr) else { continue };
        if s.write_all(&hello).and_then(|()| s.write_all(&frame)).and_then(|()| s.flush()).is_ok()
        {
            notified += 1;
        }
    }
    notified
}

/// One message from a reader thread.
enum Event {
    /// A decoded frame from `src`.
    Frame {
        src: Rank,
        kind: FrameKind,
        /// The incarnation tag from the recovery-mode frame envelope
        /// (0 when the mesh runs without recovery).
        inc: u32,
        payload: Vec<u8>,
    },
    /// `src`'s connection ended. `error` is `None` for a clean EOF (the
    /// peer may legitimately have finished first) and carries the typed
    /// failure for resets and corrupt streams.
    Gone {
        src: Rank,
        error: Option<NetError>,
    },
}

/// A peer that died recoverably and is awaited back.
struct PendingPeer {
    rank: Rank,
    since: Instant,
}

/// Recovery-mode state: present only on meshes built with
/// [`TcpTransport::rendezvous_recover`]. While armed, a recoverable peer
/// death is absorbed (sends masked, collectives abandoned) until the
/// respawned incarnation dials the retained listener back; completing the
/// reconnect voids the dead incarnation's frame totals and resets the
/// collective round state on this rank.
struct Recovery {
    /// The rendezvous listener, retained past setup so respawned peers
    /// (and the supervisor's announcements) can dial in.
    listener: TcpListener,
    /// Current incarnation: the highest epoch this rank has joined.
    /// Frames carry it in their envelope; stale control frames are
    /// discarded by it.
    incarnation: u32,
    /// Whether peer death is currently absorbed (armed during
    /// parse/drain) or fatal as usual (setup, count, gather).
    armed: bool,
    /// Sends to these ranks are dropped (their replacement replays the
    /// content).
    masked: Vec<bool>,
    /// Peers dead and awaited back.
    pending: Vec<PendingPeer>,
    /// Supervisor-announced incarnation per rank, if an announcement
    /// arrived (refreshes the reconnect deadline).
    announced: Vec<Option<u32>>,
    /// Reconnect dials that arrived before this rank absorbed the
    /// peer's death.
    early: Vec<(Rank, u32, TcpStream)>,
    /// Control frames from a future incarnation, replayed after the bump.
    stash: Vec<Event>,
    /// Frame totals voided from the four-counter accounting: traffic
    /// exchanged with incarnations that no longer exist.
    void_sent: u64,
    void_recv: u64,
    /// Per-peer totals already voided (so repeat recoveries void only the
    /// delta).
    sent_base: Vec<u64>,
    recv_base: Vec<u64>,
    buf_bytes: usize,
    max_frame: usize,
}

/// One rank's TCP endpoint.
pub struct TcpTransport {
    rank: Rank,
    n: usize,
    /// Per-peer buffered writers (`None` at `rank` — self-sends bypass
    /// the wire).
    writers: Vec<Option<BufWriter<TcpStream>>>,
    /// Shared inbox fed by one reader thread per peer.
    rx: mpsc::Receiver<Event>,
    /// Sender half: keeps the channel open when there are no peers and
    /// spawns readers for reconnected peers.
    tx: mpsc::Sender<Event>,
    /// Self-sends and data frames that arrived during a collective wait.
    pending: VecDeque<(Rank, Vec<u8>)>,
    /// Why each gone peer's connection ended (`None` while alive).
    gone: Vec<Option<String>>,
    /// Barrier announcements seen, per epoch, per peer.
    bar_seen: HashMap<u64, Vec<bool>>,
    /// Termination contributions seen, per round, per peer.
    term_seen: HashMap<u64, Vec<Option<(u64, u64)>>>,
    epoch: u64,
    round: u64,
    detector: TermDetector,
    stats: NetStats,
    tuning: NetTuning,
    /// Present only on recovery-mode meshes.
    recovery: Option<Recovery>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("rank", &self.rank)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

fn io_err(context: String, peer: Option<Rank>, e: &std::io::Error) -> NetError {
    NetError::from_io(context, peer, e)
}

impl TcpTransport {
    /// Connects a full mesh from an explicit address list with default
    /// tuning; `addrs[rank]` must be bindable locally. `buf_bytes` sizes
    /// the per-peer send and receive buffers (pass the job's L0
    /// `c0_bytes`).
    pub fn connect(rank: Rank, addrs: &[SocketAddr], buf_bytes: usize) -> NetResult<Self> {
        Self::connect_tuned(rank, addrs, buf_bytes, NetTuning::default())
    }

    /// [`TcpTransport::connect`] with explicit deadlines/retry tuning.
    pub fn connect_tuned(
        rank: Rank,
        addrs: &[SocketAddr],
        buf_bytes: usize,
        tuning: NetTuning,
    ) -> NetResult<Self> {
        let listener = TcpListener::bind(addrs[rank])
            .map_err(|e| io_err(format!("rank {rank}: bind {}", addrs[rank]), None, &e))?;
        Self::with_listener(rank, addrs, listener, buf_bytes, tuning, None)
    }

    /// Like [`TcpTransport::connect`], reading the address list from a
    /// rank file: one `host:port` per line, line `i` for rank `i`.
    pub fn from_rank_file(rank: Rank, path: &Path, buf_bytes: usize) -> NetResult<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| io_err(format!("rank file {}", path.display()), None, &e))?;
        let addrs = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                l.parse::<SocketAddr>().map_err(|e| NetError::Protocol {
                    detail: format!("rank file line {l:?}: {e}"),
                })
            })
            .collect::<NetResult<Vec<_>>>()?;
        Self::connect(rank, &addrs, buf_bytes)
    }

    /// Binds an ephemeral localhost port, publishes it as
    /// `<dir>/rank<i>.addr` (atomic write), waits for all `n` ranks to
    /// publish, then connects the mesh with default tuning. This is the
    /// `dakc launch` self-spawn path.
    pub fn rendezvous(rank: Rank, n: usize, dir: &Path, buf_bytes: usize) -> NetResult<Self> {
        Self::rendezvous_tuned(rank, n, dir, buf_bytes, NetTuning::default())
    }

    /// [`TcpTransport::rendezvous`] with explicit deadlines/retry tuning.
    pub fn rendezvous_tuned(
        rank: Rank,
        n: usize,
        dir: &Path,
        buf_bytes: usize,
        tuning: NetTuning,
    ) -> NetResult<Self> {
        Self::rendezvous_impl(rank, n, dir, buf_bytes, tuning, None)
    }

    /// [`TcpTransport::rendezvous_tuned`] in recovery mode: the rank
    /// hello and every frame envelope carry an incarnation tag, the
    /// rendezvous listener is retained so a respawned peer can dial back
    /// in, and (once armed) a recoverable peer death is absorbed instead
    /// of surfaced. `incarnation` 0 joins a fresh mesh; a positive
    /// incarnation *rejoins* a running mesh after this rank was respawned
    /// — it republishes its address and dials every surviving peer.
    pub fn rendezvous_recover(
        rank: Rank,
        n: usize,
        dir: &Path,
        buf_bytes: usize,
        tuning: NetTuning,
        incarnation: u32,
    ) -> NetResult<Self> {
        if incarnation == 0 {
            Self::rendezvous_impl(rank, n, dir, buf_bytes, tuning, Some(0))
        } else {
            Self::rejoin(rank, n, dir, buf_bytes, tuning, incarnation)
        }
    }

    fn rendezvous_impl(
        rank: Rank,
        n: usize,
        dir: &Path,
        buf_bytes: usize,
        tuning: NetTuning,
        recover: Option<u32>,
    ) -> NetResult<Self> {
        let ctx = |what: &str| format!("rank {rank}: rendezvous {what}");
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| io_err(ctx("bind"), None, &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err(ctx("local_addr"), None, &e))?;
        let tmp = dir.join(format!(".rank{rank}.addr.tmp"));
        std::fs::write(&tmp, addr.to_string())
            .map_err(|e| io_err(ctx("publish"), None, &e))?;
        std::fs::rename(&tmp, dir.join(format!("rank{rank}.addr")))
            .map_err(|e| io_err(ctx("publish"), None, &e))?;

        let start = Instant::now();
        let mut addrs = vec![None; n];
        addrs[rank] = Some(addr);
        while addrs.iter().any(Option::is_none) {
            for (i, slot) in addrs.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Ok(text) = std::fs::read_to_string(dir.join(format!("rank{i}.addr"))) {
                        *slot = Some(text.trim().parse().map_err(|e| NetError::Protocol {
                            detail: format!("rank {i} published a bad address: {e}"),
                        })?);
                    }
                }
            }
            if addrs.iter().any(Option::is_none) {
                if start.elapsed() > tuning.connect_timeout {
                    let missing: Vec<usize> = addrs
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    return Err(NetError::timeout(
                        "connect",
                        start.elapsed(),
                        format!("rank {rank}: rendezvous missing addresses for ranks {missing:?}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let addrs: Vec<SocketAddr> = addrs.into_iter().map(|a| a.expect("filled")).collect();
        Self::with_listener(rank, &addrs, listener, buf_bytes, tuning, recover)
    }

    /// Rejoins a running recovery-mode mesh after a respawn: republishes
    /// this rank's address and dials *every* surviving peer (their
    /// retained listeners accept via `poll_recovery`), identifying itself
    /// with the new incarnation.
    fn rejoin(
        rank: Rank,
        n: usize,
        dir: &Path,
        buf_bytes: usize,
        tuning: NetTuning,
        incarnation: u32,
    ) -> NetResult<Self> {
        let ctx = |what: &str| format!("rank {rank}: rejoin {what}");
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| io_err(ctx("bind"), None, &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err(ctx("listener nonblocking"), None, &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err(ctx("local_addr"), None, &e))?;
        let tmp = dir.join(format!(".rank{rank}.addr.tmp"));
        std::fs::write(&tmp, addr.to_string())
            .map_err(|e| io_err(ctx("publish"), None, &e))?;
        std::fs::rename(&tmp, dir.join(format!("rank{rank}.addr")))
            .map_err(|e| io_err(ctx("publish"), None, &e))?;

        let buf_bytes = buf_bytes.max(4 << 10);
        let max_frame = (buf_bytes * 4).max(1 << 20);
        let (tx, rx) = mpsc::channel();
        let mut writers: Vec<Option<BufWriter<TcpStream>>> = (0..n).map(|_| None).collect();
        for peer in (0..n).filter(|&p| p != rank) {
            let start = Instant::now();
            let mut attempt = 0u32;
            let stream = loop {
                // Re-read the peer's address each attempt: a peer that is
                // itself mid-respawn republishes a new one.
                let dialed = std::fs::read_to_string(dir.join(format!("rank{peer}.addr")))
                    .ok()
                    .and_then(|t| t.trim().parse::<SocketAddr>().ok())
                    .map(TcpStream::connect);
                match dialed {
                    Some(Ok(s)) => break s,
                    other => {
                        if start.elapsed() > tuning.connect_timeout {
                            let last = match other {
                                Some(Err(e)) => e.to_string(),
                                _ => "no published address".to_string(),
                            };
                            return Err(NetError::timeout(
                                "connect",
                                start.elapsed(),
                                format!(
                                    "rank {rank}: rejoin dialing rank {peer} \
                                     ({attempt} retries, last error: {last})"
                                ),
                            ));
                        }
                        attempt += 1;
                        let salt = ((rank as u64) << 32) | peer as u64;
                        std::thread::sleep(tuning.backoff(attempt, salt));
                    }
                }
            };
            let peer_ctx = |what: &str| format!("rank {rank}: rejoin {what} to rank {peer}");
            stream
                .set_nodelay(true)
                .map_err(|e| io_err(peer_ctx("nodelay"), Some(peer), &e))?;
            stream
                .set_write_timeout(Some(tuning.collective_timeout))
                .map_err(|e| io_err(peer_ctx("write timeout"), Some(peer), &e))?;
            let mut s = stream;
            let mut hello = [0u8; 8];
            hello[..4].copy_from_slice(&(rank as u32).to_le_bytes());
            hello[4..].copy_from_slice(&incarnation.to_le_bytes());
            s.write_all(&hello)
                .and_then(|()| s.flush())
                .map_err(|e| io_err(peer_ctx("hello"), Some(peer), &e))?;
            let reader = s
                .try_clone()
                .map_err(|e| io_err(peer_ctx("clone stream"), Some(peer), &e))?;
            let tx = tx.clone();
            std::thread::Builder::new()
                .name(format!("dakc-net-r{rank}p{peer}"))
                .spawn(move || reader_loop(peer, reader, tx, buf_bytes, max_frame, true))
                .map_err(|e| io_err(peer_ctx("spawn reader"), None, &e))?;
            writers[peer] = Some(BufWriter::with_capacity(buf_bytes, s));
        }
        Ok(Self {
            rank,
            n,
            writers,
            rx,
            tx,
            pending: VecDeque::new(),
            gone: vec![None; n],
            bar_seen: HashMap::new(),
            term_seen: HashMap::new(),
            epoch: 0,
            round: 0,
            detector: TermDetector::new(),
            stats: NetStats::new(n),
            tuning,
            recovery: Some(Recovery {
                listener,
                incarnation,
                armed: false,
                masked: vec![false; n],
                pending: Vec::new(),
                announced: vec![None; n],
                early: Vec::new(),
                stash: Vec::new(),
                void_sent: 0,
                void_recv: 0,
                sent_base: vec![0; n],
                recv_base: vec![0; n],
                buf_bytes,
                max_frame,
            }),
        })
    }

    fn with_listener(
        rank: Rank,
        addrs: &[SocketAddr],
        listener: TcpListener,
        buf_bytes: usize,
        tuning: NetTuning,
        recover: Option<u32>,
    ) -> NetResult<Self> {
        let n = addrs.len();
        assert!(rank < n, "rank {rank} out of range for {n} ranks");
        let buf_bytes = buf_bytes.max(4 << 10);
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut setup_retries = 0u64;

        // Lower ranks are dialed (they listen first by construction);
        // higher ranks dial us.
        for (peer, addr) in addrs.iter().enumerate().take(rank) {
            let start = Instant::now();
            let mut attempt = 0u32;
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        if start.elapsed() > tuning.connect_timeout {
                            return Err(NetError::timeout(
                                "connect",
                                start.elapsed(),
                                format!(
                                    "rank {rank}: dialing rank {peer} at {addr} \
                                     ({attempt} retries, last error: {e})"
                                ),
                            ));
                        }
                        attempt += 1;
                        setup_retries += 1;
                        let salt = ((rank as u64) << 32) | peer as u64;
                        std::thread::sleep(tuning.backoff(attempt, salt));
                    }
                }
            };
            let peer_ctx = |what: &str| format!("rank {rank}: {what} to rank {peer}");
            stream
                .set_nodelay(true)
                .map_err(|e| io_err(peer_ctx("nodelay"), Some(peer), &e))?;
            let mut s = stream;
            // In recovery mode the hello also carries this rank's
            // incarnation; off, the 4-byte hello stays byte-identical.
            let sent = match recover {
                None => s.write_all(&(rank as u32).to_le_bytes()),
                Some(inc) => {
                    let mut hello = [0u8; 8];
                    hello[..4].copy_from_slice(&(rank as u32).to_le_bytes());
                    hello[4..].copy_from_slice(&inc.to_le_bytes());
                    s.write_all(&hello)
                }
            };
            sent.and_then(|()| s.flush())
                .map_err(|e| io_err(peer_ctx("hello"), Some(peer), &e))?;
            streams[peer] = Some(s);
        }
        // Accept the higher ranks without blocking forever on a spawn
        // that never happened: poll a nonblocking listener under the
        // connect deadline.
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err(format!("rank {rank}: listener nonblocking"), None, &e))?;
        let start = Instant::now();
        let expected = n - rank - 1;
        let mut accepted = 0usize;
        while accepted < expected {
            match listener.accept() {
                Ok((stream, _)) => {
                    let ctx = |what: &str| format!("rank {rank}: accept {what}");
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| io_err(ctx("blocking"), None, &e))?;
                    stream
                        .set_nodelay(true)
                        .map_err(|e| io_err(ctx("nodelay"), None, &e))?;
                    // A connected-but-mute dialer must not wedge setup.
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .map_err(|e| io_err(ctx("read timeout"), None, &e))?;
                    let mut stream = stream;
                    let src = if recover.is_none() {
                        let mut hello = [0u8; 4];
                        stream
                            .read_exact(&mut hello)
                            .map_err(|e| io_err(ctx("hello"), None, &e))?;
                        u32::from_le_bytes(hello) as usize
                    } else {
                        let mut hello = [0u8; 8];
                        stream
                            .read_exact(&mut hello)
                            .map_err(|e| io_err(ctx("hello"), None, &e))?;
                        u32::from_le_bytes(hello[..4].try_into().expect("4 bytes")) as usize
                    };
                    stream
                        .set_read_timeout(None)
                        .map_err(|e| io_err(ctx("read timeout"), None, &e))?;
                    if src <= rank || src >= n || streams[src].is_some() {
                        return Err(NetError::Protocol {
                            detail: format!("rank {rank}: unexpected hello from rank {src}"),
                        });
                    }
                    streams[src] = Some(stream);
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if start.elapsed() > tuning.connect_timeout {
                        return Err(NetError::timeout(
                            "connect",
                            start.elapsed(),
                            format!(
                                "rank {rank}: accepted {accepted} of {expected} higher ranks"
                            ),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(format!("rank {rank}: accept"), None, &e)),
            }
        }

        let (tx, rx) = mpsc::channel();
        // Bound incoming frames well above any frame the job legitimately
        // produces (one L0 PUT, a gather chunk, a metrics blob) so a
        // flipped length prefix cannot demand a giant allocation.
        let max_frame = (buf_bytes * 4).max(1 << 20);
        let mut writers: Vec<Option<BufWriter<TcpStream>>> = Vec::with_capacity(n);
        for (peer, stream) in streams.into_iter().enumerate() {
            match stream {
                None => writers.push(None),
                Some(s) => {
                    // A send that sits in the OS buffer past the
                    // collective deadline is a wedge, not backpressure.
                    s.set_write_timeout(Some(tuning.collective_timeout))
                        .map_err(|e| io_err(format!("rank {rank}: write timeout"), Some(peer), &e))?;
                    let reader = s
                        .try_clone()
                        .map_err(|e| io_err(format!("rank {rank}: clone stream"), Some(peer), &e))?;
                    let tx = tx.clone();
                    let epoch_env = recover.is_some();
                    std::thread::Builder::new()
                        .name(format!("dakc-net-r{rank}p{peer}"))
                        .spawn(move || reader_loop(peer, reader, tx, buf_bytes, max_frame, epoch_env))
                        .map_err(|e| io_err(format!("rank {rank}: spawn reader"), None, &e))?;
                    writers.push(Some(BufWriter::with_capacity(buf_bytes, s)));
                }
            }
        }
        let mut stats = NetStats::new(n);
        stats.retries = setup_retries;
        let recovery = recover.map(|incarnation| Recovery {
            listener,
            incarnation,
            armed: false,
            masked: vec![false; n],
            pending: Vec::new(),
            announced: vec![None; n],
            early: Vec::new(),
            stash: Vec::new(),
            void_sent: 0,
            void_recv: 0,
            sent_base: vec![0; n],
            recv_base: vec![0; n],
            buf_bytes,
            max_frame,
        });
        Ok(Self {
            rank,
            n,
            writers,
            rx,
            tx,
            pending: VecDeque::new(),
            gone: vec![None; n],
            bar_seen: HashMap::new(),
            term_seen: HashMap::new(),
            epoch: 0,
            round: 0,
            detector: TermDetector::new(),
            stats,
            tuning,
            recovery,
        })
    }

    /// Writes raw wire bytes to a peer, retrying transient stalls with
    /// backoff and classifying failures.
    fn write_wire(&mut self, dest: Rank, wire: &[u8]) -> NetResult<()> {
        let me = self.rank;
        let Some(w) = self.writers[dest].as_mut() else {
            return Err(NetError::Protocol {
                detail: format!("rank {me} has no connection to rank {dest}"),
            });
        };
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            match w.write_all(wire) {
                Ok(()) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if attempt >= self.tuning.retries {
                        return Err(NetError::timeout(
                            "send",
                            t0.elapsed(),
                            format!("rank {me} to rank {dest}: {attempt} retries exhausted ({e})"),
                        ));
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    let salt = ((me as u64) << 32) | dest as u64;
                    let delay = self.tuning.backoff(attempt, salt);
                    self.stats.note(NetNote::Retry {
                        dest,
                        attempt,
                        delay_us: delay.as_micros() as u64,
                    });
                    std::thread::sleep(delay);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(io_err(format!("rank {me} send to rank {dest}"), Some(dest), &e))
                }
            }
        }
        if t0.elapsed() >= STALL_THRESHOLD {
            self.stats.send_stalls += 1;
        }
        Ok(())
    }

    /// Encodes and writes one frame to a peer's buffered writer. In
    /// recovery mode the payload is prefixed with this rank's incarnation
    /// (the epoch envelope); off, the wire bytes are exactly
    /// [`encode_frame`]'s.
    fn write_frame(&mut self, dest: Rank, kind: FrameKind, payload: &[u8]) -> NetResult<()> {
        let wire = match &self.recovery {
            Some(r) => encode_frame_inc(kind, r.incarnation, payload),
            None => encode_frame(kind, payload),
        };
        self.write_wire(dest, &wire)
    }

    /// Whether `e` is a peer death this endpoint can absorb and recover
    /// from (recovery armed and the error names the dead peer).
    fn recoverable_send_err(&self, dest: Rank, e: &NetError) -> bool {
        self.recovery.as_ref().is_some_and(|r| r.armed)
            && matches!(e, NetError::PeerDisconnected { rank, .. } if *rank == dest)
    }

    /// Latches `src` as recoverably dead: its writer is dropped, sends to
    /// it are masked, and [`TcpTransport::poll_recovery`] awaits its new
    /// incarnation.
    fn mark_recoverable_gone(&mut self, src: Rank, detail: String) {
        if self.gone[src].is_none() {
            self.gone[src] = Some(detail);
        }
        // Dropping the writer flushes best-effort into the dead socket
        // and closes our side.
        self.writers[src] = None;
        let r = self.recovery.as_mut().expect("recovery mode");
        if !r.masked[src] {
            r.masked[src] = true;
            r.pending.push(PendingPeer { rank: src, since: Instant::now() });
        }
    }

    /// Flushes one peer's buffered writer with the same retry policy as
    /// [`TcpTransport::write_wire`].
    fn flush_peer(&mut self, dest: Rank) -> NetResult<()> {
        let me = self.rank;
        let Some(w) = self.writers[dest].as_mut() else {
            return Ok(());
        };
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            match w.flush() {
                Ok(()) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if attempt >= self.tuning.retries {
                        return Err(NetError::timeout(
                            "send",
                            t0.elapsed(),
                            format!("rank {me} flush to rank {dest}: {attempt} retries exhausted"),
                        ));
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    let salt = ((me as u64) << 32) | dest as u64 | 1 << 63;
                    let delay = self.tuning.backoff(attempt, salt);
                    self.stats.note(NetNote::Retry {
                        dest,
                        attempt,
                        delay_us: delay.as_micros() as u64,
                    });
                    std::thread::sleep(delay);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(io_err(format!("rank {me} flush to rank {dest}"), Some(dest), &e))
                }
            }
        }
        if t0.elapsed() >= STALL_THRESHOLD {
            self.stats.send_stalls += 1;
        }
        Ok(())
    }

    /// Handles one event from the inbox: data is stashed for `try_recv`,
    /// control is recorded under its epoch/round key, and connection ends
    /// mark the peer dead (erroring immediately when the end itself was a
    /// failure rather than a clean EOF).
    fn absorb(&mut self, ev: Event) -> NetResult<()> {
        match ev {
            Event::Gone { src, error } => {
                let detail = error
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "clean eof".to_string());
                // While recovery is armed, a peer death (clean EOF from
                // its dying sockets, or a reset) is absorbed: the rank is
                // masked and awaited back instead of failing the run.
                if self.recovery.as_ref().is_some_and(|r| r.armed)
                    && matches!(
                        error,
                        None | Some(NetError::PeerDisconnected { .. })
                    )
                {
                    self.mark_recoverable_gone(src, detail);
                    return Ok(());
                }
                if self.gone[src].is_none() {
                    self.gone[src] = Some(detail);
                }
                match error {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            Event::Frame { src, kind, inc, payload } => {
                // Stale-incarnation filtering applies to *control* frames
                // only: a Barrier/Term contribution from a dead
                // incarnation must not poison the reset round state, and
                // one from a future incarnation (a respawned peer racing
                // ahead) is stashed until this rank completes the same
                // reconnect. Data frames pass regardless — survivor
                // traffic sent before the local bump is still real data,
                // and a dead incarnation's data is handled by the
                // pending-purge plus the application-level replay.
                if matches!(kind, FrameKind::Barrier | FrameKind::Term) {
                    if let Some(r) = self.recovery.as_mut() {
                        if inc < r.incarnation {
                            self.stats.stale_frames += 1;
                            return Ok(());
                        }
                        if inc > r.incarnation {
                            r.stash.push(Event::Frame { src, kind, inc, payload });
                            return Ok(());
                        }
                    }
                }
                self.absorb_frame(src, kind, payload)
            }
        }
    }

    /// Dispatches one already-envelope-stripped, incarnation-accepted
    /// frame.
    fn absorb_frame(&mut self, src: Rank, kind: FrameKind, payload: Vec<u8>) -> NetResult<()> {
        {
            match kind {
                // Query/Reply frames are serve-protocol application
                // payloads: delivered through `try_recv` exactly like
                // data (the payload's opcode byte disambiguates), and
                // counted as received only when the application pulls
                // them, as the four-counter protocol requires.
                FrameKind::Data | FrameKind::Query | FrameKind::Reply => {
                    self.pending.push_back((src, payload));
                    Ok(())
                }
                FrameKind::Barrier => {
                    let epoch = parse_u64(&payload, 0, src, "barrier epoch")?;
                    let seen = self.bar_seen.entry(epoch).or_insert_with(|| vec![false; self.n]);
                    if std::mem::replace(&mut seen[src], true) {
                        return Err(NetError::Protocol {
                            detail: format!(
                                "duplicate barrier announcement for epoch {epoch} from rank {src}"
                            ),
                        });
                    }
                    Ok(())
                }
                FrameKind::Term => {
                    let round = parse_u64(&payload, 0, src, "termination round")?;
                    let sent = parse_u64(&payload, 8, src, "termination sent")?;
                    let recv = parse_u64(&payload, 16, src, "termination received")?;
                    let seen =
                        self.term_seen.entry(round).or_insert_with(|| vec![None; self.n]);
                    if seen[src].replace((sent, recv)).is_some() {
                        return Err(NetError::Protocol {
                            detail: format!(
                                "duplicate termination contribution for round {round} from rank {src}"
                            ),
                        });
                    }
                    Ok(())
                }
                FrameKind::Heartbeat => Err(NetError::Protocol {
                    detail: format!("unexpected heartbeat frame on the data mesh from rank {src}"),
                }),
                // Recovery announcements arrive on the retained listener
                // (see `poll_recovery`), never on a mesh socket.
                FrameKind::Recover => Err(NetError::Protocol {
                    detail: format!("unexpected recover frame on the data mesh from rank {src}"),
                }),
            }
        }
    }

    /// Waits up to one slice for an inbox event and absorbs it. Errors
    /// with a diagnostic [`NetError::Timeout`] once `start` is older than
    /// the collective deadline.
    fn pump(&mut self, start: Instant, phase: &str) -> NetResult<()> {
        match self.rx.recv_timeout(PUMP_SLICE) {
            Ok(ev) => self.absorb(ev),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let waited = start.elapsed();
                if waited >= self.tuning.collective_timeout {
                    Err(NetError::timeout(phase, waited, self.diagnostics()))
                } else {
                    Ok(())
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Protocol {
                detail: format!("rank {}: inbox channel closed", self.rank),
            }),
        }
    }

    /// Whether some dead-awaiting-respawn peer has not yet contributed to
    /// termination round `round`. Such a round cannot complete until the
    /// peer's replacement rejoins (which resets all round state), so the
    /// caller bails back to `poll_recovery`. A dead peer that *did*
    /// contribute does not block the round — its recorded total is as
    /// good as a live peer's.
    fn round_blocked_on_recovery(&self, round: u64) -> bool {
        let Some(r) = self.recovery.as_ref() else {
            return false;
        };
        if !r.armed {
            return false;
        }
        r.pending.iter().any(|p| {
            self.term_seen
                .get(&round)
                .and_then(|s| s.get(p.rank).copied().flatten())
                .is_none()
        })
    }

    /// The first dead peer that has not contributed, per `contributed`.
    fn dead_straggler(&self, contributed: impl Fn(Rank) -> bool) -> Option<(Rank, &str)> {
        (0..self.n).find_map(|p| {
            if p == self.rank || contributed(p) {
                return None;
            }
            self.gone[p].as_deref().map(|d| (p, d))
        })
    }

    /// Accepts and classifies one connection on the retained recovery
    /// listener: either the supervisor announcing a respawn (hello rank
    /// [`RECOVER_HELLO`], one framed [`FrameKind::Recover`], then close)
    /// or a respawned peer dialing back in (stashed in `early` until the
    /// local side has absorbed that peer's death).
    fn recovery_handle_conn(&mut self, stream: TcpStream) {
        let Some(r) = self.recovery.as_mut() else { return };
        // Announcement and reconnect hellos are both best-effort: a
        // half-open or garbled dialer is dropped, never fatal — the
        // reconnect deadline is the backstop.
        if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        if stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .is_err()
        {
            return;
        }
        let mut stream = stream;
        let mut hello = [0u8; 8];
        if stream.read_exact(&mut hello).is_err() {
            return;
        }
        let who = u32::from_le_bytes(hello[..4].try_into().expect("4 bytes"));
        let inc = u32::from_le_bytes(hello[4..].try_into().expect("4 bytes"));
        if who == RECOVER_HELLO {
            // Supervisor announcement: one plain (non-enveloped) Recover
            // frame follows. Tiny decode bound — the payload is 8 bytes.
            let mut dec = FrameDecoder::with_max_len(1 << 10);
            let mut buf = [0u8; 64];
            loop {
                match dec.next_frame() {
                    Ok(Some((FrameKind::Recover, p))) if p.len() >= 8 => {
                        let dead =
                            u32::from_le_bytes(p[..4].try_into().expect("4 bytes")) as usize;
                        let new_inc = u32::from_le_bytes(p[4..8].try_into().expect("4 bytes"));
                        if dead < r.announced.len() {
                            r.announced[dead] = Some(new_inc);
                            // The respawn restarts the reconnect clock.
                            for p in &mut r.pending {
                                if p.rank == dead {
                                    p.since = Instant::now();
                                }
                            }
                        }
                        return;
                    }
                    Ok(Some(_)) | Err(_) => return,
                    Ok(None) => match stream.read(&mut buf) {
                        Ok(0) => return,
                        Ok(k) => dec.feed(&buf[..k]),
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => return,
                    },
                }
            }
        }
        let who = who as usize;
        if who >= r.masked.len() || inc <= r.incarnation {
            // Out-of-range rank, or an incarnation this mesh has already
            // moved past (a late duplicate dial): drop.
            return;
        }
        let _ = stream.set_read_timeout(None);
        r.early.push((who, inc, stream));
    }

    /// Wires a respawned peer back into the mesh and resets the collective
    /// state for the new epoch: spawns its reader, restores its writer,
    /// voids the dead incarnation's frame totals from the four-counter
    /// accounting, drops its undelivered data, bumps the local
    /// incarnation, and zeroes the round/epoch/detector state on this
    /// rank (every survivor does the same, so the mesh restarts
    /// termination from round 0 together).
    fn complete_reconnect(
        &mut self,
        peer: Rank,
        inc: u32,
        stream: TcpStream,
    ) -> NetResult<Recovered> {
        let me = self.rank;
        let ctx = |what: &str| format!("rank {me}: reconnect {what} to rank {peer}");
        stream
            .set_write_timeout(Some(self.tuning.collective_timeout))
            .map_err(|e| io_err(ctx("write timeout"), Some(peer), &e))?;
        let reader = stream
            .try_clone()
            .map_err(|e| io_err(ctx("clone stream"), Some(peer), &e))?;
        let r = self.recovery.as_mut().expect("recovery mode");
        let tx = self.tx.clone();
        let (buf_bytes, max_frame) = (r.buf_bytes, r.max_frame);
        std::thread::Builder::new()
            .name(format!("dakc-net-r{me}p{peer}"))
            .spawn(move || reader_loop(peer, reader, tx, buf_bytes, max_frame, true))
            .map_err(|e| io_err(ctx("spawn reader"), None, &e))?;
        self.writers[peer] = Some(BufWriter::with_capacity(buf_bytes, stream));
        self.gone[peer] = None;

        // Void the dead incarnation's traffic: everything ever exchanged
        // with this peer beyond what previous recoveries already voided.
        // Receive counts are pop-time counts, so frames still sitting in
        // `pending` were never counted — they are dropped below instead.
        let ps = &self.stats.peers[peer];
        let (cur_sent, cur_recv) = (ps.frames_sent, ps.frames_recv);
        let r = self.recovery.as_mut().expect("recovery mode");
        r.void_sent += cur_sent - r.sent_base[peer];
        r.void_recv += cur_recv - r.recv_base[peer];
        r.sent_base[peer] = cur_sent;
        r.recv_base[peer] = cur_recv;
        r.masked[peer] = false;
        r.pending.retain(|p| p.rank != peer);
        r.announced[peer] = None;
        r.incarnation = r.incarnation.max(inc);
        // Undelivered data from the dead incarnation must not reach the
        // application (its replacement replays the content).
        self.pending.retain(|(src, _)| *src != peer);
        // Fresh collective epoch: both sides of the recovery re-enter
        // termination at round 0 with a cleared detector history.
        self.epoch = 0;
        self.round = 0;
        self.bar_seen.clear();
        self.term_seen.clear();
        self.detector = TermDetector::new();
        self.stats.recoveries += 1;
        // Control frames from the new incarnation that raced ahead of
        // this reconnect were stashed; they are valid now.
        let stash = std::mem::take(&mut self.recovery.as_mut().expect("recovery mode").stash);
        for ev in stash {
            self.absorb(ev)?;
        }
        Ok(Recovered { rank: peer, incarnation: inc })
    }
}

/// Reads one little-endian `u64` out of a control payload, typing a short
/// payload as a corrupt frame instead of panicking on the slice.
fn parse_u64(payload: &[u8], at: usize, src: Rank, what: &str) -> NetResult<u64> {
    payload
        .get(at..at + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| NetError::CorruptFrame {
            rank: src,
            detail: format!("{what}: control payload is {} bytes", payload.len()),
        })
}

/// [`encode_frame`] with the recovery-mode epoch envelope: the sender's
/// incarnation is prefixed to the payload (stripped back off by the
/// receiving reader thread). Only recovery-mode meshes produce or expect
/// this layout.
fn encode_frame_inc(kind: FrameKind, inc: u32, payload: &[u8]) -> Vec<u8> {
    let len = 1 + 4 + payload.len();
    assert!(len <= MAX_FRAME_LEN, "frame payload too large: {len}");
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(kind.to_u8());
    out.extend_from_slice(&inc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn reader_loop(
    src: Rank,
    mut stream: TcpStream,
    tx: mpsc::Sender<Event>,
    buf_bytes: usize,
    max_frame: usize,
    epoch_env: bool,
) {
    let mut dec = FrameDecoder::with_max_len(max_frame);
    let mut buf = vec![0u8; buf_bytes];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = tx.send(Event::Gone { src, error: None });
                return;
            }
            Ok(k) => {
                dec.feed(&buf[..k]);
                loop {
                    match dec.next_frame() {
                        Ok(Some((kind, mut payload))) => {
                            let inc = if epoch_env {
                                // Recovery mode: every frame leads with the
                                // sender's incarnation; strip it here so
                                // the payload seen upstream is unchanged.
                                if payload.len() < 4 {
                                    let _ = tx.send(Event::Gone {
                                        src,
                                        error: Some(NetError::CorruptFrame {
                                            rank: src,
                                            detail: format!(
                                                "frame too short for epoch envelope: {} bytes",
                                                payload.len()
                                            ),
                                        }),
                                    });
                                    return;
                                }
                                let inc = u32::from_le_bytes(
                                    payload[..4].try_into().expect("4 bytes"),
                                );
                                payload.drain(..4);
                                inc
                            } else {
                                0
                            };
                            if tx.send(Event::Frame { src, kind, inc, payload }).is_err() {
                                // Endpoint dropped: stop reading.
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Event::Gone {
                                src,
                                error: Some(NetError::from_frame(src, &e)),
                            });
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                let _ = tx.send(Event::Gone {
                    src,
                    error: Some(NetError::from_io(
                        format!("read from rank {src}"),
                        Some(src),
                        &e,
                    )),
                });
                return;
            }
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.n
    }

    fn send(&mut self, dest: Rank, frame: &[u8]) -> NetResult<()> {
        self.send_kind(dest, FrameKind::Data, frame)
    }

    fn send_kind(&mut self, dest: Rank, kind: FrameKind, frame: &[u8]) -> NetResult<()> {
        // Sends to a masked (dead, awaiting respawn) rank are dropped
        // *uncounted*: the replacement incarnation replays this content,
        // and the four-counter totals must not include frames nobody will
        // ever receive.
        if self.recovery.as_ref().is_some_and(|r| r.masked[dest]) {
            self.stats.masked_sends += 1;
            return Ok(());
        }
        self.stats.peers[dest].frames_sent += 1;
        self.stats.peers[dest].bytes_sent += frame.len() as u64;
        if dest == self.rank {
            self.pending.push_back((self.rank, frame.to_vec()));
            return Ok(());
        }
        match self.write_frame(dest, kind, frame) {
            Err(e) if self.recoverable_send_err(dest, &e) => {
                // The peer died under this send: absorb it. The frame was
                // counted but never left — void it back out so the
                // accounting matches what the wire carried.
                self.stats.peers[dest].frames_sent -= 1;
                self.stats.peers[dest].bytes_sent -= frame.len() as u64;
                self.mark_recoverable_gone(dest, e.to_string());
                Ok(())
            }
            other => other,
        }
    }

    fn try_recv(&mut self) -> NetResult<Option<(Rank, Vec<u8>)>> {
        loop {
            if let Some((src, bytes)) = self.pending.pop_front() {
                self.stats.peers[src].frames_recv += 1;
                self.stats.peers[src].bytes_recv += bytes.len() as u64;
                return Ok(Some((src, bytes)));
            }
            match self.rx.try_recv() {
                Ok(ev) => self.absorb(ev)?,
                Err(_) => return Ok(None),
            }
        }
    }

    fn flush(&mut self) -> NetResult<()> {
        for dest in 0..self.n {
            match self.flush_peer(dest) {
                Err(e) if self.recoverable_send_err(dest, &e) => {
                    self.mark_recoverable_gone(dest, e.to_string());
                }
                other => other?,
            }
        }
        Ok(())
    }

    fn barrier(&mut self) -> NetResult<()> {
        let epoch = self.epoch;
        self.epoch += 1;
        let payload = epoch.to_le_bytes();
        for dest in 0..self.n {
            if dest != self.rank {
                self.write_frame(dest, FrameKind::Barrier, &payload)?;
            }
        }
        self.flush()?;
        let start = Instant::now();
        loop {
            let done = match self.bar_seen.get(&epoch) {
                Some(seen) => (0..self.n).all(|p| p == self.rank || seen[p]),
                None => self.n == 1,
            };
            if done {
                break;
            }
            let straggler = self.dead_straggler(|p| {
                self.bar_seen.get(&epoch).map(|s| s[p]).unwrap_or(false)
            });
            if let Some((p, why)) = straggler {
                return Err(NetError::PeerDisconnected {
                    rank: p,
                    detail: format!("died before barrier epoch {epoch} ({why})"),
                });
            }
            self.pump(start, "barrier")?;
        }
        self.bar_seen.remove(&epoch);
        self.stats.barriers += 1;
        Ok(())
    }

    fn termination_round(&mut self) -> NetResult<bool> {
        self.flush()?;
        // A round cannot complete while a dead-awaiting-respawn peer
        // still owes it a contribution: bail so the caller drives
        // `poll_recovery` instead of waiting on a frame that will never
        // come. (Not a quiescence claim — `false` just keeps the caller
        // in its progress loop.) A dead peer whose contribution for this
        // round already arrived does NOT block it: a rank that decides
        // quiescence drops its connections right after broadcasting its
        // final round, and treating that endgame disconnect as a
        // round-blocking death would livelock the last rank to decide.
        if self.round_blocked_on_recovery(self.round) {
            return Ok(false);
        }
        let round = self.round;
        self.round += 1;
        // Traffic exchanged with dead incarnations was voided out at
        // reconnect time; the four counters must only see frames both
        // ends of which still exist.
        let (vs, vr) = self
            .recovery
            .as_ref()
            .map(|r| (r.void_sent, r.void_recv))
            .unwrap_or((0, 0));
        let mine = (self.stats.frames_sent() - vs, self.stats.frames_recv() - vr);
        let mut payload = [0u8; 24];
        payload[..8].copy_from_slice(&round.to_le_bytes());
        payload[8..16].copy_from_slice(&mine.0.to_le_bytes());
        payload[16..24].copy_from_slice(&mine.1.to_le_bytes());
        for dest in 0..self.n {
            // A masked peer's writer is gone; if it already contributed
            // this round (the endgame case above) it no longer needs our
            // total either.
            let masked = self.recovery.as_ref().is_some_and(|r| r.masked[dest]);
            if dest != self.rank && !masked {
                match self.write_frame(dest, FrameKind::Term, &payload) {
                    Err(e) if self.recoverable_send_err(dest, &e) => {
                        self.mark_recoverable_gone(dest, e.to_string());
                    }
                    other => other?,
                }
            }
        }
        self.flush()?;
        if self.round_blocked_on_recovery(round) {
            return Ok(false);
        }
        let start = Instant::now();
        loop {
            let done = match self.term_seen.get(&round) {
                Some(seen) => (0..self.n).all(|p| p == self.rank || seen[p].is_some()),
                None => self.n == 1,
            };
            if done {
                break;
            }
            if self.round_blocked_on_recovery(round) {
                // A peer died mid-round without contributing: abandon it.
                // Every survivor's reader sees the same death, so all
                // survivors abandon and re-enter at round 0 after the
                // reconnect.
                return Ok(false);
            }
            let straggler = self.dead_straggler(|p| {
                self.term_seen
                    .get(&round)
                    .map(|s| s[p].is_some())
                    .unwrap_or(false)
            });
            if let Some((p, why)) = straggler {
                return Err(NetError::PeerDisconnected {
                    rank: p,
                    detail: format!("died before termination round {round} ({why})"),
                });
            }
            self.pump(start, "termination")?;
        }
        let contribs = self.term_seen.remove(&round).unwrap_or_default();
        let (sent, received) = contribs
            .iter()
            .flatten()
            .fold(mine, |(s, r), &(ps, pr)| (s + ps, r + pr));
        self.stats.term_rounds += 1;
        Ok(self.detector.decide(sent, received))
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn arm_recovery(&mut self, armed: bool) {
        if let Some(r) = self.recovery.as_mut() {
            r.armed = armed;
        }
    }

    fn recovery_pending(&self) -> bool {
        self.recovery
            .as_ref()
            .is_some_and(|r| r.armed && !r.pending.is_empty())
    }

    fn poll_recovery(&mut self) -> NetResult<Option<Recovered>> {
        if !self.recovery.as_ref().is_some_and(|r| r.armed) {
            return Ok(None);
        }
        // Drain whatever reader events are queued first: the Gone for a
        // dying peer may not have been absorbed yet, and a reconnect
        // cannot complete before its death is registered.
        while let Ok(ev) = self.rx.try_recv() {
            self.absorb(ev)?;
        }
        // Accept everything waiting on the retained listener.
        loop {
            let accepted = {
                let r = self.recovery.as_ref().expect("recovery mode");
                r.listener.accept()
            };
            match accepted {
                Ok((stream, _)) => self.recovery_handle_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(io_err(
                        format!("rank {}: recovery accept", self.rank),
                        None,
                        &e,
                    ))
                }
            }
        }
        // Complete the first reconnect whose death is registered.
        let hit = {
            let r = self.recovery.as_ref().expect("recovery mode");
            r.early
                .iter()
                .position(|(who, _, _)| r.masked.get(*who).copied().unwrap_or(false))
        };
        if let Some(i) = hit {
            let (who, inc, stream) =
                self.recovery.as_mut().expect("recovery mode").early.remove(i);
            return self.complete_reconnect(who, inc, stream).map(Some);
        }
        // No reconnect ready: enforce the deadline on each pending peer.
        let r = self.recovery.as_ref().expect("recovery mode");
        for p in &r.pending {
            if p.since.elapsed() > self.tuning.collective_timeout {
                let rank = p.rank;
                let waited = p.since.elapsed();
                return Err(NetError::timeout(
                    "recovery",
                    waited,
                    format!(
                        "rank {}: rank {rank} never reconnected; {}",
                        self.rank,
                        self.diagnostics()
                    ),
                ));
            }
        }
        Ok(None)
    }

    fn last_global_totals(&self) -> Option<(u64, u64)> {
        self.detector.last()
    }

    fn first_dead_peer(&self) -> Option<Rank> {
        self.gone.iter().position(Option::is_some)
    }

    fn peer_dead(&self, rank: Rank) -> bool {
        self.gone.get(rank).map(Option::is_some).unwrap_or(false)
    }

    fn send_corrupt(&mut self, dest: Rank) -> NetResult<()> {
        if dest == self.rank {
            return Ok(());
        }
        // An all-ones length prefix: the peer's decoder must reject it as
        // oversized without buffering a giant payload.
        self.write_wire(dest, &[0xFF; 16])?;
        self.flush_peer(dest)
    }

    fn diagnostics(&self) -> String {
        let gone: Vec<String> = self
            .gone
            .iter()
            .enumerate()
            .filter_map(|(p, g)| g.as_ref().map(|d| format!("rank {p} gone ({d})")))
            .collect();
        let recovery = self
            .recovery
            .as_ref()
            .map(|r| {
                let waiting: Vec<Rank> = r.pending.iter().map(|p| p.rank).collect();
                format!("; incarnation={} awaiting={waiting:?}", r.incarnation)
            })
            .unwrap_or_default();
        format!(
            "rank {}/{}: epoch={} round={} sent={} recv={} pending={} last_global={:?}{}{}{}",
            self.rank,
            self.n,
            self.epoch,
            self.round,
            self.stats.frames_sent(),
            self.stats.frames_recv(),
            self.pending.len(),
            self.detector.last(),
            if gone.is_empty() { "" } else { "; " },
            gone.join(", "),
            recovery,
        )
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Flush buffered frames, then shut each socket down both ways.
        // The write shutdown puts FIN on the wire immediately, so peers'
        // reader threads see EOF (and raise `Gone`) even if this rank's
        // own reader threads are parked in a blocking read — death
        // detection must not depend on a peer sending us something first.
        // The read shutdown unblocks those parked reader threads so they
        // exit instead of lingering until process exit.
        for w in self.writers.iter_mut().flatten() {
            let _ = w.flush();
            let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an in-process TCP mesh on localhost ephemeral ports.
    fn tcp_mesh(n: usize) -> Vec<TcpTransport> {
        let dir = std::env::temp_dir().join(format!(
            "dakc-net-test-{}-{n}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    TcpTransport::rendezvous(rank, n, &dir, 8 << 10).unwrap()
                })
            })
            .collect();
        let mesh = handles.into_iter().map(|h| h.join().unwrap()).collect();
        std::fs::remove_dir_all(&dir).ok();
        mesh
    }

    #[test]
    fn single_rank_needs_no_sockets() {
        let dir = std::env::temp_dir().join(format!("dakc-net-1r-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = TcpTransport::rendezvous(0, 1, &dir, 8 << 10).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        t.send(0, b"self").unwrap();
        assert_eq!(t.try_recv().unwrap(), Some((0, b"self".to_vec())));
        assert!(!t.termination_round().unwrap());
        assert!(t.termination_round().unwrap());
        t.barrier().unwrap();
    }

    #[test]
    fn mesh_exchange_and_terminate() {
        let mesh = tcp_mesh(3);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    let n = t.num_ranks();
                    for dest in 0..n {
                        t.send(dest, format!("hi from {me} to {dest}").as_bytes())
                            .unwrap();
                    }
                    t.flush().unwrap();
                    let mut got = Vec::new();
                    while got.len() < n {
                        if let Some((src, bytes)) = t.try_recv().unwrap() {
                            got.push((src, bytes));
                        }
                    }
                    got.sort();
                    for (i, (src, bytes)) in got.iter().enumerate() {
                        assert_eq!(*src, i);
                        assert_eq!(bytes, format!("hi from {i} to {me}").as_bytes());
                    }
                    while !t.termination_round().unwrap() {}
                    t.barrier().unwrap();
                    (t.stats().frames_sent(), t.stats().frames_recv())
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), (3, 3));
        }
    }

    #[test]
    fn skewed_ranks_still_terminate() {
        // Rank 0 sends a burst late; ranks spin termination rounds in the
        // meantime and must not declare quiescence before the burst lands.
        let mesh = tcp_mesh(2);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    let me = t.rank();
                    if me == 0 {
                        std::thread::sleep(Duration::from_millis(50));
                        for i in 0..100u32 {
                            t.send(1, &i.to_le_bytes()).unwrap();
                        }
                    }
                    let mut recvd = 0u64;
                    loop {
                        while t.try_recv().unwrap().is_some() {
                            recvd += 1;
                        }
                        if t.termination_round().unwrap() {
                            break;
                        }
                    }
                    (me, recvd)
                })
            })
            .collect();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec![(0, 0), (1, 100)]);
    }

    #[test]
    fn dead_peer_fails_barrier_with_its_rank() {
        let mut mesh = tcp_mesh(2);
        let t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        drop(t1); // rank 1 "dies": its sockets close, rank 0 sees EOF
        let err = t0.barrier().expect_err("barrier must not complete against a dead peer");
        match err {
            NetError::PeerDisconnected { rank, .. } => assert_eq!(rank, 1),
            // The send itself may observe the closed socket first.
            other => assert_eq!(other.rank(), Some(1), "{other}"),
        }
    }

    #[test]
    fn dead_peer_fails_termination_round_fast() {
        let mut mesh = tcp_mesh(2);
        let t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        drop(t1);
        let start = Instant::now();
        let err = t0.termination_round().unwrap_err();
        assert_eq!(err.rank(), Some(1), "{err}");
        // Fast-fail, not the 120 s collective deadline.
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    /// End-to-end recovery protocol: a 3-rank recovery-mode mesh loses
    /// rank 2, the survivors absorb the death (sends masked, no error), a
    /// replacement incarnation dials back in, and the whole mesh — voided
    /// accounting included — reaches four-counter quiescence again.
    #[test]
    fn recovery_reconnect_and_terminate() {
        let dir = std::env::temp_dir().join(format!(
            "dakc-net-recover-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    TcpTransport::rendezvous_recover(
                        rank,
                        3,
                        &dir,
                        8 << 10,
                        NetTuning::default(),
                        0,
                    )
                    .unwrap()
                })
            })
            .collect();
        let mut mesh: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &mut mesh {
            t.arm_recovery(true);
        }
        // Full exchange: every rank one frame to every rank, all popped.
        for t in &mut mesh {
            for dest in 0..3 {
                t.send(dest, b"pre").unwrap();
            }
            t.flush().unwrap();
        }
        for t in &mut mesh {
            let mut got = 0;
            let start = Instant::now();
            while got < 3 {
                if t.try_recv().unwrap().is_some() {
                    got += 1;
                }
                assert!(start.elapsed() < Duration::from_secs(10));
            }
        }
        let t2 = mesh.pop().unwrap();
        drop(t2); // rank 2 dies

        // Survivors absorb the death instead of erroring; sends to the
        // dead rank are dropped uncounted.
        let start = Instant::now();
        for t in &mut mesh {
            while !t.recovery_pending() {
                t.poll_recovery().unwrap();
                assert!(start.elapsed() < Duration::from_secs(10), "death never absorbed");
                std::thread::sleep(Duration::from_millis(1));
            }
            t.send(2, b"masked").unwrap();
            assert_eq!(t.stats().masked_sends, 1);
        }

        // The replacement incarnation rejoins (dials land in the
        // survivors' listener backlogs, so this completes inline).
        let mut t2 = TcpTransport::rendezvous_recover(
            2,
            3,
            &dir,
            8 << 10,
            NetTuning::default(),
            1,
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let start = Instant::now();
        for t in &mut mesh {
            let rec = loop {
                if let Some(rec) = t.poll_recovery().unwrap() {
                    break rec;
                }
                assert!(start.elapsed() < Duration::from_secs(10), "reconnect never completed");
                std::thread::sleep(Duration::from_millis(1));
            };
            assert_eq!((rec.rank, rec.incarnation), (2, 1));
            assert!(!t.recovery_pending());
            assert_eq!(t.stats().recoveries, 1);
        }

        // Post-recovery traffic flows in both directions.
        mesh[0].send(2, b"post").unwrap();
        mesh[0].flush().unwrap();
        t2.send(0, b"post-back").unwrap();
        t2.flush().unwrap();
        let start = Instant::now();
        loop {
            if let Some((src, bytes)) = t2.try_recv().unwrap() {
                assert_eq!((src, bytes.as_slice()), (0, b"post".as_slice()));
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(10));
        }
        loop {
            if let Some((src, bytes)) = mesh[0].try_recv().unwrap() {
                assert_eq!((src, bytes.as_slice()), (2, b"post-back".as_slice()));
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(10));
        }

        // The voided accounting still reaches global quiescence.
        mesh.push(t2);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    loop {
                        while t.try_recv().unwrap().is_some() {}
                        if t.termination_round().unwrap() {
                            return t.rank();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn corrupt_wire_bytes_surface_as_typed_error() {
        let mut mesh = tcp_mesh(2);
        let mut t1 = mesh.pop().unwrap();
        let mut t0 = mesh.pop().unwrap();
        t1.send_corrupt(0).unwrap();
        let start = Instant::now();
        let err = loop {
            match t0.try_recv() {
                Ok(_) => {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "corrupt frame never surfaced"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => break e,
            }
        };
        assert!(
            matches!(
                err,
                NetError::OversizedFrame { rank: 1, .. } | NetError::CorruptFrame { rank: 1, .. }
            ),
            "{err}"
        );
    }
}
