//! [`NetFabric`]: runs the conveyor cascade over a real [`Transport`].
//!
//! This is the wall-clock implementation of [`dakc_conveyors::Fabric`]:
//! `charge_*` is a no-op (time passes by itself), `now` is seconds since
//! the fabric was created, `send_with_flows` forwards the payload bytes as
//! one data frame, and `poll` drains arrived frames into [`Msg`] values so
//! the conveyor's receive path — including 2D/3D relaying — runs the exact
//! code it runs under the simulator. Flow sidecars are dropped: causal
//! flow tracing is a virtual-time facility and cannot ride a real wire
//! without changing the bytes.

use std::time::Instant;

use dakc_conveyors::conveyor::CONVEYOR_TAG;
use dakc_conveyors::Fabric;
use dakc_sim::telemetry::metrics::BYTES_BOUNDS;
use dakc_sim::telemetry::MetricsRegistry;
use dakc_sim::{EventKind, FlowTag, Msg, PeId};

use crate::transport::Transport;

/// A [`Fabric`] over a real [`Transport`], with a wall-clock `now` and a
/// run-local metrics registry.
#[derive(Debug)]
pub struct NetFabric<T: Transport> {
    transport: T,
    metrics: MetricsRegistry,
    start: Instant,
    seq: u64,
}

impl<T: Transport> NetFabric<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Self {
            transport,
            metrics: MetricsRegistry::default(),
            start: Instant::now(),
            seq: 0,
        }
    }

    /// The wrapped transport (for collectives and gather traffic).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Folds the transport's counters into the registry and returns both.
    pub fn finish(mut self) -> (T, MetricsRegistry) {
        let me = self.transport.rank();
        self.transport.stats().fold_into(me, &mut self.metrics);
        (self.transport, self.metrics)
    }
}

impl<T: Transport> Fabric for NetFabric<T> {
    fn pe(&self) -> PeId {
        self.transport.rank()
    }

    fn num_pes(&self) -> usize {
        self.transport.num_ranks()
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn charge_ops(&mut self, _ops: u64) {}

    fn charge_mem(&mut self, _bytes: u64) {}

    fn cache_share_bytes(&self) -> u64 {
        0
    }

    fn mem_alloc(&mut self, _bytes: u64) {}

    fn mem_free(&mut self, _bytes: u64) {}

    fn send_with_flows(
        &mut self,
        dst: PeId,
        _tag: u32,
        payload: Vec<u8>,
        _flows: Vec<(u32, FlowTag)>,
    ) {
        self.metrics
            .observe("msg.payload_bytes", BYTES_BOUNDS, payload.len() as f64);
        self.transport.send(dst, &payload);
    }

    fn poll(&mut self) -> Vec<Msg> {
        let me = self.transport.rank();
        let now = self.start.elapsed().as_secs_f64();
        let mut out = Vec::new();
        while let Some((src, payload)) = self.transport.try_recv() {
            let seq = self.seq;
            self.seq += 1;
            out.push(Msg {
                src,
                dst: me,
                tag: CONVEYOR_TAG,
                payload,
                arrival: now,
                seq,
                flows: Vec::new(),
            });
        }
        out
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    fn trace(&mut self, _make: impl FnOnce() -> EventKind) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::Loopback;

    #[test]
    fn fabric_delivers_payload_bytes() {
        let mut mesh = Loopback::mesh(1);
        let mut fab = NetFabric::new(mesh.remove(0));
        fab.send_with_flows(0, CONVEYOR_TAG, vec![1, 2, 3], Vec::new());
        let msgs = fab.poll();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, vec![1, 2, 3]);
        assert_eq!(msgs[0].src, 0);
        assert_eq!(msgs[0].tag, CONVEYOR_TAG);
        let (_, metrics) = fab.finish();
        let json = metrics.to_json();
        assert!(json.contains("net.frames_sent"), "{json}");
    }
}
