//! [`NetFabric`]: runs the conveyor cascade over a real [`Transport`].
//!
//! This is the wall-clock implementation of [`dakc_conveyors::Fabric`]:
//! `charge_*` is a no-op (time passes by itself), `now` is seconds since
//! the fabric was created (plus the rank-0 clock offset once
//! [`NetFabric::align_clock`] has run), `send_with_flows` forwards the
//! payload bytes as one data frame, and `poll` drains arrived frames into
//! [`Msg`] values so the conveyor's receive path — including 2D/3D
//! relaying — runs the exact code it runs under the simulator.
//!
//! # The distributed flight recorder
//!
//! With tracing off (the default) the fabric is exactly the PR 5 wire:
//! `trace` is a single branch, flow sidecars are dropped, and the frames
//! on the wire are the raw L0 buffers. [`NetFabric::enable_tracing`]
//! turns on the same ring-buffered [`TraceSink`] the simulator uses, but
//! stamped with wall-clock timestamps, and switches the data-frame wire
//! format so sampled [`FlowTag`] sidecars ride *inside* the frame payload
//! (`[nflows u32 LE][(ordinal u32, 53-byte tag)]* [payload]`). Frame
//! counts are unchanged, so four-counter termination and per-peer FIFO
//! order are untouched — but every rank in the job must agree on the
//! format, which the launcher guarantees by forwarding `--trace` to all
//! workers. Transport incidents (send-retry backoffs, injected chaos
//! faults) are picked up from [`NetStats::take_notes`] at the fabric's
//! service points and re-recorded as trace instants.
//!
//! The [`Fabric`] trait is infallible (the simulator cannot fail), so a
//! wire failure cannot surface through `send_with_flows`/`poll` directly.
//! Instead the first [`NetError`] is *latched*: subsequent sends and polls
//! become no-ops, and the run driver polls [`NetFabric::check`] at its
//! service points to propagate the failure — the cascade stops making
//! progress within one batch of the fault instead of panicking under it.

use std::time::{Duration, Instant};

use dakc_conveyors::conveyor::CONVEYOR_TAG;
use dakc_conveyors::Fabric;
use dakc_sim::telemetry::metrics::BYTES_BOUNDS;
use dakc_sim::telemetry::{Event, MetricsRegistry, TraceSink};
use dakc_sim::{EventKind, FlowTag, Msg, PeId};

use crate::error::{NetError, NetResult};
use crate::transport::{NetNote, NetStats, Transport};

/// Bytes in one wire-encoded [`FlowTag`] (8 + 1 + 4 + 5×8).
const TAG_WIRE_LEN: usize = 53;
/// Bytes per sidecar entry: record ordinal + encoded tag.
const FLOW_ENTRY_LEN: usize = 4 + TAG_WIRE_LEN;

/// A [`Fabric`] over a real [`Transport`], with a wall-clock `now` and a
/// run-local metrics registry. Wire failures are latched (see the module
/// docs) and re-surfaced by [`NetFabric::check`].
#[derive(Debug)]
pub struct NetFabric<T: Transport> {
    transport: T,
    metrics: MetricsRegistry,
    start: Instant,
    seq: u64,
    /// The first wire failure observed through the infallible `Fabric`
    /// surface; once set, sends and polls are no-ops.
    failure: Option<NetError>,
    /// The flight recorder; [`TraceSink::Off`] unless
    /// [`NetFabric::enable_tracing`] ran. Enabling also switches the
    /// data-frame wire format (see the module docs).
    sink: TraceSink,
    /// Seconds to add to the local clock to land on rank 0's trace clock
    /// (0 until [`NetFabric::align_clock`] runs; always 0 on rank 0).
    clock_offset: f64,
}

impl<T: Transport> NetFabric<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Self {
            transport,
            metrics: MetricsRegistry::default(),
            start: Instant::now(),
            seq: 0,
            failure: None,
            sink: TraceSink::Off,
            clock_offset: 0.0,
        }
    }

    /// The wrapped transport (for collectives and gather traffic).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Turns on the flight recorder (default ring capacity) and the
    /// flow-sidecar wire format. Every rank of a job must either call
    /// this before the first data frame flies, or none may.
    pub fn enable_tracing(&mut self) {
        self.sink = TraceSink::ring_default();
    }

    /// `true` when the flight recorder is on.
    pub fn tracing(&self) -> bool {
        self.sink.enabled()
    }

    /// Runs the NTP-style ping exchange against rank 0 (see
    /// [`crate::clock`]) and aligns this fabric's `now` to rank 0's
    /// clock. Collective: every rank must call it at the same protocol
    /// point, before any other data traffic.
    pub fn align_clock(&mut self, pings: u32, deadline: Duration) -> NetResult<()> {
        let start = self.start;
        self.clock_offset = crate::clock::sync_offset(
            &mut self.transport,
            || start.elapsed().as_secs_f64(),
            pings,
            deadline,
        )?;
        Ok(())
    }

    /// The estimated rank-0 clock offset (0 before alignment).
    pub fn clock_offset(&self) -> f64 {
        self.clock_offset
    }

    /// Propagates the first failure latched by a send or poll, if any.
    /// Run drivers call this at every service point.
    pub fn check(&self) -> NetResult<()> {
        match &self.failure {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Re-records pending transport incident notes (retry backoffs,
    /// injected faults) as trace instants. Notes carry no timestamp of
    /// their own; they are stamped with the drain time, which trails the
    /// incident by at most one service interval.
    fn drain_notes(&mut self) {
        if !self.sink.enabled() {
            return;
        }
        let stats: &mut NetStats = self.transport.stats_mut();
        if stats.notes.is_empty() {
            return;
        }
        let notes = stats.take_notes();
        let ts = self.start.elapsed().as_secs_f64() + self.clock_offset;
        let me = self.transport.rank() as u32;
        for n in notes {
            self.sink.record(ts, me, || match n {
                NetNote::Retry { dest, attempt, delay_us } => {
                    EventKind::NetRetry { dst: dest as u32, attempt, delay_us }
                }
                NetNote::Fault { kind } => {
                    EventKind::NetFault { kind: EventKind::fault_tag(kind) }
                }
            });
        }
    }

    /// Folds the transport's counters into the registry and returns the
    /// transport, the metrics, and the recorded trace events (empty when
    /// tracing was off).
    pub fn finish(mut self) -> (T, MetricsRegistry, Vec<Event>) {
        self.drain_notes();
        let me = self.transport.rank();
        self.transport.stats().fold_into(me, &mut self.metrics);
        if self.sink.dropped() > 0 {
            self.metrics.inc("trace.dropped_events", self.sink.dropped());
        }
        (self.transport, self.metrics, self.sink.events())
    }
}

/// An ordinal-keyed flow sidecar, as carried by [`Msg::flows`].
type FlowSidecar = Vec<(u32, FlowTag)>;

/// Prepends the flow sidecar to `payload` in the traced wire format.
fn encode_flows(flows: &[(u32, FlowTag)], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + flows.len() * FLOW_ENTRY_LEN + payload.len());
    out.extend_from_slice(&(flows.len() as u32).to_le_bytes());
    for (ordinal, tag) in flows {
        out.extend_from_slice(&ordinal.to_le_bytes());
        out.extend_from_slice(&tag.flow.to_le_bytes());
        out.push(tag.channel);
        out.extend_from_slice(&tag.src.to_le_bytes());
        for v in [tag.t_open, tag.t_l2_open, tag.t_l2_ship, tag.t_l1_drain, tag.t_l0_put] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out.extend_from_slice(payload);
    out
}

/// Splits a traced wire frame back into its sidecar and payload.
fn decode_flows(frame: Vec<u8>) -> Result<(FlowSidecar, Vec<u8>), String> {
    if frame.len() < 4 {
        return Err(format!("traced frame too short: {} bytes", frame.len()));
    }
    // Infallible: the length check above guarantees 4 header bytes, and
    // the `body` check below covers every fixed-size entry slice.
    let n = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    let body = 4 + n * FLOW_ENTRY_LEN;
    if frame.len() < body {
        return Err(format!(
            "traced frame truncated: {} sidecar entries need {body} bytes, frame has {}",
            n,
            frame.len()
        ));
    }
    let mut flows = Vec::with_capacity(n);
    for i in 0..n {
        let at = 4 + i * FLOW_ENTRY_LEN;
        let e = &frame[at..at + FLOW_ENTRY_LEN];
        let ordinal = u32::from_le_bytes(e[..4].try_into().unwrap());
        let f = |j: usize| f64::from_le_bytes(e[j..j + 8].try_into().unwrap());
        flows.push((ordinal, FlowTag {
            flow: u64::from_le_bytes(e[4..12].try_into().unwrap()),
            channel: e[12],
            src: u32::from_le_bytes(e[13..17].try_into().unwrap()),
            t_open: f(17),
            t_l2_open: f(25),
            t_l2_ship: f(33),
            t_l1_drain: f(41),
            t_l0_put: f(49),
        }));
    }
    Ok((flows, frame[body..].to_vec()))
}

impl<T: Transport> Fabric for NetFabric<T> {
    fn pe(&self) -> PeId {
        self.transport.rank()
    }

    fn num_pes(&self) -> usize {
        self.transport.num_ranks()
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64() + self.clock_offset
    }

    fn charge_ops(&mut self, _ops: u64) {}

    fn charge_mem(&mut self, _bytes: u64) {}

    fn cache_share_bytes(&self) -> u64 {
        0
    }

    fn mem_alloc(&mut self, _bytes: u64) {}

    fn mem_free(&mut self, _bytes: u64) {}

    fn send_with_flows(
        &mut self,
        dst: PeId,
        _tag: u32,
        payload: Vec<u8>,
        flows: Vec<(u32, FlowTag)>,
    ) {
        if self.failure.is_some() {
            return;
        }
        self.metrics
            .observe("msg.payload_bytes", BYTES_BOUNDS, payload.len() as f64);
        let bytes = payload.len() as u32;
        let traced = self.sink.enabled();
        if traced {
            let ts = self.start.elapsed().as_secs_f64() + self.clock_offset;
            let me = self.transport.rank() as u32;
            self.sink
                .record(ts, me, || EventKind::MsgSend { dst: dst as u32, tag: CONVEYOR_TAG, bytes });
        }
        let wire = if traced { encode_flows(&flows, &payload) } else { payload };
        if let Err(e) = self.transport.send(dst, &wire) {
            self.failure = Some(e);
        }
    }

    fn poll(&mut self) -> Vec<Msg> {
        if self.failure.is_some() {
            return Vec::new();
        }
        self.drain_notes();
        let me = self.transport.rank();
        let now = self.start.elapsed().as_secs_f64() + self.clock_offset;
        let traced = self.sink.enabled();
        let mut out = Vec::new();
        loop {
            match self.transport.try_recv() {
                Ok(Some((src, wire))) => {
                    let (flows, payload) = if traced {
                        match decode_flows(wire) {
                            Ok(split) => split,
                            Err(detail) => {
                                self.failure =
                                    Some(NetError::CorruptFrame { rank: src, detail });
                                break;
                            }
                        }
                    } else {
                        (Vec::new(), wire)
                    };
                    if traced {
                        let bytes = payload.len() as u32;
                        self.sink.record(now, me as u32, || EventKind::MsgDeliver {
                            src: src as u32,
                            tag: CONVEYOR_TAG,
                            bytes,
                        });
                    }
                    let seq = self.seq;
                    self.seq += 1;
                    out.push(Msg {
                        src,
                        dst: me,
                        tag: CONVEYOR_TAG,
                        payload,
                        arrival: now,
                        seq,
                        flows,
                    });
                }
                Ok(None) => break,
                Err(e) => {
                    self.failure = Some(e);
                    break;
                }
            }
        }
        out
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    fn trace(&mut self, make: impl FnOnce() -> EventKind) {
        // The enabled check comes first: `Instant::elapsed` is not free,
        // and the disabled path must stay a single branch (the
        // `cascade/flow_full` Criterion case covers this fabric too).
        if self.sink.enabled() {
            let ts = self.start.elapsed().as_secs_f64() + self.clock_offset;
            let me = self.transport.rank() as u32;
            self.sink.record(ts, me, make);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::Loopback;

    #[test]
    fn fabric_delivers_payload_bytes() {
        let mut mesh = Loopback::mesh(1);
        let mut fab = NetFabric::new(mesh.remove(0));
        fab.send_with_flows(0, CONVEYOR_TAG, vec![1, 2, 3], Vec::new());
        let msgs = fab.poll();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, vec![1, 2, 3]);
        assert_eq!(msgs[0].src, 0);
        assert_eq!(msgs[0].tag, CONVEYOR_TAG);
        let (_, metrics, events) = fab.finish();
        let json = metrics.to_json();
        assert!(json.contains("net.frames_sent"), "{json}");
        assert!(events.is_empty(), "tracing off records nothing");
    }

    #[test]
    fn wire_failure_is_latched_and_checkable() {
        use crate::chaos::{ChaosConfig, ChaosTransport};
        let mut mesh = Loopback::mesh(1);
        let cfg = ChaosConfig::parse("die:0@1", 0, 0).unwrap();
        let chaos = ChaosTransport::new(mesh.remove(0), cfg);
        let mut fab = NetFabric::new(chaos);
        assert!(fab.check().is_ok());
        fab.send_with_flows(0, CONVEYOR_TAG, vec![1], Vec::new());
        let err = fab.check().unwrap_err();
        assert!(matches!(err, NetError::Injected { rank: 0, .. }), "{err}");
        // Latched: later operations are inert, the error stays the first.
        fab.send_with_flows(0, CONVEYOR_TAG, vec![2], Vec::new());
        assert!(fab.poll().is_empty());
        assert_eq!(fab.check().unwrap_err(), err);
    }

    #[test]
    fn flow_sidecars_ride_the_wire_when_tracing() {
        let mut mesh = Loopback::mesh(1);
        let mut fab = NetFabric::new(mesh.remove(0));
        fab.enable_tracing();
        let tag = FlowTag {
            flow: FlowTag::id(0, 7),
            channel: 1,
            src: 0,
            t_open: 0.25,
            t_l2_open: 0.5,
            t_l2_ship: 0.75,
            t_l1_drain: 1.0,
            t_l0_put: 1.25,
        };
        fab.send_with_flows(0, CONVEYOR_TAG, vec![9, 8, 7], vec![(2, tag)]);
        let msgs = fab.poll();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, vec![9, 8, 7], "payload survives the wrap");
        assert_eq!(msgs[0].flows, vec![(2, tag)], "sidecar survives the wire");
        let (_, _, events) = fab.finish();
        assert!(
            events.iter().any(|e| matches!(e.kind, EventKind::MsgSend { .. }))
                && events.iter().any(|e| matches!(e.kind, EventKind::MsgDeliver { .. })),
            "send and deliver instants recorded: {events:?}"
        );
    }

    #[test]
    fn empty_sidecar_costs_four_bytes_and_roundtrips() {
        let encoded = encode_flows(&[], &[1, 2, 3]);
        assert_eq!(encoded.len(), 7);
        let (flows, payload) = decode_flows(encoded).unwrap();
        assert!(flows.is_empty());
        assert_eq!(payload, vec![1, 2, 3]);
        // Truncation is a decode error, not a panic.
        assert!(decode_flows(vec![1]).is_err());
        assert!(decode_flows(encode_flows(&[(0, FlowTag::open(1, 0, 0, 0.0, 0.0))], &[])[..20].to_vec()).is_err());
    }

    #[test]
    fn trace_hook_is_gated_and_records_when_enabled() {
        let mut mesh = Loopback::mesh(1);
        let mut fab = NetFabric::new(mesh.remove(0));
        // Off: the closure must never be constructed.
        fab.trace(|| panic!("tracing is off"));
        fab.enable_tracing();
        fab.trace(|| EventKind::Phase { phase: 3 });
        let (_, _, events) = fab.finish();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::Phase { phase: 3 }));
        assert!(events[0].ts >= 0.0);
    }

    #[test]
    fn transport_notes_become_trace_instants() {
        use crate::transport::NetNote;
        let mut mesh = Loopback::mesh(1);
        let mut fab = NetFabric::new(mesh.remove(0));
        fab.enable_tracing();
        fab.transport_mut()
            .stats_mut()
            .note(NetNote::Retry { dest: 0, attempt: 2, delay_us: 1234 });
        fab.transport_mut().stats_mut().note(NetNote::Fault { kind: "drop" });
        fab.poll();
        let (_, _, events) = fab.finish();
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::NetRetry { dst: 0, attempt: 2, delay_us: 1234 }),
            "{events:?}"
        );
        let drop_tag = EventKind::fault_tag("drop");
        assert!(
            events.iter().any(|e| e.kind == EventKind::NetFault { kind: drop_tag }),
            "{events:?}"
        );
    }
}
