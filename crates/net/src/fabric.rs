//! [`NetFabric`]: runs the conveyor cascade over a real [`Transport`].
//!
//! This is the wall-clock implementation of [`dakc_conveyors::Fabric`]:
//! `charge_*` is a no-op (time passes by itself), `now` is seconds since
//! the fabric was created, `send_with_flows` forwards the payload bytes as
//! one data frame, and `poll` drains arrived frames into [`Msg`] values so
//! the conveyor's receive path — including 2D/3D relaying — runs the exact
//! code it runs under the simulator. Flow sidecars are dropped: causal
//! flow tracing is a virtual-time facility and cannot ride a real wire
//! without changing the bytes.
//!
//! The [`Fabric`] trait is infallible (the simulator cannot fail), so a
//! wire failure cannot surface through `send_with_flows`/`poll` directly.
//! Instead the first [`NetError`] is *latched*: subsequent sends and polls
//! become no-ops, and the run driver polls [`NetFabric::check`] at its
//! service points to propagate the failure — the cascade stops making
//! progress within one batch of the fault instead of panicking under it.

use std::time::Instant;

use dakc_conveyors::conveyor::CONVEYOR_TAG;
use dakc_conveyors::Fabric;
use dakc_sim::telemetry::metrics::BYTES_BOUNDS;
use dakc_sim::telemetry::MetricsRegistry;
use dakc_sim::{EventKind, FlowTag, Msg, PeId};

use crate::error::{NetError, NetResult};
use crate::transport::Transport;

/// A [`Fabric`] over a real [`Transport`], with a wall-clock `now` and a
/// run-local metrics registry. Wire failures are latched (see the module
/// docs) and re-surfaced by [`NetFabric::check`].
#[derive(Debug)]
pub struct NetFabric<T: Transport> {
    transport: T,
    metrics: MetricsRegistry,
    start: Instant,
    seq: u64,
    /// The first wire failure observed through the infallible `Fabric`
    /// surface; once set, sends and polls are no-ops.
    failure: Option<NetError>,
}

impl<T: Transport> NetFabric<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        Self {
            transport,
            metrics: MetricsRegistry::default(),
            start: Instant::now(),
            seq: 0,
            failure: None,
        }
    }

    /// The wrapped transport (for collectives and gather traffic).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Propagates the first failure latched by a send or poll, if any.
    /// Run drivers call this at every service point.
    pub fn check(&self) -> NetResult<()> {
        match &self.failure {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Folds the transport's counters into the registry and returns both.
    pub fn finish(mut self) -> (T, MetricsRegistry) {
        let me = self.transport.rank();
        self.transport.stats().fold_into(me, &mut self.metrics);
        (self.transport, self.metrics)
    }
}

impl<T: Transport> Fabric for NetFabric<T> {
    fn pe(&self) -> PeId {
        self.transport.rank()
    }

    fn num_pes(&self) -> usize {
        self.transport.num_ranks()
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn charge_ops(&mut self, _ops: u64) {}

    fn charge_mem(&mut self, _bytes: u64) {}

    fn cache_share_bytes(&self) -> u64 {
        0
    }

    fn mem_alloc(&mut self, _bytes: u64) {}

    fn mem_free(&mut self, _bytes: u64) {}

    fn send_with_flows(
        &mut self,
        dst: PeId,
        _tag: u32,
        payload: Vec<u8>,
        _flows: Vec<(u32, FlowTag)>,
    ) {
        if self.failure.is_some() {
            return;
        }
        self.metrics
            .observe("msg.payload_bytes", BYTES_BOUNDS, payload.len() as f64);
        if let Err(e) = self.transport.send(dst, &payload) {
            self.failure = Some(e);
        }
    }

    fn poll(&mut self) -> Vec<Msg> {
        if self.failure.is_some() {
            return Vec::new();
        }
        let me = self.transport.rank();
        let now = self.start.elapsed().as_secs_f64();
        let mut out = Vec::new();
        loop {
            match self.transport.try_recv() {
                Ok(Some((src, payload))) => {
                    let seq = self.seq;
                    self.seq += 1;
                    out.push(Msg {
                        src,
                        dst: me,
                        tag: CONVEYOR_TAG,
                        payload,
                        arrival: now,
                        seq,
                        flows: Vec::new(),
                    });
                }
                Ok(None) => break,
                Err(e) => {
                    self.failure = Some(e);
                    break;
                }
            }
        }
        out
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    fn trace(&mut self, _make: impl FnOnce() -> EventKind) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::Loopback;

    #[test]
    fn fabric_delivers_payload_bytes() {
        let mut mesh = Loopback::mesh(1);
        let mut fab = NetFabric::new(mesh.remove(0));
        fab.send_with_flows(0, CONVEYOR_TAG, vec![1, 2, 3], Vec::new());
        let msgs = fab.poll();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, vec![1, 2, 3]);
        assert_eq!(msgs[0].src, 0);
        assert_eq!(msgs[0].tag, CONVEYOR_TAG);
        let (_, metrics) = fab.finish();
        let json = metrics.to_json();
        assert!(json.contains("net.frames_sent"), "{json}");
    }

    #[test]
    fn wire_failure_is_latched_and_checkable() {
        use crate::chaos::{ChaosConfig, ChaosTransport};
        let mut mesh = Loopback::mesh(1);
        let cfg = ChaosConfig::parse("die:0@1", 0, 0).unwrap();
        let chaos = ChaosTransport::new(mesh.remove(0), cfg);
        let mut fab = NetFabric::new(chaos);
        assert!(fab.check().is_ok());
        fab.send_with_flows(0, CONVEYOR_TAG, vec![1], Vec::new());
        let err = fab.check().unwrap_err();
        assert!(matches!(err, NetError::Injected { rank: 0, .. }), "{err}");
        // Latched: later operations are inert, the error stays the first.
        fab.send_with_flows(0, CONVEYOR_TAG, vec![2], Vec::new());
        assert!(fab.poll().is_empty());
        assert_eq!(fab.check().unwrap_err(), err);
    }
}
