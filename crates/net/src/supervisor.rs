//! Launch supervision: worker heartbeats and the launcher-side monitor.
//!
//! Every spawned worker dials the launcher's supervisor socket and an
//! autonomous sender thread emits one [`Heartbeat`] frame per interval —
//! carrying the worker's rank, a sequence number, its current [`Phase`],
//! and its transport frame totals. The launcher's [`Supervisor`] accepts
//! those connections, tracks per-rank freshness, and lets the launch loop
//! answer two questions without blocking on `wait()`: *is any rank silent
//! past the deadline* (a frozen or livelocked worker that will never exit
//! on its own), and *what was everyone doing* when a rank failed (the
//! per-rank diagnostic report).
//!
//! Heartbeats ride their own TCP connection, not the data mesh: a wedged
//! mesh is precisely the condition heartbeats must survive to report.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::frame::{encode_frame, FrameDecoder, FrameKind};
use crate::transport::Rank;

/// Where in the run a worker currently is (reported in heartbeats and in
/// the supervisor's diagnostic report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Connecting the mesh / rendezvous.
    Setup = 0,
    /// Parsing reads and feeding the cascade.
    Parse = 1,
    /// Draining conveyors to quiescence.
    Drain = 2,
    /// Local phase 2 (sort and count).
    Count = 3,
    /// Streaming results to rank 0.
    Gather = 4,
    /// Finished.
    Done = 5,
    /// Exited on an error; the heartbeat's `blame` field names the rank
    /// its typed error points at (an obituary).
    Failed = 6,
    /// Resident in a `dakc serve` request loop — the heartbeat doubles
    /// as the service health check.
    Serve = 7,
}

impl Phase {
    /// Parses the wire tag.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Phase::Setup),
            1 => Some(Phase::Parse),
            2 => Some(Phase::Drain),
            3 => Some(Phase::Count),
            4 => Some(Phase::Gather),
            5 => Some(Phase::Done),
            6 => Some(Phase::Failed),
            7 => Some(Phase::Serve),
            _ => None,
        }
    }

    /// Human name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Parse => "parse",
            Phase::Drain => "drain",
            Phase::Count => "count",
            Phase::Gather => "gather",
            Phase::Done => "done",
            Phase::Failed => "failed",
            Phase::Serve => "serve",
        }
    }
}

/// Wire value of [`Heartbeat::blame`] when the beat blames nobody.
pub const NO_BLAME: u32 = u32::MAX;

/// One liveness beacon.
/// Wire payload (45 bytes, little-endian):
/// `[rank u32][seq u64][phase u8][frames_sent u64][frames_recv u64]
/// [retries u64][blame u32][incarnation u32]`. Launcher and workers
/// always run the same binary, so the layout can grow without a version
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender's rank.
    pub rank: u32,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// What the worker was doing.
    pub phase: Phase,
    /// Transport data frames sent so far.
    pub frames_sent: u64,
    /// Transport data frames received so far.
    pub frames_recv: u64,
    /// Transport send retries so far (backpressure indicator for the live
    /// `--status` table).
    pub retries: u64,
    /// Whom an obituary ([`Phase::Failed`]) blames: the rank the worker's
    /// typed error points at, or [`NO_BLAME`]. Ordinary beats carry
    /// [`NO_BLAME`].
    pub blame: u32,
    /// The sender's incarnation (0 for the first spawn, bumped per
    /// `--recover` respawn). The supervisor drops beats — including
    /// obituaries — from incarnations older than the one it expects, so
    /// a straggling obituary cannot re-convict a rank it already
    /// respawned.
    pub incarnation: u32,
}

impl Heartbeat {
    /// Encodes the 45-byte wire payload.
    pub fn encode(&self) -> [u8; 45] {
        let mut out = [0u8; 45];
        out[..4].copy_from_slice(&self.rank.to_le_bytes());
        out[4..12].copy_from_slice(&self.seq.to_le_bytes());
        out[12] = self.phase as u8;
        out[13..21].copy_from_slice(&self.frames_sent.to_le_bytes());
        out[21..29].copy_from_slice(&self.frames_recv.to_le_bytes());
        out[29..37].copy_from_slice(&self.retries.to_le_bytes());
        out[37..41].copy_from_slice(&self.blame.to_le_bytes());
        out[41..45].copy_from_slice(&self.incarnation.to_le_bytes());
        out
    }

    /// Decodes a wire payload.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        if payload.len() != 45 {
            return Err(format!("heartbeat payload is {} bytes, want 45", payload.len()));
        }
        let u32le = |r: std::ops::Range<usize>| {
            u32::from_le_bytes(payload[r].try_into().expect("4 bytes"))
        };
        let u64le = |r: std::ops::Range<usize>| {
            u64::from_le_bytes(payload[r].try_into().expect("8 bytes"))
        };
        Ok(Self {
            rank: u32le(0..4),
            seq: u64le(4..12),
            phase: Phase::from_u8(payload[12])
                .ok_or_else(|| format!("bad heartbeat phase {}", payload[12]))?,
            frames_sent: u64le(13..21),
            frames_recv: u64le(21..29),
            retries: u64le(29..37),
            blame: u32le(37..41),
            incarnation: u32le(41..45),
        })
    }
}

/// Synchronously delivers one obituary beat over a fresh connection: the
/// worker is about to exit on `error`-naming-`blame`, and the regular
/// sender thread's next interval may never come. Best-effort — a worker
/// that cannot reach the supervisor still exits nonzero and is caught by
/// the exit poll.
pub fn send_obituary(addr: SocketAddr, rank: Rank, blame: Option<Rank>) -> std::io::Result<()> {
    send_obituary_inc(addr, rank, blame, 0)
}

/// [`send_obituary`] from a specific incarnation (respawned workers file
/// obituaries under their own epoch so the supervisor can tell a fresh
/// failure from a stale one).
pub fn send_obituary_inc(
    addr: SocketAddr,
    rank: Rank,
    blame: Option<Rank>,
    incarnation: u32,
) -> std::io::Result<()> {
    let hb = Heartbeat {
        rank: rank as u32,
        seq: u64::MAX,
        phase: Phase::Failed,
        frames_sent: 0,
        frames_recv: 0,
        retries: 0,
        blame: blame.map_or(NO_BLAME, |r| r as u32),
        incarnation,
    };
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&encode_frame(FrameKind::Heartbeat, &hb.encode()))?;
    stream.flush()
}

/// The worker-side state a heartbeat sender samples: updated by the run
/// driver (phase transitions, traffic totals), read by the sender thread.
#[derive(Debug, Default)]
pub struct HeartbeatState {
    phase: AtomicU8,
    frames_sent: AtomicU64,
    frames_recv: AtomicU64,
    retries: AtomicU64,
    beats: AtomicU64,
    incarnation: AtomicU32,
}

impl HeartbeatState {
    /// Fresh state in [`Phase::Setup`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a phase transition.
    pub fn set_phase(&self, phase: Phase) {
        self.phase.store(phase as u8, Ordering::Relaxed);
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.phase.load(Ordering::Relaxed)).unwrap_or(Phase::Setup)
    }

    /// Records the transport's current frame totals and retry count.
    pub fn record_traffic(&self, sent: u64, recv: u64, retries: u64) {
        self.frames_sent.store(sent, Ordering::Relaxed);
        self.frames_recv.store(recv, Ordering::Relaxed);
        self.retries.store(retries, Ordering::Relaxed);
    }

    /// How many heartbeats have been sent from this state.
    pub fn beats(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }

    /// Records this worker's incarnation (0 unless respawned).
    pub fn set_incarnation(&self, inc: u32) {
        self.incarnation.store(inc, Ordering::Relaxed);
    }

    /// The recorded incarnation.
    pub fn incarnation(&self) -> u32 {
        self.incarnation.load(Ordering::Relaxed)
    }
}

/// The worker-side sender thread: one heartbeat per interval until
/// dropped. Muting the shared flag silences it without stopping it (how a
/// chaos `freeze` simulates a silently hung worker).
#[derive(Debug)]
pub struct HeartbeatSender {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatSender {
    /// Dials the supervisor at `addr` and starts beating every
    /// `interval`.
    pub fn spawn(
        addr: SocketAddr,
        rank: Rank,
        state: Arc<HeartbeatState>,
        interval: Duration,
        mute: Arc<AtomicBool>,
    ) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("dakc-hb-{rank}"))
            .spawn(move || {
                let mut seq = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    if !mute.load(Ordering::Relaxed) {
                        let hb = Heartbeat {
                            rank: rank as u32,
                            seq,
                            phase: state.phase(),
                            frames_sent: state.frames_sent.load(Ordering::Relaxed),
                            frames_recv: state.frames_recv.load(Ordering::Relaxed),
                            retries: state.retries.load(Ordering::Relaxed),
                            blame: NO_BLAME,
                            incarnation: state.incarnation.load(Ordering::Relaxed),
                        };
                        seq += 1;
                        let wire = encode_frame(FrameKind::Heartbeat, &hb.encode());
                        if stream.write_all(&wire).and_then(|()| stream.flush()).is_err() {
                            // Supervisor went away; nothing left to tell.
                            return;
                        }
                        state.beats.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(interval);
                }
            })?;
        Ok(Self { stop, handle: Some(handle) })
    }
}

impl Drop for HeartbeatSender {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// What the supervisor knows about one rank.
#[derive(Debug, Clone, Default)]
pub struct PeerHealth {
    /// When the last heartbeat arrived (`None`: never connected).
    pub last_beat: Option<Instant>,
    /// The last heartbeat's contents.
    pub last: Option<Heartbeat>,
    /// The lowest incarnation whose beats are still current; beats and
    /// obituaries tagged with an older incarnation are dropped as stale.
    pub expected_inc: u32,
}

/// The launcher-side monitor: accepts worker heartbeat connections and
/// tracks per-rank freshness.
#[derive(Debug)]
pub struct Supervisor {
    peers: Arc<Mutex<Vec<PeerHealth>>>,
    stop: Arc<AtomicBool>,
    started: Instant,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Binds a localhost listener for `n` ranks and starts accepting.
    /// Returns the monitor and the address workers should dial.
    pub fn bind(n: usize) -> std::io::Result<(Self, SocketAddr)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let peers = Arc::new(Mutex::new(vec![PeerHealth::default(); n]));
        let stop = Arc::new(AtomicBool::new(false));
        let peers2 = Arc::clone(&peers);
        let stop2 = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("dakc-supervisor".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let peers = Arc::clone(&peers2);
                            let stop = Arc::clone(&stop2);
                            // Connection readers are detached; they exit
                            // on stop, EOF, or a corrupt stream.
                            let _ = std::thread::Builder::new()
                                .name("dakc-supervisor-conn".to_string())
                                .spawn(move || heartbeat_conn_loop(stream, peers, stop));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => return,
                    }
                }
            })?;
        Ok((
            Self { peers, stop, started: Instant::now(), accept_handle: Some(accept_handle) },
            addr,
        ))
    }

    /// Records that `rank` was respawned under `incarnation`: its sealed
    /// obituary (if any) is cleared, its staleness clock restarts with a
    /// fresh grace period, and any later beat or obituary from an older
    /// incarnation is ignored.
    pub fn expect_respawn(&mut self, rank: Rank, incarnation: u32) {
        let mut peers = self.peers.lock().expect("supervisor peers");
        if let Some(p) = peers.get_mut(rank) {
            p.expected_inc = incarnation;
            p.last = None;
            p.last_beat = Some(Instant::now());
        }
    }

    /// The rank whose last heartbeat is the stalest, with its silence
    /// duration, provided that silence exceeds `limit`. Ranks that never
    /// connected are aged from the supervisor's start (startup grace).
    pub fn stalest(&self, limit: Duration) -> Option<(Rank, Duration)> {
        let peers = self.peers.lock().expect("supervisor peers");
        peers
            .iter()
            .enumerate()
            .map(|(rank, p)| {
                let age = p.last_beat.unwrap_or(self.started).elapsed();
                (rank, age)
            })
            .filter(|&(_, age)| age > limit)
            .max_by_key(|&(_, age)| age)
    }

    /// Total heartbeats received across all ranks.
    pub fn beats_received(&self) -> u64 {
        let peers = self.peers.lock().expect("supervisor peers");
        peers.iter().filter_map(|p| p.last.map(|h| h.seq + 1)).sum()
    }

    /// A copy of the per-rank health table.
    pub fn snapshot(&self) -> Vec<PeerHealth> {
        self.peers.lock().expect("supervisor peers").clone()
    }

    /// The rank the obituaries point at: each failed worker's typed error
    /// blames a rank (a dying rank blames itself via `Injected`, its
    /// peers blame it via `PeerDisconnected`); the majority verdict
    /// survives cascade noise, where a victim's error names another
    /// victim rather than the root cause. Ties break toward the
    /// lowest-numbered rank. `None` when no obituary blames anyone.
    pub fn blamed(&self) -> Option<Rank> {
        let peers = self.peers.lock().expect("supervisor peers");
        let mut votes: Vec<(Rank, usize)> = Vec::new();
        for hb in peers.iter().filter_map(|p| p.last) {
            if hb.phase == Phase::Failed && hb.blame != NO_BLAME {
                let blame = hb.blame as Rank;
                match votes.iter_mut().find(|(r, _)| *r == blame) {
                    Some((_, n)) => *n += 1,
                    None => votes.push((blame, 1)),
                }
            }
        }
        votes.into_iter().max_by_key(|&(r, n)| (n, std::cmp::Reverse(r))).map(|(r, _)| r)
    }

    /// The per-rank diagnostic report printed when a launch fails: one
    /// line per rank with phase, sequence, frame totals, and heartbeat
    /// age; ranks silent past `stale_limit` are marked `STALE`.
    pub fn report(&self, stale_limit: Duration) -> String {
        let peers = self.peers.lock().expect("supervisor peers");
        let mut out = String::new();
        for (rank, p) in peers.iter().enumerate() {
            let age = p.last_beat.unwrap_or(self.started).elapsed();
            let stale = if age > stale_limit { "  STALE" } else { "" };
            match &p.last {
                Some(h) => {
                    let blames = if h.phase == Phase::Failed && h.blame != NO_BLAME {
                        format!(" blames=rank {}", h.blame)
                    } else {
                        String::new()
                    };
                    out.push_str(&format!(
                        "  rank {rank}: phase={}{blames} sent={} recv={} retries={} last_beat={:.1}s ago{stale}\n",
                        h.phase.name(),
                        h.frames_sent,
                        h.frames_recv,
                        h.retries,
                        age.as_secs_f64(),
                    ));
                }
                None => out.push_str(&format!(
                    "  rank {rank}: no heartbeat ever received ({:.1}s since launch){stale}\n",
                    age.as_secs_f64(),
                )),
            }
        }
        out
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

/// Reads heartbeat frames off one worker connection until EOF, stop, or a
/// corrupt stream (corrupt heartbeats are dropped, not fatal: supervision
/// must never take a job down on its own).
fn heartbeat_conn_loop(
    stream: TcpStream,
    peers: Arc<Mutex<Vec<PeerHealth>>>,
    stop: Arc<AtomicBool>,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
        return;
    }
    let mut dec = FrameDecoder::with_max_len(1 << 10);
    let mut buf = [0u8; 1 << 10];
    while !stop.load(Ordering::Relaxed) {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(k) => {
                dec.feed(&buf[..k]);
                loop {
                    match dec.next_frame() {
                        Ok(Some((FrameKind::Heartbeat, payload))) => {
                            if let Ok(hb) = Heartbeat::decode(&payload) {
                                let mut peers = peers.lock().expect("supervisor peers");
                                if let Some(p) = peers.get_mut(hb.rank as usize) {
                                    // Beats from an incarnation the rank
                                    // was already respawned past are
                                    // stale — including the previous
                                    // life's obituary.
                                    if hb.incarnation < p.expected_inc {
                                        continue;
                                    }
                                    p.last_beat = Some(Instant::now());
                                    // An obituary is final: a straggling
                                    // regular beat from the sender thread
                                    // must not erase it.
                                    let sealed =
                                        p.last.is_some_and(|h| h.phase == Phase::Failed);
                                    if !sealed || hb.phase == Phase::Failed {
                                        p.last = Some(hb);
                                    }
                                }
                            }
                        }
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_roundtrip() {
        let hb = Heartbeat {
            rank: 3,
            seq: 41,
            phase: Phase::Drain,
            frames_sent: 1000,
            frames_recv: 998,
            retries: 6,
            blame: NO_BLAME,
            incarnation: 2,
        };
        assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        assert!(Heartbeat::decode(&[0u8; 5]).is_err());
        let mut bad = hb.encode();
        bad[12] = 200;
        assert!(Heartbeat::decode(&bad).is_err(), "unknown phase tag");
        let ob = Heartbeat { phase: Phase::Failed, blame: 2, ..hb };
        assert_eq!(Heartbeat::decode(&ob.encode()).unwrap().blame, 2);
    }

    #[test]
    fn phase_tags_roundtrip() {
        for p in [
            Phase::Setup,
            Phase::Parse,
            Phase::Drain,
            Phase::Count,
            Phase::Gather,
            Phase::Done,
            Phase::Failed,
            Phase::Serve,
        ] {
            assert_eq!(Phase::from_u8(p as u8), Some(p));
        }
        assert_eq!(Phase::from_u8(8), None);
    }

    #[test]
    fn supervisor_sees_beats_and_staleness() {
        let (sup, addr) = Supervisor::bind(2).unwrap();
        let state = Arc::new(HeartbeatState::new());
        state.set_phase(Phase::Parse);
        state.record_traffic(7, 5, 2);
        let mute = Arc::new(AtomicBool::new(false));
        let sender = HeartbeatSender::spawn(
            addr,
            1,
            Arc::clone(&state),
            Duration::from_millis(10),
            Arc::clone(&mute),
        )
        .unwrap();

        // Rank 1's beat arrives and carries the sampled state.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = sup.snapshot();
            if let Some(hb) = snap[1].last {
                assert_eq!(hb.rank, 1);
                assert_eq!(hb.phase, Phase::Parse);
                assert_eq!((hb.frames_sent, hb.frames_recv, hb.retries), (7, 5, 2));
                break;
            }
            assert!(Instant::now() < deadline, "no heartbeat arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(state.beats() > 0);

        // Rank 0 never connected: it is the stalest once the grace runs
        // out, and the report marks it.
        std::thread::sleep(Duration::from_millis(30));
        let (rank, _) = sup.stalest(Duration::from_millis(20)).expect("rank 0 is silent");
        assert_eq!(rank, 0);
        let report = sup.report(Duration::from_millis(20));
        assert!(report.contains("rank 0: no heartbeat ever received"), "{report}");
        assert!(report.contains("phase=parse"), "{report}");

        // Muting the sender makes rank 1 stale too.
        mute.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(120));
        let stale_now: Vec<Rank> = (0..2)
            .filter_map(|_| sup.stalest(Duration::from_millis(100)).map(|(r, _)| r))
            .collect();
        assert!(!stale_now.is_empty());
        drop(sender);
    }

    #[test]
    fn obituaries_vote_out_the_root_cause() {
        let (sup, addr) = Supervisor::bind(4).unwrap();
        // Cascade after rank 2 dies: 2 blames itself (injected), 1 and 3
        // blame 2 (disconnect), 0 blames fellow-victim 1 — majority still
        // convicts rank 2.
        send_obituary(addr, 2, Some(2)).unwrap();
        send_obituary(addr, 1, Some(2)).unwrap();
        send_obituary(addr, 3, Some(2)).unwrap();
        send_obituary(addr, 0, Some(1)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let done = sup
                .snapshot()
                .iter()
                .filter(|p| p.last.is_some_and(|h| h.phase == Phase::Failed))
                .count();
            if done == 4 {
                break;
            }
            assert!(Instant::now() < deadline, "obituaries never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sup.blamed(), Some(2));
        let report = sup.report(Duration::from_secs(60));
        assert!(report.contains("rank 2: phase=failed blames=rank 2"), "{report}");

        // A straggling regular beat must not unseal rank 2's obituary.
        let state = Arc::new(HeartbeatState::new());
        let mute = Arc::new(AtomicBool::new(false));
        let sender = HeartbeatSender::spawn(
            addr,
            2,
            Arc::clone(&state),
            Duration::from_millis(5),
            mute,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        drop(sender);
        assert_eq!(sup.blamed(), Some(2), "obituary erased by a late beat");
    }

    /// Waits until `n` ranks have a sealed obituary registered.
    fn await_obituaries(sup: &Supervisor, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let done = sup
                .snapshot()
                .iter()
                .filter(|p| p.last.is_some_and(|h| h.phase == Phase::Failed))
                .count();
            if done >= n {
                return;
            }
            assert!(Instant::now() < deadline, "obituaries never arrived ({done}/{n})");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn tied_blame_votes_break_toward_lowest_rank() {
        let (sup, addr) = Supervisor::bind(2).unwrap();
        // Mutual accusation, one vote each: the verdict must still be
        // deterministic, and the tie-break convicts the lowest rank.
        send_obituary(addr, 0, Some(1)).unwrap();
        send_obituary(addr, 1, Some(0)).unwrap();
        await_obituaries(&sup, 2);
        assert_eq!(sup.blamed(), Some(0), "ties must break toward the lowest rank");
    }

    #[test]
    fn simultaneous_two_rank_death_convicts_deterministically() {
        let (sup, addr) = Supervisor::bind(4).unwrap();
        // Ranks 1 and 3 die at once, each blaming itself; each takes one
        // victim down with it. Two-vote tie between 1 and 3 → rank 1.
        send_obituary(addr, 1, Some(1)).unwrap();
        send_obituary(addr, 0, Some(1)).unwrap();
        send_obituary(addr, 3, Some(3)).unwrap();
        send_obituary(addr, 2, Some(3)).unwrap();
        await_obituaries(&sup, 4);
        assert_eq!(sup.blamed(), Some(1));
    }

    #[test]
    fn obituary_from_a_replaced_incarnation_is_ignored() {
        let (mut sup, addr) = Supervisor::bind(2).unwrap();
        // Rank 1's first life dies and is respawned as incarnation 1.
        send_obituary(addr, 1, Some(1)).unwrap();
        await_obituaries(&sup, 1);
        assert_eq!(sup.blamed(), Some(1));
        sup.expect_respawn(1, 1);
        assert_eq!(sup.blamed(), None, "respawn must clear the sealed obituary");
        assert!(sup.snapshot()[1].last_beat.is_some(), "staleness clock restarts");

        // A straggling obituary from the dead incarnation 0 (e.g. its
        // obituary thread losing the race with the respawn) is stale and
        // must not re-convict the fresh incarnation...
        send_obituary_inc(addr, 1, Some(1), 0).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(sup.blamed(), None, "stale-incarnation obituary resurrected the verdict");
        assert!(sup.snapshot()[1].last.is_none());

        // ...while the same obituary tagged with the current incarnation
        // counts as a fresh failure.
        send_obituary_inc(addr, 1, Some(1), 1).unwrap();
        await_obituaries(&sup, 1);
        assert_eq!(sup.blamed(), Some(1));
    }
}
