//! The [`Transport`] trait and the four-counter termination detector.
//!
//! A transport is one rank's endpoint in an N-rank job. Data frames are
//! L0 `PUT` buffers (or post-quiescence gather chunks); the transport
//! moves them without inspecting them. Besides nonblocking `send` /
//! `try_recv` it offers two collectives the drain protocol needs:
//!
//! * [`Transport::barrier`] — a full barrier, used at epoch boundaries
//!   (after quiescence, around the final gather);
//! * [`Transport::termination_round`] — one round of four-counter
//!   (Mattern/Dijkstra-style) termination detection: every rank
//!   contributes its monotone totals of data frames *sent* and data
//!   frames *received*, the round computes the global sums `(S, R)`, and
//!   the job is quiescent exactly when two consecutive rounds observe
//!   `S == R` with unchanged totals. A single balanced snapshot is not
//!   enough: a frame can be sent after one rank contributed and received
//!   before another did, making a transient snapshot look balanced; the
//!   confirming round proves no traffic moved in between.
//!
//! Receives are counted when the *application* pulls a frame with
//! `try_recv`, not when bytes land in an OS buffer: an unprocessed
//! conveyor buffer can still generate relay traffic (2D/3D routing), so
//! only consumed frames may count toward quiescence.

use dakc_sim::telemetry::MetricsRegistry;

/// Rank id within a job (dense, `0..num_ranks`).
pub type Rank = usize;

/// Per-peer traffic counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PeerStats {
    /// Data frames sent to this peer.
    pub frames_sent: u64,
    /// Data payload bytes sent to this peer (framing overhead excluded).
    pub bytes_sent: u64,
    /// Data frames received from this peer.
    pub frames_recv: u64,
    /// Data payload bytes received from this peer.
    pub bytes_recv: u64,
}

/// Transport-level counters, folded into the metrics registry at the end
/// of a run (SimReport-style export from real processes).
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    /// Per-peer traffic (indexed by rank; includes self-sends).
    pub peers: Vec<PeerStats>,
    /// Sends that blocked noticeably on the OS socket (backpressure).
    pub send_stalls: u64,
    /// Termination-detection rounds executed.
    pub term_rounds: u64,
    /// Barriers completed.
    pub barriers: u64,
}

impl NetStats {
    /// Fresh stats for a job of `n` ranks.
    pub fn new(n: usize) -> Self {
        Self {
            peers: vec![PeerStats::default(); n],
            ..Self::default()
        }
    }

    /// Total data frames sent (the termination detector's `sent` counter).
    pub fn frames_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.frames_sent).sum()
    }

    /// Total data frames received at the application.
    pub fn frames_recv(&self) -> u64 {
        self.peers.iter().map(|p| p.frames_recv).sum()
    }

    /// Total data payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.bytes_sent).sum()
    }

    /// Folds these counters into `m`, namespaced per rank so per-rank
    /// registries merge without collisions on the launcher.
    pub fn fold_into(&self, me: Rank, m: &mut MetricsRegistry) {
        m.inc("net.frames_sent", self.frames_sent());
        m.inc("net.frames_recv", self.frames_recv());
        m.inc("net.bytes_sent", self.bytes_sent());
        m.inc(
            "net.bytes_recv",
            self.peers.iter().map(|p| p.bytes_recv).sum(),
        );
        m.inc("net.send_stalls", self.send_stalls);
        m.inc("net.term_rounds", self.term_rounds);
        m.inc("net.barriers", self.barriers);
        m.inc(&format!("net.rank{me}.bytes_sent"), self.bytes_sent());
        m.inc(&format!("net.rank{me}.frames_sent"), self.frames_sent());
        m.inc(&format!("net.rank{me}.send_stalls"), self.send_stalls);
        for (peer, p) in self.peers.iter().enumerate() {
            if p.frames_sent > 0 {
                m.inc(&format!("net.rank{me}.to{peer}.frames"), p.frames_sent);
                m.inc(&format!("net.rank{me}.to{peer}.bytes"), p.bytes_sent);
            }
        }
    }
}

/// One rank's endpoint: nonblocking data-frame delivery plus the two
/// collectives the drain protocol needs.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> Rank;

    /// Total ranks in the job.
    fn num_ranks(&self) -> usize;

    /// Queues one data frame for `dest` (self-sends allowed). Nonblocking:
    /// bytes may sit in the per-peer send buffer until [`Transport::flush`].
    fn send(&mut self, dest: Rank, frame: &[u8]);

    /// Pulls the next arrived data frame, if any. Frames from one peer
    /// arrive in send order; no order holds across peers.
    fn try_recv(&mut self) -> Option<(Rank, Vec<u8>)>;

    /// Pushes every buffered send to the wire.
    fn flush(&mut self);

    /// Blocks until every rank has entered this barrier.
    fn barrier(&mut self);

    /// Runs one collective termination-detection round (flushing first)
    /// and returns `true` when the job is quiescent. All ranks must call
    /// this the same number of times; the decision is identical on all
    /// ranks in the same round.
    fn termination_round(&mut self) -> bool;

    /// Traffic counters so far.
    fn stats(&self) -> &NetStats;
}

/// The per-rank decision state of the four-counter protocol: remembers the
/// previous round's global `(sent, received)` totals and declares
/// quiescence on a balanced, unchanged repeat.
#[derive(Debug, Default, Clone)]
pub struct TermDetector {
    prev: Option<(u64, u64)>,
}

impl TermDetector {
    /// A fresh detector (no rounds seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one round's global totals; `true` means quiescent.
    pub fn decide(&mut self, sent: u64, received: u64) -> bool {
        let quiescent = sent == received && self.prev == Some((sent, received));
        self.prev = Some((sent, received));
        quiescent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_identical_balanced_rounds() {
        let mut d = TermDetector::new();
        assert!(!d.decide(0, 0), "first round never decides");
        assert!(d.decide(0, 0), "confirmed idle");
    }

    #[test]
    fn unbalanced_rounds_never_decide() {
        let mut d = TermDetector::new();
        assert!(!d.decide(5, 3));
        assert!(!d.decide(5, 3), "unchanged but unbalanced");
        assert!(!d.decide(5, 5), "balanced but changed since last round");
        assert!(d.decide(5, 5));
    }

    #[test]
    fn progress_resets_confirmation() {
        let mut d = TermDetector::new();
        assert!(!d.decide(2, 2));
        assert!(!d.decide(4, 4), "totals moved: not quiescent yet");
        assert!(d.decide(4, 4));
    }

    #[test]
    fn stats_totals_sum_peers() {
        let mut s = NetStats::new(3);
        s.peers[0].frames_sent = 2;
        s.peers[2].frames_sent = 3;
        s.peers[1].bytes_sent = 100;
        assert_eq!(s.frames_sent(), 5);
        assert_eq!(s.bytes_sent(), 100);
    }
}
