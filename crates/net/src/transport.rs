//! The [`Transport`] trait and the four-counter termination detector.
//!
//! A transport is one rank's endpoint in an N-rank job. Data frames are
//! L0 `PUT` buffers (or post-quiescence gather chunks); the transport
//! moves them without inspecting them. Besides nonblocking `send` /
//! `try_recv` it offers two collectives the drain protocol needs:
//!
//! * [`Transport::barrier`] — a full barrier, used at epoch boundaries
//!   (after quiescence, around the final gather);
//! * [`Transport::termination_round`] — one round of four-counter
//!   (Mattern/Dijkstra-style) termination detection: every rank
//!   contributes its monotone totals of data frames *sent* and data
//!   frames *received*, the round computes the global sums `(S, R)`, and
//!   the job is quiescent exactly when two consecutive rounds observe
//!   `S == R` with unchanged totals. A single balanced snapshot is not
//!   enough: a frame can be sent after one rank contributed and received
//!   before another did, making a transient snapshot look balanced; the
//!   confirming round proves no traffic moved in between.
//!
//! Receives are counted when the *application* pulls a frame with
//! `try_recv`, not when bytes land in an OS buffer: an unprocessed
//! conveyor buffer can still generate relay traffic (2D/3D routing), so
//! only consumed frames may count toward quiescence.
//!
//! Every fallible operation returns [`NetResult`]: a dead peer, a corrupt
//! stream, or a deadline overrun surfaces as a typed, rank-attributed
//! [`crate::NetError`] instead of a panic or an indefinite hang.
//! Deadlines and retry/backoff behavior come from [`NetTuning`].

use std::time::Duration;

use dakc_sim::telemetry::MetricsRegistry;

use crate::error::NetResult;
use crate::frame::FrameKind;

/// Rank id within a job (dense, `0..num_ranks`).
pub type Rank = usize;

/// Deadlines and retry policy for a transport endpoint.
///
/// `--net-timeout` maps onto the two deadline fields and `--net-retries`
/// onto `retries`; backoff between retries is capped exponential with
/// deterministic jitter (seeded from rank and attempt, so reruns are
/// reproducible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetTuning {
    /// How long connection setup (dial, accept, rendezvous polling) may
    /// retry before failing with a `Timeout`.
    pub connect_timeout: Duration,
    /// How long a collective wait (barrier, termination round, gather
    /// stall, drain quiescence) may sit without progress before failing
    /// with a `Timeout` carrying the four-counter diagnostic dump.
    pub collective_timeout: Duration,
    /// Retry budget for transient send stalls (`WouldBlock`/`TimedOut`).
    pub retries: u32,
    /// First backoff step; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for NetTuning {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(30),
            collective_timeout: Duration::from_secs(120),
            retries: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

impl NetTuning {
    /// Sets both deadlines from one `--net-timeout` value.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self.collective_timeout = timeout;
        self
    }

    /// Sets the transient-stall retry budget (`--net-retries`).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Backoff before retry `attempt` (1-based): capped exponential with
    /// deterministic jitter in `[delay/2, delay]`, salted so concurrent
    /// ranks do not stampede in lockstep.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.backoff_base.as_micros().max(1) as u64;
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(self.backoff_cap.as_micros().max(1) as u64);
        let jitter = crate::chaos::splitmix64(salt ^ u64::from(attempt)) % (capped / 2 + 1);
        Duration::from_micros(capped / 2 + jitter)
    }
}

/// Per-peer traffic counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PeerStats {
    /// Data frames sent to this peer.
    pub frames_sent: u64,
    /// Data payload bytes sent to this peer (framing overhead excluded).
    pub bytes_sent: u64,
    /// Data frames received from this peer.
    pub frames_recv: u64,
    /// Data payload bytes received from this peer.
    pub bytes_recv: u64,
}

/// Cap on the [`NetStats::notes`] buffer: a run melting down in a retry
/// storm must not grow the note log without bound.
pub const NOTES_CAP: usize = 4096;

/// A noteworthy transport incident, kept for the flight recorder.
///
/// Transports sit below [`crate::NetFabric`] and have no trace sink of
/// their own, so they append notes here; the fabric drains them with
/// [`NetStats::take_notes`] at its service points and re-records them as
/// wall-clock trace instants. Plain counters (`retries`,
/// `injected_faults`) are unaffected — notes are the per-incident detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetNote {
    /// A send stalled and backed off before retrying.
    Retry {
        /// Destination rank of the stalled frame.
        dest: Rank,
        /// 1-based retry attempt.
        attempt: u32,
        /// Backoff slept before the retry, in microseconds.
        delay_us: u64,
    },
    /// A chaos fault was injected (name from the chaos fault vocabulary:
    /// `drop`/`dup`/`delay`/`truncate`/`die`/`freeze`/`corrupt`).
    Fault {
        /// Static fault name.
        kind: &'static str,
    },
}

/// Transport-level counters, folded into the metrics registry at the end
/// of a run (SimReport-style export from real processes).
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    /// Per-peer traffic (indexed by rank; includes self-sends).
    pub peers: Vec<PeerStats>,
    /// Sends that blocked noticeably on the OS socket (backpressure).
    pub send_stalls: u64,
    /// Termination-detection rounds executed.
    pub term_rounds: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Retries performed (connection attempts and transient send stalls).
    pub retries: u64,
    /// Chaos faults injected by a wrapping [`crate::ChaosTransport`].
    pub injected_faults: u64,
    /// Incident notes awaiting pickup by the fabric's flight recorder
    /// (capped at [`NOTES_CAP`]; overflow counted in `notes_dropped`).
    pub notes: Vec<NetNote>,
    /// Notes discarded because the buffer was full.
    pub notes_dropped: u64,
    /// Peer reconnections completed after a recoverable death
    /// (`--recover` runs only).
    pub recoveries: u64,
    /// Frames discarded because they carried a stale incarnation tag
    /// (traffic from a rank's previous life, after its respawn).
    pub stale_frames: u64,
    /// Sends silently dropped because the destination was dead and
    /// awaiting respawn (the replay resends their content).
    pub masked_sends: u64,
}

impl NetStats {
    /// Fresh stats for a job of `n` ranks.
    pub fn new(n: usize) -> Self {
        Self {
            peers: vec![PeerStats::default(); n],
            ..Self::default()
        }
    }

    /// Total data frames sent (the termination detector's `sent` counter).
    pub fn frames_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.frames_sent).sum()
    }

    /// Total data frames received at the application.
    pub fn frames_recv(&self) -> u64 {
        self.peers.iter().map(|p| p.frames_recv).sum()
    }

    /// Total data payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.bytes_sent).sum()
    }

    /// Appends an incident note, dropping (and counting) it when the
    /// buffer already holds [`NOTES_CAP`] entries.
    pub fn note(&mut self, note: NetNote) {
        if self.notes.len() < NOTES_CAP {
            self.notes.push(note);
        } else {
            self.notes_dropped += 1;
        }
    }

    /// Drains the pending incident notes (oldest first).
    pub fn take_notes(&mut self) -> Vec<NetNote> {
        std::mem::take(&mut self.notes)
    }

    /// Folds these counters into `m`, namespaced per rank so per-rank
    /// registries merge without collisions on the launcher.
    pub fn fold_into(&self, me: Rank, m: &mut MetricsRegistry) {
        m.inc("net.frames_sent", self.frames_sent());
        m.inc("net.frames_recv", self.frames_recv());
        m.inc("net.bytes_sent", self.bytes_sent());
        m.inc(
            "net.bytes_recv",
            self.peers.iter().map(|p| p.bytes_recv).sum(),
        );
        m.inc("net.send_stalls", self.send_stalls);
        m.inc("net.term_rounds", self.term_rounds);
        m.inc("net.barriers", self.barriers);
        m.inc("net.retries", self.retries);
        m.inc("net.injected_faults", self.injected_faults);
        // Recovery counters only exist on runs that recovered something,
        // keeping the default mode's metrics export unchanged.
        if self.recoveries > 0 {
            m.inc("net.recoveries", self.recoveries);
        }
        if self.stale_frames > 0 {
            m.inc("net.stale_frames", self.stale_frames);
        }
        if self.masked_sends > 0 {
            m.inc("net.masked_sends", self.masked_sends);
        }
        m.inc(&format!("net.rank{me}.bytes_sent"), self.bytes_sent());
        m.inc(&format!("net.rank{me}.frames_sent"), self.frames_sent());
        m.inc(
            &format!("net.rank{me}.bytes_recv"),
            self.peers.iter().map(|p| p.bytes_recv).sum(),
        );
        m.inc(&format!("net.rank{me}.frames_recv"), self.frames_recv());
        m.inc(&format!("net.rank{me}.send_stalls"), self.send_stalls);
        m.inc(&format!("net.rank{me}.retries"), self.retries);
        m.inc(&format!("net.rank{me}.injected_faults"), self.injected_faults);
        // Per-peer communication matrix row: every peer gets an entry,
        // zeros included, so the gather-merged registry always carries the
        // full P×P matrix (`dakc analyze` and `--metrics` read it to spot
        // skew without reconstructing it from trace events).
        for (peer, p) in self.peers.iter().enumerate() {
            m.inc(&format!("net.rank{me}.to{peer}.frames_sent"), p.frames_sent);
            m.inc(&format!("net.rank{me}.to{peer}.bytes_sent"), p.bytes_sent);
        }
    }

    /// Exports these counters as a standalone registry — [`fold_into`]
    /// against a fresh target. This is the shape `dakc analyze` diffs:
    /// total and per-peer bytes-on-wire, so a `--superkmer` run's
    /// compression shows up as a `net.*.bytes_sent` delta against a
    /// baseline run's export.
    ///
    /// [`fold_into`]: NetStats::fold_into
    pub fn export(&self, me: Rank) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        self.fold_into(me, &mut m);
        m
    }
}

/// A completed peer recovery: the peer's new incarnation reconnected and
/// the four-counter accounting was rebased. The caller must now purge the
/// peer's prior deliveries and replay its owner-filtered input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovered {
    /// The rank that came back.
    pub rank: Rank,
    /// Its new incarnation number.
    pub incarnation: u32,
}

/// One rank's endpoint: nonblocking data-frame delivery plus the two
/// collectives the drain protocol needs. Every operation that can observe
/// a wire failure returns [`NetResult`].
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> Rank;

    /// Total ranks in the job.
    fn num_ranks(&self) -> usize;

    /// Queues one data frame for `dest` (self-sends allowed). Nonblocking:
    /// bytes may sit in the per-peer send buffer until [`Transport::flush`].
    fn send(&mut self, dest: Rank, frame: &[u8]) -> NetResult<()>;

    /// Queues one frame tagged with an application-level `kind`
    /// ([`FrameKind::Query`] / [`FrameKind::Reply`] for the serve
    /// protocol). Backends with a framing layer put the tag on the wire;
    /// in-process backends have no frame header and deliver the payload
    /// as a plain data frame — receivers must therefore key on the
    /// payload's own opcode, with the wire tag as transport-level
    /// classification only. Counts as a data frame in the four-counter
    /// totals either way.
    fn send_kind(&mut self, dest: Rank, _kind: FrameKind, frame: &[u8]) -> NetResult<()> {
        self.send(dest, frame)
    }

    /// Pulls the next arrived data frame, if any. Frames from one peer
    /// arrive in send order; no order holds across peers. Surfaces a
    /// corrupt peer stream as a typed error.
    fn try_recv(&mut self) -> NetResult<Option<(Rank, Vec<u8>)>>;

    /// Pushes every buffered send to the wire.
    fn flush(&mut self) -> NetResult<()>;

    /// Blocks until every rank has entered this barrier, or fails fast
    /// when a straggler is known dead / the deadline passes.
    fn barrier(&mut self) -> NetResult<()>;

    /// Runs one collective termination-detection round (flushing first)
    /// and returns `true` when the job is quiescent. All ranks must call
    /// this the same number of times; the decision is identical on all
    /// ranks in the same round.
    fn termination_round(&mut self) -> NetResult<bool>;

    /// Traffic counters so far.
    fn stats(&self) -> &NetStats;

    /// Mutable counters — used by fault-injection wrappers to keep the
    /// four-counter totals consistent with the faults they inject (a
    /// "lost on the wire" frame still counts as sent; a wire-level
    /// duplicate counts as one application send).
    fn stats_mut(&mut self) -> &mut NetStats;

    /// The global `(sent, received)` totals of the most recent
    /// termination round, if any — for timeout diagnostics.
    fn last_global_totals(&self) -> Option<(u64, u64)> {
        None
    }

    /// First peer known to have gone away, if the backend can tell.
    fn first_dead_peer(&self) -> Option<Rank> {
        None
    }

    /// Whether `rank`'s connection is known to have ended (in-process
    /// backends cannot tell and report `false`).
    fn peer_dead(&self, _rank: Rank) -> bool {
        false
    }

    /// Writes deliberately malformed bytes to `dest`'s wire, if the
    /// backend has one (chaos hook for corrupt-frame testing; no-op on
    /// in-process backends, which have no framing layer to corrupt).
    fn send_corrupt(&mut self, _dest: Rank) -> NetResult<()> {
        Ok(())
    }

    /// Arms (or disarms) peer-death recovery. While armed, a recoverable
    /// peer death (clean EOF, reset) is absorbed instead of surfaced:
    /// sends to the dead peer are masked and [`Transport::poll_recovery`]
    /// waits for the respawned incarnation to dial back in. Backends
    /// without a recovery path ignore this and keep failing fast.
    fn arm_recovery(&mut self, _armed: bool) {}

    /// Whether any peer is currently dead and awaiting respawn.
    fn recovery_pending(&self) -> bool {
        false
    }

    /// Accepts a respawned peer's reconnection, if one is ready: rewires
    /// the peer's connection, voids its previous incarnation's frame
    /// totals from the four-counter accounting, and resets the
    /// termination-round state. Errors when a pending respawn overruns
    /// the collective deadline. Backends without a recovery path always
    /// report `None`.
    fn poll_recovery(&mut self) -> NetResult<Option<crate::transport::Recovered>> {
        Ok(None)
    }

    /// One-line protocol-state dump for timeout diagnostics: the
    /// four-counter state plus whatever the backend knows about stuck
    /// peers.
    fn diagnostics(&self) -> String {
        let s = self.stats();
        format!(
            "rank {} of {}: sent={} recv={} rounds={} barriers={} last_global={:?}",
            self.rank(),
            self.num_ranks(),
            s.frames_sent(),
            s.frames_recv(),
            s.term_rounds,
            s.barriers,
            self.last_global_totals(),
        )
    }
}

/// The per-rank decision state of the four-counter protocol: remembers the
/// previous round's global `(sent, received)` totals and declares
/// quiescence on a balanced, unchanged repeat.
#[derive(Debug, Default, Clone)]
pub struct TermDetector {
    prev: Option<(u64, u64)>,
}

impl TermDetector {
    /// A fresh detector (no rounds seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one round's global totals; `true` means quiescent.
    pub fn decide(&mut self, sent: u64, received: u64) -> bool {
        let quiescent = sent == received && self.prev == Some((sent, received));
        self.prev = Some((sent, received));
        quiescent
    }

    /// The most recent round's global totals, if any.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_identical_balanced_rounds() {
        let mut d = TermDetector::new();
        assert!(!d.decide(0, 0), "first round never decides");
        assert!(d.decide(0, 0), "confirmed idle");
    }

    #[test]
    fn unbalanced_rounds_never_decide() {
        let mut d = TermDetector::new();
        assert!(!d.decide(5, 3));
        assert!(!d.decide(5, 3), "unchanged but unbalanced");
        assert!(!d.decide(5, 5), "balanced but changed since last round");
        assert!(d.decide(5, 5));
        assert_eq!(d.last(), Some((5, 5)));
    }

    #[test]
    fn progress_resets_confirmation() {
        let mut d = TermDetector::new();
        assert!(!d.decide(2, 2));
        assert!(!d.decide(4, 4), "totals moved: not quiescent yet");
        assert!(d.decide(4, 4));
    }

    #[test]
    fn fold_into_exports_full_peer_matrix_row() {
        let mut s = NetStats::new(3);
        s.peers[1].frames_sent = 4;
        s.peers[1].bytes_sent = 400;
        let mut m = MetricsRegistry::new();
        s.fold_into(2, &mut m);
        assert_eq!(m.counter("net.rank2.to1.frames_sent"), 4);
        assert_eq!(m.counter("net.rank2.to1.bytes_sent"), 400);
        // Zero cells are still materialized: the matrix row is complete.
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        for peer in 0..3 {
            assert!(names.contains(&format!("net.rank2.to{peer}.bytes_sent").as_str()));
            assert!(names.contains(&format!("net.rank2.to{peer}.frames_sent").as_str()));
        }
        assert_eq!(m.counter("net.rank2.to0.frames_sent"), 0);
    }

    #[test]
    fn stats_totals_sum_peers() {
        let mut s = NetStats::new(3);
        s.peers[0].frames_sent = 2;
        s.peers[2].frames_sent = 3;
        s.peers[1].bytes_sent = 100;
        assert_eq!(s.frames_sent(), 5);
        assert_eq!(s.bytes_sent(), 100);
    }

    #[test]
    fn notes_are_capped_and_drain_in_order() {
        let mut s = NetStats::new(2);
        for i in 0..(NOTES_CAP as u64 + 10) {
            s.note(NetNote::Retry { dest: 1, attempt: 1, delay_us: i });
        }
        assert_eq!(s.notes.len(), NOTES_CAP);
        assert_eq!(s.notes_dropped, 10);
        let drained = s.take_notes();
        assert_eq!(drained.len(), NOTES_CAP);
        assert_eq!(drained[0], NetNote::Retry { dest: 1, attempt: 1, delay_us: 0 });
        assert!(s.notes.is_empty(), "drain leaves the buffer empty");
        s.note(NetNote::Fault { kind: "drop" });
        assert_eq!(s.take_notes(), vec![NetNote::Fault { kind: "drop" }]);
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let t = NetTuning::default();
        for attempt in 1..12 {
            let a = t.backoff(attempt, 7);
            let b = t.backoff(attempt, 7);
            assert_eq!(a, b, "same salt and attempt must agree");
            assert!(a <= t.backoff_cap, "attempt {attempt}: {a:?} over cap");
            assert!(a >= t.backoff_base / 2, "attempt {attempt}: {a:?} under floor");
        }
        // Grows (until the cap) as attempts climb.
        assert!(t.backoff(6, 7) >= t.backoff(1, 7));
    }
}
