//! Deterministic fault injection: [`ChaosTransport`] wraps any
//! [`Transport`] and injects failures from a seeded RNG, so every failure
//! mode of the distributed runtime is testable in-process and every test
//! run is reproducible from its `--chaos-seed`.
//!
//! Two fault families exist:
//!
//! * **Probabilistic wire faults**, rolled per data-frame send from the
//!   seeded stream: `drop` (the frame is counted as sent but never
//!   delivered — the four-counter totals wedge with S > R), `dup` (the
//!   frame is delivered twice but counted once — R > S), `delay` (the
//!   frame is held for a few operations, reordering it against other
//!   destinations but never within one), and `truncate` (malformed bytes
//!   hit the peer's wire instead of the frame).
//! * **Scripted rank faults**, triggered when the wrapped endpoint's
//!   operation counter crosses a threshold: `die:R@N` (operation N on
//!   rank R fails with [`NetError::Injected`]), `freeze:R@N` (rank R
//!   stops making progress *and* stops heartbeating — the silent-hang
//!   case only a supervisor deadline can catch), and `corrupt:R@N`
//!   (rank R poisons a peer's stream with garbage bytes).
//!
//! With every fault disabled the wrapper is pure delegation — bit-identical
//! behavior and counters to the bare transport — so production code can be
//! compiled with the wrapper in place unconditionally.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::{NetError, NetResult};
use crate::frame::FrameKind;
use crate::transport::{NetNote, NetStats, Rank, Transport};

/// SplitMix64: the tiny, high-quality mixer used for all chaos and
/// backoff-jitter randomness (no external RNG dependency).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How many entries the fault log keeps (oldest kept; it is a debugging
/// aid, not a metric — totals live in `net.injected_faults`).
const FAULT_LOG_CAP: usize = 1024;

/// Parsed fault-injection plan for one rank.
///
/// Built from a profile string (see [`ChaosConfig::parse`]) of
/// comma-separated terms:
///
/// * `drop[=P]`, `dup[=P]`, `delay[=P]`, `truncate[=P]` — probabilistic
///   wire faults at `P` per-mille of data sends (defaults: 10, 10, 20, 5);
/// * `die:R@N`, `freeze:R@N`, `corrupt:R@N` — scripted faults on rank `R`
///   at operation `N` (terms for other ranks are ignored, so one profile
///   string describes the whole job).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Base RNG seed; the effective stream also mixes in the rank so
    /// ranks do not fault in lockstep.
    pub seed: u64,
    /// Per-mille of data sends silently dropped.
    pub drop_per_mille: u16,
    /// Per-mille of data sends delivered twice.
    pub dup_per_mille: u16,
    /// Per-mille of data sends held back for [`ChaosConfig::delay_ops`]
    /// operations.
    pub delay_per_mille: u16,
    /// How many transport operations a delayed frame is held.
    pub delay_ops: u64,
    /// Per-mille of data sends replaced by malformed wire bytes.
    pub truncate_per_mille: u16,
    /// Fail every operation from this operation count on.
    pub die_after_ops: Option<u64>,
    /// Stop progressing (and heartbeating) at this operation count.
    pub freeze_after_ops: Option<u64>,
    /// Poison a peer's stream at this operation count.
    pub corrupt_after_ops: Option<u64>,
    /// Like `die_after_ops`, but declares the death restartable: a
    /// `--recover` launch is expected to respawn this rank. The transport
    /// behavior is identical to `die`; the separate term lets profiles
    /// state intent and lets [`ChaosConfig::parse_for_epoch`] suppress
    /// the fault in respawned incarnations.
    pub die_restart_after_ops: Option<u64>,
    /// Freeze at `(op, ms)`: stop progressing and heartbeating for `ms`
    /// milliseconds (raising the freeze flag), then thaw and continue —
    /// a transient hang rather than `freeze`'s permanent one. One-shot.
    pub freeze_thaw: Option<(u64, u64)>,
}

impl ChaosConfig {
    /// A config that injects nothing (the wrapper becomes pure
    /// delegation).
    pub fn off() -> Self {
        Self::default()
    }

    /// True when no fault can ever fire.
    pub fn is_off(&self) -> bool {
        self.drop_per_mille == 0
            && self.dup_per_mille == 0
            && self.delay_per_mille == 0
            && self.truncate_per_mille == 0
            && self.die_after_ops.is_none()
            && self.freeze_after_ops.is_none()
            && self.corrupt_after_ops.is_none()
            && self.die_restart_after_ops.is_none()
            && self.freeze_thaw.is_none()
    }

    /// Whether this plan's scripted death is declared restartable
    /// (`die-restart` rather than `die`).
    pub fn restartable(&self) -> bool {
        self.die_restart_after_ops.is_some()
    }

    /// Parses a job-wide profile string into the plan for `rank` (scripted
    /// terms addressed to other ranks are dropped).
    pub fn parse(profile: &str, seed: u64, rank: Rank) -> Result<Self, String> {
        Self::parse_for_epoch(profile, seed, rank, 0)
    }

    /// [`ChaosConfig::parse`] for a specific incarnation: scripted rank
    /// faults (`die`, `die-restart`, `freeze`, `freeze-thaw`, `corrupt`)
    /// fire only in incarnation 0 — a respawned rank must not re-execute
    /// the death that killed its previous life, or a `--recover` launch
    /// would loop forever. Probabilistic wire faults stay active in every
    /// incarnation.
    pub fn parse_for_epoch(
        profile: &str,
        seed: u64,
        rank: Rank,
        epoch: u32,
    ) -> Result<Self, String> {
        let mut cfg = Self { seed, ..Self::default() };
        cfg.delay_ops = 4;
        for term in profile.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(spec) = term.strip_prefix("freeze-thaw:") {
                // freeze-thaw:R@N@D — rank R, operation N, thaw after D ms.
                let mut parts = spec.splitn(3, '@');
                let (r, op, ms) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(r), Some(op), Some(ms)) => (r, op, ms),
                    _ => return Err(format!("chaos term {term:?}: expected freeze-thaw:RANK@OP@MS")),
                };
                let r: Rank = r
                    .parse()
                    .map_err(|e| format!("chaos term {term:?}: bad rank: {e}"))?;
                let op: u64 = op
                    .parse()
                    .map_err(|e| format!("chaos term {term:?}: bad op count: {e}"))?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| format!("chaos term {term:?}: bad thaw delay: {e}"))?;
                if r == rank && epoch == 0 {
                    cfg.freeze_thaw = Some((op, ms));
                }
                continue;
            }
            if let Some(spec) = term
                .strip_prefix("die-restart:")
                .map(|s| ("die-restart", s))
                .or_else(|| term.strip_prefix("die:").map(|s| ("die", s)))
                .or_else(|| term.strip_prefix("freeze:").map(|s| ("freeze", s)))
                .or_else(|| term.strip_prefix("corrupt:").map(|s| ("corrupt", s)))
            {
                let (kind, spec) = spec;
                let (r, op) = spec
                    .split_once('@')
                    .ok_or_else(|| format!("chaos term {term:?}: expected {kind}:RANK@OP"))?;
                let r: Rank = r
                    .parse()
                    .map_err(|e| format!("chaos term {term:?}: bad rank: {e}"))?;
                let op: u64 = op
                    .parse()
                    .map_err(|e| format!("chaos term {term:?}: bad op count: {e}"))?;
                if r == rank && epoch == 0 {
                    match kind {
                        "die" => cfg.die_after_ops = Some(op),
                        "die-restart" => cfg.die_restart_after_ops = Some(op),
                        "freeze" => cfg.freeze_after_ops = Some(op),
                        _ => cfg.corrupt_after_ops = Some(op),
                    }
                }
                continue;
            }
            let (name, value) = match term.split_once('=') {
                Some((n, v)) => {
                    let v: u16 = v
                        .parse()
                        .map_err(|e| format!("chaos term {term:?}: bad per-mille: {e}"))?;
                    (n, Some(v.min(1000)))
                }
                None => (term, None),
            };
            match name {
                "drop" => cfg.drop_per_mille = value.unwrap_or(10),
                "dup" => cfg.dup_per_mille = value.unwrap_or(10),
                "delay" => cfg.delay_per_mille = value.unwrap_or(20),
                "truncate" => cfg.truncate_per_mille = value.unwrap_or(5),
                _ => return Err(format!("unknown chaos term {term:?}")),
            }
        }
        Ok(cfg)
    }
}

/// One frame held back by a `delay` fault.
#[derive(Debug)]
struct Delayed {
    dest: Rank,
    frame: Vec<u8>,
    release_at_op: u64,
}

/// A [`Transport`] wrapper injecting deterministic faults per
/// [`ChaosConfig`]. See the module docs for the fault families.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    cfg: ChaosConfig,
    rng: u64,
    /// Counts every transport operation (sends, receives, collectives);
    /// the clock scripted faults trigger on.
    ops: u64,
    /// Frames held back by `delay`, in queue order per destination.
    delayed: VecDeque<Delayed>,
    /// `(operation, fault name)` of injected faults, capped.
    log: Vec<(u64, &'static str)>,
    /// Raised when a `freeze` fires, so a co-located heartbeat sender
    /// goes silent too.
    freeze_flag: Option<Arc<AtomicBool>>,
    corrupt_done: bool,
    freeze_thaw_done: bool,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: T, cfg: ChaosConfig) -> Self {
        let rng = splitmix64(cfg.seed ^ (inner.rank() as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        Self {
            inner,
            cfg,
            rng,
            ops: 0,
            delayed: VecDeque::new(),
            log: Vec::new(),
            freeze_flag: None,
            corrupt_done: false,
            freeze_thaw_done: false,
        }
    }

    /// Shares the flag a `freeze` fault raises (wire it to the heartbeat
    /// sender's mute flag so a frozen rank also goes silent).
    pub fn with_freeze_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.freeze_flag = Some(flag);
        self
    }

    /// The `(operation, fault name)` log of injected faults so far.
    pub fn fault_log(&self) -> &[(u64, &'static str)] {
        &self.log
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn note(&mut self, fault: &'static str) {
        let stats = self.inner.stats_mut();
        stats.injected_faults += 1;
        // Also queue an incident note so a tracing fabric can put the
        // fault on the timeline as a `net_fault` instant.
        stats.note(NetNote::Fault { kind: fault });
        if self.log.len() < FAULT_LOG_CAP {
            self.log.push((self.ops, fault));
        }
    }

    fn roll(&mut self) -> u16 {
        self.rng = splitmix64(self.rng);
        ((self.rng >> 32) % 1000) as u16
    }

    /// Advances the operation clock and fires any scripted fault that has
    /// come due. Called at the top of every trait operation; pure
    /// arithmetic when the config is off.
    fn tick(&mut self) -> NetResult<()> {
        self.ops += 1;
        if self.cfg.is_off() {
            return Ok(());
        }
        let me = self.inner.rank();
        if let Some(at) = self.cfg.die_after_ops {
            if self.ops >= at {
                self.note("die");
                return Err(NetError::Injected {
                    rank: me,
                    detail: format!("die at operation {}", self.ops),
                });
            }
        }
        if let Some(at) = self.cfg.die_restart_after_ops {
            if self.ops >= at {
                // Same death as `die`; the term's intent is that a
                // `--recover` launch respawns this rank.
                self.note("die-restart");
                return Err(NetError::Injected {
                    rank: me,
                    detail: format!("die-restart at operation {}", self.ops),
                });
            }
        }
        if let Some((at, ms)) = self.cfg.freeze_thaw {
            if self.ops >= at && !self.freeze_thaw_done {
                self.freeze_thaw_done = true;
                self.note("freeze-thaw");
                // Go silent (heartbeats included) for the scripted window,
                // then resume — a transient hang the supervisor's staleness
                // deadline may or may not catch, depending on tuning.
                if let Some(flag) = &self.freeze_flag {
                    flag.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(ms));
                if let Some(flag) = &self.freeze_flag {
                    flag.store(false, Ordering::SeqCst);
                }
            }
        }
        if let Some(at) = self.cfg.freeze_after_ops {
            if self.ops >= at {
                self.note("freeze");
                if let Some(flag) = &self.freeze_flag {
                    flag.store(true, Ordering::SeqCst);
                }
                // A frozen rank makes no progress and says nothing: the
                // silent-hang case. Only an external supervisor deadline
                // (or a peer's collective timeout) gets the job unwedged.
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        if let Some(at) = self.cfg.corrupt_after_ops {
            if self.ops >= at && !self.corrupt_done && self.inner.num_ranks() > 1 {
                self.corrupt_done = true;
                self.note("corrupt");
                let victim = (me + 1) % self.inner.num_ranks();
                self.inner.send_corrupt(victim)?;
            }
        }
        Ok(())
    }

    /// Delivers delayed frames that have come due (or all of them, before
    /// a collective — collectives must observe every send).
    fn release(&mut self, all: bool) -> NetResult<()> {
        while let Some(d) = self.delayed.front() {
            if !all && d.release_at_op > self.ops {
                break;
            }
            let d = self.delayed.pop_front().expect("front exists");
            self.inner.send(d.dest, &d.frame)?;
        }
        Ok(())
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }

    fn send(&mut self, dest: Rank, frame: &[u8]) -> NetResult<()> {
        self.tick()?;
        if self.cfg.is_off() {
            return self.inner.send(dest, frame);
        }
        self.release(false)?;
        // Per-destination FIFO: a frame must never overtake an earlier
        // delayed frame to the same destination (delay reorders across
        // destinations, never within one — the cascade's chunk protocols
        // rely on per-peer ordering). Followers queue behind the held
        // frame and release together with it.
        if self.delayed.iter().any(|d| d.dest == dest) {
            self.note("delay");
            self.delayed.push_back(Delayed {
                dest,
                frame: frame.to_vec(),
                release_at_op: self.ops,
            });
            return Ok(());
        }
        let roll = self.roll();
        let mut edge = self.cfg.drop_per_mille;
        if roll < edge {
            // Lost on the wire: the sender counted it, no receiver ever
            // will — exactly the S > R wedge the termination deadline
            // must catch.
            self.note("drop");
            let stats = self.inner.stats_mut();
            stats.peers[dest].frames_sent += 1;
            stats.peers[dest].bytes_sent += frame.len() as u64;
            return Ok(());
        }
        edge += self.cfg.dup_per_mille;
        if roll < edge {
            // Delivered twice, counted once: R > S.
            self.note("dup");
            self.inner.send(dest, frame)?;
            self.inner.send(dest, frame)?;
            let stats = self.inner.stats_mut();
            stats.peers[dest].frames_sent -= 1;
            stats.peers[dest].bytes_sent -= frame.len() as u64;
            return Ok(());
        }
        edge += self.cfg.delay_per_mille;
        if roll < edge {
            self.note("delay");
            self.delayed.push_back(Delayed {
                dest,
                frame: frame.to_vec(),
                release_at_op: self.ops + self.cfg.delay_ops,
            });
            return Ok(());
        }
        edge += self.cfg.truncate_per_mille;
        if roll < edge {
            // Malformed bytes instead of the frame; count the send so the
            // local counters stay coherent (the victim errors out anyway).
            self.note("truncate");
            self.inner.send_corrupt(dest)?;
            let stats = self.inner.stats_mut();
            stats.peers[dest].frames_sent += 1;
            stats.peers[dest].bytes_sent += frame.len() as u64;
            return Ok(());
        }
        self.inner.send(dest, frame)
    }

    fn send_kind(&mut self, dest: Rank, kind: FrameKind, frame: &[u8]) -> NetResult<()> {
        if self.cfg.is_off() {
            self.tick()?;
            return self.inner.send_kind(dest, kind, frame);
        }
        // Under active chaos the frame goes through the full fault
        // pipeline, which only knows plain data sends; the wire tag is
        // transport-level classification and receivers key on the
        // payload's own opcode, so downgrading to `Data` is harmless.
        self.send(dest, frame)
    }

    fn try_recv(&mut self) -> NetResult<Option<(Rank, Vec<u8>)>> {
        self.tick()?;
        if !self.cfg.is_off() {
            self.release(false)?;
        }
        self.inner.try_recv()
    }

    fn flush(&mut self) -> NetResult<()> {
        self.tick()?;
        if !self.cfg.is_off() {
            self.release(true)?;
        }
        self.inner.flush()
    }

    fn barrier(&mut self) -> NetResult<()> {
        self.tick()?;
        if !self.cfg.is_off() {
            self.release(true)?;
        }
        self.inner.barrier()
    }

    fn termination_round(&mut self) -> NetResult<bool> {
        self.tick()?;
        if !self.cfg.is_off() {
            self.release(true)?;
        }
        self.inner.termination_round()
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        self.inner.stats_mut()
    }

    fn last_global_totals(&self) -> Option<(u64, u64)> {
        self.inner.last_global_totals()
    }

    fn first_dead_peer(&self) -> Option<Rank> {
        self.inner.first_dead_peer()
    }

    fn peer_dead(&self, rank: Rank) -> bool {
        self.inner.peer_dead(rank)
    }

    fn send_corrupt(&mut self, dest: Rank) -> NetResult<()> {
        self.inner.send_corrupt(dest)
    }

    // Recovery hooks delegate without ticking the ops clock: a `--recover`
    // run must keep the same scripted-fault schedule as a plain run.
    fn arm_recovery(&mut self, armed: bool) {
        self.inner.arm_recovery(armed);
    }

    fn recovery_pending(&self) -> bool {
        self.inner.recovery_pending()
    }

    fn poll_recovery(&mut self) -> NetResult<Option<crate::transport::Recovered>> {
        self.inner.poll_recovery()
    }

    fn diagnostics(&self) -> String {
        format!(
            "{}; chaos: ops={} injected={} delayed={}",
            self.inner.diagnostics(),
            self.ops,
            self.inner.stats().injected_faults,
            self.delayed.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::Loopback;

    #[test]
    fn splitmix_is_stable() {
        // Reference values pin the stream so seeds stay meaningful across
        // refactors (determinism is part of the chaos contract).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn parse_full_profile() {
        let cfg = ChaosConfig::parse("drop=5, dup ,delay=100,die:2@40,freeze:1@7", 9, 2).unwrap();
        assert_eq!(cfg.drop_per_mille, 5);
        assert_eq!(cfg.dup_per_mille, 10);
        assert_eq!(cfg.delay_per_mille, 100);
        assert_eq!(cfg.die_after_ops, Some(40), "die term addressed to us");
        assert_eq!(cfg.freeze_after_ops, None, "freeze term addressed to rank 1");
        assert!(!cfg.is_off());
        // The same profile parsed for rank 1 flips which scripted faults
        // apply.
        let cfg1 = ChaosConfig::parse("drop=5,dup,delay=100,die:2@40,freeze:1@7", 9, 1).unwrap();
        assert_eq!(cfg1.die_after_ops, None);
        assert_eq!(cfg1.freeze_after_ops, Some(7));
    }

    #[test]
    fn parse_die_restart_and_freeze_thaw() {
        let cfg = ChaosConfig::parse("die-restart:2@40,freeze-thaw:1@7@50", 9, 2).unwrap();
        assert_eq!(cfg.die_restart_after_ops, Some(40));
        assert_eq!(cfg.die_after_ops, None, "die-restart is not die");
        assert!(cfg.restartable());
        assert_eq!(cfg.freeze_thaw, None, "freeze-thaw term addressed to rank 1");
        let cfg1 = ChaosConfig::parse("die-restart:2@40,freeze-thaw:1@7@50", 9, 1).unwrap();
        assert_eq!(cfg1.freeze_thaw, Some((7, 50)));
        assert_eq!(cfg1.die_restart_after_ops, None);
        assert!(!cfg1.restartable());
        // Malformed variants are typed errors, not panics.
        assert!(ChaosConfig::parse("die-restart:2", 0, 0).is_err());
        assert!(ChaosConfig::parse("freeze-thaw:1@7", 0, 0).is_err());
        assert!(ChaosConfig::parse("freeze-thaw:1@7@", 0, 0).is_err());
    }

    #[test]
    fn respawned_epoch_suppresses_scripted_faults_only() {
        // The exact profile a --recover launch forwards to every
        // incarnation: the respawned rank must not re-run its own death,
        // but probabilistic wire faults stay armed.
        let profile = "drop=5,die:2@40,die-restart:2@41,freeze:2@42,freeze-thaw:2@7@50";
        let first = ChaosConfig::parse_for_epoch(profile, 9, 2, 0).unwrap();
        assert_eq!(first.die_after_ops, Some(40));
        assert_eq!(first.die_restart_after_ops, Some(41));
        assert_eq!(first.freeze_after_ops, Some(42));
        assert_eq!(first.freeze_thaw, Some((7, 50)));
        let respawned = ChaosConfig::parse_for_epoch(profile, 9, 2, 1).unwrap();
        assert_eq!(respawned.die_after_ops, None);
        assert_eq!(respawned.die_restart_after_ops, None);
        assert_eq!(respawned.freeze_after_ops, None);
        assert_eq!(respawned.freeze_thaw, None);
        assert_eq!(respawned.drop_per_mille, 5, "wire faults survive the respawn");
        assert!(!respawned.is_off());
        // Epoch 0 parses identically through the plain entry point.
        assert_eq!(first, ChaosConfig::parse(profile, 9, 2).unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosConfig::parse("explode", 0, 0).is_err());
        assert!(ChaosConfig::parse("die:x@3", 0, 0).is_err());
        assert!(ChaosConfig::parse("die:3", 0, 0).is_err());
        assert!(ChaosConfig::parse("drop=many", 0, 0).is_err());
        assert_eq!(ChaosConfig::parse("", 7, 0).unwrap().seed, 7);
        assert!(ChaosConfig::parse("", 7, 0).unwrap().is_off());
    }

    #[test]
    fn off_config_is_pure_delegation() {
        let mut mesh = Loopback::mesh(1);
        let mut chaos = ChaosTransport::new(mesh.remove(0), ChaosConfig::off());
        for i in 0..50u8 {
            chaos.send(0, &[i]).unwrap();
        }
        for i in 0..50u8 {
            assert_eq!(chaos.try_recv().unwrap(), Some((0, vec![i])));
        }
        assert!(!chaos.termination_round().unwrap());
        assert!(chaos.termination_round().unwrap());
        let stats = chaos.stats();
        assert_eq!(stats.frames_sent(), 50);
        assert_eq!(stats.frames_recv(), 50);
        assert_eq!(stats.injected_faults, 0);
        assert!(chaos.fault_log().is_empty());
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut mesh = Loopback::mesh(2);
            let _keep = mesh.pop().unwrap(); // rank 1 endpoint stays alive
            let cfg = ChaosConfig::parse("drop=200,dup=200,delay=200", seed, 0).unwrap();
            let mut chaos = ChaosTransport::new(mesh.remove(0), cfg);
            for i in 0..200u32 {
                chaos.send(1, &i.to_le_bytes()).unwrap();
            }
            chaos.flush().unwrap();
            (chaos.fault_log().to_vec(), chaos.stats().injected_faults)
        };
        let (log_a, n_a) = run(42);
        let (log_b, n_b) = run(42);
        assert_eq!(log_a, log_b, "same seed, same faults");
        assert_eq!(n_a, n_b);
        assert!(n_a > 0, "with 600 per-mille fault rate, some must fire");
    }

    #[test]
    fn drop_wedges_the_counters() {
        let mut mesh = Loopback::mesh(2);
        let mut peer = mesh.pop().unwrap();
        let cfg = ChaosConfig::parse("drop=1000", 1, 0).unwrap();
        let mut chaos = ChaosTransport::new(mesh.remove(0), cfg);
        for i in 0..10u32 {
            chaos.send(1, &i.to_le_bytes()).unwrap();
        }
        // Counted as sent, never delivered.
        assert_eq!(chaos.stats().frames_sent(), 10);
        assert_eq!(peer.try_recv().unwrap(), None);
    }

    #[test]
    fn dup_delivers_twice_but_counts_once() {
        let mut mesh = Loopback::mesh(2);
        let mut peer = mesh.pop().unwrap();
        let cfg = ChaosConfig::parse("dup=1000", 1, 0).unwrap();
        let mut chaos = ChaosTransport::new(mesh.remove(0), cfg);
        chaos.send(1, b"x").unwrap();
        assert_eq!(chaos.stats().frames_sent(), 1);
        assert_eq!(peer.try_recv().unwrap(), Some((0, b"x".to_vec())));
        assert_eq!(peer.try_recv().unwrap(), Some((0, b"x".to_vec())));
        assert_eq!(peer.try_recv().unwrap(), None);
    }

    #[test]
    fn delayed_frames_release_before_collectives_in_order() {
        let mut mesh = Loopback::mesh(2);
        let mut peer = mesh.pop().unwrap();
        let cfg = ChaosConfig::parse("delay=1000", 1, 0).unwrap();
        let mut chaos = ChaosTransport::new(mesh.remove(0), cfg);
        for i in 0..5u8 {
            chaos.send(1, &[i]).unwrap();
        }
        chaos.flush().unwrap();
        for i in 0..5u8 {
            assert_eq!(peer.try_recv().unwrap(), Some((0, vec![i])), "FIFO preserved");
        }
        assert_eq!(chaos.stats().injected_faults, 5);
    }

    #[test]
    fn die_fires_exactly_at_threshold() {
        let mut mesh = Loopback::mesh(1);
        let cfg = ChaosConfig::parse("die:0@3", 0, 0).unwrap();
        let mut chaos = ChaosTransport::new(mesh.remove(0), cfg);
        chaos.send(0, b"a").unwrap();
        chaos.send(0, b"b").unwrap();
        let err = chaos.send(0, b"c").unwrap_err();
        assert_eq!(err, NetError::Injected { rank: 0, detail: "die at operation 3".into() });
        // And every operation after stays dead.
        assert!(chaos.try_recv().is_err());
    }
}
