//! The typed transport-failure taxonomy.
//!
//! Every way the wire can fail — a peer dying, a corrupt byte stream, a
//! collective that never completes, an injected chaos fault — has one
//! variant here, carrying the rank it is attributed to so a 256-rank job
//! fails with "rank 17 disconnected" instead of a panic in a detached
//! reader thread. All variants are `Clone + Eq` (sources are flattened to
//! strings) so errors can be latched in a fabric and re-surfaced, and
//! compared in tests.

use std::time::Duration;

use crate::frame::FrameError;
use crate::transport::Rank;

/// Result alias for every fallible transport operation.
pub type NetResult<T> = Result<T, NetError>;

/// A transport-level failure, attributed to a rank where one is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A peer's connection went away (EOF, reset, broken pipe) while the
    /// job still needed it.
    PeerDisconnected {
        /// The peer that vanished.
        rank: Rank,
        /// What the OS / protocol reported.
        detail: String,
    },
    /// A peer's byte stream failed to decode (bad length prefix, unknown
    /// frame kind, malformed collective payload).
    CorruptFrame {
        /// The peer whose stream is corrupt.
        rank: Rank,
        /// Decoder diagnostic.
        detail: String,
    },
    /// A frame's length prefix exceeded the decoder's configured bound —
    /// a corruption guard that refuses multi-GB allocations from a
    /// flipped 4-byte prefix.
    OversizedFrame {
        /// The peer that sent the prefix.
        rank: Rank,
        /// The announced length.
        len: u32,
        /// The configured maximum.
        max: u32,
    },
    /// A collective or send did not complete within the configured
    /// deadline. `detail` carries the four-counter diagnostic dump.
    Timeout {
        /// Which protocol phase stalled (`barrier`, `termination`,
        /// `gather`, `connect`, `send`).
        phase: String,
        /// How long the operation waited, in milliseconds.
        waited_ms: u64,
        /// Protocol-state dump at the moment of the timeout.
        detail: String,
    },
    /// An I/O error outside the classes above.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error, stringified.
        detail: String,
    },
    /// The peer spoke the protocol wrong (duplicate contribution, frame
    /// from a finished rank, gather overrun).
    Protocol {
        /// Diagnostic.
        detail: String,
    },
    /// A deliberately injected chaos fault (`ChaosTransport` death).
    Injected {
        /// The rank that was told to die.
        rank: Rank,
        /// Which fault fired.
        detail: String,
    },
}

impl NetError {
    /// Wraps an `io::Error`, classifying disconnect-shaped kinds as
    /// [`NetError::PeerDisconnected`] when a peer rank is known.
    pub fn from_io(context: impl Into<String>, peer: Option<Rank>, e: &std::io::Error) -> Self {
        use std::io::ErrorKind as K;
        match (peer, e.kind()) {
            (
                Some(rank),
                K::BrokenPipe | K::ConnectionReset | K::ConnectionAborted | K::UnexpectedEof,
            ) => NetError::PeerDisconnected { rank, detail: format!("{}: {e}", context.into()) },
            _ => NetError::Io { context: context.into(), detail: e.to_string() },
        }
    }

    /// Maps a frame-decode failure on `rank`'s stream to its typed form.
    pub fn from_frame(rank: Rank, e: &FrameError) -> Self {
        match *e {
            FrameError::Oversized { len, max } => NetError::OversizedFrame { rank, len, max },
            FrameError::BadLength(l) => {
                NetError::CorruptFrame { rank, detail: format!("bad frame length {l}") }
            }
            FrameError::BadKind(k) => {
                NetError::CorruptFrame { rank, detail: format!("bad frame kind {k}") }
            }
        }
    }

    /// Builds a [`NetError::Timeout`] from a waited duration.
    pub fn timeout(phase: impl Into<String>, waited: Duration, detail: impl Into<String>) -> Self {
        NetError::Timeout {
            phase: phase.into(),
            waited_ms: waited.as_millis() as u64,
            detail: detail.into(),
        }
    }

    /// The rank this failure is attributed to, if one is known.
    pub fn rank(&self) -> Option<Rank> {
        match self {
            NetError::PeerDisconnected { rank, .. }
            | NetError::CorruptFrame { rank, .. }
            | NetError::OversizedFrame { rank, .. }
            | NetError::Injected { rank, .. } => Some(*rank),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::PeerDisconnected { rank, detail } => {
                write!(f, "peer rank {rank} disconnected: {detail}")
            }
            NetError::CorruptFrame { rank, detail } => {
                write!(f, "corrupt stream from rank {rank}: {detail}")
            }
            NetError::OversizedFrame { rank, len, max } => {
                write!(f, "oversized frame from rank {rank}: length {len} > max {max}")
            }
            NetError::Timeout { phase, waited_ms, detail } => {
                write!(f, "{phase} timed out after {waited_ms} ms ({detail})")
            }
            NetError::Io { context, detail } => write!(f, "{context}: {detail}"),
            NetError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            NetError::Injected { rank, detail } => {
                write!(f, "injected fault on rank {rank}: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_disconnect_kinds_attribute_the_peer() {
        let e = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let err = NetError::from_io("send", Some(3), &e);
        assert_eq!(err.rank(), Some(3));
        assert!(matches!(err, NetError::PeerDisconnected { rank: 3, .. }));
        let e = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "perm");
        assert!(matches!(NetError::from_io("send", Some(3), &e), NetError::Io { .. }));
    }

    #[test]
    fn frame_errors_map_to_typed_variants() {
        let over = NetError::from_frame(2, &FrameError::Oversized { len: 999, max: 100 });
        assert_eq!(over, NetError::OversizedFrame { rank: 2, len: 999, max: 100 });
        assert!(matches!(
            NetError::from_frame(1, &FrameError::BadKind(7)),
            NetError::CorruptFrame { rank: 1, .. }
        ));
    }

    #[test]
    fn display_names_the_rank() {
        let s = NetError::PeerDisconnected { rank: 5, detail: "eof".into() }.to_string();
        assert!(s.contains("rank 5"), "{s}");
        let t = NetError::timeout("barrier", Duration::from_millis(1500), "dump").to_string();
        assert!(t.contains("1500 ms"), "{t}");
    }
}
