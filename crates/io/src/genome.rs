//! Synthetic genome generation.
//!
//! The paper's synthetic datasets sample a genome "uniformly randomly from
//! the alphabet Σ = {A, C, G, T}" (§VI). Its real complex genomes (Human,
//! *T. aestivum*) additionally carry *heavy hitters*: a few k-mers at very
//! high frequency produced by tandem repeat arrays like `(AATGG)n`
//! (§IV-D). [`RepeatProfile`] injects such arrays so the surrogate
//! datasets reproduce the skew that makes the paper's L3 aggregation layer
//! pay off.

use crate::rng::SmallRng;

/// A tandem-repeat component of a genome.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatProfile {
    /// Repeat unit, e.g. `b"AATGG"` (the human-genome repeat the paper
    /// cites from HySortK).
    pub unit: Vec<u8>,
    /// Fraction of the genome covered by repeat arrays, in `[0, 1)`.
    pub fraction: f64,
    /// Number of distinct arrays the repeat budget is split across.
    pub arrays: usize,
}

impl RepeatProfile {
    /// The `(AATGG)n` centromeric-satellite-like profile for human-grade
    /// skew.
    pub fn aatgg(fraction: f64) -> Self {
        Self {
            unit: b"AATGG".to_vec(),
            fraction,
            arrays: 32,
        }
    }
}

/// Description of a genome to synthesize.
#[derive(Debug, Clone, PartialEq)]
pub struct GenomeSpec {
    /// Total length in bases.
    pub bases: usize,
    /// Optional tandem repeat structure (heavy hitters).
    pub repeats: Option<RepeatProfile>,
}

/// Generates a genome: uniform random bases, then repeat arrays pasted
/// over random disjoint-ish positions.
///
/// Deterministic in `seed`.
pub fn generate_genome(spec: &GenomeSpec, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    let mut g: Vec<u8> = (0..spec.bases).map(|_| BASES[rng.gen_range(0..4)]).collect();

    if let Some(rp) = &spec.repeats {
        assert!((0.0..1.0).contains(&rp.fraction), "fraction in [0,1)");
        assert!(rp.arrays > 0, "need at least one array");
        let budget = (spec.bases as f64 * rp.fraction) as usize;
        if budget >= rp.unit.len() && spec.bases > rp.unit.len() {
            let per_array = (budget / rp.arrays).max(rp.unit.len());
            let mut placed = 0usize;
            while placed + per_array <= budget {
                let len = per_array.min(spec.bases);
                let start = rng.gen_range(0..=spec.bases - len);
                for i in 0..len {
                    g[start + i] = rp.unit[i % rp.unit.len()];
                }
                placed += len;
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn length_and_alphabet() {
        let g = generate_genome(&GenomeSpec { bases: 10_000, repeats: None }, 1);
        assert_eq!(g.len(), 10_000);
        assert!(g.iter().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = GenomeSpec { bases: 5_000, repeats: Some(RepeatProfile::aatgg(0.1)) };
        assert_eq!(generate_genome(&spec, 7), generate_genome(&spec, 7));
        assert_ne!(generate_genome(&spec, 7), generate_genome(&spec, 8));
    }

    #[test]
    fn uniform_genome_is_roughly_balanced() {
        let g = generate_genome(&GenomeSpec { bases: 100_000, repeats: None }, 42);
        let mut h: HashMap<u8, usize> = HashMap::new();
        for &b in &g {
            *h.entry(b).or_default() += 1;
        }
        for &c in h.values() {
            let dev = (c as f64 - 25_000.0).abs() / 25_000.0;
            assert!(dev < 0.05, "base frequency off by {dev}");
        }
    }

    #[test]
    fn repeats_create_heavy_kmers() {
        use dakc_kmer::{kmers_of_read, CanonicalMode};
        let spec = GenomeSpec { bases: 50_000, repeats: Some(RepeatProfile::aatgg(0.2)) };
        let g = generate_genome(&spec, 3);
        let k = 15;
        let mut hist: HashMap<u64, u32> = HashMap::new();
        for w in kmers_of_read::<u64>(&g, k, CanonicalMode::Forward) {
            *hist.entry(w).or_default() += 1;
        }
        let max = hist.values().copied().max().unwrap();
        // A 20% (AATGG)n budget over 50 kb makes one k-mer appear
        // thousands of times; a uniform genome's max is single digits.
        assert!(max > 500, "expected heavy hitters, max count {max}");

        let uniform = generate_genome(&GenomeSpec { bases: 50_000, repeats: None }, 3);
        let mut hist_u: HashMap<u64, u32> = HashMap::new();
        for w in kmers_of_read::<u64>(&uniform, k, CanonicalMode::Forward) {
            *hist_u.entry(w).or_default() += 1;
        }
        let max_u = hist_u.values().copied().max().unwrap();
        assert!(max_u < 10, "uniform genome should not be skewed, got {max_u}");
    }

    #[test]
    fn zero_fraction_is_uniform() {
        let with = GenomeSpec {
            bases: 1000,
            repeats: Some(RepeatProfile { unit: b"AATGG".to_vec(), fraction: 0.0, arrays: 4 }),
        };
        let without = GenomeSpec { bases: 1000, repeats: None };
        assert_eq!(generate_genome(&with, 9), generate_genome(&without, 9));
    }
}
