//! Streaming FASTA/FASTQ readers.
//!
//! [`crate::fastx`] materializes whole files; real datasets (Table V runs
//! to 451 GB) need constant-memory streaming. [`FastxReader`] yields one
//! record at a time from any `BufRead`, sniffing the format from the first
//! byte, with the same strictness as the batch parsers.

use std::io::BufRead;

use crate::fastx::{FastxError, FastxRecord};
use crate::readset::ReadSet;

/// Detected stream format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastxFormat {
    /// `>` headers, possibly wrapped sequences.
    Fasta,
    /// `@` headers, strict 4-line records.
    Fastq,
}

/// A pull-based record reader.
pub struct FastxReader<R: BufRead> {
    inner: R,
    format: Option<FastxFormat>,
    /// FASTA carry-over: the header of the record currently being read.
    pending_header: Option<String>,
    line_no: usize,
    line: String,
}

impl<R: BufRead> FastxReader<R> {
    /// Wraps a reader; the format is sniffed on the first record.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            format: None,
            pending_header: None,
            line_no: 0,
            line: String::new(),
        }
    }

    /// The detected format, once the first record has been read.
    pub fn format(&self) -> Option<FastxFormat> {
        self.format
    }

    fn read_line(&mut self) -> Result<Option<&str>, FastxError> {
        self.line.clear();
        let n = self.inner.read_line(&mut self.line)?;
        if n == 0 {
            return Ok(None);
        }
        self.line_no += 1;
        Ok(Some(self.line.trim_end_matches(['\n', '\r'])))
    }

    fn err(&self, what: impl Into<String>) -> FastxError {
        FastxError::Format {
            line: self.line_no,
            what: what.into(),
        }
    }

    /// Reads the next record, or `None` at end of stream.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<FastxRecord>, FastxError> {
        // Resolve a header: either carried over (FASTA) or the next
        // nonempty line.
        let header = if let Some(h) = self.pending_header.take() {
            h
        } else {
            loop {
                match self.read_line()? {
                    None => return Ok(None),
                    Some("") => continue,
                    Some(l) => break l.to_string(),
                }
            }
        };

        let format = match self.format {
            Some(f) => f,
            None => {
                let f = match header.bytes().next() {
                    Some(b'>') => FastxFormat::Fasta,
                    Some(b'@') => FastxFormat::Fastq,
                    _ => return Err(self.err(format!("unrecognized header {header:?}"))),
                };
                self.format = Some(f);
                f
            }
        };

        let id = header[1..]
            .split_whitespace()
            .next()
            .unwrap_or_default()
            .to_string();

        match format {
            FastxFormat::Fastq => {
                if !header.starts_with('@') {
                    return Err(self.err(format!("expected '@', got {header:?}")));
                }
                let seq = match self.read_line()? {
                    Some(l) => l.as_bytes().to_vec(),
                    None => return Err(self.err("missing sequence line")),
                };
                let plus = match self.read_line()? {
                    Some(l) => l.to_string(),
                    None => return Err(self.err("missing '+' line")),
                };
                if !plus.starts_with('+') {
                    return Err(self.err(format!("expected '+', got {plus:?}")));
                }
                let qual = match self.read_line()? {
                    Some(l) => l.as_bytes().to_vec(),
                    None => return Err(self.err("missing quality line")),
                };
                if qual.len() != seq.len() {
                    return Err(self.err(format!(
                        "quality length {} != sequence length {}",
                        qual.len(),
                        seq.len()
                    )));
                }
                Ok(Some(FastxRecord { id, seq, qual: Some(qual) }))
            }
            FastxFormat::Fasta => {
                if !header.starts_with('>') {
                    return Err(self.err(format!("expected '>', got {header:?}")));
                }
                let mut seq = Vec::new();
                loop {
                    match self.read_line()? {
                        None => break,
                        Some(l) if l.starts_with('>') => {
                            self.pending_header = Some(l.to_string());
                            break;
                        }
                        Some(l) => seq.extend_from_slice(l.as_bytes()),
                    }
                }
                Ok(Some(FastxRecord { id, seq, qual: None }))
            }
        }
    }

    /// Streams the remaining records into a [`ReadSet`] in fixed-size
    /// chunks, calling `f` per chunk; the chunk is reused. Returns the
    /// record total.
    pub fn for_each_chunk(
        &mut self,
        chunk_reads: usize,
        mut f: impl FnMut(&ReadSet),
    ) -> Result<usize, FastxError> {
        assert!(chunk_reads >= 1);
        let mut total = 0usize;
        let mut chunk = ReadSet::new();
        while let Some(rec) = self.next()? {
            chunk.push(&rec.seq);
            total += 1;
            if chunk.len() == chunk_reads {
                f(&chunk);
                chunk = ReadSet::new();
            }
        }
        if !chunk.is_empty() {
            f(&chunk);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_fastq_records() {
        let data = "@r1\nACGT\n+\nIIII\n@r2 extra\nGG\n+x\n##\n";
        let mut r = FastxReader::new(data.as_bytes());
        let a = r.next().unwrap().unwrap();
        assert_eq!(r.format(), Some(FastxFormat::Fastq));
        assert_eq!(a.id, "r1");
        assert_eq!(a.seq, b"ACGT");
        let b = r.next().unwrap().unwrap();
        assert_eq!(b.id, "r2");
        assert_eq!(b.qual.as_deref(), Some(b"##".as_slice()));
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn streams_wrapped_fasta() {
        let data = ">g1\nACGT\nACG\n>g2\nTT\n";
        let mut r = FastxReader::new(data.as_bytes());
        let a = r.next().unwrap().unwrap();
        assert_eq!(r.format(), Some(FastxFormat::Fasta));
        assert_eq!(a.seq, b"ACGTACG");
        let b = r.next().unwrap().unwrap();
        assert_eq!(b.seq, b"TT");
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn agrees_with_batch_parser() {
        let data = "@a\nACGTA\n+\nIIIII\n@b\nCC\n+\n!!\n@c\nGGGG\n+\nIIII\n";
        let batch = crate::fastx::parse_fastq(data.as_bytes()).unwrap();
        let mut streamed = Vec::new();
        let mut r = FastxReader::new(data.as_bytes());
        while let Some(rec) = r.next().unwrap() {
            streamed.push(rec);
        }
        assert_eq!(batch, streamed);
    }

    #[test]
    fn chunked_iteration_covers_everything() {
        let mut data = String::new();
        for i in 0..25 {
            data.push_str(&format!("@r{i}\nACGT\n+\nIIII\n"));
        }
        let mut r = FastxReader::new(data.as_bytes());
        let mut chunks = Vec::new();
        let total = r
            .for_each_chunk(10, |c| chunks.push(c.len()))
            .unwrap();
        assert_eq!(total, 25);
        assert_eq!(chunks, vec![10, 10, 5]);
    }

    #[test]
    fn truncated_fastq_errors_with_line_number() {
        let data = "@r1\nACGT\n";
        let mut r = FastxReader::new(data.as_bytes());
        let err = r.next().unwrap_err();
        assert!(format!("{err}").contains("missing"));
    }

    #[test]
    fn garbage_header_rejected() {
        let mut r = FastxReader::new("ACGT\n".as_bytes());
        assert!(r.next().is_err());
    }

    #[test]
    fn blank_lines_between_records_tolerated() {
        let data = "@a\nAC\n+\nII\n\n\n@b\nGG\n+\nII\n";
        let mut r = FastxReader::new(data.as_bytes());
        assert_eq!(r.next().unwrap().unwrap().id, "a");
        assert_eq!(r.next().unwrap().unwrap().id, "b");
        assert!(r.next().unwrap().is_none());
    }
}
