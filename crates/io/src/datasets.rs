//! The Table V dataset registry.
//!
//! All 20 datasets of the paper's evaluation: 13 synthetic scales
//! (*Synthetic 20–32*, genomes of `2^XY` bases read at ≈50× coverage with
//! 150 bp reads) and 7 real NCBI SRA datasets, which we substitute with
//! **profile-driven surrogates**: synthetic genomes matching each
//! organism's genome size, read length, coverage and — for the complex
//! genomes the paper calls out (Human, *T. aestivum*) — heavy-hitter
//! tandem-repeat content (see DESIGN.md's substitution ledger).
//!
//! Every spec carries the paper's exact read counts and FASTQ sizes for
//! reporting, and a [`DatasetSpec::scaled`] view that shrinks the workload
//! by the global `2^shift` factor so experiments run on one machine. Node
//! counts in the experiments stay as in the paper; only data volume
//! shrinks.

use crate::genome::{generate_genome, GenomeSpec, RepeatProfile};
use crate::reads::{simulate_reads, ReadSimConfig};
use crate::readset::ReadSet;

/// Default workload shrink factor: every dataset is `2^12` ≈ 4000× smaller
/// than the paper's (DESIGN.md §4).
pub const DEFAULT_SCALE_SHIFT: u32 = 12;

/// Whether a dataset is a paper synthetic or a surrogate for a real SRA
/// accession.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// `Synthetic XY`: uniform random genome of `2^XY` bases.
    Synthetic {
        /// The scale exponent XY.
        scale: u32,
    },
    /// Surrogate for a real dataset (organism profile).
    RealSurrogate,
}

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset label (`"Synthetic 27"`, `"SRR28206931"`, …).
    pub name: &'static str,
    /// Organism name for real datasets.
    pub organism: Option<&'static str>,
    /// Synthetic or surrogate.
    pub kind: DatasetKind,
    /// Underlying genome size in bases (full scale).
    pub genome_bases: u64,
    /// Read count as reported in Table V (full scale).
    pub paper_reads: u64,
    /// Read length.
    pub read_len: usize,
    /// FASTQ size string exactly as Table V prints it.
    pub fastq_size: &'static str,
    /// Heavy-hitter repeat content, if the organism has it.
    pub repeats: Option<RepeatProfile>,
}

impl DatasetSpec {
    /// The dataset shrunk by `2^shift` (both genome and reads, keeping
    /// coverage constant). Genome is floored at four read lengths so tiny
    /// scales remain valid workloads.
    pub fn scaled(&self, shift: u32) -> ScaledDataset {
        let genome = (self.genome_bases >> shift).max(4 * self.read_len as u64) as usize;
        let reads = ((self.paper_reads >> shift).max(16)) as usize;
        ScaledDataset {
            spec: self.clone(),
            shift,
            genome_bases: genome,
            num_reads: reads,
        }
    }

    /// Approximate coverage (`reads × read_len / genome`).
    pub fn coverage(&self) -> f64 {
        self.paper_reads as f64 * self.read_len as f64 / self.genome_bases as f64
    }

    /// `true` if the paper enables the L3 aggregation layer for this
    /// dataset (§VI-C: "only on Human and T. aestivum, known to have
    /// high-frequency k-mers").
    pub fn needs_l3(&self) -> bool {
        matches!(self.organism, Some("Human") | Some("T. aestivum"))
    }
}

/// A dataset at a concrete scale, ready to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledDataset {
    /// The original spec.
    pub spec: DatasetSpec,
    /// Shrink exponent applied.
    pub shift: u32,
    /// Scaled genome size in bases.
    pub genome_bases: usize,
    /// Scaled read count.
    pub num_reads: usize,
}

impl ScaledDataset {
    /// Generates the read set. Deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> ReadSet {
        let genome = generate_genome(
            &GenomeSpec {
                bases: self.genome_bases,
                repeats: self.spec.repeats.clone(),
            },
            seed,
        );
        let cfg = ReadSimConfig {
            read_len: self.spec.read_len,
            num_reads: self.num_reads,
            error_rate: 0.002,
            both_strands: false,
        };
        simulate_reads(&genome, &cfg, seed ^ 0x5EED)
    }

    /// Scaled total bases (`n·m`).
    pub fn total_bases(&self) -> u64 {
        self.num_reads as u64 * self.spec.read_len as u64
    }
}

/// `Synthetic XY` spec: `2^XY`-base uniform genome at ≈50× coverage
/// (matches Table V's read counts).
pub fn synthetic(scale: u32) -> DatasetSpec {
    assert!((20..=32).contains(&scale), "paper uses Synthetic 20–32");
    // Table V read counts (exact).
    let paper_reads: u64 = match scale {
        20 => 349_500,
        21 => 699_050,
        22 => 1_398_100,
        23 => 2_796_200,
        24 => 5_592_400,
        25 => 11_184_800,
        26 => 22_369_600,
        27 => 44_739_200,
        28 => 89_478_450,
        29 => 178_956_950,
        30 => 357_913_900,
        31 => 715_827_850,
        32 => 1_431_655_750,
        _ => unreachable!(),
    };
    let fastq_size = match scale {
        20 => "0.11 MB",
        21 => "0.22 MB",
        22 => "0.44 MB",
        23 => "0.9 GB",
        24 => "1.8 GB",
        25 => "3.5 GB",
        26 => "7.0 GB",
        27 => "16.0 GB",
        28 => "28.0 GB",
        29 => "57.0 GB",
        30 => "113.0 GB",
        31 => "226.0 GB",
        32 => "451.0 GB",
        _ => unreachable!(),
    };
    let name: &'static str = match scale {
        20 => "Synthetic 20",
        21 => "Synthetic 21",
        22 => "Synthetic 22",
        23 => "Synthetic 23",
        24 => "Synthetic 24",
        25 => "Synthetic 25",
        26 => "Synthetic 26",
        27 => "Synthetic 27",
        28 => "Synthetic 28",
        29 => "Synthetic 29",
        30 => "Synthetic 30",
        31 => "Synthetic 31",
        32 => "Synthetic 32",
        _ => unreachable!(),
    };
    DatasetSpec {
        name,
        organism: None,
        kind: DatasetKind::Synthetic { scale },
        genome_bases: 1u64 << scale,
        paper_reads,
        read_len: 150,
        fastq_size,
        repeats: None,
    }
}

/// The seven real datasets of Table V as surrogate profiles.
pub fn real_datasets() -> Vec<DatasetSpec> {
    // Genome sizes are the organisms' published assembly sizes; repeat
    // fractions are chosen so that the complex genomes show the
    // heavy-hitter skew §IV-D and §VI-G describe, and simple ones don't.
    vec![
        DatasetSpec {
            name: "SRR29163078",
            organism: Some("P. aeruginosa"),
            kind: DatasetKind::RealSurrogate,
            genome_bases: 6_300_000,
            paper_reads: 10_190_262,
            read_len: 151,
            fastq_size: "3.8 GB",
            repeats: None,
        },
        DatasetSpec {
            name: "SRR28892189",
            organism: Some("S. coelicolor"),
            kind: DatasetKind::RealSurrogate,
            genome_bases: 8_700_000,
            paper_reads: 15_137_459,
            read_len: 150,
            fastq_size: "6.3 GB",
            repeats: None,
        },
        DatasetSpec {
            name: "SRR26113965",
            organism: Some("F. vesca"),
            kind: DatasetKind::RealSurrogate,
            genome_bases: 220_000_000,
            paper_reads: 56_271_131,
            read_len: 150,
            fastq_size: "24.0 GB",
            repeats: Some(RepeatProfile {
                unit: b"TTTAGGG".to_vec(), // plant telomeric repeat
                fraction: 0.02,
                arrays: 64,
            }),
        },
        DatasetSpec {
            name: "SRR25743144",
            organism: Some("P. sinus"),
            kind: DatasetKind::RealSurrogate,
            genome_bases: 1_000_000_000,
            paper_reads: 139_993_564,
            read_len: 151,
            fastq_size: "59.0 GB",
            repeats: Some(RepeatProfile {
                unit: b"TTAGGG".to_vec(),
                fraction: 0.02,
                arrays: 64,
            }),
        },
        DatasetSpec {
            name: "SRR7443702",
            organism: Some("Ambystoma sp."),
            kind: DatasetKind::RealSurrogate,
            genome_bases: 10_000_000_000,
            paper_reads: 141_903_420,
            read_len: 125,
            fastq_size: "45.0 GB",
            repeats: Some(RepeatProfile {
                unit: b"TTAGGG".to_vec(),
                fraction: 0.05,
                arrays: 128,
            }),
        },
        DatasetSpec {
            name: "SRR28206931",
            organism: Some("Human"),
            kind: DatasetKind::RealSurrogate,
            genome_bases: 3_100_000_000,
            paper_reads: 263_469_656,
            read_len: 149,
            fastq_size: "95.0 GB",
            repeats: Some(RepeatProfile::aatgg(0.08)),
        },
        DatasetSpec {
            name: "SRR29871703",
            organism: Some("T. aestivum"),
            kind: DatasetKind::RealSurrogate,
            genome_bases: 14_200_000_000,
            paper_reads: 345_818_242,
            read_len: 150,
            fastq_size: "145.0 GB",
            repeats: Some(RepeatProfile::aatgg(0.12)),
        },
    ]
}

/// The full Table V: all synthetic scales then the real surrogates.
pub fn table_v() -> Vec<DatasetSpec> {
    let mut v: Vec<DatasetSpec> = (20..=32).map(synthetic).collect();
    v.extend(real_datasets());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_20_rows() {
        let t = table_v();
        assert_eq!(t.len(), 20);
        assert_eq!(t[0].name, "Synthetic 20");
        assert_eq!(t[19].organism, Some("T. aestivum"));
    }

    #[test]
    fn synthetic_coverage_is_about_50x() {
        for s in 20..=32 {
            let d = synthetic(s);
            let cov = d.coverage();
            assert!((45.0..55.0).contains(&cov), "Synthetic {s}: {cov}");
        }
    }

    #[test]
    fn l3_flag_matches_paper() {
        let t = table_v();
        let l3: Vec<&str> = t.iter().filter(|d| d.needs_l3()).map(|d| d.name).collect();
        assert_eq!(l3, vec!["SRR28206931", "SRR29871703"]);
    }

    #[test]
    fn scaled_shrinks_proportionally() {
        let d = synthetic(30);
        let s = d.scaled(12);
        assert_eq!(s.genome_bases, 1 << 18);
        assert!((s.num_reads as f64 / (d.paper_reads >> 12) as f64 - 1.0).abs() < 0.01);
    }

    #[test]
    fn scaled_floors_protect_tiny_datasets() {
        let d = synthetic(20);
        let s = d.scaled(20); // absurd shrink
        assert!(s.genome_bases >= 4 * d.read_len);
        assert!(s.num_reads >= 16);
    }

    #[test]
    fn generate_produces_expected_shape() {
        let s = synthetic(20).scaled(6);
        let rs = s.generate(1);
        assert_eq!(rs.len(), s.num_reads);
        assert!(rs.iter().all(|r| r.len() == 150));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = synthetic(21).scaled(10);
        assert_eq!(s.generate(3), s.generate(3));
    }

    #[test]
    fn human_surrogate_is_skewed_bacteria_not() {
        use dakc_kmer::{kmers_of_read, CanonicalMode};
        use std::collections::HashMap;
        let k = 21;
        let max_count = |name: &str| -> u32 {
            let d = table_v().into_iter().find(|d| d.name == name).unwrap();
            let rs = d.scaled(14).generate(5);
            let mut h: HashMap<u64, u32> = HashMap::new();
            for r in rs.iter() {
                for w in kmers_of_read::<u64>(r, k, CanonicalMode::Forward) {
                    *h.entry(w).or_default() += 1;
                }
            }
            h.values().copied().max().unwrap_or(0)
        };
        let human = max_count("SRR28206931");
        let bacteria = max_count("SRR29163078");
        assert!(
            human > 10 * bacteria.max(1),
            "human surrogate max {human} should dwarf bacterial {bacteria}"
        );
    }
}
