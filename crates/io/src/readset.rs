//! The flat read container.
//!
//! Reads are stored as one contiguous byte arena plus an offsets array —
//! the layout the paper's phase-1 cache model assumes (`1 + mn/PL` misses
//! to parse the input is only true for a flat sequential layout). Engines
//! index it read-by-read and partition it across PEs by contiguous read
//! ranges.

/// A set of DNA reads in a flat arena.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    data: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is read `i`; always starts with 0.
    offsets: Vec<usize>,
}

impl ReadSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates an empty set with capacity hints.
    pub fn with_capacity(reads: usize, bases: usize) -> Self {
        let mut offsets = Vec::with_capacity(reads + 1);
        offsets.push(0);
        Self {
            data: Vec::with_capacity(bases),
            offsets,
        }
    }

    /// Appends one read.
    pub fn push(&mut self, read: &[u8]) {
        self.data.extend_from_slice(read);
        self.offsets.push(self.data.len());
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if there are no reads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `i` as a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &[u8] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over all reads.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total bases across all reads (the paper's `n·m`).
    pub fn total_bases(&self) -> usize {
        self.data.len()
    }

    /// Total k-mers all reads yield for a given `k` (ACGT-only reads:
    /// `Σ max(m_i − k + 1, 0)`).
    pub fn total_kmers(&self, k: usize) -> usize {
        self.iter()
            .map(|r| dakc_kmer::extract::kmer_count_of_read(r, k))
            .sum()
    }

    /// The contiguous range of read indices PE `pe` of `num_pes` owns
    /// (block distribution; earlier PEs get the remainder).
    pub fn pe_range(&self, pe: usize, num_pes: usize) -> std::ops::Range<usize> {
        assert!(pe < num_pes, "pe {pe} out of {num_pes}");
        let n = self.len();
        let base = n / num_pes;
        let extra = n % num_pes;
        let start = pe * base + pe.min(extra);
        let len = base + usize::from(pe < extra);
        start..start + len
    }

    /// Memory footprint of the arena in bytes (offsets excluded).
    pub fn arena_bytes(&self) -> usize {
        self.data.len()
    }
}

impl<'a> FromIterator<&'a [u8]> for ReadSet {
    fn from_iter<T: IntoIterator<Item = &'a [u8]>>(iter: T) -> Self {
        let mut rs = ReadSet::new();
        for r in iter {
            rs.push(r);
        }
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut rs = ReadSet::new();
        rs.push(b"ACGT");
        rs.push(b"GG");
        rs.push(b"");
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.get(0), b"ACGT");
        assert_eq!(rs.get(1), b"GG");
        assert_eq!(rs.get(2), b"");
        assert_eq!(rs.total_bases(), 6);
    }

    #[test]
    fn iter_matches_get() {
        let rs: ReadSet = [b"AC".as_slice(), b"GTT".as_slice()].into_iter().collect();
        let v: Vec<&[u8]> = rs.iter().collect();
        assert_eq!(v, vec![b"AC".as_slice(), b"GTT".as_slice()]);
    }

    #[test]
    fn total_kmers_counts() {
        let rs: ReadSet = [b"ACGTA".as_slice(), b"AC".as_slice()].into_iter().collect();
        assert_eq!(rs.total_kmers(3), 3); // 3 from the first, 0 from the second
    }

    #[test]
    fn pe_ranges_partition_exactly() {
        let mut rs = ReadSet::new();
        for _ in 0..10 {
            rs.push(b"A");
        }
        for p in [1usize, 2, 3, 4, 7, 10, 13] {
            let mut covered = 0;
            let mut next = 0;
            for pe in 0..p {
                let r = rs.pe_range(pe, p);
                assert_eq!(r.start, next, "contiguous partition");
                next = r.end;
                covered += r.len();
            }
            assert_eq!(covered, 10, "P = {p}");
            assert_eq!(next, 10);
        }
    }

    #[test]
    fn pe_ranges_balanced_within_one() {
        let mut rs = ReadSet::new();
        for _ in 0..11 {
            rs.push(b"A");
        }
        let sizes: Vec<usize> = (0..4).map(|pe| rs.pe_range(pe, 4).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn empty_set() {
        let rs = ReadSet::new();
        assert!(rs.is_empty());
        assert_eq!(rs.pe_range(0, 3), 0..0);
    }
}
