//! A small deterministic RNG for workload generation.
//!
//! The genome and read simulators only need reproducible uniform draws, so
//! this is a SplitMix64-seeded xoshiro-style generator with the three
//! sampling helpers the simulators use (`gen_range` over `usize` ranges
//! and `gen_bool`). Keeping it in-tree removes the workspace's only
//! runtime dependency on an external crate, which matters because the
//! build must succeed with no registry access.

/// Deterministic 64-bit generator (SplitMix64 state advance).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open or inclusive `usize` range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53-bit mantissa draw, the standard uniform-in-[0,1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut SmallRng) -> usize;
}

impl SampleRange for std::ops::Range<usize> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    #[inline]
    fn sample(self, rng: &mut SmallRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        if span == 0 {
            // Full u64-width usize range: every draw is in range.
            return rng.next_u64() as usize;
        }
        lo + (rng.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(r.gen_range(0..4) < 4);
            let v = r.gen_range(10..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
