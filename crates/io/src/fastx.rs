//! FASTA/FASTQ parsing and writing.
//!
//! Input handling matches what the paper's pipeline expects from
//! `fasterq-dump` output: 4-line FASTQ records (no multi-line sequences in
//! FASTQ; FASTA sequences may wrap). Parsing is byte-oriented and
//! allocation-light; records borrow nothing so they can be moved into a
//! [`crate::ReadSet`].

use std::io::{self, BufRead, Write};

use crate::readset::ReadSet;

/// One FASTA or FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastxRecord {
    /// Record id (text after `>`/`@`, up to the first whitespace).
    pub id: String,
    /// Sequence bytes.
    pub seq: Vec<u8>,
    /// Phred+33 quality string; `None` for FASTA.
    pub qual: Option<Vec<u8>>,
}

/// Parse errors with line information.
#[derive(Debug)]
pub enum FastxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for FastxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastxError::Io(e) => write!(f, "I/O error: {e}"),
            FastxError::Format { line, what } => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for FastxError {}

impl From<io::Error> for FastxError {
    fn from(e: io::Error) -> Self {
        FastxError::Io(e)
    }
}

fn id_of(header: &str) -> String {
    header
        .split_whitespace()
        .next()
        .unwrap_or_default()
        .to_string()
}

/// Parses FASTQ (strict 4-line records) from a reader.
pub fn parse_fastq<R: BufRead>(reader: R) -> Result<Vec<FastxRecord>, FastxError> {
    let mut out = Vec::new();
    let mut lines = reader.lines().enumerate();
    while let Some((ln, header)) = lines.next() {
        let header = header?;
        if header.is_empty() {
            continue; // tolerate trailing blank lines
        }
        if !header.starts_with('@') {
            return Err(FastxError::Format {
                line: ln + 1,
                what: format!("expected '@' header, got {header:?}"),
            });
        }
        let (sl, seq) = lines.next().ok_or(FastxError::Format {
            line: ln + 2,
            what: "missing sequence line".into(),
        })?;
        let seq = seq?;
        let (_, plus) = lines.next().ok_or(FastxError::Format {
            line: sl + 2,
            what: "missing '+' line".into(),
        })?;
        let plus = plus?;
        if !plus.starts_with('+') {
            return Err(FastxError::Format {
                line: sl + 2,
                what: format!("expected '+' separator, got {plus:?}"),
            });
        }
        let (ql, qual) = lines.next().ok_or(FastxError::Format {
            line: sl + 3,
            what: "missing quality line".into(),
        })?;
        let qual = qual?;
        if qual.len() != seq.len() {
            return Err(FastxError::Format {
                line: ql + 1,
                what: format!("quality length {} != sequence length {}", qual.len(), seq.len()),
            });
        }
        out.push(FastxRecord {
            id: id_of(&header[1..]),
            seq: seq.into_bytes(),
            qual: Some(qual.into_bytes()),
        });
    }
    Ok(out)
}

/// Parses FASTA (possibly line-wrapped sequences) from a reader.
pub fn parse_fasta<R: BufRead>(reader: R) -> Result<Vec<FastxRecord>, FastxError> {
    let mut out: Vec<FastxRecord> = Vec::new();
    for (ln, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('>') {
            out.push(FastxRecord {
                id: id_of(h),
                seq: Vec::new(),
                qual: None,
            });
        } else {
            let rec = out.last_mut().ok_or(FastxError::Format {
                line: ln + 1,
                what: "sequence before any '>' header".into(),
            })?;
            rec.seq.extend_from_slice(line.as_bytes());
        }
    }
    Ok(out)
}

/// Writes records as FASTQ (records lacking qualities get `I` — Q40 —
/// throughout, the convention read simulators use for perfect bases).
pub fn write_fastq<W: Write>(mut w: W, records: &[FastxRecord]) -> io::Result<()> {
    for r in records {
        w.write_all(b"@")?;
        w.write_all(r.id.as_bytes())?;
        w.write_all(b"\n")?;
        w.write_all(&r.seq)?;
        w.write_all(b"\n+\n")?;
        match &r.qual {
            Some(q) => w.write_all(q)?,
            None => w.write_all(&vec![b'I'; r.seq.len()])?,
        }
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Writes records as FASTA with 80-column wrapping.
pub fn write_fasta<W: Write>(mut w: W, records: &[FastxRecord]) -> io::Result<()> {
    for r in records {
        w.write_all(b">")?;
        w.write_all(r.id.as_bytes())?;
        w.write_all(b"\n")?;
        for chunk in r.seq.chunks(80) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Loads just the sequences of a FASTQ stream into a [`ReadSet`].
pub fn fastq_to_readset<R: BufRead>(reader: R) -> Result<ReadSet, FastxError> {
    let records = parse_fastq(reader)?;
    let mut rs = ReadSet::with_capacity(records.len(), records.iter().map(|r| r.seq.len()).sum());
    for r in &records {
        rs.push(&r.seq);
    }
    Ok(rs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FQ: &str = "@r1 desc\nACGT\n+\nIIII\n@r2\nGG\n+\n##\n";

    #[test]
    fn fastq_round_trip() {
        let recs = parse_fastq(FQ.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "r1");
        assert_eq!(recs[0].seq, b"ACGT");
        assert_eq!(recs[0].qual.as_deref(), Some(b"IIII".as_slice()));
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let again = parse_fastq(buf.as_slice()).unwrap();
        assert_eq!(recs, again);
    }

    #[test]
    fn fastq_rejects_bad_header() {
        assert!(parse_fastq("ACGT\n".as_bytes()).is_err());
    }

    #[test]
    fn fastq_rejects_quality_length_mismatch() {
        let bad = "@r\nACGT\n+\nII\n";
        assert!(parse_fastq(bad.as_bytes()).is_err());
    }

    #[test]
    fn fastq_rejects_truncated_record() {
        let bad = "@r\nACGT\n";
        assert!(parse_fastq(bad.as_bytes()).is_err());
    }

    #[test]
    fn fasta_wrapped_sequences_concatenate() {
        let fa = ">g1 chromosome\nACGT\nACGT\n>g2\nTT\n";
        let recs = parse_fasta(fa.as_bytes()).unwrap();
        assert_eq!(recs[0].id, "g1");
        assert_eq!(recs[0].seq, b"ACGTACGT");
        assert_eq!(recs[1].seq, b"TT");
    }

    #[test]
    fn fasta_round_trip_with_wrapping() {
        let rec = FastxRecord {
            id: "long".into(),
            seq: vec![b'A'; 200],
            qual: None,
        };
        let mut buf = Vec::new();
        write_fasta(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let again = parse_fasta(buf.as_slice()).unwrap();
        assert_eq!(again[0].seq, rec.seq);
    }

    #[test]
    fn fasta_rejects_headerless_sequence() {
        assert!(parse_fasta("ACGT\n".as_bytes()).is_err());
    }

    #[test]
    fn fastq_to_readset_extracts_sequences() {
        let rs = fastq_to_readset(FQ.as_bytes()).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0), b"ACGT");
        assert_eq!(rs.get(1), b"GG");
    }

    #[test]
    fn write_fastq_synthesizes_quality() {
        let rec = FastxRecord {
            id: "x".into(),
            seq: b"ACG".to_vec(),
            qual: None,
        };
        let mut buf = Vec::new();
        write_fastq(&mut buf, std::slice::from_ref(&rec)).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "@x\nACG\n+\nIII\n");
    }
}
