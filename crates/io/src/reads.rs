//! ART-style short-read simulation.
//!
//! The paper generates its synthetic FASTQ files with the ART Illumina
//! simulator [49]: fixed-length reads sampled from a genome with an
//! Illumina error profile. We reproduce the parts that matter for k-mer
//! counting — uniform sampling position, fixed read length, independent
//! substitution errors (which create the singleton k-mers that dominate a
//! real count spectrum), and Phred+33 qualities.

use crate::fastx::FastxRecord;
use crate::rng::SmallRng;
use crate::readset::ReadSet;

/// Read-simulator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadSimConfig {
    /// Read length `m` (150 for most Table V datasets).
    pub read_len: usize,
    /// Number of reads `n` to draw.
    pub num_reads: usize,
    /// Per-base substitution probability (Illumina-like ≈ 0.1–1%).
    pub error_rate: f64,
    /// Sample reads from both strands (reverse complement half the time),
    /// as real sequencers do. Off for the paper's forward-counted
    /// synthetic experiments.
    pub both_strands: bool,
}

impl ReadSimConfig {
    /// ART-like defaults: 150 bp, 0.2% substitution errors, forward only.
    pub fn art_like(num_reads: usize) -> Self {
        Self {
            read_len: 150,
            num_reads,
            error_rate: 0.002,
            both_strands: false,
        }
    }
}

/// Draws reads from `genome` per `cfg`. Deterministic in `seed`.
///
/// Genomes shorter than one read length yield an empty set.
pub fn simulate_reads(genome: &[u8], cfg: &ReadSimConfig, seed: u64) -> ReadSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rs = ReadSet::with_capacity(cfg.num_reads, cfg.num_reads * cfg.read_len);
    if genome.len() < cfg.read_len {
        return rs;
    }
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    let mut buf = vec![0u8; cfg.read_len];
    for _ in 0..cfg.num_reads {
        let start = rng.gen_range(0..=genome.len() - cfg.read_len);
        buf.copy_from_slice(&genome[start..start + cfg.read_len]);
        if cfg.both_strands && rng.gen_bool(0.5) {
            buf.reverse();
            for b in buf.iter_mut() {
                *b = dakc_kmer::encode::complement_base(*b).unwrap_or(b'N');
            }
        }
        if cfg.error_rate > 0.0 {
            for b in buf.iter_mut() {
                if rng.gen_bool(cfg.error_rate) {
                    // Substitute with a *different* base.
                    let cur = *b;
                    loop {
                        let nb = BASES[rng.gen_range(0..4)];
                        if nb != cur {
                            *b = nb;
                            break;
                        }
                    }
                }
            }
        }
        rs.push(&buf);
    }
    rs
}

/// Paired-end simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSimConfig {
    /// Per-mate read parameters.
    pub read: ReadSimConfig,
    /// Mean insert size (outer distance between mate starts), bases.
    pub insert_mean: usize,
    /// Insert size spread (uniform ±).
    pub insert_spread: usize,
}

impl PairedSimConfig {
    /// Illumina-like defaults: 150 bp mates, 400 ± 60 bp inserts.
    pub fn art_like(num_pairs: usize) -> Self {
        Self {
            read: ReadSimConfig::art_like(num_pairs),
            insert_mean: 400,
            insert_spread: 60,
        }
    }
}

/// Simulates paired-end reads: mate 1 forward from the fragment start,
/// mate 2 reverse-complemented from the fragment end. Returns
/// `(mate1, mate2)`.
///
/// The paper's pipeline "only uses the first of the two paired-end reads"
/// (§VI) — callers that mirror it take just `mate1`.
pub fn simulate_paired_reads(
    genome: &[u8],
    cfg: &PairedSimConfig,
    seed: u64,
) -> (ReadSet, ReadSet) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = cfg.read.read_len;
    let n = cfg.read.num_reads;
    let mut r1 = ReadSet::with_capacity(n, n * m);
    let mut r2 = ReadSet::with_capacity(n, n * m);
    let min_insert = m.max(cfg.insert_mean.saturating_sub(cfg.insert_spread));
    if genome.len() < min_insert.max(m) {
        return (r1, r2);
    }
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    let mut buf1 = vec![0u8; m];
    let mut buf2 = vec![0u8; m];
    for _ in 0..n {
        let lo = cfg.insert_mean.saturating_sub(cfg.insert_spread).max(m);
        let hi = (cfg.insert_mean + cfg.insert_spread).min(genome.len()).max(lo);
        let insert = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        let start = rng.gen_range(0..=genome.len() - insert);
        buf1.copy_from_slice(&genome[start..start + m]);
        // Mate 2: reverse complement of the fragment's tail.
        let tail = &genome[start + insert - m..start + insert];
        for (i, &b) in tail.iter().rev().enumerate() {
            buf2[i] = dakc_kmer::encode::complement_base(b).unwrap_or(b'N');
        }
        if cfg.read.error_rate > 0.0 {
            for buf in [&mut buf1, &mut buf2] {
                for b in buf.iter_mut() {
                    if rng.gen_bool(cfg.read.error_rate) {
                        let cur = *b;
                        loop {
                            let nb = BASES[rng.gen_range(0..4)];
                            if nb != cur {
                                *b = nb;
                                break;
                            }
                        }
                    }
                }
            }
        }
        r1.push(&buf1);
        r2.push(&buf2);
    }
    (r1, r2)
}

/// Simulates reads and wraps them as FASTQ records with flat Q40
/// qualities (error information is in the bases; the counters never read
/// qualities, matching the paper's pipeline).
pub fn simulate_fastq(genome: &[u8], cfg: &ReadSimConfig, seed: u64) -> Vec<FastxRecord> {
    let rs = simulate_reads(genome, cfg, seed);
    rs.iter()
        .enumerate()
        .map(|(i, seq)| FastxRecord {
            id: format!("sim.{i}"),
            seq: seq.to_vec(),
            qual: Some(vec![b'I'; seq.len()]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{generate_genome, GenomeSpec};

    fn genome(n: usize) -> Vec<u8> {
        generate_genome(&GenomeSpec { bases: n, repeats: None }, 11)
    }

    #[test]
    fn read_count_and_length() {
        let g = genome(10_000);
        let cfg = ReadSimConfig::art_like(100);
        let rs = simulate_reads(&g, &cfg, 1);
        assert_eq!(rs.len(), 100);
        assert!(rs.iter().all(|r| r.len() == 150));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = genome(5_000);
        let cfg = ReadSimConfig::art_like(50);
        assert_eq!(simulate_reads(&g, &cfg, 5), simulate_reads(&g, &cfg, 5));
        assert_ne!(simulate_reads(&g, &cfg, 5), simulate_reads(&g, &cfg, 6));
    }

    #[test]
    fn zero_error_reads_are_substrings() {
        let g = genome(2_000);
        let cfg = ReadSimConfig {
            read_len: 80,
            num_reads: 30,
            error_rate: 0.0,
            both_strands: false,
        };
        let rs = simulate_reads(&g, &cfg, 3);
        for r in rs.iter() {
            assert!(
                g.windows(80).any(|w| w == r),
                "read is not a genome substring"
            );
        }
    }

    #[test]
    fn error_rate_changes_bases_at_expected_rate() {
        let g = genome(1_000);
        let cfg = ReadSimConfig {
            read_len: 100,
            num_reads: 500,
            error_rate: 0.05,
            both_strands: false,
        };
        let clean = ReadSimConfig { error_rate: 0.0, ..cfg.clone() };
        let with_err = simulate_reads(&g, &cfg, 7);
        let without = simulate_reads(&g, &clean, 7);
        // Same sampling positions (same seed and draw order up to the
        // error draws) is NOT guaranteed, so measure differently: count
        // bases that differ from every perfect alignment is overkill —
        // instead check aggregate base-composition divergence is small but
        // nonzero by comparing the two sets' total Hamming weight proxy.
        assert_ne!(with_err, without);
        // Error rate sanity: reads still pure ACGT.
        for r in with_err.iter() {
            assert!(r.iter().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
        }
    }

    #[test]
    fn short_genome_yields_empty() {
        let rs = simulate_reads(b"ACGT", &ReadSimConfig::art_like(10), 1);
        assert!(rs.is_empty());
    }

    #[test]
    fn both_strands_produces_revcomp_reads() {
        let g = genome(300);
        let cfg = ReadSimConfig {
            read_len: 50,
            num_reads: 200,
            error_rate: 0.0,
            both_strands: true,
        };
        let rs = simulate_reads(&g, &cfg, 9);
        let fwd = rs.iter().filter(|r| g.windows(50).any(|w| &w == r)).count();
        // Roughly half should be forward sub-strings, half reverse.
        assert!(fwd > 40 && fwd < 160, "fwd = {fwd} of 200");
    }

    #[test]
    fn paired_reads_have_expected_shape() {
        let g = genome(5_000);
        let cfg = PairedSimConfig {
            read: ReadSimConfig { read_len: 100, num_reads: 200, error_rate: 0.0, both_strands: false },
            insert_mean: 300,
            insert_spread: 50,
        };
        let (r1, r2) = simulate_paired_reads(&g, &cfg, 8);
        assert_eq!(r1.len(), 200);
        assert_eq!(r2.len(), 200);
        // Mate 1 is a forward substring.
        for r in r1.iter().take(20) {
            assert!(g.windows(100).any(|w| w == r));
        }
        // Mate 2 is a reverse-complement substring.
        for r in r2.iter().take(20) {
            let rc: Vec<u8> = r
                .iter()
                .rev()
                .map(|&b| dakc_kmer::encode::complement_base(b).unwrap())
                .collect();
            assert!(g.windows(100).any(|w| w == rc.as_slice()));
        }
    }

    #[test]
    fn paired_reads_deterministic_and_short_genome_safe() {
        let g = genome(2_000);
        let cfg = PairedSimConfig::art_like(50);
        let (a1, a2) = simulate_paired_reads(&g, &cfg, 3);
        let (b1, b2) = simulate_paired_reads(&g, &cfg, 3);
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        let (e1, e2) = simulate_paired_reads(b"ACGT", &cfg, 3);
        assert!(e1.is_empty() && e2.is_empty());
    }

    #[test]
    fn fastq_wrapper_has_matching_quality() {
        let g = genome(1_000);
        let recs = simulate_fastq(&g, &ReadSimConfig::art_like(5), 2);
        assert_eq!(recs.len(), 5);
        for r in &recs {
            assert_eq!(r.qual.as_ref().unwrap().len(), r.seq.len());
        }
    }
}
