//! # dakc-io — sequence I/O and workload generation
//!
//! The paper's experiments consume FASTQ files: synthetic ones produced by
//! the ART Illumina simulator over uniform-random genomes, and real ones
//! downloaded from NCBI SRA (Table V). This crate provides both ends:
//!
//! * [`fastx`] — FASTA/FASTQ parsing and writing.
//! * [`readset`] — the compact in-memory read container every engine
//!   consumes (flat byte arena + offsets; no per-read allocation).
//! * [`genome`] — synthetic genome generation: uniform random sampling
//!   over `{A,C,G,T}` (paper §VI) plus tandem-repeat injection modelling
//!   the `(AATGG)n` heavy-hitter arrays of complex genomes (§IV-D).
//! * [`reads`] — an ART-style short-read simulator: uniform sampling,
//!   fixed read length, substitution errors with Phred qualities.
//! * [`datasets`] — the Table V registry: all 13 synthetic scales and
//!   surrogate profiles for the 7 real SRA datasets, with the global
//!   scale-down knob documented in DESIGN.md §4.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod datasets;
pub mod fastx;
pub mod genome;
pub mod reads;
pub mod readset;
pub mod rng;
pub mod stream;

pub use datasets::{table_v, DatasetSpec, ScaledDataset, DEFAULT_SCALE_SHIFT};
pub use fastx::{parse_fasta, parse_fastq, write_fasta, write_fastq, FastxRecord};
pub use genome::{generate_genome, GenomeSpec, RepeatProfile};
pub use reads::{simulate_paired_reads, simulate_reads, PairedSimConfig, ReadSimConfig};
pub use readset::ReadSet;
pub use stream::{FastxFormat, FastxReader};
