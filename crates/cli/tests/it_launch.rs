//! End-to-end `dakc launch`: real OS processes over TCP (and the
//! loopback backend) must write byte-identical TSV to the serial
//! `dakc count` path on the same input.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dakc")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dakc-it-launch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run(args: &[&str]) {
    let out = Command::new(bin()).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "dakc {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Generates a small synthetic dataset and returns its path.
fn dataset() -> PathBuf {
    let fq = tmp("reads.fastq");
    run(&[
        "generate",
        "--dataset",
        "Synthetic 20",
        "--scale-shift",
        "15",
        "-o",
        fq.to_str().unwrap(),
    ]);
    fq
}

#[test]
fn launch_tcp_matches_serial_count() {
    let fq = dataset();
    let serial = tmp("serial.tsv");
    run(&[
        "count", fq.to_str().unwrap(), "-k", "21", "--threads", "2", "-o",
        serial.to_str().unwrap(),
    ]);
    let dist = tmp("tcp.tsv");
    let metrics = tmp("tcp_metrics.json");
    run(&[
        "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp", "-o",
        dist.to_str().unwrap(), "--metrics", metrics.to_str().unwrap(),
    ]);
    let want = std::fs::read(&serial).unwrap();
    let got = std::fs::read(&dist).unwrap();
    assert!(!want.is_empty());
    assert_eq!(got, want, "4-process TCP output differs from serial");
    // Transport telemetry rode along in the merged metrics export.
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("net.frames_sent"), "{m}");
    assert!(m.contains("net.term_rounds"), "{m}");
}

#[test]
fn launch_loopback_and_single_rank_match_serial() {
    let fq = dataset();
    let serial = tmp("serial_lo.tsv");
    run(&[
        "count", fq.to_str().unwrap(), "-k", "17", "--threads", "2", "--canonical", "-o",
        serial.to_str().unwrap(),
    ]);
    let want = std::fs::read(&serial).unwrap();
    for (ranks, backend, out_name) in
        [("3", "loopback", "lo3.tsv"), ("1", "tcp", "tcp1.tsv"), ("1", "loopback", "lo1.tsv")]
    {
        let dist = tmp(out_name);
        run(&[
            "launch", fq.to_str().unwrap(), "-k", "17", "--canonical", "--ranks", ranks,
            "--backend", backend, "-o", dist.to_str().unwrap(),
        ]);
        let got = std::fs::read(&dist).unwrap();
        assert_eq!(got, want, "{backend} ranks={ranks} differs from serial");
    }
}
