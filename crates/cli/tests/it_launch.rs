//! End-to-end `dakc launch`: real OS processes over TCP (and the
//! loopback backend) must write byte-identical TSV to the serial
//! `dakc count` path on the same input.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dakc")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dakc-it-launch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run(args: &[&str]) {
    run_capture(args);
}

/// Like [`run`] but returns the command's stdout.
fn run_capture(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "dakc {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Generates a small synthetic dataset and returns its path.
fn dataset() -> PathBuf {
    let fq = tmp("reads.fastq");
    run(&[
        "generate",
        "--dataset",
        "Synthetic 20",
        "--scale-shift",
        "15",
        "-o",
        fq.to_str().unwrap(),
    ]);
    fq
}

/// Runs `dakc` expecting it to exit on its own well before `deadline`.
/// Returns the exit status, captured stderr (workers inherit the
/// launcher's stderr pipe, so their diagnostics land here too), and the
/// launcher's pid. Panics if the process outlives the deadline — a
/// failed launch must tear itself down, not hang.
fn run_to_exit(args: &[&str], deadline: Duration) -> (std::process::ExitStatus, String, u32) {
    let child = Command::new(bin())
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let pid = child.id();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(child.wait_with_output());
    });
    match rx.recv_timeout(deadline) {
        Ok(out) => {
            let out = out.unwrap();
            (out.status, String::from_utf8_lossy(&out.stderr).into_owned(), pid)
        }
        Err(_) => {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            panic!("dakc {args:?} still running after {deadline:?}");
        }
    }
}

#[test]
fn launch_chaos_die_fails_fast_naming_dead_rank() {
    let fq = dataset();
    let out_tsv = tmp("die.tsv");
    let (status, stderr, pid) = run_to_exit(
        &[
            "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp",
            "--chaos-profile", "die:2@5", "--chaos-seed", "1",
            "-o", out_tsv.to_str().unwrap(),
        ],
        Duration::from_secs(60),
    );
    assert!(!status.success(), "launch with a dying rank must fail");
    assert!(stderr.contains("rank 2"), "stderr must name the dead rank:\n{stderr}");
    // The launcher removed its rendezvous dir even on the failure path.
    let dir = std::env::temp_dir().join(format!("dakc-rendezvous-{pid}"));
    assert!(!dir.exists(), "stale rendezvous dir left behind: {}", dir.display());
}

#[test]
fn launch_supervisor_catches_frozen_rank() {
    let fq = dataset();
    let out_tsv = tmp("freeze.tsv");
    // A frozen rank exits no syscall and closes no socket: only the
    // heartbeat deadline can catch it. Tight --net-timeout keeps the
    // supervisor's stale limit (half the collective deadline) short.
    let (status, stderr, _) = run_to_exit(
        &[
            "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp",
            "--chaos-profile", "freeze:1@5", "--net-timeout", "3",
            "-o", out_tsv.to_str().unwrap(),
        ],
        Duration::from_secs(60),
    );
    assert!(!status.success(), "launch with a frozen rank must fail");
    assert!(stderr.contains("rank 1"), "stderr must name the frozen rank:\n{stderr}");
}

#[test]
fn launch_recover_survives_scripted_death_matching_serial() {
    let fq = dataset();
    let serial = tmp("recover_serial.tsv");
    run(&[
        "count", fq.to_str().unwrap(), "-k", "21", "--threads", "2", "-o",
        serial.to_str().unwrap(),
    ]);
    let dist = tmp("recover.tsv");
    let metrics = tmp("recover_metrics.json");
    // Same scripted death as launch_chaos_die_fails_fast_naming_dead_rank,
    // but with --recover: the launcher must respawn rank 2 as incarnation
    // 1, the survivors must replay its owned k-mers, and the job must
    // exit 0 with output byte-identical to the serial count.
    let (status, stderr, pid) = run_to_exit(
        &[
            "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp",
            "--chaos-profile", "die:2@10", "--chaos-seed", "1",
            "--recover", "--max-respawns", "3",
            "-o", dist.to_str().unwrap(), "--metrics", metrics.to_str().unwrap(),
        ],
        Duration::from_secs(120),
    );
    assert!(status.success(), "--recover launch must survive a scripted death:\n{stderr}");
    assert!(
        stderr.contains("recover: rank 2"),
        "launcher must narrate the respawn of rank 2:\n{stderr}"
    );
    let want = std::fs::read(&serial).unwrap();
    let got = std::fs::read(&dist).unwrap();
    assert!(!want.is_empty());
    assert_eq!(got, want, "recovered TCP output differs from serial");
    // The recovery left its fingerprints in the merged metrics: the
    // survivors reconnected to the replacement and replayed its keys.
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("net.recoveries"), "{m}");
    assert!(m.contains("net.replayed_kmers"), "{m}");
    let dir = std::env::temp_dir().join(format!("dakc-rendezvous-{pid}"));
    assert!(!dir.exists(), "stale rendezvous dir left behind: {}", dir.display());
}

#[test]
fn launch_tcp_matches_serial_count() {
    let fq = dataset();
    let serial = tmp("serial.tsv");
    run(&[
        "count", fq.to_str().unwrap(), "-k", "21", "--threads", "2", "-o",
        serial.to_str().unwrap(),
    ]);
    let dist = tmp("tcp.tsv");
    let metrics = tmp("tcp_metrics.json");
    run(&[
        "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp", "-o",
        dist.to_str().unwrap(), "--metrics", metrics.to_str().unwrap(),
    ]);
    let want = std::fs::read(&serial).unwrap();
    let got = std::fs::read(&dist).unwrap();
    assert!(!want.is_empty());
    assert_eq!(got, want, "4-process TCP output differs from serial");
    // Transport telemetry rode along in the merged metrics export.
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("net.frames_sent"), "{m}");
    assert!(m.contains("net.term_rounds"), "{m}");
}

#[test]
fn launch_tcp_trace_merges_ranks_on_one_clock() {
    use dakc_sim::telemetry::json::{self, JsonValue};
    let fq = dataset();
    let dist = tmp("traced.tsv");
    let trace = tmp("net_trace.json");
    run(&[
        "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp",
        "--trace", trace.to_str().unwrap(), "--trace-sample", "1",
        "-o", dist.to_str().unwrap(),
    ]);
    let doc = json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let ph = |e: &JsonValue| e.get("ph").and_then(JsonValue::as_str).unwrap().to_owned();
    let num = |e: &JsonValue, k: &str| e.get(k).and_then(JsonValue::as_f64).unwrap();

    // Every rank contributed real (non-metadata) events to one merged
    // timeline: the per-rank ring buffers crossed the gather wire.
    let pids: std::collections::BTreeSet<u32> = events
        .iter()
        .filter(|e| ph(e) != "M")
        .map(|e| num(e, "pid") as u32)
        .collect();
    assert_eq!(pids, (0..4u32).collect(), "expected all 4 ranks as process tracks");

    // Post-alignment, each rank's events appear in its own recording
    // order: the global sort by timestamp must keep per-rank ts monotone.
    let mut last_ts = std::collections::HashMap::new();
    for e in events.iter().filter(|e| ph(e) != "M") {
        let pid = num(e, "pid") as u32;
        let ts = num(e, "ts");
        let prev = last_ts.insert(pid, ts).unwrap_or(f64::MIN);
        assert!(ts >= prev, "rank {pid} timestamps regressed: {prev} -> {ts}");
    }

    // Flow arrows: every finish ("f") pairs with a start ("s") of the
    // same id, at least one pair spans two ranks, and no arrow points
    // backwards in time beyond clock-estimation error (5 ms ≪ the
    // hundreds of ms of process-start skew alignment removes).
    let mut starts = std::collections::HashMap::new();
    for e in events {
        if e.get("cat").and_then(JsonValue::as_str) == Some("flow") && ph(e) == "s" {
            starts.insert(num(e, "id") as u64, (num(e, "pid") as u32, num(e, "ts")));
        }
    }
    let mut cross_rank = 0usize;
    let mut finishes = 0usize;
    for e in events {
        if e.get("cat").and_then(JsonValue::as_str) != Some("flow") || ph(e) != "f" {
            continue;
        }
        finishes += 1;
        let (src_pid, src_ts) =
            *starts.get(&(num(e, "id") as u64)).expect("flow finish without a start");
        assert!(num(e, "ts") >= src_ts - 5_000.0, "flow arrow points backwards in time");
        if num(e, "pid") as u32 != src_pid {
            cross_rank += 1;
        }
    }
    assert!(finishes > 0, "no flow arrows in a --trace-sample 1 run");
    assert!(cross_rank > 0, "no cross-rank flow arrows among {finishes}");
}

#[test]
fn launch_trace_feeds_analyze_end_to_end() {
    use dakc_sim::telemetry::json::{self, JsonValue};
    let fq = dataset();
    let dist = tmp("analyzed.tsv");
    let trace = tmp("analyze_trace.json");
    run(&[
        "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp",
        "--trace", trace.to_str().unwrap(), "--trace-sample", "1",
        "-o", dist.to_str().unwrap(),
    ]);

    // Analyze the merged trace; the terminal report must cover all
    // three headline analytics on a real 4-process run.
    let art = tmp("analyze_art.json");
    let report = run_capture(&["analyze", trace.to_str().unwrap(), "--out", art.to_str().unwrap()]);
    assert!(report.contains("run: 4 rank(s)"), "{report}");
    assert!(report.contains("critical path:"), "{report}");
    assert!(report.contains("telescoping:"), "{report}");
    assert!(report.contains("comm matrix (4 ranks"), "{report}");
    assert!(report.contains("overlap"), "{report}");

    // The exported artifact is schema-valid and carries a sane overlap
    // fraction plus a full 4x4 traffic matrix.
    let body = std::fs::read_to_string(&art).unwrap();
    assert_eq!(dakc_bench::artifact::validate(&body).unwrap(), "analyze");
    let doc = json::parse(&body).unwrap();
    let counters = doc.get("metrics").and_then(|m| m.get("counters")).unwrap().clone();
    let get = |k: &str| counters.get(k).and_then(JsonValue::as_f64);
    for rank in 0..4 {
        let bp = get(&format!("analyze.rank{rank}.overlap_bp"))
            .unwrap_or_else(|| panic!("rank {rank} missing overlap counter:\n{body}"));
        assert!((0.0..=10_000.0).contains(&bp), "rank {rank} overlap {bp} bp");
    }
    let off_diag: f64 = (0..4)
        .flat_map(|s| (0..4).map(move |d| (s, d)))
        .filter(|&(s, d)| s != d)
        .filter_map(|(s, d)| get(&format!("net.rank{s}.to{d}.bytes_sent")))
        .sum();
    assert!(off_diag > 0.0, "no cross-rank traffic in exported matrix:\n{body}");

    // Re-analysis is deterministic and the artifact self-diffs clean.
    let art2 = tmp("analyze_art2.json");
    run(&["analyze", trace.to_str().unwrap(), "--out", art2.to_str().unwrap()]);
    assert_eq!(body, std::fs::read_to_string(&art2).unwrap(), "re-analysis changed the artifact");
    run(&["analyze", "--diff", art.to_str().unwrap(), art2.to_str().unwrap()]);
}

#[test]
fn launch_loopback_and_single_rank_match_serial() {
    let fq = dataset();
    let serial = tmp("serial_lo.tsv");
    run(&[
        "count", fq.to_str().unwrap(), "-k", "17", "--threads", "2", "--canonical", "-o",
        serial.to_str().unwrap(),
    ]);
    let want = std::fs::read(&serial).unwrap();
    for (ranks, backend, out_name) in
        [("3", "loopback", "lo3.tsv"), ("1", "tcp", "tcp1.tsv"), ("1", "loopback", "lo1.tsv")]
    {
        let dist = tmp(out_name);
        run(&[
            "launch", fq.to_str().unwrap(), "-k", "17", "--canonical", "--ranks", ranks,
            "--backend", backend, "-o", dist.to_str().unwrap(),
        ]);
        let got = std::fs::read(&dist).unwrap();
        assert_eq!(got, want, "{backend} ranks={ranks} differs from serial");
    }
}
