//! End-to-end `dakc launch`: real OS processes over TCP (and the
//! loopback backend) must write byte-identical TSV to the serial
//! `dakc count` path on the same input.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dakc")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dakc-it-launch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run(args: &[&str]) {
    let out = Command::new(bin()).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "dakc {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Generates a small synthetic dataset and returns its path.
fn dataset() -> PathBuf {
    let fq = tmp("reads.fastq");
    run(&[
        "generate",
        "--dataset",
        "Synthetic 20",
        "--scale-shift",
        "15",
        "-o",
        fq.to_str().unwrap(),
    ]);
    fq
}

/// Runs `dakc` expecting it to exit on its own well before `deadline`.
/// Returns the exit status, captured stderr (workers inherit the
/// launcher's stderr pipe, so their diagnostics land here too), and the
/// launcher's pid. Panics if the process outlives the deadline — a
/// failed launch must tear itself down, not hang.
fn run_to_exit(args: &[&str], deadline: Duration) -> (std::process::ExitStatus, String, u32) {
    let child = Command::new(bin())
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let pid = child.id();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(child.wait_with_output());
    });
    match rx.recv_timeout(deadline) {
        Ok(out) => {
            let out = out.unwrap();
            (out.status, String::from_utf8_lossy(&out.stderr).into_owned(), pid)
        }
        Err(_) => {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            panic!("dakc {args:?} still running after {deadline:?}");
        }
    }
}

#[test]
fn launch_chaos_die_fails_fast_naming_dead_rank() {
    let fq = dataset();
    let out_tsv = tmp("die.tsv");
    let (status, stderr, pid) = run_to_exit(
        &[
            "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp",
            "--chaos-profile", "die:2@5", "--chaos-seed", "1",
            "-o", out_tsv.to_str().unwrap(),
        ],
        Duration::from_secs(60),
    );
    assert!(!status.success(), "launch with a dying rank must fail");
    assert!(stderr.contains("rank 2"), "stderr must name the dead rank:\n{stderr}");
    // The launcher removed its rendezvous dir even on the failure path.
    let dir = std::env::temp_dir().join(format!("dakc-rendezvous-{pid}"));
    assert!(!dir.exists(), "stale rendezvous dir left behind: {}", dir.display());
}

#[test]
fn launch_supervisor_catches_frozen_rank() {
    let fq = dataset();
    let out_tsv = tmp("freeze.tsv");
    // A frozen rank exits no syscall and closes no socket: only the
    // heartbeat deadline can catch it. Tight --net-timeout keeps the
    // supervisor's stale limit (half the collective deadline) short.
    let (status, stderr, _) = run_to_exit(
        &[
            "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp",
            "--chaos-profile", "freeze:1@5", "--net-timeout", "3",
            "-o", out_tsv.to_str().unwrap(),
        ],
        Duration::from_secs(60),
    );
    assert!(!status.success(), "launch with a frozen rank must fail");
    assert!(stderr.contains("rank 1"), "stderr must name the frozen rank:\n{stderr}");
}

#[test]
fn launch_tcp_matches_serial_count() {
    let fq = dataset();
    let serial = tmp("serial.tsv");
    run(&[
        "count", fq.to_str().unwrap(), "-k", "21", "--threads", "2", "-o",
        serial.to_str().unwrap(),
    ]);
    let dist = tmp("tcp.tsv");
    let metrics = tmp("tcp_metrics.json");
    run(&[
        "launch", fq.to_str().unwrap(), "-k", "21", "--ranks", "4", "--backend", "tcp", "-o",
        dist.to_str().unwrap(), "--metrics", metrics.to_str().unwrap(),
    ]);
    let want = std::fs::read(&serial).unwrap();
    let got = std::fs::read(&dist).unwrap();
    assert!(!want.is_empty());
    assert_eq!(got, want, "4-process TCP output differs from serial");
    // Transport telemetry rode along in the merged metrics export.
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("net.frames_sent"), "{m}");
    assert!(m.contains("net.term_rounds"), "{m}");
}

#[test]
fn launch_loopback_and_single_rank_match_serial() {
    let fq = dataset();
    let serial = tmp("serial_lo.tsv");
    run(&[
        "count", fq.to_str().unwrap(), "-k", "17", "--threads", "2", "--canonical", "-o",
        serial.to_str().unwrap(),
    ]);
    let want = std::fs::read(&serial).unwrap();
    for (ranks, backend, out_name) in
        [("3", "loopback", "lo3.tsv"), ("1", "tcp", "tcp1.tsv"), ("1", "loopback", "lo1.tsv")]
    {
        let dist = tmp(out_name);
        run(&[
            "launch", fq.to_str().unwrap(), "-k", "17", "--canonical", "--ranks", ranks,
            "--backend", backend, "-o", dist.to_str().unwrap(),
        ]);
        let got = std::fs::read(&dist).unwrap();
        assert_eq!(got, want, "{backend} ranks={ranks} differs from serial");
    }
}
