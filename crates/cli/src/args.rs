//! Hand-rolled argument parsing (no external CLI dependency).

use std::time::Duration;

use dakc_conveyors::Protocol;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `dakc count <input> [-k N] [--threads N] [--canonical] [--l3 C3] [-o out]`
    Count(CountArgs),
    /// `dakc generate --dataset NAME [--scale-shift N] [--seed N] [-o out]`
    Generate(GenerateArgs),
    /// `dakc spectrum <counts.tsv> [--max N]`
    Spectrum(SpectrumArgs),
    /// `dakc simulate <input> [-k N] [--nodes N] [--ppn N] [--protocol 1d|2d|3d] [--l3]`
    Simulate(SimulateArgs),
    /// `dakc launch <input> [--ranks N] [--backend tcp|loopback] [-k N]`
    Launch(LaunchArgs),
    /// `dakc worker <input> --rank I --ranks N --rendezvous DIR` (hidden;
    /// spawned by `launch --backend tcp`, one per rank).
    Worker(WorkerArgs),
    /// `dakc model --dataset NAME [--nodes N]`
    Model(ModelArgs),
    /// `dakc compare <input> [-k N] [--nodes N] [--ppn N]`
    Compare(CompareArgs),
    /// `dakc analyze <trace-or-results>... [--out PATH] [--diff] [--threshold X]`
    Analyze(AnalyzeArgs),
    /// `dakc serve <input> [--ranks N] [--dir DIR]` — stand the counted
    /// table up as a resident sharded query service.
    Serve(ServeArgs),
    /// `dakc serve-worker <input> --rank I ...` (hidden; spawned by
    /// `serve`, one server rank each).
    ServeWorker(ServeWorkerArgs),
    /// `dakc query <keys.tsv> [--dir DIR | --serve-reads <input>]` — look
    /// keys up against a serve mesh.
    Query(QueryArgs),
    /// `dakc help`
    Help,
}

/// Arguments of `dakc serve` (and, with rank identity added, of the
/// hidden `dakc serve-worker`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Input FASTA/FASTQ path to count and serve.
    pub input: String,
    /// k-mer length.
    pub k: usize,
    /// Number of server ranks (the query client joins as one more).
    pub ranks: usize,
    /// Canonical (strand-neutral) counting.
    pub canonical: bool,
    /// Service directory: rendezvous files and shard files live here.
    pub dir: String,
    /// Transport deadlines (connection setup and collective waits).
    pub net_timeout: Option<Duration>,
    /// Worker → supervisor heartbeat period (default 100ms).
    pub heartbeat_interval: Option<Duration>,
    /// Live `--status` redraw period (default 500ms).
    pub status_interval: Option<Duration>,
    /// Render the live per-rank status table while serving.
    pub status: bool,
    /// Chaos fault-injection RNG seed (only meaningful with a profile).
    pub chaos_seed: Option<u64>,
    /// Chaos fault-injection profile applied to the serve loop's
    /// transport, e.g. `die:2@200`.
    pub chaos_profile: Option<String>,
    /// Replication factor: each owner's shard is also loaded by its
    /// `replicas - 1` successor ranks, and the query client fails a
    /// dead holder's requests over to the next copy. Default 1 (off).
    pub replicas: usize,
}

/// Arguments of the hidden `dakc serve-worker` subcommand: one server
/// rank of a TCP serve mesh. `serve` spawns these.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWorkerArgs {
    /// This process's server rank.
    pub rank: usize,
    /// The launcher's supervisor address to heartbeat to (`host:port`).
    pub supervisor: Option<String>,
    /// The serve parameters, identical on every rank.
    pub job: ServeArgs,
}

/// Arguments of `dakc query`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// Keys file: TSV whose first column is a k-mer (the output of
    /// `dakc count` works directly).
    pub keys: String,
    /// k-mer length (must match the service's).
    pub k: usize,
    /// Number of server ranks in the mesh.
    pub ranks: usize,
    /// Service directory of a running `dakc serve` to join (TCP mode).
    pub dir: Option<String>,
    /// Loopback mode: count these reads into an in-process cluster and
    /// query that instead of joining a TCP service.
    pub serve_reads: Option<String>,
    /// Canonical counting for `--serve-reads`.
    pub canonical: bool,
    /// Keys per lookup batch.
    pub batch: usize,
    /// Output TSV path (stdout if absent).
    pub output: Option<String>,
    /// Write the client metrics registry (lookup latency histograms) as
    /// JSON to this path.
    pub metrics: Option<String>,
    /// Also fetch and print the merged count spectrum up to this bucket.
    pub histogram: Option<u32>,
    /// Also fetch and print the global top-N records.
    pub top: Option<usize>,
    /// Transport deadlines (connection setup and collective waits).
    pub net_timeout: Option<Duration>,
}

/// Arguments of `dakc analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeArgs {
    /// Telemetry files to analyze: Chrome traces (`--trace` output),
    /// metrics JSON (`--metrics` output) or bench artifacts.
    pub inputs: Vec<String>,
    /// Write the analysis artifact here (default `results/analyze.json`
    /// for the first trace input).
    pub out: Option<String>,
    /// Diff mode: the two inputs are baseline and current `analyze`
    /// artifacts; explain the regression instead of analyzing.
    pub diff: bool,
    /// Slowdown ratio above which a diffed duration is a regression.
    pub threshold: f64,
}

/// Arguments of `dakc compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareArgs {
    /// Input FASTA/FASTQ path.
    pub input: String,
    /// k-mer length.
    pub k: usize,
    /// Simulated node count.
    pub nodes: usize,
    /// Simulated cores per node.
    pub ppn: usize,
}

/// Arguments of `dakc count`.
#[derive(Debug, Clone, PartialEq)]
pub struct CountArgs {
    /// Input FASTA/FASTQ path.
    pub input: String,
    /// k-mer length.
    pub k: usize,
    /// Worker threads.
    pub threads: usize,
    /// Canonical (strand-neutral) counting.
    pub canonical: bool,
    /// Heavy-hitter L3 buffer size, if enabled.
    pub l3: Option<usize>,
    /// Output TSV path (stdout if absent).
    pub output: Option<String>,
    /// Also persist the final sorted table in the shard wire format
    /// (the serve index builder's input) at this path.
    pub output_shard: Option<String>,
    /// Minimum count to report.
    pub min_count: u32,
    /// Write a Chrome trace-event JSON of the run to this path.
    pub trace: Option<String>,
    /// Write the run's metrics registry as JSON to this path.
    pub metrics: Option<String>,
    /// Causal flow tracing: tag one in `N` packets (`1` = every packet).
    pub trace_sample: Option<u32>,
    /// Words per route-lane batch (engine default if absent).
    pub route_batch: Option<usize>,
    /// Super-k-mer span routing (L2.5).
    pub superkmer: bool,
    /// Minimizer length for `--superkmer` (default
    /// [`dakc::DEFAULT_MINIMIZER_LEN`]).
    pub minimizer_len: Option<usize>,
}

/// Transport backend of `dakc launch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetBackend {
    /// In-process channel mesh: `ranks` threads, no sockets.
    Loopback,
    /// Real OS processes connected over localhost TCP.
    Tcp,
}

/// Arguments of `dakc launch` (and, with rank identity added, of the
/// hidden `dakc worker`).
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchArgs {
    /// Input FASTA/FASTQ path.
    pub input: String,
    /// k-mer length.
    pub k: usize,
    /// Number of ranks (processes or loopback threads).
    pub ranks: usize,
    /// Transport backend.
    pub backend: NetBackend,
    /// Canonical (strand-neutral) counting.
    pub canonical: bool,
    /// Heavy-hitter L3 buffer size, if enabled.
    pub l3: Option<usize>,
    /// Minimum count to report.
    pub min_count: u32,
    /// Output TSV path (stdout if absent).
    pub output: Option<String>,
    /// Write the merged metrics registry as JSON to this path.
    pub metrics: Option<String>,
    /// Transport deadline (connection setup and collective waits);
    /// the tuned default when absent. Accepts `500ms`, `5s`, or bare
    /// seconds.
    pub net_timeout: Option<Duration>,
    /// Retry budget for transient send stalls.
    pub net_retries: Option<u32>,
    /// Worker → supervisor heartbeat period (default 100ms).
    pub heartbeat_interval: Option<Duration>,
    /// Live `--status` redraw period (default 500ms).
    pub status_interval: Option<Duration>,
    /// Chaos fault-injection RNG seed (only meaningful with a profile).
    pub chaos_seed: Option<u64>,
    /// Chaos fault-injection profile, e.g. `drop=5,die:2@200`.
    pub chaos_profile: Option<String>,
    /// Write the clock-aligned merged multi-rank Chrome trace here.
    pub trace: Option<String>,
    /// Causal flow tracing: tag one in `N` packets (`1` = every packet).
    pub trace_sample: Option<u32>,
    /// Render the live per-rank status table while the job runs.
    pub status: bool,
    /// Super-k-mer span routing (L2.5).
    pub superkmer: bool,
    /// Minimizer length for `--superkmer` (default
    /// [`dakc::DEFAULT_MINIMIZER_LEN`]).
    pub minimizer_len: Option<usize>,
    /// Survive rank death: retain listeners, tag frames with
    /// incarnations, and respawn + replay a dead rank instead of
    /// tearing the job down. TCP backend only; exclusive with `--trace`.
    pub recover: bool,
    /// Respawn budget under `--recover` (default 3).
    pub max_respawns: Option<u32>,
}

/// Arguments of the hidden `dakc worker` subcommand: one rank of a TCP
/// job. `launch --backend tcp` spawns these; not for interactive use.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerArgs {
    /// This process's rank.
    pub rank: usize,
    /// This process's incarnation: 0 for an original spawn, `i` for the
    /// `i`-th respawn after a recovered death (`--recover` only).
    pub epoch: u32,
    /// Rendezvous directory where all ranks publish `rank<i>.addr`.
    pub rendezvous: String,
    /// The launcher's supervisor address to heartbeat to (`host:port`).
    pub supervisor: Option<String>,
    /// The count parameters, identical on every rank.
    pub job: LaunchArgs,
}

/// Arguments of `dakc generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Table V dataset name.
    pub dataset: String,
    /// Scale shift (DESIGN.md §4).
    pub scale_shift: u32,
    /// RNG seed.
    pub seed: u64,
    /// Output FASTQ path (stdout if absent).
    pub output: Option<String>,
}

/// Arguments of `dakc spectrum`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumArgs {
    /// Counts TSV produced by `dakc count`.
    pub input: String,
    /// Largest multiplicity bucket to print.
    pub max: usize,
}

/// Arguments of `dakc simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Input FASTA/FASTQ path.
    pub input: String,
    /// k-mer length.
    pub k: usize,
    /// Simulated node count.
    pub nodes: usize,
    /// Simulated cores per node.
    pub ppn: usize,
    /// Conveyors protocol.
    pub protocol: Protocol,
    /// Enable the L3 heavy-hitter layer.
    pub l3: bool,
    /// Write a Chrome trace-event JSON of the virtual-time run here.
    pub trace: Option<String>,
    /// Write the run's metrics registry as JSON to this path.
    pub metrics: Option<String>,
    /// Causal flow tracing: tag one in `N` packets (`1` = every packet).
    pub trace_sample: Option<u32>,
    /// Render the per-PE utilization timeline after the run.
    pub timeline: bool,
    /// Super-k-mer span routing (L2.5).
    pub superkmer: bool,
    /// Minimizer length for `--superkmer` (default
    /// [`dakc::DEFAULT_MINIMIZER_LEN`]).
    pub minimizer_len: Option<usize>,
}

/// Arguments of `dakc model`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArgs {
    /// Table V dataset name.
    pub dataset: String,
    /// Node count `P`.
    pub nodes: usize,
}

/// Usage text.
pub const USAGE: &str = "\
dakc — distributed asynchronous k-mer counting

USAGE:
  dakc count <reads.fasta|fastq> [-k 31] [--threads 8] [--canonical]
             [--l3 C3] [--min-count 1] [-o counts.tsv] [--route-batch N]
             [--output-shard table.dakshard]
             [--superkmer] [--minimizer-len 7]
             [--trace trace.json] [--metrics metrics.json] [--trace-sample N]
  dakc generate --dataset NAME [--scale-shift 12] [--seed 42] [-o out.fastq]
  dakc spectrum <counts.tsv> [--max 100]
  dakc simulate <reads> [-k 31] [--nodes 8] [--ppn 24] [--protocol 1d|2d|3d] [--l3]
                [--superkmer] [--minimizer-len 7]
                [--trace trace.json] [--metrics metrics.json] [--timeline]
                [--trace-sample N]
  dakc launch <reads> [--ranks 4] [--backend tcp|loopback] [-k 31]
              [--canonical] [--l3 C3] [--min-count 1] [-o counts.tsv]
              [--metrics metrics.json] [--net-timeout 5s|500ms] [--net-retries N]
              [--heartbeat-interval 100ms] [--status-interval 500ms]
              [--chaos-seed N] [--chaos-profile SPEC] [--trace trace.json]
              [--trace-sample N] [--status] [--superkmer] [--minimizer-len 7]
              [--recover] [--max-respawns 3]
  dakc serve <reads> --dir DIR [--ranks 4] [-k 31] [--canonical]
             [--net-timeout 30s] [--heartbeat-interval 100ms]
             [--status-interval 500ms] [--status] [--replicas 1]
             [--chaos-seed N] [--chaos-profile SPEC]
  dakc query <keys.tsv> (--dir DIR | --serve-reads <reads>) [--ranks 4] [-k 31]
             [--canonical] [--batch 1024] [-o answers.tsv] [--metrics m.json]
             [--histogram 16] [--top 10] [--net-timeout 5s]
  dakc model --dataset NAME [--nodes 32]
  dakc compare <reads> [-k 31] [--nodes 8] [--ppn 24]
  dakc analyze <trace.json|metrics.json|results/*.json>... [--out PATH]
  dakc analyze --diff baseline.json current.json [--threshold 1.5]
  dakc help

Dataset names are Table V labels, e.g. \"Synthetic 24\" or \"SRR28206931\".";

fn take_value(args: &mut std::vec::IntoIter<String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(v: String, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: invalid value {v:?}"))
}

/// Parses a humane duration: `500ms`, `5s`, `2.5s`, `1m` — or a bare
/// number, kept meaning seconds for compatibility. Must be positive.
pub fn parse_duration(v: &str, flag: &str) -> Result<Duration, String> {
    let (num, scale) = if let Some(n) = v.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = v.strip_suffix('s').filter(|n| !n.ends_with('m')) {
        (n, 1.0)
    } else if let Some(n) = v.strip_suffix('m') {
        (n, 60.0)
    } else {
        (v, 1.0)
    };
    let secs: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("{flag}: invalid duration {v:?} (try 500ms, 5s, or bare seconds)"))?;
    let secs = secs * scale;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("{flag}: duration must be positive, got {v:?}"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn take_duration(
    args: &mut std::vec::IntoIter<String>,
    flag: &str,
) -> Result<Duration, String> {
    parse_duration(&take_value(args, flag)?, flag)
}

/// Validates the `--superkmer`/`--minimizer-len` pair once `k` is known.
fn check_superkmer(
    sub: &str,
    superkmer: bool,
    minimizer_len: Option<usize>,
    k: usize,
) -> Result<(), String> {
    match (superkmer, minimizer_len) {
        (false, Some(_)) => Err(format!("{sub}: --minimizer-len requires --superkmer")),
        (true, Some(m)) if m < 1 || m > k.min(32) => Err(format!(
            "{sub}: --minimizer-len {m} must be in 1..=min(k = {k}, 32)"
        )),
        (true, None) if k < dakc::DEFAULT_MINIMIZER_LEN => Err(format!(
            "{sub}: default minimizer length {} exceeds k = {k}; pass --minimizer-len",
            dakc::DEFAULT_MINIMIZER_LEN
        )),
        _ => Ok(()),
    }
}

/// Parses `argv` (including the program name at index 0).
pub fn parse_args(argv: Vec<String>) -> Result<Command, String> {
    let mut it = argv.into_iter();
    let _prog = it.next();
    let sub = it.next().ok_or_else(|| USAGE.to_string())?;
    match sub.as_str() {
        "count" => {
            let mut input = None;
            let mut a = CountArgs {
                input: String::new(),
                k: 31,
                threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
                canonical: false,
                l3: None,
                output: None,
                min_count: 1,
                output_shard: None,
                trace: None,
                metrics: None,
                trace_sample: None,
                route_batch: None,
                superkmer: false,
                minimizer_len: None,
            };
            let mut rest: Vec<String> = it.collect();
            let mut args = std::mem::take(&mut rest).into_iter();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "-k" => a.k = parse_num(take_value(&mut args, "-k")?, "-k")?,
                    "--threads" => {
                        a.threads = parse_num(take_value(&mut args, "--threads")?, "--threads")?
                    }
                    "--canonical" => a.canonical = true,
                    "--l3" => a.l3 = Some(parse_num(take_value(&mut args, "--l3")?, "--l3")?),
                    "-o" | "--output" => a.output = Some(take_value(&mut args, "-o")?),
                    "--output-shard" => {
                        a.output_shard = Some(take_value(&mut args, "--output-shard")?)
                    }
                    "--min-count" => {
                        a.min_count =
                            parse_num(take_value(&mut args, "--min-count")?, "--min-count")?
                    }
                    "--trace" => a.trace = Some(take_value(&mut args, "--trace")?),
                    "--metrics" => a.metrics = Some(take_value(&mut args, "--metrics")?),
                    "--trace-sample" => {
                        a.trace_sample = Some(parse_num(
                            take_value(&mut args, "--trace-sample")?,
                            "--trace-sample",
                        )?)
                    }
                    "--route-batch" => {
                        a.route_batch = Some(parse_num(
                            take_value(&mut args, "--route-batch")?,
                            "--route-batch",
                        )?)
                    }
                    "--superkmer" => a.superkmer = true,
                    "--minimizer-len" => {
                        a.minimizer_len = Some(parse_num(
                            take_value(&mut args, "--minimizer-len")?,
                            "--minimizer-len",
                        )?)
                    }
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("count: unknown argument {other:?}")),
                }
            }
            a.input = input.ok_or("count: missing input file")?;
            if a.k == 0 || a.k > 64 {
                return Err("count: k must be in 1..=64".into());
            }
            check_superkmer("count", a.superkmer, a.minimizer_len, a.k)?;
            Ok(Command::Count(a))
        }
        "generate" => {
            let mut a = GenerateArgs {
                dataset: String::new(),
                scale_shift: dakc_io::DEFAULT_SCALE_SHIFT,
                seed: 42,
                output: None,
            };
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--dataset" => a.dataset = take_value(&mut args, "--dataset")?,
                    "--scale-shift" => {
                        a.scale_shift =
                            parse_num(take_value(&mut args, "--scale-shift")?, "--scale-shift")?
                    }
                    "--seed" => a.seed = parse_num(take_value(&mut args, "--seed")?, "--seed")?,
                    "-o" | "--output" => a.output = Some(take_value(&mut args, "-o")?),
                    other => return Err(format!("generate: unknown argument {other:?}")),
                }
            }
            if a.dataset.is_empty() {
                return Err("generate: --dataset is required".into());
            }
            Ok(Command::Generate(a))
        }
        "spectrum" => {
            let mut input = None;
            let mut max = 100usize;
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--max" => max = parse_num(take_value(&mut args, "--max")?, "--max")?,
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("spectrum: unknown argument {other:?}")),
                }
            }
            Ok(Command::Spectrum(SpectrumArgs {
                input: input.ok_or("spectrum: missing input file")?,
                max,
            }))
        }
        "simulate" => {
            let mut input = None;
            let mut a = SimulateArgs {
                input: String::new(),
                k: 31,
                nodes: 8,
                ppn: 24,
                protocol: Protocol::OneD,
                l3: false,
                trace: None,
                metrics: None,
                trace_sample: None,
                timeline: false,
                superkmer: false,
                minimizer_len: None,
            };
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "-k" => a.k = parse_num(take_value(&mut args, "-k")?, "-k")?,
                    "--nodes" => a.nodes = parse_num(take_value(&mut args, "--nodes")?, "--nodes")?,
                    "--ppn" => a.ppn = parse_num(take_value(&mut args, "--ppn")?, "--ppn")?,
                    "--l3" => a.l3 = true,
                    "--trace" => a.trace = Some(take_value(&mut args, "--trace")?),
                    "--metrics" => a.metrics = Some(take_value(&mut args, "--metrics")?),
                    "--trace-sample" => {
                        a.trace_sample = Some(parse_num(
                            take_value(&mut args, "--trace-sample")?,
                            "--trace-sample",
                        )?)
                    }
                    "--timeline" => a.timeline = true,
                    "--superkmer" => a.superkmer = true,
                    "--minimizer-len" => {
                        a.minimizer_len = Some(parse_num(
                            take_value(&mut args, "--minimizer-len")?,
                            "--minimizer-len",
                        )?)
                    }
                    "--protocol" => {
                        a.protocol = match take_value(&mut args, "--protocol")?.as_str() {
                            "1d" | "1D" => Protocol::OneD,
                            "2d" | "2D" => Protocol::TwoD,
                            "3d" | "3D" => Protocol::ThreeD,
                            other => return Err(format!("unknown protocol {other:?}")),
                        }
                    }
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("simulate: unknown argument {other:?}")),
                }
            }
            a.input = input.ok_or("simulate: missing input file")?;
            check_superkmer("simulate", a.superkmer, a.minimizer_len, a.k)?;
            Ok(Command::Simulate(a))
        }
        "launch" | "worker" => {
            let hidden = sub == "worker";
            let mut input = None;
            let mut a = LaunchArgs {
                input: String::new(),
                k: 31,
                ranks: 4,
                backend: NetBackend::Tcp,
                canonical: false,
                l3: None,
                min_count: 1,
                output: None,
                metrics: None,
                net_timeout: None,
                net_retries: None,
                heartbeat_interval: None,
                status_interval: None,
                chaos_seed: None,
                chaos_profile: None,
                trace: None,
                trace_sample: None,
                status: false,
                superkmer: false,
                minimizer_len: None,
                recover: false,
                max_respawns: None,
            };
            let mut rank = None;
            let mut rendezvous = None;
            let mut supervisor = None;
            let mut epoch = 0u32;
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "-k" => a.k = parse_num(take_value(&mut args, "-k")?, "-k")?,
                    "--ranks" => a.ranks = parse_num(take_value(&mut args, "--ranks")?, "--ranks")?,
                    "--backend" => {
                        a.backend = match take_value(&mut args, "--backend")?.as_str() {
                            "tcp" => NetBackend::Tcp,
                            "loopback" => NetBackend::Loopback,
                            other => return Err(format!("unknown backend {other:?}")),
                        }
                    }
                    "--canonical" => a.canonical = true,
                    "--l3" => a.l3 = Some(parse_num(take_value(&mut args, "--l3")?, "--l3")?),
                    "--min-count" => {
                        a.min_count =
                            parse_num(take_value(&mut args, "--min-count")?, "--min-count")?
                    }
                    "-o" | "--output" => a.output = Some(take_value(&mut args, "-o")?),
                    "--metrics" => a.metrics = Some(take_value(&mut args, "--metrics")?),
                    "--net-timeout" => {
                        a.net_timeout = Some(take_duration(&mut args, "--net-timeout")?)
                    }
                    "--net-retries" => {
                        a.net_retries = Some(parse_num(
                            take_value(&mut args, "--net-retries")?,
                            "--net-retries",
                        )?)
                    }
                    "--heartbeat-interval" => {
                        a.heartbeat_interval =
                            Some(take_duration(&mut args, "--heartbeat-interval")?)
                    }
                    "--status-interval" => {
                        a.status_interval = Some(take_duration(&mut args, "--status-interval")?)
                    }
                    "--chaos-seed" => {
                        a.chaos_seed = Some(parse_num(
                            take_value(&mut args, "--chaos-seed")?,
                            "--chaos-seed",
                        )?)
                    }
                    "--chaos-profile" => {
                        a.chaos_profile = Some(take_value(&mut args, "--chaos-profile")?)
                    }
                    "--trace" => a.trace = Some(take_value(&mut args, "--trace")?),
                    "--trace-sample" => {
                        a.trace_sample = Some(parse_num(
                            take_value(&mut args, "--trace-sample")?,
                            "--trace-sample",
                        )?)
                    }
                    "--status" => a.status = true,
                    "--superkmer" => a.superkmer = true,
                    "--minimizer-len" => {
                        a.minimizer_len = Some(parse_num(
                            take_value(&mut args, "--minimizer-len")?,
                            "--minimizer-len",
                        )?)
                    }
                    "--recover" => a.recover = true,
                    "--max-respawns" => {
                        a.max_respawns = Some(parse_num(
                            take_value(&mut args, "--max-respawns")?,
                            "--max-respawns",
                        )?)
                    }
                    "--epoch" if hidden => {
                        epoch = parse_num(take_value(&mut args, "--epoch")?, "--epoch")?
                    }
                    "--rank" if hidden => {
                        rank = Some(parse_num(take_value(&mut args, "--rank")?, "--rank")?)
                    }
                    "--rendezvous" if hidden => {
                        rendezvous = Some(take_value(&mut args, "--rendezvous")?)
                    }
                    "--supervisor" if hidden => {
                        supervisor = Some(take_value(&mut args, "--supervisor")?)
                    }
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("{sub}: unknown argument {other:?}")),
                }
            }
            a.input = input.ok_or_else(|| format!("{sub}: missing input file"))?;
            if a.k == 0 || a.k > 64 {
                return Err(format!("{sub}: k must be in 1..=64"));
            }
            if a.ranks == 0 {
                return Err(format!("{sub}: --ranks must be at least 1"));
            }
            check_superkmer(&sub, a.superkmer, a.minimizer_len, a.k)?;
            if a.recover {
                if a.trace.is_some() {
                    return Err(format!(
                        "{sub}: --recover and --trace are mutually exclusive \
                         (the flight recorder cannot splice respawned-rank timelines)"
                    ));
                }
                if a.backend == NetBackend::Loopback {
                    return Err(format!(
                        "{sub}: --recover requires the tcp backend \
                         (loopback ranks share one process and cannot be respawned)"
                    ));
                }
            } else if a.max_respawns.is_some() {
                return Err(format!("{sub}: --max-respawns requires --recover"));
            }
            if hidden {
                let rank = rank.ok_or("worker: --rank is required")?;
                if rank >= a.ranks {
                    return Err(format!("worker: rank {rank} out of range 0..{}", a.ranks));
                }
                Ok(Command::Worker(WorkerArgs {
                    rank,
                    rendezvous: rendezvous.ok_or("worker: --rendezvous is required")?,
                    supervisor,
                    epoch,
                    job: a,
                }))
            } else {
                Ok(Command::Launch(a))
            }
        }
        "serve" | "serve-worker" => {
            let hidden = sub == "serve-worker";
            let mut input = None;
            let mut a = ServeArgs {
                input: String::new(),
                k: 31,
                ranks: 4,
                canonical: false,
                dir: String::new(),
                net_timeout: None,
                heartbeat_interval: None,
                status_interval: None,
                status: false,
                chaos_seed: None,
                chaos_profile: None,
                replicas: 1,
            };
            let mut rank = None;
            let mut supervisor = None;
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "-k" => a.k = parse_num(take_value(&mut args, "-k")?, "-k")?,
                    "--ranks" => a.ranks = parse_num(take_value(&mut args, "--ranks")?, "--ranks")?,
                    "--canonical" => a.canonical = true,
                    "--dir" => a.dir = take_value(&mut args, "--dir")?,
                    "--net-timeout" => {
                        a.net_timeout = Some(take_duration(&mut args, "--net-timeout")?)
                    }
                    "--heartbeat-interval" => {
                        a.heartbeat_interval =
                            Some(take_duration(&mut args, "--heartbeat-interval")?)
                    }
                    "--status-interval" => {
                        a.status_interval = Some(take_duration(&mut args, "--status-interval")?)
                    }
                    "--status" => a.status = true,
                    "--chaos-seed" => {
                        a.chaos_seed = Some(parse_num(
                            take_value(&mut args, "--chaos-seed")?,
                            "--chaos-seed",
                        )?)
                    }
                    "--chaos-profile" => {
                        a.chaos_profile = Some(take_value(&mut args, "--chaos-profile")?)
                    }
                    "--replicas" => {
                        a.replicas = parse_num(take_value(&mut args, "--replicas")?, "--replicas")?
                    }
                    "--rank" if hidden => {
                        rank = Some(parse_num(take_value(&mut args, "--rank")?, "--rank")?)
                    }
                    "--supervisor" if hidden => {
                        supervisor = Some(take_value(&mut args, "--supervisor")?)
                    }
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("{sub}: unknown argument {other:?}")),
                }
            }
            a.input = input.ok_or_else(|| format!("{sub}: missing input file"))?;
            if a.k == 0 || a.k > 64 {
                return Err(format!("{sub}: k must be in 1..=64"));
            }
            if a.ranks == 0 {
                return Err(format!("{sub}: --ranks must be at least 1"));
            }
            if a.replicas == 0 || a.replicas > a.ranks {
                return Err(format!(
                    "{sub}: --replicas must be in 1..={} (the server count)",
                    a.ranks
                ));
            }
            if a.dir.is_empty() {
                return Err(format!("{sub}: --dir is required (shard + rendezvous directory)"));
            }
            if hidden {
                let rank = rank.ok_or("serve-worker: --rank is required")?;
                if rank >= a.ranks {
                    return Err(format!(
                        "serve-worker: rank {rank} out of range 0..{}",
                        a.ranks
                    ));
                }
                Ok(Command::ServeWorker(ServeWorkerArgs { rank, supervisor, job: a }))
            } else {
                Ok(Command::Serve(a))
            }
        }
        "query" => {
            let mut keys = None;
            let mut a = QueryArgs {
                keys: String::new(),
                k: 31,
                ranks: 4,
                dir: None,
                serve_reads: None,
                canonical: false,
                batch: 1024,
                output: None,
                metrics: None,
                histogram: None,
                top: None,
                net_timeout: None,
            };
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "-k" => a.k = parse_num(take_value(&mut args, "-k")?, "-k")?,
                    "--ranks" => a.ranks = parse_num(take_value(&mut args, "--ranks")?, "--ranks")?,
                    "--dir" => a.dir = Some(take_value(&mut args, "--dir")?),
                    "--serve-reads" => {
                        a.serve_reads = Some(take_value(&mut args, "--serve-reads")?)
                    }
                    "--canonical" => a.canonical = true,
                    "--batch" => a.batch = parse_num(take_value(&mut args, "--batch")?, "--batch")?,
                    "-o" | "--output" => a.output = Some(take_value(&mut args, "-o")?),
                    "--metrics" => a.metrics = Some(take_value(&mut args, "--metrics")?),
                    "--histogram" => {
                        a.histogram =
                            Some(parse_num(take_value(&mut args, "--histogram")?, "--histogram")?)
                    }
                    "--top" => a.top = Some(parse_num(take_value(&mut args, "--top")?, "--top")?),
                    "--net-timeout" => {
                        a.net_timeout = Some(take_duration(&mut args, "--net-timeout")?)
                    }
                    other if !other.starts_with('-') && keys.is_none() => {
                        keys = Some(other.to_string())
                    }
                    other => return Err(format!("query: unknown argument {other:?}")),
                }
            }
            a.keys = keys.ok_or("query: missing keys file (TSV, first column = k-mer)")?;
            if a.k == 0 || a.k > 64 {
                return Err("query: k must be in 1..=64".into());
            }
            if a.ranks == 0 {
                return Err("query: --ranks must be at least 1".into());
            }
            if a.batch == 0 {
                return Err("query: --batch must be at least 1".into());
            }
            match (&a.dir, &a.serve_reads) {
                (Some(_), Some(_)) => {
                    return Err("query: --dir and --serve-reads are mutually exclusive".into())
                }
                (None, None) => {
                    return Err(
                        "query: need --dir DIR (join a running serve) or --serve-reads READS (in-process loopback)"
                            .into(),
                    )
                }
                _ => {}
            }
            Ok(Command::Query(a))
        }
        "model" => {
            let mut a = ModelArgs { dataset: String::new(), nodes: 32 };
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--dataset" => a.dataset = take_value(&mut args, "--dataset")?,
                    "--nodes" => a.nodes = parse_num(take_value(&mut args, "--nodes")?, "--nodes")?,
                    other => return Err(format!("model: unknown argument {other:?}")),
                }
            }
            if a.dataset.is_empty() {
                return Err("model: --dataset is required".into());
            }
            Ok(Command::Model(a))
        }
        "compare" => {
            let mut input = None;
            let mut a = CompareArgs { input: String::new(), k: 31, nodes: 8, ppn: 24 };
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "-k" => a.k = parse_num(take_value(&mut args, "-k")?, "-k")?,
                    "--nodes" => a.nodes = parse_num(take_value(&mut args, "--nodes")?, "--nodes")?,
                    "--ppn" => a.ppn = parse_num(take_value(&mut args, "--ppn")?, "--ppn")?,
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("compare: unknown argument {other:?}")),
                }
            }
            a.input = input.ok_or("compare: missing input file")?;
            Ok(Command::Compare(a))
        }
        "analyze" => {
            let mut a = AnalyzeArgs { inputs: Vec::new(), out: None, diff: false, threshold: 1.5 };
            let mut args = it;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--out" => a.out = Some(take_value(&mut args, "--out")?),
                    "--diff" => a.diff = true,
                    "--threshold" => {
                        let t: f64 =
                            parse_num(take_value(&mut args, "--threshold")?, "--threshold")?;
                        if !t.is_finite() || t < 1.0 {
                            return Err("analyze: --threshold must be a ratio >= 1.0".into());
                        }
                        a.threshold = t;
                    }
                    other if !other.starts_with('-') => a.inputs.push(other.to_string()),
                    other => return Err(format!("analyze: unknown argument {other:?}")),
                }
            }
            if a.inputs.is_empty() {
                return Err("analyze: missing input file(s)".into());
            }
            if a.diff && a.inputs.len() != 2 {
                return Err("analyze: --diff needs exactly two artifacts (baseline current)".into());
            }
            Ok(Command::Analyze(a))
        }
        "help" | "-h" | "--help" => Ok(Command::Help),
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        std::iter::once("dakc".to_string())
            .chain(s.split_whitespace().map(String::from))
            .collect()
    }

    #[test]
    fn parse_count_full() {
        let cmd = parse_args(argv("count in.fq -k 21 --threads 4 --canonical --l3 1024 -o out.tsv --min-count 2")).unwrap();
        let Command::Count(a) = cmd else { panic!("not count") };
        assert_eq!(a.input, "in.fq");
        assert_eq!(a.k, 21);
        assert_eq!(a.threads, 4);
        assert!(a.canonical);
        assert_eq!(a.l3, Some(1024));
        assert_eq!(a.output.as_deref(), Some("out.tsv"));
        assert_eq!(a.min_count, 2);
    }

    #[test]
    fn parse_count_defaults() {
        let cmd = parse_args(argv("count reads.fa")).unwrap();
        let Command::Count(a) = cmd else { panic!() };
        assert_eq!(a.k, 31);
        assert!(!a.canonical);
        assert_eq!(a.min_count, 1);
    }

    #[test]
    fn count_requires_input() {
        assert!(parse_args(argv("count -k 31")).is_err());
    }

    #[test]
    fn count_rejects_bad_k() {
        assert!(parse_args(argv("count in.fq -k 0")).is_err());
        assert!(parse_args(argv("count in.fq -k 65")).is_err());
        assert!(parse_args(argv("count in.fq -k banana")).is_err());
    }

    #[test]
    fn parse_generate() {
        let cmd =
            parse_args(argv("generate --dataset SRR28206931 --scale-shift 14 --seed 7")).unwrap();
        let Command::Generate(a) = cmd else { panic!() };
        assert_eq!(a.dataset, "SRR28206931");
        assert_eq!(a.scale_shift, 14);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parse_simulate_protocols() {
        for (txt, proto) in [("1d", Protocol::OneD), ("2D", Protocol::TwoD), ("3d", Protocol::ThreeD)] {
            let cmd =
                parse_args(argv(&format!("simulate r.fq --protocol {txt} --nodes 4"))).unwrap();
            let Command::Simulate(a) = cmd else { panic!() };
            assert_eq!(a.protocol, proto);
            assert_eq!(a.nodes, 4);
        }
    }

    #[test]
    fn parse_count_trace_metrics() {
        let cmd = parse_args(argv("count in.fq --trace t.json --metrics m.json")).unwrap();
        let Command::Count(a) = cmd else { panic!() };
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
    }

    #[test]
    fn parse_simulate_observability_flags() {
        let cmd =
            parse_args(argv("simulate r.fq --trace t.json --metrics m.json --timeline")).unwrap();
        let Command::Simulate(a) = cmd else { panic!() };
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        assert!(a.timeline);
        let Command::Simulate(b) = parse_args(argv("simulate r.fq")).unwrap() else { panic!() };
        assert!(b.trace.is_none() && !b.timeline);
    }

    #[test]
    fn parse_trace_sample() {
        let Command::Simulate(a) =
            parse_args(argv("simulate r.fq --trace t.json --trace-sample 64")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.trace_sample, Some(64));
        let Command::Count(c) = parse_args(argv("count r.fq --trace-sample 1")).unwrap() else {
            panic!()
        };
        assert_eq!(c.trace_sample, Some(1));
        assert!(parse_args(argv("simulate r.fq --trace-sample zero")).is_err());
    }

    #[test]
    fn parse_route_batch() {
        let Command::Count(a) = parse_args(argv("count r.fq --route-batch 256")).unwrap() else {
            panic!()
        };
        assert_eq!(a.route_batch, Some(256));
        let Command::Count(b) = parse_args(argv("count r.fq")).unwrap() else { panic!() };
        assert_eq!(b.route_batch, None);
        assert!(parse_args(argv("count r.fq --route-batch lots")).is_err());
    }

    #[test]
    fn parse_superkmer_flags() {
        let Command::Count(a) =
            parse_args(argv("count r.fq -k 21 --superkmer --minimizer-len 9")).unwrap()
        else {
            panic!()
        };
        assert!(a.superkmer);
        assert_eq!(a.minimizer_len, Some(9));
        let Command::Count(b) = parse_args(argv("count r.fq --superkmer")).unwrap() else {
            panic!()
        };
        assert!(b.superkmer && b.minimizer_len.is_none());
        let Command::Launch(l) =
            parse_args(argv("launch r.fq --ranks 2 --superkmer --minimizer-len 5")).unwrap()
        else {
            panic!()
        };
        assert!(l.superkmer);
        assert_eq!(l.minimizer_len, Some(5));
        let Command::Simulate(s) = parse_args(argv("simulate r.fq --superkmer")).unwrap() else {
            panic!()
        };
        assert!(s.superkmer);
        // The worker inherits the job's flags from the launcher.
        let Command::Worker(w) = parse_args(argv(
            "worker r.fq --rank 0 --ranks 2 --rendezvous /tmp/rv --superkmer --minimizer-len 11",
        ))
        .unwrap() else {
            panic!()
        };
        assert!(w.job.superkmer);
        assert_eq!(w.job.minimizer_len, Some(11));
        // --minimizer-len without --superkmer is a mistake, not a no-op.
        assert!(parse_args(argv("count r.fq --minimizer-len 7")).is_err());
        // m must fit the k-mer window.
        assert!(parse_args(argv("count r.fq -k 21 --superkmer --minimizer-len 22")).is_err());
        assert!(parse_args(argv("count r.fq -k 21 --superkmer --minimizer-len 0")).is_err());
        // Default m = 7 needs k >= 7.
        assert!(parse_args(argv("count r.fq -k 5 --superkmer")).is_err());
        assert!(parse_args(argv("count r.fq -k 5 --superkmer --minimizer-len 3")).is_ok());
    }

    #[test]
    fn parse_model_and_help() {
        assert!(matches!(parse_args(argv("help")).unwrap(), Command::Help));
        let Command::Model(a) = parse_args(argv("model --dataset \"Synthetic\" --nodes 4")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.nodes, 4);
    }

    #[test]
    fn parse_compare() {
        let Command::Compare(a) = parse_args(argv("compare r.fq --nodes 4 --ppn 6 -k 21")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.nodes, 4);
        assert_eq!(a.ppn, 6);
        assert_eq!(a.k, 21);
    }

    #[test]
    fn parse_launch_full_and_defaults() {
        let cmd = parse_args(argv(
            "launch in.fq --ranks 8 --backend loopback -k 33 --canonical --l3 512 --min-count 2 -o out.tsv --metrics m.json",
        ))
        .unwrap();
        let Command::Launch(a) = cmd else { panic!("not launch") };
        assert_eq!(a.input, "in.fq");
        assert_eq!(a.ranks, 8);
        assert_eq!(a.backend, NetBackend::Loopback);
        assert_eq!(a.k, 33);
        assert!(a.canonical);
        assert_eq!(a.l3, Some(512));
        assert_eq!(a.min_count, 2);
        assert_eq!(a.output.as_deref(), Some("out.tsv"));
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        let Command::Launch(b) = parse_args(argv("launch in.fq")).unwrap() else { panic!() };
        assert_eq!(b.ranks, 4);
        assert_eq!(b.backend, NetBackend::Tcp);
    }

    #[test]
    fn launch_rejects_bad_args() {
        assert!(parse_args(argv("launch")).is_err());
        assert!(parse_args(argv("launch in.fq --ranks 0")).is_err());
        assert!(parse_args(argv("launch in.fq --backend carrier-pigeon")).is_err());
        // Worker-only flags are hidden from `launch`.
        assert!(parse_args(argv("launch in.fq --rank 0")).is_err());
    }

    #[test]
    fn parse_worker() {
        let cmd =
            parse_args(argv("worker in.fq --rank 2 --ranks 4 --rendezvous /tmp/rv")).unwrap();
        let Command::Worker(w) = cmd else { panic!("not worker") };
        assert_eq!(w.rank, 2);
        assert_eq!(w.rendezvous, "/tmp/rv");
        assert_eq!(w.job.ranks, 4);
        assert!(parse_args(argv("worker in.fq --ranks 4 --rendezvous /tmp/rv")).is_err());
        assert!(parse_args(argv("worker in.fq --rank 4 --ranks 4 --rendezvous /tmp/rv")).is_err());
        assert!(parse_args(argv("worker in.fq --rank 0 --ranks 4")).is_err());
    }

    #[test]
    fn parse_launch_fault_tolerance_flags() {
        let cmd = parse_args(argv(
            "launch in.fq --net-timeout 2.5 --net-retries 3 --chaos-seed 42 --chaos-profile drop=5,die:2@100",
        ))
        .unwrap();
        let Command::Launch(a) = cmd else { panic!("not launch") };
        assert_eq!(a.net_timeout, Some(Duration::from_millis(2500)));
        assert_eq!(a.net_retries, Some(3));
        assert_eq!(a.chaos_seed, Some(42));
        assert_eq!(a.chaos_profile.as_deref(), Some("drop=5,die:2@100"));
        let Command::Launch(b) = parse_args(argv("launch in.fq")).unwrap() else { panic!() };
        assert_eq!(b.net_timeout, None);
        assert_eq!(b.net_retries, None);
        assert_eq!(b.chaos_seed, None);
        assert_eq!(b.chaos_profile, None);
        assert!(parse_args(argv("launch in.fq --net-timeout 0")).is_err());
        assert!(parse_args(argv("launch in.fq --net-timeout -1")).is_err());
        assert!(parse_args(argv("launch in.fq --net-retries many")).is_err());
        // The supervisor address is wired by `launch`, not user-settable.
        assert!(parse_args(argv("launch in.fq --supervisor 127.0.0.1:9")).is_err());
    }

    #[test]
    fn parse_launch_recover_flags() {
        let cmd = parse_args(argv("launch in.fq --ranks 4 --backend tcp --recover --max-respawns 5"))
            .unwrap();
        let Command::Launch(a) = cmd else { panic!("not launch") };
        assert!(a.recover);
        assert_eq!(a.max_respawns, Some(5));
        let Command::Launch(b) = parse_args(argv("launch in.fq")).unwrap() else { panic!() };
        assert!(!b.recover);
        assert_eq!(b.max_respawns, None);
        // A respawn budget without the policy is a contradiction.
        assert!(parse_args(argv("launch in.fq --max-respawns 2")).is_err());
        // The flight recorder cannot splice respawned-rank timelines.
        assert!(parse_args(argv("launch in.fq --recover --trace t.json")).is_err());
        // Loopback ranks share one process: nothing to respawn.
        assert!(parse_args(argv("launch in.fq --backend loopback --recover")).is_err());
        // `--epoch` is wired by the launcher, not user-settable.
        assert!(parse_args(argv("launch in.fq --recover --epoch 1")).is_err());
        // The worker receives the forwarded recovery flags.
        let Command::Worker(w) = parse_args(argv(
            "worker in.fq --rank 0 --ranks 2 --rendezvous /tmp/rv --recover --epoch 3",
        ))
        .unwrap() else {
            panic!()
        };
        assert!(w.job.recover);
        assert_eq!(w.epoch, 3);
    }

    #[test]
    fn parse_serve_replicas() {
        let Command::Serve(a) =
            parse_args(argv("serve in.fq --ranks 4 --replicas 2 --dir /tmp/svc")).unwrap()
        else {
            panic!("not serve")
        };
        assert_eq!(a.replicas, 2);
        let Command::Serve(b) = parse_args(argv("serve in.fq --dir /tmp/svc")).unwrap() else {
            panic!()
        };
        assert_eq!(b.replicas, 1);
        assert!(parse_args(argv("serve in.fq --dir /tmp/svc --replicas 0")).is_err());
        // More replicas than ranks would wrap a shard back onto its owner.
        assert!(parse_args(argv("serve in.fq --ranks 3 --replicas 4 --dir /tmp/svc")).is_err());
    }

    #[test]
    fn parse_launch_trace_and_status_flags() {
        let cmd = parse_args(argv(
            "launch in.fq --ranks 4 --trace net.json --trace-sample 16 --status",
        ))
        .unwrap();
        let Command::Launch(a) = cmd else { panic!("not launch") };
        assert_eq!(a.trace.as_deref(), Some("net.json"));
        assert_eq!(a.trace_sample, Some(16));
        assert!(a.status);
        let Command::Launch(b) = parse_args(argv("launch in.fq")).unwrap() else { panic!() };
        assert_eq!(b.trace, None);
        assert_eq!(b.trace_sample, None);
        assert!(!b.status);
        assert!(parse_args(argv("launch in.fq --trace-sample every")).is_err());
        // The worker sees the same trace flags the launcher forwards.
        let Command::Worker(w) = parse_args(argv(
            "worker in.fq --rank 0 --ranks 2 --rendezvous /tmp/rv --trace net.json",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(w.job.trace.as_deref(), Some("net.json"));
    }

    #[test]
    fn parse_worker_supervisor() {
        let cmd = parse_args(argv(
            "worker in.fq --rank 1 --ranks 4 --rendezvous /tmp/rv --supervisor 127.0.0.1:7070 --net-timeout 3",
        ))
        .unwrap();
        let Command::Worker(w) = cmd else { panic!("not worker") };
        assert_eq!(w.supervisor.as_deref(), Some("127.0.0.1:7070"));
        assert_eq!(w.job.net_timeout, Some(Duration::from_secs(3)));
        let Command::Worker(w2) =
            parse_args(argv("worker in.fq --rank 0 --ranks 2 --rendezvous /tmp/rv")).unwrap()
        else {
            panic!()
        };
        assert_eq!(w2.supervisor, None);
    }

    #[test]
    fn parse_analyze() {
        let Command::Analyze(a) =
            parse_args(argv("analyze trace.json metrics.json --out results/a.json")).unwrap()
        else {
            panic!("not analyze")
        };
        assert_eq!(a.inputs, ["trace.json", "metrics.json"]);
        assert_eq!(a.out.as_deref(), Some("results/a.json"));
        assert!(!a.diff);
        assert_eq!(a.threshold, 1.5);
        let Command::Analyze(d) =
            parse_args(argv("analyze --diff base.json cur.json --threshold 2.0")).unwrap()
        else {
            panic!()
        };
        assert!(d.diff);
        assert_eq!(d.threshold, 2.0);
        assert!(parse_args(argv("analyze")).is_err());
        assert!(parse_args(argv("analyze --diff one.json")).is_err());
        assert!(parse_args(argv("analyze t.json --threshold 0.5")).is_err());
        assert!(parse_args(argv("analyze t.json --frobnicate")).is_err());
    }

    #[test]
    fn parse_durations() {
        assert_eq!(parse_duration("500ms", "-t").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("5s", "-t").unwrap(), Duration::from_secs(5));
        assert_eq!(parse_duration("2.5s", "-t").unwrap(), Duration::from_millis(2500));
        assert_eq!(parse_duration("1m", "-t").unwrap(), Duration::from_secs(60));
        // Bare numbers keep meaning seconds.
        assert_eq!(parse_duration("3", "-t").unwrap(), Duration::from_secs(3));
        assert_eq!(parse_duration("0.25", "-t").unwrap(), Duration::from_millis(250));
        for bad in ["", "ms", "fast", "-1s", "0", "0ms", "1h"] {
            assert!(parse_duration(bad, "-t").is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_launch_duration_flags() {
        let cmd = parse_args(argv(
            "launch in.fq --net-timeout 500ms --heartbeat-interval 50ms --status-interval 2s",
        ))
        .unwrap();
        let Command::Launch(a) = cmd else { panic!("not launch") };
        assert_eq!(a.net_timeout, Some(Duration::from_millis(500)));
        assert_eq!(a.heartbeat_interval, Some(Duration::from_millis(50)));
        assert_eq!(a.status_interval, Some(Duration::from_secs(2)));
        assert!(parse_args(argv("launch in.fq --net-timeout 0")).is_err());
        assert!(parse_args(argv("launch in.fq --net-timeout -1")).is_err());
        assert!(parse_args(argv("launch in.fq --heartbeat-interval soon")).is_err());
    }

    #[test]
    fn parse_count_output_shard() {
        let Command::Count(a) =
            parse_args(argv("count r.fq -k 21 --output-shard t.dakshard")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.output_shard.as_deref(), Some("t.dakshard"));
        let Command::Count(b) = parse_args(argv("count r.fq")).unwrap() else { panic!() };
        assert_eq!(b.output_shard, None);
    }

    #[test]
    fn parse_serve_and_worker() {
        let cmd = parse_args(argv(
            "serve in.fq --dir /tmp/sv --ranks 4 -k 21 --canonical --net-timeout 10s --status",
        ))
        .unwrap();
        let Command::Serve(a) = cmd else { panic!("not serve") };
        assert_eq!(a.input, "in.fq");
        assert_eq!(a.dir, "/tmp/sv");
        assert_eq!(a.ranks, 4);
        assert_eq!(a.k, 21);
        assert!(a.canonical && a.status);
        assert_eq!(a.net_timeout, Some(Duration::from_secs(10)));
        // --dir is mandatory; rank identity is worker-only.
        assert!(parse_args(argv("serve in.fq")).is_err());
        assert!(parse_args(argv("serve in.fq --dir /tmp/sv --rank 0")).is_err());
        let Command::ServeWorker(w) = parse_args(argv(
            "serve-worker in.fq --dir /tmp/sv --ranks 4 --rank 2 --supervisor 127.0.0.1:9 --chaos-profile die:2@50",
        ))
        .unwrap() else {
            panic!("not serve-worker")
        };
        assert_eq!(w.rank, 2);
        assert_eq!(w.supervisor.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(w.job.chaos_profile.as_deref(), Some("die:2@50"));
        assert!(parse_args(argv("serve-worker in.fq --dir /tmp/sv --ranks 4")).is_err());
        assert!(parse_args(argv("serve-worker in.fq --dir /tmp/sv --ranks 4 --rank 4")).is_err());
    }

    #[test]
    fn parse_query() {
        let cmd = parse_args(argv(
            "query keys.tsv --dir /tmp/sv --ranks 4 -k 21 --batch 2048 -o out.tsv --metrics m.json --histogram 8 --top 5",
        ))
        .unwrap();
        let Command::Query(a) = cmd else { panic!("not query") };
        assert_eq!(a.keys, "keys.tsv");
        assert_eq!(a.dir.as_deref(), Some("/tmp/sv"));
        assert_eq!(a.batch, 2048);
        assert_eq!(a.histogram, Some(8));
        assert_eq!(a.top, Some(5));
        let Command::Query(b) =
            parse_args(argv("query keys.tsv --serve-reads in.fq --canonical")).unwrap()
        else {
            panic!()
        };
        assert_eq!(b.serve_reads.as_deref(), Some("in.fq"));
        assert!(b.canonical);
        assert_eq!(b.batch, 1024);
        // One of --dir / --serve-reads, not both, not neither.
        assert!(parse_args(argv("query keys.tsv")).is_err());
        assert!(parse_args(argv("query keys.tsv --dir d --serve-reads r.fq")).is_err());
        assert!(parse_args(argv("query keys.tsv --dir d --batch 0")).is_err());
        assert!(parse_args(argv("query --dir d")).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(parse_args(argv("frobnicate")).is_err());
        assert!(parse_args(vec!["dakc".into()]).is_err());
    }
}
