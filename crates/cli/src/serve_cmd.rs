//! `dakc serve`, the hidden `serve-worker`, and `dakc query` — the
//! persistent, sharded k-mer query service over dakc-net.
//!
//! `serve` is shaped like `launch --backend tcp`: it spawns one
//! `serve-worker` process per server rank plus the heartbeat
//! supervisor. Each worker counts its partition over a private build
//! mesh (the same Parse → Drain → Count pipeline as `launch`, stopped
//! at the quiescent hand-off), persists its owner-hash shard under
//! `DIR/shards/`, reloads it through the validated loader, and goes
//! resident in an `S + 1`-rank serve mesh whose last rank is reserved
//! for one `dakc query` client. Worker heartbeats keep flowing through
//! the serve loop, so the supervisor's staleness check doubles as the
//! service health check.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dakc::{count_partition, DakcConfig, Partition, RunOpts};
use dakc_kmer::{CanonicalMode, KmerWord};
use dakc_net::{
    ChaosConfig, ChaosTransport, HeartbeatSender, HeartbeatState, NetTuning, Supervisor,
    TcpTransport, Transport,
};
use dakc_serve::{
    build_shards, serve_shards, shard_path, start_cluster, write_shard, LookupResult, QueryClient,
    ServeOpts, Shard,
};
use dakc_sim::telemetry::MetricsRegistry;
use dakc_sort::RadixKey;

use crate::args::{QueryArgs, ServeArgs, ServeWorkerArgs};
use crate::commands::{load_reads, out_writer, print_flow_latencies, supervise, teardown};

/// Default heartbeat period for serve workers (matches `launch`).
const HEARTBEAT_DEFAULT: Duration = Duration::from_millis(100);

/// How long a resident serve mesh waits for its query client to join
/// when `--net-timeout` is not given. Rendezvous blocks until the
/// client's endpoint appears, and "no query yet" is the service's idle
/// state, not a fault — so the default is generous where the build
/// mesh's is tight.
const CLIENT_WAIT_DEFAULT: Duration = Duration::from_secs(3600);

fn net_tuning(timeout: Option<Duration>) -> NetTuning {
    match timeout {
        Some(d) => NetTuning::default().with_timeout(d),
        None => NetTuning::default(),
    }
}

/// The engine config of a serve job. Every worker must derive the
/// identical config (owner hashing and canonicality are part of the
/// shard contract), so both the launcher's hint line and the workers
/// funnel through here.
fn serve_config(k: usize, canonical: bool) -> DakcConfig {
    let mut cfg = DakcConfig::scaled_defaults(k);
    cfg.canonical = if canonical {
        CanonicalMode::Canonical
    } else {
        CanonicalMode::Forward
    };
    cfg
}

/// `dakc serve`: spawn one `serve-worker` per rank and supervise the
/// resident mesh until the query session ends (or a rank dies, which
/// tears the service down with the dead rank named).
pub fn serve(a: ServeArgs) -> Result<(), String> {
    // Fail on an unreadable input before spawning N processes.
    load_reads(&a.input)?;
    let dir = PathBuf::from(&a.dir);
    // Stale rank*.addr files from a previous service would wedge the
    // rendezvous; shards are rebuilt (and overwritten) every launch.
    for mesh in ["build", "serve"] {
        let _ = std::fs::remove_dir_all(dir.join(mesh));
    }
    for sub in ["build", "serve", "shards"] {
        let d = dir.join(sub);
        std::fs::create_dir_all(&d).map_err(|e| format!("{}: {e}", d.display()))?;
    }
    let tuning = net_tuning(a.net_timeout);
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let (mut sup, sup_addr) =
        Supervisor::bind(a.ranks).map_err(|e| format!("supervisor: {e}"))?;
    let launched = Instant::now();
    let mut children: Vec<Option<std::process::Child>> = Vec::new();
    for rank in 0..a.ranks {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve-worker")
            .arg(&a.input)
            .args(["--rank", &rank.to_string()])
            .args(["--ranks", &a.ranks.to_string()])
            .args(["--dir", &a.dir])
            .args(["--supervisor", &sup_addr.to_string()])
            .args(["-k", &a.k.to_string()]);
        if a.canonical {
            cmd.arg("--canonical");
        }
        if let Some(t) = a.net_timeout {
            cmd.args(["--net-timeout", &format!("{}ms", t.as_millis().max(1))]);
        }
        if let Some(h) = a.heartbeat_interval {
            cmd.args(["--heartbeat-interval", &format!("{}ms", h.as_millis().max(1))]);
        }
        if let Some(s) = a.chaos_seed {
            cmd.args(["--chaos-seed", &s.to_string()]);
        }
        if let Some(p) = &a.chaos_profile {
            cmd.args(["--chaos-profile", p]);
        }
        if a.replicas > 1 {
            cmd.args(["--replicas", &a.replicas.to_string()]);
        }
        match cmd.spawn() {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                teardown(&mut children);
                return Err(format!("spawn serve rank {rank}: {e}"));
            }
        }
    }
    eprintln!(
        "serve: {} rank(s) counting {} (k = {}{}) into {}{}",
        a.ranks,
        a.input,
        a.k,
        if a.canonical { ", canonical" } else { "" },
        a.dir,
        if a.replicas > 1 {
            format!(", {} replica(s) per shard", a.replicas)
        } else {
            String::new()
        },
    );
    eprintln!(
        "serve: query with: dakc query KEYS.tsv --dir {} --ranks {} -k {}",
        a.dir, a.ranks, a.k
    );
    let status = a
        .status
        .then(|| a.status_interval.unwrap_or(Duration::from_millis(500)));
    supervise(&mut sup, &mut children, &tuning, launched, status, None)
}

/// One server rank of a TCP serve mesh (the hidden `serve-worker`
/// subcommand): build the shard collectively, persist + reload it, then
/// serve until the client shuts the session down.
pub fn serve_worker(w: ServeWorkerArgs) -> Result<(), String> {
    let a = &w.job;
    let rank = w.rank;
    // Heartbeat channel back to the serve supervisor. As in `worker`,
    // the mute flag is shared with chaos `freeze` injection so a frozen
    // serving rank goes silent — the hang signature the supervisor's
    // staleness check exists to catch.
    let mute = Arc::new(AtomicBool::new(false));
    let monitor = Arc::new(HeartbeatState::new());
    let mut sup_addr = None;
    let _hb = match &w.supervisor {
        Some(addr) => {
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|e| format!("rank {rank}: --supervisor {addr}: {e}"))?;
            sup_addr = Some(addr);
            Some(
                HeartbeatSender::spawn(
                    addr,
                    rank,
                    Arc::clone(&monitor),
                    a.heartbeat_interval.unwrap_or(HEARTBEAT_DEFAULT),
                    Arc::clone(&mute),
                )
                .map_err(|e| format!("rank {rank}: supervisor dial: {e}"))?,
            )
        }
        None => None,
    };
    let reads = load_reads(&a.input)?;
    let cfg = serve_config(a.k, a.canonical);
    // Chaos targets the serve loop (the failure mode under test is a
    // rank dying mid-service); the build mesh runs clean.
    let chaos = match &a.chaos_profile {
        Some(p) => ChaosConfig::parse(p, a.chaos_seed.unwrap_or(0), rank)
            .map_err(|e| format!("rank {rank}: --chaos-profile: {e}"))?,
        None => ChaosConfig::off(),
    };
    if a.k <= 32 {
        worker_run::<u64>(rank, a, &reads, &cfg, chaos, monitor, mute, sup_addr)
    } else {
        worker_run::<u128>(rank, a, &reads, &cfg, chaos, monitor, mute, sup_addr)
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_run<W: KmerWord + RadixKey + Send>(
    rank: usize,
    a: &ServeArgs,
    reads: &dakc_io::ReadSet,
    cfg: &DakcConfig,
    chaos: ChaosConfig,
    monitor: Arc<HeartbeatState>,
    mute: Arc<AtomicBool>,
    sup_addr: Option<std::net::SocketAddr>,
) -> Result<(), String> {
    let dir = Path::new(&a.dir);
    let tuning = net_tuning(a.net_timeout);
    // On failure, file an obituary naming the rank the typed error
    // points at (ourselves for an injected death, the peer for a
    // disconnect) so the supervisor blames the root cause.
    let fail_net = move |e: dakc_net::NetError| {
        if let Some(addr) = sup_addr {
            let _ = dakc_net::send_obituary(addr, rank, e.rank());
        }
        format!("rank {rank}: {e}")
    };
    let fail_serve = move |e: dakc_serve::ServeError| {
        if let Some(addr) = sup_addr {
            let _ = dakc_net::send_obituary(addr, rank, e.rank());
        }
        format!("rank {rank}: {e}")
    };

    // Phase 1: count this rank's partition over the S-rank build mesh.
    let build = TcpTransport::rendezvous_tuned(
        rank,
        a.ranks,
        &dir.join("build"),
        cfg.c0_bytes,
        tuning.clone(),
    )
    .map_err(fail_net)?;
    let opts = RunOpts {
        tuning: tuning.clone(),
        monitor: Some(Arc::clone(&monitor)),
        trace: false,
        recover: false,
    };
    let Partition { transport, counts, .. } =
        count_partition::<W, _>(reads, cfg, build, &opts).map_err(fail_net)?;
    let mut build = transport;

    // Phase 2: persist the shard, then barrier on the build mesh. The
    // barrier both syncs the teardown (no rank drops its endpoints while
    // a peer is still finishing the hand-off) and — because it runs
    // *after* the write — guarantees every shard file exists before any
    // rank starts loading its replica set from the shared directory.
    let canonical = cfg.canonical == CanonicalMode::Canonical;
    let shards_dir = dir.join("shards");
    let spath = shard_path(&shards_dir, rank, a.ranks);
    write_shard(&spath, &counts, a.k, canonical, rank, a.ranks).map_err(fail_serve)?;
    drop(counts);
    build.barrier().map_err(fail_net)?;
    drop(build);
    // Reload through the validated loader — the serving index is always
    // the on-disk artifact, never the in-memory table it was written
    // from. Under `--replicas R` this rank also loads the shards of its
    // R-1 predecessor owners, so every shard is held by its owner and
    // the owner's R-1 successors.
    let held: Vec<Shard<W>> = (0..a.replicas)
        .map(|j| {
            let owner = (rank + a.ranks - j) % a.ranks;
            Shard::<W>::load(&shard_path(&shards_dir, owner, a.ranks)).map_err(fail_serve)
        })
        .collect::<Result<_, _>>()?;
    eprintln!(
        "rank {rank}: shard ready: {} ({} records{}), joining serve mesh",
        spath.display(),
        held[0].len(),
        if a.replicas > 1 {
            format!(" + {} replica shard(s)", a.replicas - 1)
        } else {
            String::new()
        },
    );

    // Phase 3: go resident. The serve mesh has one extra rank (the
    // query client), and waiting for it to join is the idle state, not
    // a fault — hence the long default connect deadline.
    let mut serve_tuning = tuning.clone();
    serve_tuning.connect_timeout = a.net_timeout.unwrap_or(CLIENT_WAIT_DEFAULT);
    let st = TcpTransport::rendezvous_tuned(
        rank,
        a.ranks + 1,
        &dir.join("serve"),
        cfg.c0_bytes,
        serve_tuning,
    )
    .map_err(fail_net)?;
    let st = ChaosTransport::new(st, chaos).with_freeze_flag(mute);
    let stats =
        serve_shards(&held, st, &ServeOpts { monitor: Some(monitor) }).map_err(fail_serve)?;
    eprintln!(
        "rank {rank}: session over: {} request(s), {} lookup(s), {} hit(s)",
        stats.requests, stats.lookups, stats.hits
    );
    Ok(())
}

/// `dakc query`: batch the keys file against a serve mesh — a running
/// `dakc serve` joined over TCP (`--dir`), or an in-process loopback
/// cluster counted on the spot (`--serve-reads`).
pub fn query(a: QueryArgs) -> Result<(), String> {
    if a.k <= 32 {
        query_w::<u64>(&a)
    } else {
        query_w::<u128>(&a)
    }
}

fn query_w<W: KmerWord + RadixKey + Send + 'static>(a: &QueryArgs) -> Result<(), String> {
    let tuning = net_tuning(a.net_timeout);
    let (summary, metrics) = match &a.dir {
        Some(dir) => {
            let cfg = serve_config(a.k, a.canonical);
            let t = TcpTransport::rendezvous_tuned(
                a.ranks,
                a.ranks + 1,
                &Path::new(dir).join("serve"),
                cfg.c0_bytes,
                tuning.clone(),
            )
            .map_err(|e| format!("query: join {dir}: {e}"))?;
            let mut client =
                QueryClient::<W, _>::connect(t, tuning).map_err(|e| format!("query: {e}"))?;
            let summary = run_session(&mut client, a)?;
            let metrics = client.shutdown().map_err(|e| format!("query: shutdown: {e}"))?;
            (summary, metrics)
        }
        None => {
            let reads_path = a.serve_reads.as_ref().expect("parser demands --dir or --serve-reads");
            let reads = load_reads(reads_path)?;
            let cfg = serve_config(a.k, a.canonical);
            let shards = build_shards::<W>(&reads, &cfg, a.ranks)
                .map_err(|e| format!("query: build {reads_path}: {e}"))?;
            let total: u64 = shards.iter().map(|s| s.len() as u64).sum();
            eprintln!(
                "query: counted {reads_path} into {} loopback shard(s) ({total} records)",
                a.ranks
            );
            let mut cluster = start_cluster::<W>(shards, tuning, None)
                .map_err(|e| format!("query: start cluster: {e}"))?;
            let summary = run_session(&mut cluster.client, a)?;
            let (metrics, outcomes) =
                cluster.shutdown().map_err(|e| format!("query: shutdown: {e}"))?;
            for (rank, outcome) in outcomes.iter().enumerate() {
                if let Err(e) = outcome {
                    eprintln!("query: server rank {rank} ended with: {e}");
                }
            }
            (summary, metrics)
        }
    };
    if let Some(path) = &a.metrics {
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics: {path}");
        print_flow_latencies(&metrics);
        print_query_counters(&metrics);
    }
    if summary.unavailable.is_empty() {
        Ok(())
    } else {
        // Typed partial failure: name every dead shard so a supervisor
        // (or CI grep) can pick the culprit out of the message.
        let ranks: Vec<String> =
            summary.unavailable.iter().map(|r| format!("rank {r}")).collect();
        Err(format!(
            "query: partial results: {} of {} key(s) unanswered, shard(s) on {} unavailable",
            summary.unanswered,
            summary.keys,
            ranks.join(", ")
        ))
    }
}

struct SessionSummary {
    keys: u64,
    unanswered: u64,
    unavailable: BTreeSet<usize>,
}

/// Runs one query session: batched lookups streamed to the output TSV,
/// then the optional aggregate requests. Returns what went unanswered;
/// transport-level errors (as opposed to typed per-shard losses) abort.
fn run_session<W: KmerWord, T: Transport>(
    client: &mut QueryClient<W, T>,
    a: &QueryArgs,
) -> Result<SessionSummary, String> {
    if client.k() != a.k {
        return Err(format!(
            "query: the service counted k = {}, but -k {} was given",
            client.k(),
            a.k
        ));
    }
    let keys = read_keys::<W>(&a.keys, a.k, client.canonical())?;
    eprintln!(
        "query: {} key(s) against {} shard(s) ({} records total{})",
        keys.len(),
        client.servers(),
        client.total_records(),
        if client.canonical() { ", canonical" } else { "" },
    );
    let mut out = out_writer(&a.output)?;
    let mut unavailable: BTreeSet<usize> = BTreeSet::new();
    let mut unanswered = 0u64;
    let mut batches = 0u64;
    let t0 = Instant::now();
    for chunk in keys.chunks(a.batch.max(1)) {
        let outcome = client.lookup_batch(chunk).map_err(|e| format!("query: {e}"))?;
        batches += 1;
        unavailable.extend(outcome.unavailable.iter().copied());
        for (w, r) in chunk.iter().zip(&outcome.results) {
            match r {
                LookupResult::Count(c) => {
                    writeln!(out, "{}\t{c}", w.to_dna_string(a.k)).map_err(|e| e.to_string())?;
                }
                LookupResult::Unavailable { rank } => {
                    unanswered += 1;
                    unavailable.insert(*rank);
                    writeln!(out, "{}\t?", w.to_dna_string(a.k)).map_err(|e| e.to_string())?;
                }
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed().as_secs_f64();
    eprintln!(
        "query: {} lookup(s) in {batches} batch(es) of ≤{} in {:.3} s ({:.0} lookups/s)",
        keys.len(),
        a.batch,
        elapsed,
        keys.len() as f64 / elapsed.max(1e-9),
    );
    if let Some(max) = a.histogram {
        let h = client.histogram(max).map_err(|e| format!("query: histogram: {e}"))?;
        unavailable.extend(h.unavailable.iter().copied());
        eprintln!("count spectrum (multiplicity → distinct k-mers, last bucket = >{max}):");
        for (i, n) in h.value.iter().enumerate() {
            if *n > 0 {
                let label = if i as u32 == max {
                    format!(">{max}")
                } else {
                    (i + 1).to_string()
                };
                eprintln!("  {label}\t{n}");
            }
        }
    }
    if let Some(n) = a.top {
        let t = client.top_n(n).map_err(|e| format!("query: top: {e}"))?;
        unavailable.extend(t.unavailable.iter().copied());
        eprintln!("top {} k-mer(s) by count:", t.value.len());
        for rec in &t.value {
            eprintln!("  {}\t{}", rec.kmer.to_dna_string(a.k), rec.count);
        }
    }
    Ok(SessionSummary { keys: keys.len() as u64, unanswered, unavailable })
}

/// Parses the keys file: TSV (or bare lines) whose first column is a
/// k-mer — `dakc count` output works as-is. Keys are canonicalized when
/// the service counts canonically, so either strand of a key matches.
fn read_keys<W: KmerWord>(path: &str, k: usize, canonical: bool) -> Result<Vec<W>, String> {
    let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut keys = Vec::new();
    for (ln, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let field = line.split('\t').next().unwrap_or("");
        if field.is_empty() {
            continue;
        }
        let parsed = (field.len() == k)
            .then(|| W::from_dna(field.as_bytes(), k))
            .flatten()
            .ok_or_else(|| format!("{path}:{}: {field:?} is not a {k}-mer", ln + 1))?;
        keys.push(if canonical { parsed.canonical(k) } else { parsed });
    }
    if keys.is_empty() {
        return Err(format!("{path}: no keys"));
    }
    Ok(keys)
}

/// Prints the client-side `serve.*` counters under `--metrics`.
fn print_query_counters(m: &MetricsRegistry) {
    let lookups = m.counter("serve.lookups");
    if lookups == 0 {
        return;
    }
    eprintln!(
        "query counters: {lookups} lookup(s), {} batch(es), {} server(s) lost, {} failover(s)",
        m.counter("serve.batches"),
        m.counter("serve.servers_lost"),
        m.counter("serve.failovers"),
    );
}
