//! The `dakc` binary: a thin shim over [`dakc_cli::run`].

fn main() {
    if let Err(e) = dakc_cli::run(std::env::args().collect()) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
