//! Subcommand implementations.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, IsTerminal, Write};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dakc::{
    count_kmers_loopback_opts, count_kmers_sim, count_kmers_sim_traced, count_kmers_threaded_opts,
    run_rank_opts, DakcConfig, NetRun, RunOpts, ThreadedOpts,
};
use dakc_io::{fastx, ReadSet};
use dakc_kmer::{CanonicalMode, KmerWord};
use dakc_model::{CommModel, Model, Workload};
use dakc_net::{
    ChaosConfig, ChaosTransport, HeartbeatSender, HeartbeatState, NetTuning, Supervisor,
    TcpTransport,
};
use dakc_analyze::{CommMatrix, Input};
use dakc_sim::telemetry::{chrome_trace, chrome_trace_with, metrics, Event, MetricsRegistry};
use dakc_sim::{EventKind, MachineConfig, Timeline, TraceSink};
use dakc_sort::RadixKey;

use crate::args::{
    AnalyzeArgs, Command, CompareArgs, CountArgs, GenerateArgs, LaunchArgs, ModelArgs, NetBackend,
    SimulateArgs, SpectrumArgs, WorkerArgs, USAGE,
};
use crate::serve_cmd;

/// Runs a parsed command.
pub fn dispatch(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Count(a) => count(a),
        Command::Generate(a) => generate(a),
        Command::Spectrum(a) => spectrum(a),
        Command::Simulate(a) => simulate(a),
        Command::Launch(a) => launch(a),
        Command::Worker(a) => worker(a),
        Command::Model(a) => model(a),
        Command::Compare(a) => compare(a),
        Command::Analyze(a) => analyze(a),
        Command::Serve(a) => serve_cmd::serve(a),
        Command::ServeWorker(a) => serve_cmd::serve_worker(a),
        Command::Query(a) => serve_cmd::query(a),
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
    }
}

/// Loads reads from a FASTA or FASTQ file (sniffed from the first byte).
pub fn load_reads(path: &str) -> Result<ReadSet, String> {
    let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reader = BufReader::new(f);
    let first = {
        let buf = reader.fill_buf().map_err(|e| e.to_string())?;
        buf.first().copied()
    };
    let records = match first {
        Some(b'>') => fastx::parse_fasta(reader).map_err(|e| e.to_string())?,
        Some(b'@') => fastx::parse_fastq(reader).map_err(|e| e.to_string())?,
        _ => return Err(format!("{path}: not FASTA or FASTQ")),
    };
    let mut rs = ReadSet::with_capacity(records.len(), records.iter().map(|r| r.seq.len()).sum());
    for r in &records {
        rs.push(&r.seq);
    }
    Ok(rs)
}

pub(crate) fn out_writer(path: &Option<String>) -> Result<Box<dyn Write>, String> {
    Ok(match path {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("{p}: {e}"))?,
        )),
        None => Box::new(BufWriter::new(std::io::stdout())),
    })
}

/// Writes counts as TSV lines `KMER<TAB>COUNT`, filtered by `min_count`.
pub fn write_counts<W: KmerWord>(
    out: &mut dyn Write,
    counts: &[dakc_kmer::KmerCount<W>],
    k: usize,
    min_count: u32,
) -> Result<u64, String> {
    let mut written = 0u64;
    for c in counts {
        if c.count >= min_count {
            writeln!(out, "{}\t{}", c.kmer.to_dna_string(k), c.count)
                .map_err(|e| e.to_string())?;
            written += 1;
        }
    }
    Ok(written)
}

fn write_artifact(path: &str, body: &str) -> Result<(), String> {
    std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))
}

/// Distills a metrics registry from a threaded-engine event stream (the
/// threaded engine records events in-line rather than carrying a registry
/// through every worker).
fn metrics_from_events(events: &[Event]) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    for e in events {
        match e.kind {
            EventKind::MsgSend { bytes, .. } => {
                m.inc("msgs.sent", 1);
                m.observe("msg.payload_bytes", metrics::BYTES_BOUNDS, bytes as f64);
            }
            EventKind::L3Flush { occupancy, cap } => {
                m.inc("l3.flushes", 1);
                m.observe(
                    "l3.flush_occupancy_pct",
                    metrics::PCT_BOUNDS,
                    ((occupancy as u64 * 100) / cap.max(1) as u64).min(100) as f64,
                );
            }
            EventKind::BarrierExit { waited_s } => {
                m.observe("barrier.wait_s", metrics::SECONDS_BOUNDS, waited_s);
            }
            EventKind::FlowSend { .. } => m.inc("flow.opened", 1),
            EventKind::FlowRecv { l2_s, drain_s, e2e_s, .. } => {
                m.inc("flow.closed", 1);
                m.observe("flow.e2e_s.normal", metrics::LATENCY_BOUNDS, e2e_s);
                m.observe("flow.stage_s.l2", metrics::LATENCY_BOUNDS, l2_s);
                m.observe("flow.stage_s.drain", metrics::LATENCY_BOUNDS, drain_s);
            }
            _ => {}
        }
    }
    m
}

/// Prints a p50/p95/p99/max table of every `flow.*` latency histogram in
/// the registry (the output of `--metrics` with flow tracing on).
pub(crate) fn print_flow_latencies(m: &MetricsRegistry) {
    let mut rows: Vec<(&str, &metrics::Histogram)> =
        m.histograms().filter(|(n, _)| n.starts_with("flow.")).collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_unstable_by_key(|(n, _)| *n);
    println!("\nflow latency percentiles (sampled flows):");
    println!("{:<24} {:>8} {:>12} {:>12} {:>12} {:>12}", "stage", "flows", "p50", "p95", "p99", "max");
    for (name, h) in rows {
        let q = |p: f64| h.quantile(p).unwrap_or(0.0);
        println!(
            "{:<24} {:>8} {:>11.1}us {:>11.1}us {:>11.1}us {:>11.1}us",
            name,
            h.count(),
            q(0.50) * 1e6,
            q(0.95) * 1e6,
            q(0.99) * 1e6,
            q(1.0) * 1e6,
        );
    }
}

/// Persists a counted table as a 1-of-1 shard file — the serve index
/// builder's wire format, loadable by `Shard::load` or served directly.
fn write_count_shard<W: KmerWord>(
    path: &str,
    counts: &[dakc_kmer::KmerCount<W>],
    k: usize,
    canonical: bool,
) -> Result<(), String> {
    dakc_serve::write_shard(std::path::Path::new(path), counts, k, canonical, 0, 1)
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote shard: {path} ({} records)", counts.len());
    Ok(())
}

fn count(a: CountArgs) -> Result<(), String> {
    let reads = load_reads(&a.input)?;
    let mode = if a.canonical {
        CanonicalMode::Canonical
    } else {
        CanonicalMode::Forward
    };
    let want_trace = a.trace.is_some() || a.metrics.is_some();
    let opts = ThreadedOpts {
        trace: want_trace,
        // Flow tracing defaults to 1-in-64 packets when any telemetry is
        // requested; `--trace-sample 1` opts into full-rate tagging.
        trace_sample: a.trace_sample.or(want_trace.then_some(64)),
        route_batch: a.route_batch.unwrap_or(ThreadedOpts::default().route_batch),
        superkmer: a.superkmer.then(|| a.minimizer_len.unwrap_or(dakc::DEFAULT_MINIMIZER_LEN)),
    };
    let mut out = out_writer(&a.output)?;
    let (written, elapsed, distinct, events) = if a.k <= 32 {
        let run = count_kmers_threaded_opts::<u64>(&reads, a.k, mode, a.threads, a.l3, &opts);
        if let Some(path) = &a.output_shard {
            write_count_shard(path, &run.counts, a.k, a.canonical)?;
        }
        (
            write_counts(&mut *out, &run.counts, a.k, a.min_count)?,
            run.elapsed,
            run.counts.len(),
            run.trace,
        )
    } else {
        let run = count_kmers_threaded_opts::<u128>(&reads, a.k, mode, a.threads, a.l3, &opts);
        if let Some(path) = &a.output_shard {
            write_count_shard(path, &run.counts, a.k, a.canonical)?;
        }
        (
            write_counts(&mut *out, &run.counts, a.k, a.min_count)?,
            run.elapsed,
            run.counts.len(),
            run.trace,
        )
    };
    out.flush().map_err(|e| e.to_string())?;
    let events = events.unwrap_or_default();
    if let Some(path) = &a.trace {
        // All worker threads share one shared-memory node.
        write_artifact(path, &chrome_trace(&events, a.threads.max(1)))?;
        eprintln!("wrote trace: {path} ({} events)", events.len());
    }
    if let Some(path) = &a.metrics {
        let mut m = metrics_from_events(&events);
        m.inc("run.reads", reads.len() as u64);
        m.inc("run.distinct_kmers", distinct as u64);
        write_artifact(path, &m.to_json())?;
        eprintln!("wrote metrics: {path}");
        print_flow_latencies(&m);
    }
    eprintln!(
        "counted {} reads: {distinct} distinct k-mers ({written} ≥ count {}) in {elapsed:?} on {} threads",
        reads.len(),
        a.min_count,
        a.threads
    );
    Ok(())
}

/// The distributed-engine config for a launch/worker invocation. Every
/// rank of a job must derive the identical config, so both paths funnel
/// through here.
fn net_config(a: &LaunchArgs) -> DakcConfig {
    let mut cfg = DakcConfig::scaled_defaults(a.k);
    cfg.canonical = if a.canonical {
        CanonicalMode::Canonical
    } else {
        CanonicalMode::Forward
    };
    if let Some(c3) = a.l3 {
        cfg = cfg.with_l3();
        cfg.c3 = c3;
    }
    // Flow tracing defaults to 1-in-64 packets when `--trace` is on.
    // Derived from forwarded flags only, so every rank lands on the same
    // sampling rate — flow sidecars are part of the wire format.
    if let Some(n) = a.trace_sample.or(a.trace.is_some().then_some(64)) {
        cfg = cfg.with_trace_sample(n);
    }
    if a.superkmer {
        cfg = cfg.with_superkmer(a.minimizer_len.unwrap_or(dakc::DEFAULT_MINIMIZER_LEN));
    }
    cfg
}

/// Network deadlines/retry budget for a launch/worker invocation,
/// derived from `--net-timeout` / `--net-retries`.
fn net_tuning(a: &LaunchArgs) -> NetTuning {
    let mut t = NetTuning::default();
    if let Some(d) = a.net_timeout {
        t = t.with_timeout(d);
    }
    if let Some(r) = a.net_retries {
        t = t.with_retries(r);
    }
    t
}

/// Writes rank 0's merged result: counts TSV, optional metrics JSON, and
/// a run summary on stderr.
fn emit_net_run<W: KmerWord>(run: &NetRun<W>, a: &LaunchArgs) -> Result<(), String> {
    let mut out = out_writer(&a.output)?;
    let written = write_counts(&mut *out, &run.counts, a.k, a.min_count)?;
    out.flush().map_err(|e| e.to_string())?;
    if let Some(path) = &a.trace {
        // `pes_per_node = 1` maps each rank to its own process track:
        // pid = rank, all on rank 0's clock after alignment. The gathered
        // per-peer transport counters ride along as trace metadata, so
        // `dakc analyze` gets the exact P×P traffic matrix (every frame,
        // not just sampled flows) from the trace file alone.
        let matrix = CommMatrix::from_metrics(&run.metrics);
        let meta = (!matrix.is_empty()).then(|| matrix.to_dakc_meta());
        write_artifact(path, &chrome_trace_with(&run.trace, 1, meta.as_deref()))?;
        eprintln!("wrote trace: {path} ({} events, {} ranks merged)", run.trace.len(), run.ranks);
    }
    if let Some(path) = &a.metrics {
        write_artifact(path, &run.metrics.to_json())?;
        eprintln!("wrote metrics: {path}");
        print_net_rank_table(&run.metrics, run.ranks);
    }
    eprintln!(
        "launch: {} distinct k-mers ({written} ≥ count {}) on {} ranks in {:.3} s",
        run.counts.len(),
        a.min_count,
        run.ranks,
        run.elapsed_s
    );
    Ok(())
}

fn launch_loopback<W: KmerWord + RadixKey + Send>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    a: &LaunchArgs,
) -> Result<(), String> {
    let opts = RunOpts { trace: a.trace.is_some(), ..RunOpts::default() };
    let run = count_kmers_loopback_opts::<W>(reads, cfg, a.ranks, &opts)
        .map_err(|e| format!("loopback: {e}"))?;
    emit_net_run(&run, a)
}

/// Prints the per-rank transport counters gathered on rank 0 — one row
/// per rank, so a hot spot (one rank retrying or stalling) stands out
/// where the merged `net.*` sums would average it away.
fn print_net_rank_table(m: &MetricsRegistry, ranks: usize) {
    let cols = ["frames_sent", "frames_recv", "bytes_sent", "bytes_recv", "send_stalls", "retries"];
    if (0..ranks).all(|r| m.counter(&format!("net.rank{r}.frames_sent")) == 0) {
        return;
    }
    eprintln!("\nper-rank transport counters:");
    eprint!("{:<6}", "rank");
    for c in cols {
        eprint!(" {c:>12}");
    }
    eprintln!();
    for r in 0..ranks {
        eprint!("{r:<6}");
        for c in cols {
            eprint!(" {:>12}", m.counter(&format!("net.rank{r}.{c}")));
        }
        let faults = m.counter(&format!("net.rank{r}.injected_faults"));
        if faults > 0 {
            eprint!("  ({faults} injected faults)");
        }
        eprintln!();
    }
}

/// Removes the file-rendezvous directory on drop, so every exit from
/// `launch` — spawn failure, supervisor teardown, clean finish — leaves
/// no stale `rank*.addr` files behind.
pub(crate) struct DirGuard(pub(crate) std::path::PathBuf);

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills and reaps every still-running worker.
pub(crate) fn teardown(children: &mut [Option<std::process::Child>]) {
    for child in children.iter_mut().flatten() {
        let _ = child.kill();
    }
    for slot in children.iter_mut() {
        if let Some(mut child) = slot.take() {
            let _ = child.wait();
        }
    }
}

/// Watches spawned workers until all exit cleanly, tearing the mesh down
/// on the first failure. Two failure signals feed the verdict: a nonzero
/// exit (a rank crashed or surfaced a net error), and a heartbeat going
/// stale while the rank's process still runs (hung or frozen — the peers
/// may not notice until their own collective deadline, so the launcher
/// acts first). On failure every surviving worker is killed, the per-rank
/// health report is printed, and the error names the blamed rank.
/// One frame of the live `--status` table: per-rank phase, traffic
/// counters, and heartbeat age from the supervisor's health table.
fn status_table(sup: &Supervisor, launched: Instant) -> String {
    let mut out = format!(
        "{:<6} {:<8} {:>12} {:>12} {:>9} {:>9}\n",
        "rank", "phase", "sent", "recv", "retries", "beat"
    );
    for (rank, h) in sup.snapshot().into_iter().enumerate() {
        let age = h.last_beat.map_or_else(|| launched.elapsed(), |t| t.elapsed());
        let (phase, sent, recv, retries) = match h.last {
            Some(b) => (b.phase.name(), b.frames_sent, b.frames_recv, b.retries),
            None => ("-", 0, 0, 0),
        };
        out.push_str(&format!(
            "{rank:<6} {phase:<8} {sent:>12} {recv:>12} {retries:>9} {:>8.1}s\n",
            age.as_secs_f64()
        ));
    }
    out
}

/// Respawn policy of a `--recover` launch: how to rebuild a dead rank's
/// worker process, and how many times the launcher may do so before it
/// gives up and tears the job down like a plain launch.
pub(crate) struct RespawnPolicy<'a> {
    /// Rendezvous directory; the `Recover` control frame is broadcast to
    /// the surviving ranks' listeners registered here.
    pub dir: std::path::PathBuf,
    /// Total rank count of the job.
    pub ranks: usize,
    /// Total respawns allowed across all ranks (default 3).
    pub budget: u32,
    /// Backoff schedule between a verdict and its respawn.
    pub tuning: NetTuning,
    /// Spawns a replacement worker for `(rank, incarnation)`.
    #[allow(clippy::type_complexity)]
    pub spawn: Box<dyn Fn(usize, u32) -> std::io::Result<std::process::Child> + 'a>,
}

/// One respawn: kill whatever is left of the rank's old process, clear
/// its recorded exit and obituary, broadcast `Recover{rank, epoch}` to
/// the survivors, back off briefly, then spawn the replacement with the
/// new incarnation. Broadcasting before spawning matters: survivors must
/// refresh their pending-death deadlines (and learn the epoch) before
/// the replacement starts dialing them.
fn respawn_rank(
    rank: usize,
    sup: &mut Supervisor,
    children: &mut [Option<std::process::Child>],
    exits: &mut Vec<(usize, std::process::ExitStatus)>,
    incarnations: &mut [u32],
    respawns_used: &mut u32,
    pol: &RespawnPolicy<'_>,
) -> Result<(), String> {
    if let Some(mut child) = children[rank].take() {
        let _ = child.kill();
        let _ = child.wait();
    }
    exits.retain(|&(r, _)| r != rank);
    incarnations[rank] += 1;
    let inc = incarnations[rank];
    *respawns_used += 1;
    sup.expect_respawn(rank, inc);
    let notified = dakc_net::announce_recovery(&pol.dir, pol.ranks, rank, inc);
    eprintln!(
        "recover: rank {rank} down; notified {notified} peer(s), respawning as \
         incarnation {inc} (respawn {respawns_used}/{})",
        pol.budget
    );
    std::thread::sleep(pol.tuning.backoff(inc, rank as u64));
    match (pol.spawn)(rank, inc) {
        Ok(child) => {
            children[rank] = Some(child);
            Ok(())
        }
        Err(e) => {
            teardown(children);
            Err(format!("recover: respawn rank {rank}: {e}"))
        }
    }
}

pub(crate) fn supervise(
    sup: &mut Supervisor,
    children: &mut [Option<std::process::Child>],
    tuning: &NetTuning,
    launched: Instant,
    status: Option<Duration>,
    respawn: Option<RespawnPolicy<'_>>,
) -> Result<(), String> {
    // Fire before the workers' own collective deadline so a frozen rank
    // is blamed by name rather than as a generic peer timeout; floor
    // covers spawn + rendezvous before the first heartbeat lands.
    let stale_limit = (tuning.collective_timeout / 2).max(Duration::from_millis(1500));
    let mut exits: Vec<(usize, std::process::ExitStatus)> = Vec::new();
    let mut incarnations = vec![0u32; children.len()];
    let mut respawns_used = 0u32;
    // Live status: redraw in place on a terminal (cursor-up + clear),
    // append plain frames when stderr is piped to a file.
    let redraw_in_place = status.is_some() && std::io::stderr().is_terminal();
    let mut status_lines = 0usize;
    let mut next_status = Instant::now();
    loop {
        if let Some(period) = status {
            if Instant::now() >= next_status {
                let table = status_table(sup, launched);
                let mut err = std::io::stderr().lock();
                if redraw_in_place && status_lines > 0 {
                    let _ = write!(err, "\x1b[{status_lines}A\x1b[0J");
                }
                let _ = write!(err, "{table}");
                let _ = err.flush();
                status_lines = table.lines().count();
                next_status = Instant::now() + period;
            }
        }
        for (rank, slot) in children.iter_mut().enumerate() {
            if let Some(child) = slot {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        exits.push((rank, status));
                        *slot = None;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        teardown(children);
                        return Err(format!("launch failed: wait rank {rank}: {e}"));
                    }
                }
            }
        }
        let failed: Vec<usize> =
            exits.iter().filter(|(_, s)| !s.success()).map(|&(r, _)| r).collect();
        if !failed.is_empty() {
            // Failing workers file obituaries naming the rank their typed
            // error points at; give in-flight ones a moment to land, then
            // let the majority verdict pick the root cause out of the
            // cascade (every victim of a dead rank blames that rank, not
            // itself). Fallback when no obituary blames anyone: the
            // failed rank that stopped heartbeating first — peers keep
            // beating right up to their own exit.
            std::thread::sleep(Duration::from_millis(150));
            let snap = sup.snapshot();
            let rank = sup.blamed().unwrap_or_else(|| {
                failed
                    .iter()
                    .copied()
                    .min_by_key(|&r| snap.get(r).and_then(|h| h.last_beat))
                    .expect("nonempty failures")
            });
            if let Some(pol) = &respawn {
                // Every implicated rank is rebuilt this round: the blamed
                // root cause (which may still be running if only its
                // victims have exited so far) plus every rank that exited
                // nonzero. Respawning clears each rank's obituary, so the
                // next verdict is computed from fresh evidence only.
                let mut todo = failed.clone();
                if !todo.contains(&rank) {
                    todo.push(rank);
                }
                todo.sort_unstable();
                todo.dedup();
                if respawns_used + todo.len() as u32 <= pol.budget {
                    for r in todo {
                        respawn_rank(
                            r,
                            sup,
                            children,
                            &mut exits,
                            &mut incarnations,
                            &mut respawns_used,
                            pol,
                        )?;
                    }
                    continue;
                }
                eprintln!("recover: respawn budget ({}) exhausted", pol.budget);
            }
            teardown(children);
            let verdict = match exits.iter().find(|&&(r, _)| r == rank) {
                Some(&(_, status)) => format!("rank {rank} failed with {status}"),
                None => format!("rank {rank} took down {} peer(s)", failed.len()),
            };
            eprint!("{}", sup.report(stale_limit));
            return Err(format!("launch failed: {verdict}"));
        }
        if children.iter().all(Option::is_none) {
            return Ok(());
        }
        let stale = sup.snapshot().into_iter().enumerate().find_map(|(rank, h)| {
            // Ranks that already exited cleanly are allowed to go quiet.
            if children.get(rank).is_none_or(Option::is_none) {
                return None;
            }
            let age = h.last_beat.map_or_else(|| launched.elapsed(), |t| t.elapsed());
            (age > stale_limit).then_some((rank, age))
        });
        if let Some((rank, age)) = stale {
            if let Some(pol) = &respawn {
                // A hung rank is as dead as a crashed one: kill what is
                // left of it and rebuild, budget permitting.
                if respawns_used < pol.budget {
                    respawn_rank(
                        rank,
                        sup,
                        children,
                        &mut exits,
                        &mut incarnations,
                        &mut respawns_used,
                        pol,
                    )?;
                    continue;
                }
                eprintln!("recover: respawn budget ({}) exhausted", pol.budget);
            }
            teardown(children);
            eprint!("{}", sup.report(stale_limit));
            return Err(format!(
                "launch failed: rank {rank} stopped heartbeating ({:.1} s since last beat)",
                age.as_secs_f64()
            ));
        }
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn launch(a: LaunchArgs) -> Result<(), String> {
    match a.backend {
        NetBackend::Loopback => {
            let reads = load_reads(&a.input)?;
            let cfg = net_config(&a);
            if a.k <= 32 {
                launch_loopback::<u64>(&reads, &cfg, &a)
            } else {
                launch_loopback::<u128>(&reads, &cfg, &a)
            }
        }
        NetBackend::Tcp => {
            // Fail on an unreadable input before spawning N processes.
            load_reads(&a.input)?;
            let tuning = net_tuning(&a);
            let exe = std::env::current_exe().map_err(|e| e.to_string())?;
            let dir = std::env::temp_dir().join(format!("dakc-rendezvous-{}", std::process::id()));
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let _guard = DirGuard(dir.clone());
            let (mut sup, sup_addr) =
                Supervisor::bind(a.ranks).map_err(|e| format!("supervisor: {e}"))?;
            let launched = Instant::now();
            let mut children: Vec<Option<std::process::Child>> = Vec::new();
            // One builder serves both the initial spawns (epoch 0) and any
            // `--recover` respawns (epoch = incarnation), so a replacement
            // rank runs under exactly the flags its predecessor had.
            let mk_cmd = |rank: usize, epoch: u32| {
                let mut cmd = std::process::Command::new(&exe);
                cmd.arg("worker")
                    .arg(&a.input)
                    .args(["--rank", &rank.to_string()])
                    .args(["--ranks", &a.ranks.to_string()])
                    .args(["--rendezvous", &dir.to_string_lossy()])
                    .args(["--supervisor", &sup_addr.to_string()])
                    .args(["-k", &a.k.to_string()])
                    .args(["--min-count", &a.min_count.to_string()]);
                if a.recover {
                    cmd.arg("--recover").args(["--epoch", &epoch.to_string()]);
                }
                if a.canonical {
                    cmd.arg("--canonical");
                }
                if let Some(c3) = a.l3 {
                    cmd.args(["--l3", &c3.to_string()]);
                }
                // Routing keys change under --superkmer, so like tracing
                // it must be collective: every rank gets the same flags.
                if a.superkmer {
                    cmd.arg("--superkmer");
                }
                if let Some(m) = a.minimizer_len {
                    cmd.args(["--minimizer-len", &m.to_string()]);
                }
                if let Some(t) = a.net_timeout {
                    cmd.args(["--net-timeout", &format!("{}ms", t.as_millis().max(1))]);
                }
                if let Some(r) = a.net_retries {
                    cmd.args(["--net-retries", &r.to_string()]);
                }
                if let Some(h) = a.heartbeat_interval {
                    cmd.args(["--heartbeat-interval", &format!("{}ms", h.as_millis().max(1))]);
                }
                if let Some(s) = a.chaos_seed {
                    cmd.args(["--chaos-seed", &s.to_string()]);
                }
                if let Some(p) = &a.chaos_profile {
                    cmd.args(["--chaos-profile", p]);
                }
                // Tracing is collective (it changes the wire format and
                // runs the clock-sync exchange), so every rank gets the
                // flags; only rank 0 writes the merged trace file.
                if let Some(t) = &a.trace {
                    cmd.args(["--trace", t]);
                }
                if let Some(n) = a.trace_sample {
                    cmd.args(["--trace-sample", &n.to_string()]);
                }
                // Only rank 0 holds the merged result; it inherits this
                // process's stdout, so `-o` absent still prints here.
                if rank == 0 {
                    if let Some(o) = &a.output {
                        cmd.args(["-o", o]);
                    }
                    if let Some(m) = &a.metrics {
                        cmd.args(["--metrics", m]);
                    }
                }
                cmd
            };
            for rank in 0..a.ranks {
                match mk_cmd(rank, 0).spawn() {
                    Ok(child) => children.push(Some(child)),
                    Err(e) => {
                        teardown(&mut children);
                        return Err(format!("spawn rank {rank}: {e}"));
                    }
                }
            }
            let status = a
                .status
                .then(|| a.status_interval.unwrap_or(Duration::from_millis(500)));
            let respawn = a.recover.then(|| RespawnPolicy {
                dir: dir.clone(),
                ranks: a.ranks,
                budget: a.max_respawns.unwrap_or(3),
                tuning: tuning.clone(),
                spawn: Box::new(|rank, inc| mk_cmd(rank, inc).spawn()),
            });
            supervise(&mut sup, &mut children, &tuning, launched, status, respawn)
        }
    }
}

fn worker(w: WorkerArgs) -> Result<(), String> {
    let a = &w.job;
    let rank = w.rank;
    let tuning = net_tuning(a);
    // Heartbeat channel back to the launch supervisor. The mute flag is
    // shared with chaos `freeze` injection: a frozen rank goes silent,
    // which is exactly the hang signature the supervisor must catch.
    let mute = Arc::new(AtomicBool::new(false));
    let monitor = Arc::new(HeartbeatState::new());
    // Respawned workers beat under their own incarnation so the
    // supervisor can tell the replacement's heartbeats (and obituaries)
    // from the dead predecessor's.
    monitor.set_incarnation(w.epoch);
    let mut sup_addr = None;
    let _hb = match &w.supervisor {
        Some(addr) => {
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|e| format!("rank {rank}: --supervisor {addr}: {e}"))?;
            sup_addr = Some(addr);
            Some(
                HeartbeatSender::spawn(
                    addr,
                    rank,
                    Arc::clone(&monitor),
                    a.heartbeat_interval.unwrap_or(Duration::from_millis(100)),
                    Arc::clone(&mute),
                )
                .map_err(|e| format!("rank {rank}: supervisor dial: {e}"))?,
            )
        }
        None => None,
    };
    let reads = load_reads(&a.input)?;
    let cfg = net_config(a);
    // On a net error, file an obituary with the supervisor before exiting:
    // the typed error names the rank at fault (ourselves for an injected
    // death, the peer for a disconnect), and the launcher tallies those
    // verdicts to blame the root cause rather than the first victim.
    let epoch = w.epoch;
    let fail = move |e: dakc_net::NetError| {
        if let Some(addr) = sup_addr {
            let _ = dakc_net::send_obituary_inc(addr, rank, e.rank(), epoch);
        }
        format!("rank {rank}: {e}")
    };
    // Under `--recover` the transport keeps its listener after the mesh
    // is up, tags control frames with this incarnation, and survives
    // peer death; without it the plain rendezvous keeps PR-compatible
    // wire bytes.
    let transport = if a.recover {
        TcpTransport::rendezvous_recover(
            rank,
            a.ranks,
            std::path::Path::new(&w.rendezvous),
            cfg.c0_bytes,
            tuning.clone(),
            w.epoch,
        )
    } else {
        TcpTransport::rendezvous_tuned(
            rank,
            a.ranks,
            std::path::Path::new(&w.rendezvous),
            cfg.c0_bytes,
            tuning.clone(),
        )
    }
    .map_err(fail)?;
    // Chaos wrapping is unconditional: with no profile the config is off
    // and the wrapper is pure delegation (verified bit-identical in
    // tests), so real runs pay nothing for the capability. Scripted
    // faults are epoch-gated: a respawned rank must not re-run the death
    // that killed its previous life.
    let chaos = match &a.chaos_profile {
        Some(p) => ChaosConfig::parse_for_epoch(p, a.chaos_seed.unwrap_or(0), rank, w.epoch)
            .map_err(|e| format!("rank {rank}: --chaos-profile: {e}"))?,
        None => ChaosConfig::off(),
    };
    let transport = ChaosTransport::new(transport, chaos).with_freeze_flag(Arc::clone(&mute));
    let opts = RunOpts {
        tuning,
        monitor: Some(Arc::clone(&monitor)),
        trace: a.trace.is_some(),
        recover: a.recover,
    };
    if a.k <= 32 {
        if let Some(run) = run_rank_opts::<u64, _>(&reads, &cfg, transport, &opts).map_err(fail)? {
            emit_net_run(&run, a)?;
        }
    } else if let Some(run) =
        run_rank_opts::<u128, _>(&reads, &cfg, transport, &opts).map_err(fail)?
    {
        emit_net_run(&run, a)?;
    }
    Ok(())
}

fn generate(a: GenerateArgs) -> Result<(), String> {
    let spec = dakc_io::table_v()
        .into_iter()
        .find(|d| d.name == a.dataset)
        .ok_or_else(|| format!("unknown dataset {:?}; see `dakc help`", a.dataset))?;
    let scaled = spec.scaled(a.scale_shift);
    let reads = scaled.generate(a.seed);
    let records: Vec<fastx::FastxRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, seq)| fastx::FastxRecord {
            id: format!("{}.{i}", spec.name.replace(' ', "_")),
            seq: seq.to_vec(),
            qual: Some(vec![b'I'; seq.len()]),
        })
        .collect();
    let mut out = out_writer(&a.output)?;
    fastx::write_fastq(&mut *out, &records).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "generated {} reads x {} bp of {} (scale 2^-{}), seed {}",
        reads.len(),
        spec.read_len,
        spec.name,
        a.scale_shift,
        a.seed
    );
    Ok(())
}

fn spectrum(a: SpectrumArgs) -> Result<(), String> {
    let f = File::open(&a.input).map_err(|e| format!("{}: {e}", a.input))?;
    let mut spectrum = vec![0u64; a.max + 2];
    let mut total = 0u64;
    for (ln, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if line.is_empty() {
            continue;
        }
        let count: u64 = line
            .rsplit('\t')
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{}:{}: malformed TSV line", a.input, ln + 1))?;
        let idx = (count as usize).min(a.max + 1);
        spectrum[idx] += 1;
        total += 1;
    }
    println!("count\tdistinct_kmers");
    for (c, &n) in spectrum.iter().enumerate().skip(1) {
        if n > 0 {
            let label = if c == a.max + 1 {
                format!(">{}", a.max)
            } else {
                c.to_string()
            };
            println!("{label}\t{n}");
        }
    }
    eprintln!("{total} distinct k-mers total");
    Ok(())
}

fn simulate(a: SimulateArgs) -> Result<(), String> {
    let reads = load_reads(&a.input)?;
    let mut machine = MachineConfig::phoenix_intel(a.nodes);
    machine.pes_per_node = a.ppn;
    let mut cfg = DakcConfig::scaled_defaults(a.k);
    cfg.protocol = a.protocol;
    if a.l3 {
        cfg = cfg.with_l3();
    }
    // Flow tracing defaults to 1-in-64 packets when any telemetry is
    // requested; `--trace-sample 1` opts into full-rate tagging.
    let want_telemetry = a.trace.is_some() || a.metrics.is_some();
    if let Some(n) = a.trace_sample.or(want_telemetry.then_some(64)) {
        cfg = cfg.with_trace_sample(n);
    }
    if a.superkmer {
        cfg = cfg.with_superkmer(a.minimizer_len.unwrap_or(dakc::DEFAULT_MINIMIZER_LEN));
    }
    let mut sink = if a.trace.is_some() {
        TraceSink::ring_default()
    } else {
        TraceSink::Off
    };
    let run = count_kmers_sim_traced::<u64>(&reads, &cfg, &machine, &mut sink)
        .map_err(|e| e.to_string())?;
    if let Some(path) = &a.trace {
        let events = sink.events();
        write_artifact(path, &chrome_trace(&events, a.ppn))?;
        eprintln!(
            "wrote trace: {path} ({} events, {} dropped)",
            events.len(),
            sink.dropped()
        );
    }
    if let Some(path) = &a.metrics {
        write_artifact(path, &run.report.metrics.to_json())?;
        eprintln!("wrote metrics: {path}");
        print_flow_latencies(&run.report.metrics);
    }
    let r = &run.report;
    println!("machine          : {} nodes x {} PEs ({:?} conveyors)", a.nodes, a.ppn, a.protocol);
    println!("virtual time     : {:.6} s", r.total_time);
    println!(
        "phase times      : parse+reshuffle {:.6} s, sort+accumulate {:.6} s",
        r.phase_time.first().copied().unwrap_or(0.0),
        r.phase_time.get(1).copied().unwrap_or(0.0)
    );
    println!("global barriers  : {}", r.barriers_completed);
    println!(
        "traffic          : {} remote B, {} local B, {} messages",
        r.remote_bytes(),
        r.local_bytes(),
        r.total_msgs()
    );
    println!("peak node memory : {} B", r.peak_node_memory());
    println!("load imbalance   : {:.3}", run.load_imbalance());
    println!("distinct k-mers  : {}", run.counts.len());
    let [c, i, e] = r.busy_percentages();
    println!("busy-time split  : {c:.1}% compute, {i:.1}% intranode, {e:.1}% internode");
    if a.timeline {
        let t = Timeline::new(r);
        println!("\n{}", t.render());
        println!("{}", t.summary());
    }
    Ok(())
}

fn model(a: ModelArgs) -> Result<(), String> {
    let spec = dakc_io::table_v()
        .into_iter()
        .find(|d| d.name == a.dataset)
        .ok_or_else(|| format!("unknown dataset {:?}", a.dataset))?;
    let w = Workload {
        n_reads: spec.paper_reads,
        read_len: spec.read_len as u64,
        k: 31,
    };
    let m = Model::new(MachineConfig::phoenix_intel(a.nodes), w);
    println!("analytical model for {} on {} Phoenix nodes (paper scale):", spec.name, a.nodes);
    println!("  phase 1 compute    : {:.3} s", m.t_comp1());
    println!("  phase 1 intranode  : {:.3} s", m.t_intra1());
    println!("  phase 1 internode  : {:.3} s", m.t_inter1());
    println!("  phase 2 compute    : {:.3} s", m.t_comp2());
    println!("  phase 2 intranode  : {:.3} s", m.t_intra2());
    println!("  total (Sum model)  : {:.3} s", m.t_total(CommModel::Sum));
    println!("  total (Max model)  : {:.3} s", m.t_total(CommModel::Max));
    let [c, i, e] = m.breakdown_percent();
    println!("  breakdown          : {c:.1}% compute, {i:.1}% intranode, {e:.1}% internode");
    Ok(())
}

fn compare(a: CompareArgs) -> Result<(), String> {
    use dakc_baselines::{count_kmers_bsp_sim, count_kmers_hash_sim, BspConfig, HashKcConfig};
    let reads = load_reads(&a.input)?;
    let mut machine = MachineConfig::phoenix_intel(a.nodes);
    machine.pes_per_node = a.ppn;
    println!(
        "comparing counters on {} reads, k = {}, {} nodes x {} PEs (virtual time):\n",
        reads.len(),
        a.k,
        a.nodes,
        a.ppn
    );
    let dakc_run = count_kmers_sim::<u64>(&reads, &DakcConfig::scaled_defaults(a.k), &machine)
        .map_err(|e| e.to_string())?;
    let base = dakc_run.report.total_time;
    let mut rows: Vec<(&str, f64, u64)> = vec![(
        "DAKC (FA-BSP)",
        base,
        dakc_run.report.barriers_completed,
    )];
    let pakman = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::pakman_star(a.k), &machine)
        .map_err(|e| e.to_string())?;
    assert_eq!(pakman.counts, dakc_run.counts, "engines disagree");
    rows.push(("PakMan* (BSP blocking)", pakman.report.total_time, pakman.report.barriers_completed));
    let hysortk = count_kmers_bsp_sim::<u64>(&reads, &BspConfig::hysortk(a.k), &machine)
        .map_err(|e| e.to_string())?;
    rows.push(("HySortK-like (BSP non-blocking)", hysortk.report.total_time, hysortk.report.barriers_completed));
    let hash = count_kmers_hash_sim::<u64>(&reads, &HashKcConfig::defaults(a.k), &machine)
        .map_err(|e| e.to_string())?;
    assert_eq!(hash.counts, dakc_run.counts, "engines disagree");
    rows.push(("kmerind-like (hash table)", hash.report.total_time, hash.report.barriers_completed));
    println!("{:<32} {:>12} {:>10} {:>9}", "counter", "time", "vs DAKC", "barriers");
    for (name, t, b) in rows {
        println!("{name:<32} {:>10.3}ms {:>9.2}x {b:>9}", t * 1e3, t / base);
    }
    println!("\ndistinct k-mers: {}", dakc_run.counts.len());
    Ok(())
}

/// `dakc analyze`: post-run trace analytics (critical path, overlap,
/// comm matrix) or, with `--diff`, a regression explanation between two
/// analysis artifacts.
fn analyze(a: AnalyzeArgs) -> Result<(), String> {
    if a.diff {
        let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
        let (report, regressed) =
            dakc_analyze::diff_bodies(&read(&a.inputs[0])?, &read(&a.inputs[1])?, a.threshold)?;
        print!("{report}");
        return if regressed {
            Err(format!("analyze: regressions above {:.2}x", a.threshold))
        } else {
            Ok(())
        };
    }
    let mut artifact_written = false;
    for path in &a.inputs {
        if a.inputs.len() > 1 {
            println!("== {path}");
        }
        match dakc_analyze::load(std::path::Path::new(path))? {
            Input::Trace(trace) => {
                let analysis = dakc_analyze::analyze(&trace);
                print!("{}", analysis.render());
                // The first trace's analysis becomes the run artifact,
                // diffable later with `analyze --diff`.
                if !artifact_written {
                    let art = analysis.artifact();
                    match &a.out {
                        Some(out) => {
                            write_artifact(out, &art.to_json())?;
                            eprintln!("wrote analysis artifact: {out}");
                        }
                        None => art.write_or_warn(),
                    }
                    artifact_written = true;
                }
            }
            Input::Metrics(m) => {
                let matrix = CommMatrix::from_metrics(&m);
                if matrix.is_empty() {
                    println!("metrics: no per-peer transport counters");
                } else {
                    println!("comm matrix ({} ranks):", matrix.n);
                    print!("{}", matrix.render());
                }
                let spans = m.counter("net.superkmer.spans");
                if spans > 0 {
                    let wire = m.counter("net.superkmer.bytes_sent");
                    let saved = m.counter("net.superkmer.bases_saved");
                    println!(
                        "super-k-mer compression: {spans} spans, {wire} span B on wire, {saved} bases saved vs per-k-mer words"
                    );
                }
                let lookups = m.counter("serve.lookups");
                if lookups > 0 {
                    println!(
                        "query service: {lookups} lookup(s) in {} batch(es), {} server(s) lost",
                        m.counter("serve.batches"),
                        m.counter("serve.servers_lost"),
                    );
                }
                print_flow_latencies(&m);
                // A metrics dump exports as an analyze artifact too, so a
                // --superkmer run and a baseline run diff with --diff.
                if !artifact_written {
                    let art = dakc_analyze::metrics_artifact(&m);
                    match &a.out {
                        Some(out) => {
                            write_artifact(out, &art.to_json())?;
                            eprintln!("wrote analysis artifact: {out}");
                        }
                        None => art.write_or_warn(),
                    }
                    artifact_written = true;
                }
            }
            Input::Artifact { harness, doc, .. } => {
                let rows = doc
                    .get("rows")
                    .and_then(|r| r.as_arr())
                    .map(<[_]>::len)
                    .unwrap_or(0);
                println!("bench artifact: harness {harness:?}, {rows} row(s), schema ok");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("dakc-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_count_round_trip() {
        let fq = tmp("g.fastq");
        let tsv = tmp("g.tsv");
        dispatch(
            parse_args(
                ["dakc", "generate", "--dataset", "Synthetic 20", "--scale-shift", "16", "-o", &fq]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
        dispatch(
            parse_args(
                ["dakc", "count", &fq, "-k", "21", "--threads", "2", "-o", &tsv]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
        let body = std::fs::read_to_string(&tsv).unwrap();
        assert!(!body.is_empty());
        let (kmer, count) = body.lines().next().unwrap().split_once('\t').unwrap();
        assert_eq!(kmer.len(), 21);
        assert!(count.parse::<u32>().unwrap() >= 1);
        // Lines sorted by k-mer.
        let keys: Vec<&str> = body.lines().map(|l| l.split('\t').next().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_large_k_uses_u128() {
        let fq = tmp("big.fastq");
        std::fs::write(&fq, "@r\nACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n").unwrap();
        let tsv = tmp("big.tsv");
        dispatch(
            parse_args(
                ["dakc", "count", &fq, "-k", "40", "-o", &tsv]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
        let body = std::fs::read_to_string(&tsv).unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(body.starts_with("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT\t1"));
    }

    #[test]
    fn spectrum_of_counts() {
        let tsv = tmp("s.tsv");
        std::fs::write(&tsv, "AAA\t1\nAAC\t1\nAAG\t5\n").unwrap();
        dispatch(Command::Spectrum(crate::args::SpectrumArgs { input: tsv, max: 10 })).unwrap();
    }

    #[test]
    fn load_reads_sniffs_fasta_and_fastq() {
        let fa = tmp("x.fasta");
        std::fs::write(&fa, ">a\nACGT\n").unwrap();
        assert_eq!(load_reads(&fa).unwrap().len(), 1);
        let fq = tmp("x.fastq");
        std::fs::write(&fq, "@a\nACGT\n+\nIIII\n").unwrap();
        assert_eq!(load_reads(&fq).unwrap().len(), 1);
        let bad = tmp("x.bin");
        std::fs::write(&bad, "garbage").unwrap();
        assert!(load_reads(&bad).is_err());
    }

    #[test]
    fn min_count_filters() {
        let counts = vec![
            dakc_kmer::KmerCount::new(0u64, 1),
            dakc_kmer::KmerCount::new(1u64, 3),
        ];
        let mut buf = Vec::new();
        let written = write_counts(&mut buf, &counts, 3, 2).unwrap();
        assert_eq!(written, 1);
        assert_eq!(String::from_utf8(buf).unwrap(), "AAC\t3\n");
    }

    #[test]
    fn compare_command_runs() {
        let fq = tmp("cmp.fastq");
        std::fs::write(
            &fq,
            "@r\nACGTACGTACGGTTACAGGACCATGGACCAGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
        )
        .unwrap();
        dispatch(Command::Compare(crate::args::CompareArgs {
            input: fq,
            k: 11,
            nodes: 2,
            ppn: 2,
        }))
        .unwrap();
    }

    #[test]
    fn count_writes_trace_and_metrics_artifacts() {
        use dakc_sim::telemetry::json;
        let fq = tmp("obs.fastq");
        std::fs::write(
            &fq,
            "@r\nACGTACGTACGGTTACAGGACCATGGACCAGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
        )
        .unwrap();
        let trace = tmp("obs_trace.json");
        let metrics = tmp("obs_metrics.json");
        let tsv = tmp("obs.tsv");
        dispatch(
            parse_args(
                ["dakc", "count", &fq, "-k", "11", "--threads", "2", "-o", &tsv,
                 "--trace", &trace, "--metrics", &metrics]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
        let t = json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = t.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata + at least one real event per worker thread.
        assert!(events.len() > 2, "{} events", events.len());
        let m = json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(
            m.get("counters").and_then(|c| c.get("run.reads")).and_then(|v| v.as_f64())
                == Some(1.0)
        );
        assert!(m.get("histograms").and_then(|h| h.get("msg.payload_bytes")).is_some());
    }

    #[test]
    fn simulate_writes_trace_metrics_and_timeline() {
        use dakc_sim::telemetry::json;
        let fq = tmp("sim_obs.fastq");
        std::fs::write(
            &fq,
            "@r\nACGTACGTACGGTTACAGGACCATGGACCAGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
        )
        .unwrap();
        let trace = tmp("sim_trace.json");
        let metrics = tmp("sim_metrics.json");
        dispatch(
            parse_args(
                ["dakc", "simulate", &fq, "-k", "11", "--nodes", "2", "--ppn", "2",
                 "--trace", &trace, "--metrics", &metrics, "--timeline"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
        let t = json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(!t.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        let m = json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(m.get("histograms").and_then(|h| h.get("barrier.wait_s")).is_some());
    }

    #[test]
    fn analyze_sim_trace_writes_diffable_artifact() {
        let fq = tmp("an_obs.fastq");
        std::fs::write(
            &fq,
            "@r\nACGTACGTACGGTTACAGGACCATGGACCAGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
        )
        .unwrap();
        let trace = tmp("an_trace.json");
        let run = |args: &[&str]| {
            dispatch(parse_args(args.iter().map(|s| s.to_string()).collect()).unwrap()).unwrap()
        };
        run(&["dakc", "simulate", &fq, "-k", "11", "--nodes", "2", "--ppn", "2",
              "--trace", &trace, "--trace-sample", "1"]);
        let out = tmp("an_analysis.json");
        run(&["dakc", "analyze", &trace, "--out", &out]);
        let body = std::fs::read_to_string(&out).unwrap();
        assert_eq!(dakc_bench::artifact::validate(&body).unwrap(), "analyze");
        // Re-analysis is deterministic, so a self-diff is clean.
        run(&["dakc", "analyze", "--diff", &out, &out]);
        // Metrics input renders and exports a diffable artifact too.
        let metrics = tmp("an_metrics.json");
        run(&["dakc", "simulate", &fq, "-k", "11", "--nodes", "2", "--ppn", "2",
              "--metrics", &metrics]);
        let mout = tmp("an_metrics_art.json");
        run(&["dakc", "analyze", &metrics, "--out", &mout]);
        let mbody = std::fs::read_to_string(&mout).unwrap();
        assert_eq!(dakc_bench::artifact::validate(&mbody).unwrap(), "analyze");
        run(&["dakc", "analyze", "--diff", &mout, &mout]);
    }

    #[test]
    fn count_output_shard_round_trips() {
        let fq = tmp("shard.fastq");
        std::fs::write(
            &fq,
            "@r\nACGTACGTACGGTTACAGGACCATGGACCAGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
        )
        .unwrap();
        let tsv = tmp("shard.tsv");
        let shard = tmp("shard.dakshard");
        dispatch(
            parse_args(
                ["dakc", "count", &fq, "-k", "11", "-o", &tsv, "--output-shard", &shard]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            )
            .unwrap(),
        )
        .unwrap();
        // The persisted shard loads through the validated loader and
        // agrees record-for-record with the TSV the same run wrote.
        let s = dakc_serve::Shard::<u64>::load(std::path::Path::new(&shard)).unwrap();
        let body = std::fs::read_to_string(&tsv).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(s.len(), lines.len());
        for (line, (kmer, count)) in lines.iter().zip(s.iter()) {
            let (ks, cs) = line.split_once('\t').unwrap();
            assert_eq!(ks, kmer.to_dna_string(11));
            assert_eq!(cs.parse::<u32>().unwrap(), count);
            assert_eq!(s.get(kmer), Some(count));
        }
        assert_eq!(s.meta().k, 11);
        assert!(!s.meta().canonical);
    }

    #[test]
    fn query_loopback_matches_count() {
        let fq = tmp("q.fastq");
        std::fs::write(
            &fq,
            "@r\nACGTACGTACGGTTACAGGACCATGGACCAGTAACCGGTT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n",
        )
        .unwrap();
        let tsv = tmp("q_count.tsv");
        let ans = tmp("q_answers.tsv");
        let run = |args: &[&str]| {
            dispatch(parse_args(args.iter().map(|s| s.to_string()).collect()).unwrap()).unwrap()
        };
        run(&["dakc", "count", &fq, "-k", "13", "-o", &tsv]);
        // Query the count's own keys against a 3-shard loopback service:
        // the answers must reproduce the counts file byte-for-byte.
        run(&["dakc", "query", &tsv, "-k", "13", "--ranks", "3", "--serve-reads", &fq,
              "-o", &ans, "--batch", "7"]);
        assert_eq!(
            std::fs::read_to_string(&tsv).unwrap(),
            std::fs::read_to_string(&ans).unwrap()
        );
    }

    #[test]
    fn model_command_runs() {
        dispatch(Command::Model(crate::args::ModelArgs {
            dataset: "Synthetic 30".into(),
            nodes: 32,
        }))
        .unwrap();
    }
}
