//! # dakc-cli — the `dakc` command-line tool
//!
//! A small front end over the workspace's public APIs, shaped like the
//! tools the paper compares against (KMC3's `kmc`, etc.):
//!
//! ```text
//! dakc count    reads.fastq -k 31 --threads 8 -o counts.tsv
//! dakc generate --dataset "Synthetic 24" --scale-shift 12 -o reads.fastq
//! dakc spectrum counts.tsv --max 100
//! dakc simulate reads.fastq -k 31 --nodes 16 --protocol 1d
//! dakc model    --dataset "Synthetic 30" --nodes 32
//! ```
//!
//! The library half holds the argument parsing and subcommand
//! implementations so they are unit-testable; `main.rs` is a thin shim.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod commands;
pub mod serve_cmd;

pub use args::{parse_args, Command};

/// Entry point used by the binary: parse and dispatch.
pub fn run(argv: Vec<String>) -> Result<(), String> {
    let cmd = parse_args(argv)?;
    commands::dispatch(cmd)
}
