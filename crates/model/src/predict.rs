//! Scaling prediction from the analytical model.
//!
//! The model (Eqs 9–18) answers the planning questions a user asks before
//! burning cluster hours: how many nodes until strong scaling stops
//! paying, what efficiency to expect at a node count, and how much faster
//! FA-BSP should be than a BSP code with batch size `b` on *this* machine
//! (Eqs 5–8 with the machine's measured τ and μ).

use dakc_sim::MachineConfig;

use crate::closed_forms::{t_bsp, t_fabsp};
use crate::{CommModel, Model, Workload};

/// One point of a predicted scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Node count.
    pub nodes: usize,
    /// Predicted total time, seconds.
    pub time: f64,
    /// Speedup relative to the first point of the sweep.
    pub speedup: f64,
    /// Parallel efficiency: `speedup / (nodes / first_nodes)`.
    pub efficiency: f64,
}

/// Predicts a strong-scaling curve for `workload` over `node_counts`
/// (machine constants taken from `base`, node count overridden per point).
pub fn strong_scaling_curve(
    base: &MachineConfig,
    workload: Workload,
    node_counts: &[usize],
    comm: CommModel,
) -> Vec<ScalePoint> {
    assert!(!node_counts.is_empty());
    let t_of = |nodes: usize| {
        let mut m = base.clone();
        m.nodes = nodes;
        Model::new(m, workload).t_total(comm)
    };
    let first_nodes = node_counts[0];
    let t0 = t_of(first_nodes);
    node_counts
        .iter()
        .map(|&nodes| {
            let time = t_of(nodes);
            let speedup = t0 / time;
            ScalePoint {
                nodes,
                time,
                speedup,
                efficiency: speedup / (nodes as f64 / first_nodes as f64),
            }
        })
        .collect()
}

/// The node count beyond which doubling nodes improves total time by less
/// than `threshold` (e.g. 1.25 = "less than 25% faster"): the model's
/// strong-scaling limit. Searches powers of two up to `max_nodes`.
pub fn scaling_limit(
    base: &MachineConfig,
    workload: Workload,
    max_nodes: usize,
    threshold: f64,
    comm: CommModel,
) -> usize {
    assert!(threshold > 1.0);
    let mut nodes = 1usize;
    loop {
        let next = nodes * 2;
        if next > max_nodes {
            return nodes;
        }
        let mut a = base.clone();
        a.nodes = nodes;
        let mut b = base.clone();
        b.nodes = next;
        let gain = Model::new(a, workload).t_total(comm) / Model::new(b, workload).t_total(comm);
        if gain < threshold {
            return nodes;
        }
        nodes = next;
    }
}

/// Predicted FA-BSP speedup over BSP with batch `b` (Eqs 5/6 with this
/// machine's τ and per-PE μ).
pub fn fabsp_speedup_over_bsp(machine: &MachineConfig, workload: Workload, batch: f64) -> f64 {
    let mn = workload.input_bytes();
    let p = machine.num_pes() as f64;
    let tau = machine.latency;
    let mu = machine.mu();
    t_bsp(tau, mu, mn, p, batch) / t_fabsp(tau, mu, mn, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic28() -> Workload {
        Workload {
            n_reads: 89_478_450,
            read_len: 150,
            k: 31,
        }
    }

    #[test]
    fn curve_starts_at_unity() {
        let m = MachineConfig::phoenix_intel(1);
        let curve = strong_scaling_curve(&m, synthetic28(), &[2, 4, 8], CommModel::Sum);
        assert_eq!(curve[0].nodes, 2);
        assert!((curve[0].speedup - 1.0).abs() < 1e-12);
        assert!((curve[0].efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn times_decrease_with_nodes() {
        let m = MachineConfig::phoenix_intel(1);
        let curve = strong_scaling_curve(&m, synthetic28(), &[1, 2, 4, 8, 16], CommModel::Max);
        for w in curve.windows(2) {
            assert!(w[1].time < w[0].time, "{:?}", w);
        }
    }

    #[test]
    fn efficiency_declines_monotonically_or_holds() {
        let m = MachineConfig::phoenix_intel(1);
        let curve = strong_scaling_curve(&m, synthetic28(), &[1, 4, 16, 64], CommModel::Sum);
        for w in curve.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency + 1e-9);
        }
    }

    #[test]
    fn scaling_limit_is_within_range_and_grows_with_input() {
        let m = MachineConfig::phoenix_intel(1);
        let small = Workload { n_reads: 349_500, read_len: 150, k: 31 };
        let big = synthetic28();
        let lim_small = scaling_limit(&m, small, 256, 1.5, CommModel::Sum);
        let lim_big = scaling_limit(&m, big, 256, 1.5, CommModel::Sum);
        assert!(lim_small <= 256 && lim_big <= 256);
        assert!(lim_big >= lim_small, "bigger inputs scale further");
    }

    #[test]
    fn fabsp_speedup_at_least_one_and_grows_with_smaller_batches() {
        let m = MachineConfig::phoenix_intel(8);
        let w = synthetic28();
        let tight = fabsp_speedup_over_bsp(&m, w, 1e6);
        let loose = fabsp_speedup_over_bsp(&m, w, 1e9);
        assert!(tight >= 1.0 && loose >= 1.0);
        assert!(tight >= loose, "more syncs, more FA-BSP advantage");
    }
}
