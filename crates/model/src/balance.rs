//! Operational intensity (§VII).
//!
//! The paper estimates DAKC at ≈ 0.12 iadd64 per byte — far below the
//! hardware balance of the Phoenix CPUs (≈ 2.6) and of an H100 (≈ 8.3) —
//! concluding the workload is bandwidth-bound everywhere and GPUs would be
//! even more underutilized than CPUs.

use crate::Workload;

/// Integer-adds per byte moved, from the model's own op and byte counts:
///
/// * ops: 1/k-mer to parse, `word_bytes`/k-mer to sort, 1/k-mer to
///   accumulate;
/// * bytes: read the input, write the k-mer array, one array stream per
///   radix pass, and the NIC crossing (send + receive).
pub fn op_to_byte_ratio(w: &Workload) -> f64 {
    let kmers = w.kmers();
    let wb = w.word_bytes();
    let ops = kmers * (1.0 + wb + 1.0);
    let bytes = w.input_bytes()            // parse the reads
        + kmers * wb                       // write the k-mer array
        + kmers * wb * wb                  // radix passes over the array
        + 2.0 * kmers * wb; // NIC: send + receive
    ops / bytes
}

/// Hardware balance: peak iadd64 rate over memory bandwidth.
pub fn hardware_balance(ops_per_sec: f64, bytes_per_sec: f64) -> f64 {
    ops_per_sec / bytes_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dakc_intensity_matches_paper_ballpark() {
        // §VII: "about one iadd64 per 8.14 bytes, ≈ 0.12 iadd64/byte".
        let w = Workload { n_reads: 357_913_900, read_len: 150, k: 31 };
        let r = op_to_byte_ratio(&w);
        assert!(
            (0.08..0.16).contains(&r),
            "op-to-byte ratio {r:.3} should be ≈ 0.12"
        );
    }

    #[test]
    fn phoenix_balance_matches_paper() {
        // §VII: Phoenix CPUs ≈ 2.6 iadd64/byte.
        let b = hardware_balance(121.9e9, 46.9e9);
        assert!((b - 2.6).abs() < 0.05, "{b}");
    }

    #[test]
    fn h100_balance_matches_paper() {
        // §VII: H100 ≈ 8.3 iadd64/byte (~28 Tiadd64/s over 3.35 TB/s).
        let b = hardware_balance(27.8e12, 3.35e12);
        assert!((b - 8.3).abs() < 0.2, "{b}");
    }

    #[test]
    fn workload_is_bandwidth_bound_on_all_hardware() {
        let w = Workload { n_reads: 1_000_000, read_len: 150, k: 31 };
        let intensity = op_to_byte_ratio(&w);
        assert!(intensity < hardware_balance(121.9e9, 46.9e9));
        assert!(intensity < hardware_balance(27.8e12, 3.35e12));
    }

    #[test]
    fn wider_words_raise_intensity_slightly() {
        let w64 = Workload { n_reads: 1000, read_len: 150, k: 31 };
        let w128 = Workload { n_reads: 1000, read_len: 150, k: 63 };
        // 128-bit k-mers do more byte passes but also more ops; both stay
        // deeply bandwidth-bound.
        assert!(op_to_byte_ratio(&w128) < 0.2);
        assert!(op_to_byte_ratio(&w64) < 0.2);
    }
}
