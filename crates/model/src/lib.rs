//! # dakc-model — the paper's analytical performance model (§V)
//!
//! A direct transcription of Equations (1)–(18): k-mer counting decomposed
//! into phase 1 (generation + reshuffle) and phase 2 (sort + accumulate),
//! each bounded by compute, intranode memory traffic and internode NIC
//! traffic under the Table IV machine constants.
//!
//! The model's assumptions (perfect load balance, 100% intranode
//! efficiency, cache-oblivious algorithms, two-level memory with optimal
//! replacement) make it a *lower* bound; the companion experiments (Figs
//! 3–5) compare it against the simulator's measured numbers exactly the
//! way the paper compares against PAPI counters and wall-clock.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod balance;
pub mod closed_forms;
pub mod predict;

pub use balance::op_to_byte_ratio;
pub use closed_forms::{bsp_minus_fabsp, t_bsp, t_fabsp};
pub use predict::{fabsp_speedup_over_bsp, scaling_limit, strong_scaling_curve, ScalePoint};

use dakc_sim::MachineConfig;

/// The workload parameters of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of reads `n`.
    pub n_reads: u64,
    /// Bases per read `m`.
    pub read_len: u64,
    /// k-mer length `k`.
    pub k: u32,
}

impl Workload {
    /// Total k-mers: `n (m − k + 1)`.
    pub fn kmers(&self) -> f64 {
        self.n_reads as f64 * (self.read_len - self.k as u64 + 1) as f64
    }

    /// Total input bases `m n`.
    pub fn input_bytes(&self) -> f64 {
        self.n_reads as f64 * self.read_len as f64
    }

    /// The k-mer word width in **bits**: `2^⌈log₂ 2k⌉` (paper §V phase 1).
    /// `k = 31` ⇒ 64 bits.
    pub fn word_bits(&self) -> f64 {
        let x = (2 * self.k) as f64;
        2f64.powf(x.log2().ceil())
    }

    /// Word width in bytes.
    pub fn word_bytes(&self) -> f64 {
        self.word_bits() / 8.0
    }
}

/// Whether phase-1 communication composes as a sum or a max (Eqs 14/15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// `T_comm = T_intra + T_inter` (Eq 14) — serialized data movement.
    Sum,
    /// `T_comm = max(T_intra, T_inter)` (Eq 15) — perfectly overlapped.
    Max,
}

/// The analytical model: a workload on a machine.
#[derive(Debug, Clone)]
pub struct Model {
    /// Machine constants (Table IV).
    pub machine: MachineConfig,
    /// Workload parameters.
    pub workload: Workload,
}

impl Model {
    /// Builds the model. `machine.nodes` is the paper's `P`.
    pub fn new(machine: MachineConfig, workload: Workload) -> Self {
        Self { machine, workload }
    }

    fn p(&self) -> f64 {
        self.machine.nodes as f64
    }

    fn l(&self) -> f64 {
        self.machine.line_bytes as f64
    }

    /// Eq 9: phase-1 compute time.
    pub fn t_comp1(&self) -> f64 {
        self.workload.kmers() / (self.p() * self.machine.node_ops_per_sec)
    }

    /// Cache misses to parse the input on one node (first term of Eq 10).
    pub fn misses_parse(&self) -> f64 {
        1.0 + self.workload.input_bytes() / (self.p() * self.l())
    }

    /// Cache misses to store the k-mer array on one node (second term of
    /// Eq 10).
    pub fn misses_store(&self) -> f64 {
        1.0 + self.workload.kmers() * self.workload.word_bytes() / (self.p() * self.l())
    }

    /// Phase-1 cache misses per node (Fig 3's predicted series).
    pub fn misses_phase1(&self) -> f64 {
        self.misses_parse() + self.misses_store()
    }

    /// Eq 10: phase-1 intranode communication time.
    pub fn t_intra1(&self) -> f64 {
        self.misses_phase1() * self.l() / self.machine.mem_bandwidth
    }

    /// Eq 11: phase-1 internode communication time
    /// (`kmers · word_bits / (4 P β_link)` — the factor 4 (not 8) counts
    /// both the send and receive crossings of each node's NIC).
    pub fn t_inter1(&self) -> f64 {
        self.workload.kmers() * self.workload.word_bits()
            / (4.0 * self.p() * self.machine.link_bandwidth)
    }

    /// Eqs 14/15: phase-1 communication time under the chosen composition.
    pub fn t_comm1(&self, comm: CommModel) -> f64 {
        match comm {
            CommModel::Sum => self.t_intra1() + self.t_inter1(),
            CommModel::Max => self.t_intra1().max(self.t_inter1()),
        }
    }

    /// Eq 16: total phase-1 time.
    pub fn t1(&self, comm: CommModel) -> f64 {
        self.t_comp1().max(self.t_comm1(comm))
    }

    /// Eq 12: phase-2 compute time (one op per key byte: the worst case of
    /// an in-place byte-wise radix sort).
    pub fn t_comp2(&self) -> f64 {
        self.workload.kmers() * self.workload.word_bytes()
            / (self.p() * self.machine.node_ops_per_sec)
    }

    /// Phase-2 cache misses per node (Fig 3's predicted series): the
    /// k-mer array streamed once per byte-pass (Eq 13's bracket).
    pub fn misses_phase2(&self) -> f64 {
        self.misses_store() * self.workload.word_bytes()
    }

    /// Eq 13: phase-2 intranode communication time.
    pub fn t_intra2(&self) -> f64 {
        self.misses_phase2() * self.l() / self.machine.mem_bandwidth
    }

    /// Eq 17: total phase-2 time.
    pub fn t2(&self) -> f64 {
        self.t_comp2().max(self.t_intra2())
    }

    /// Eq 18: end-to-end time (phases separated by the global barrier, so
    /// no overlap between them).
    pub fn t_total(&self, comm: CommModel) -> f64 {
        self.t1(comm) + self.t2()
    }

    /// Fig 5's decomposition, assuming no compute/communication overlap:
    /// `[compute, intranode, internode]` seconds across both phases.
    pub fn breakdown(&self) -> [f64; 3] {
        [
            self.t_comp1() + self.t_comp2(),
            self.t_intra1() + self.t_intra2(),
            self.t_inter1(),
        ]
    }

    /// Fig 5's percentages.
    pub fn breakdown_percent(&self) -> [f64; 3] {
        let b = self.breakdown();
        let total: f64 = b.iter().sum();
        [
            100.0 * b[0] / total,
            100.0 * b[1] / total,
            100.0 * b[2] / total,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic30_on(nodes: usize) -> Model {
        // Table V: Synthetic 30 = 357,913,900 reads × 150 bp, k = 31.
        Model::new(
            MachineConfig::phoenix_intel(nodes),
            Workload {
                n_reads: 357_913_900,
                read_len: 150,
                k: 31,
            },
        )
    }

    #[test]
    fn word_width_rounds_to_power_of_two() {
        let w = Workload { n_reads: 1, read_len: 150, k: 31 };
        assert_eq!(w.word_bits(), 64.0);
        let w = Workload { n_reads: 1, read_len: 150, k: 15 };
        assert_eq!(w.word_bits(), 32.0);
        let w = Workload { n_reads: 1, read_len: 150, k: 33 };
        assert_eq!(w.word_bits(), 128.0);
    }

    #[test]
    fn kmer_count_formula() {
        let w = Workload { n_reads: 10, read_len: 150, k: 31 };
        assert_eq!(w.kmers(), 1200.0);
    }

    #[test]
    fn communication_dominates_compute_fig5() {
        // Fig 5: for Synthetic 30 on 32 nodes "time spent on computation is
        // very small"; the workload is bound by data movement.
        let m = synthetic30_on(32);
        let [comp, intra, inter] = m.breakdown_percent();
        assert!(comp < 25.0, "compute {comp:.1}% should be the minority");
        assert!(intra + inter > 75.0);
    }

    #[test]
    fn doubling_nodes_halves_phase_times() {
        let m8 = synthetic30_on(8);
        let m16 = synthetic30_on(16);
        for (a, b) in [
            (m8.t_comp1(), m16.t_comp1()),
            (m8.t_inter1(), m16.t_inter1()),
            (m8.t_comp2(), m16.t_comp2()),
        ] {
            assert!((a / b - 2.0).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn sum_model_upper_bounds_max_model() {
        let m = synthetic30_on(8);
        assert!(m.t_comm1(CommModel::Sum) >= m.t_comm1(CommModel::Max));
        assert!(m.t_total(CommModel::Sum) >= m.t_total(CommModel::Max));
    }

    #[test]
    fn phase2_misses_are_word_bytes_times_store_misses() {
        let m = synthetic30_on(8);
        assert!((m.misses_phase2() / m.misses_store() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn total_is_sum_of_phases() {
        let m = synthetic30_on(8);
        let t = m.t_total(CommModel::Sum);
        assert!((t - (m.t1(CommModel::Sum) + m.t2())).abs() < 1e-12);
    }

    #[test]
    fn model_times_are_positive_and_finite() {
        let m = synthetic30_on(256);
        for v in [
            m.t_comp1(),
            m.t_intra1(),
            m.t_inter1(),
            m.t_comp2(),
            m.t_intra2(),
            m.t_total(CommModel::Max),
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
    }
}
