//! The BSP vs FA-BSP closed forms of §III (Eqs 5–8).
//!
//! These are Θ-expressions; we evaluate them with unit constants, which is
//! enough for the qualitative conclusions the paper draws from them: the
//! BSP synchronization term grows as `τ (mn / bP) log P` while FA-BSP pays
//! a single `τ log P`, so `T_BSP − T_FABSP > 0` always (Eq 8) and the gap
//! widens with input size and latency.

/// Eq 5: `T_BSP = mn/P + τ (mn / bP) log P + μ m n log P`.
pub fn t_bsp(tau: f64, mu: f64, mn: f64, p: f64, b: f64) -> f64 {
    assert!(p >= 1.0 && b >= 1.0 && mn >= 0.0);
    let logp = p.log2().max(1.0);
    mn / p + tau * (mn / (b * p)).ceil() * logp + mu * mn * logp / p
}

/// Eq 6: `T_FABSP = mn/P + τ log P + μ m n log P`.
pub fn t_fabsp(tau: f64, mu: f64, mn: f64, p: f64) -> f64 {
    assert!(p >= 1.0 && mn >= 0.0);
    let logp = p.log2().max(1.0);
    mn / p + tau * logp + mu * mn * logp / p
}

/// Eq 7: the gap `Θ(τ (mn / bP) log P)` (minus FA-BSP's single sync).
pub fn bsp_minus_fabsp(tau: f64, mu: f64, mn: f64, p: f64, b: f64) -> f64 {
    t_bsp(tau, mu, mn, p, b) - t_fabsp(tau, mu, mn, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = 2e-6;
    const MU: f64 = 1e-9;

    #[test]
    fn fabsp_never_slower_eq8() {
        for mn in [1e6, 1e9, 1e12] {
            for p in [2.0, 64.0, 6144.0] {
                for b in [1e4, 1e6, 1e9] {
                    assert!(
                        bsp_minus_fabsp(TAU, MU, mn, p, b) >= 0.0,
                        "mn={mn} p={p} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn gap_grows_with_input() {
        let small = bsp_minus_fabsp(TAU, MU, 1e8, 64.0, 1e5);
        let large = bsp_minus_fabsp(TAU, MU, 1e10, 64.0, 1e5);
        assert!(large > small);
    }

    #[test]
    fn gap_shrinks_with_batch_size() {
        let tight = bsp_minus_fabsp(TAU, MU, 1e10, 64.0, 1e4);
        let loose = bsp_minus_fabsp(TAU, MU, 1e10, 64.0, 1e8);
        assert!(tight > loose, "bigger batches mean fewer syncs");
    }

    #[test]
    fn single_batch_bsp_still_pays_one_sync() {
        // With b ≥ mn/P, BSP does exactly one round: the gap collapses to
        // ~zero (both pay one τ log P).
        let gap = bsp_minus_fabsp(TAU, MU, 1e6, 4.0, 1e9);
        assert!(gap.abs() < 1e-3);
    }
}
