//! Property tests: every sorter agrees with `std` sort; accumulate is a
//! faithful histogram.

use dakc_sort::{
    accumulate, accumulate_into, accumulate_weighted, accumulate_weighted_into,
    distinct_runs_estimate, hybrid_sort, hybrid_sort_from, lsd_radix_sort, lsd_radix_sort_by,
    msd_radix_sort, parallel_radix_sort, quicksort, RadixKey,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn lsd_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        lsd_radix_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn lsd_u128_matches_std(mut v in prop::collection::vec(any::<u128>(), 0..800)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        lsd_radix_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn msd_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        msd_radix_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn hybrid_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        hybrid_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn quicksort_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort(&mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn parallel_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..40_000), threads in 1usize..8) {
        let mut expect = v.clone();
        expect.sort_unstable();
        parallel_radix_sort(&mut v, threads);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn lsd_by_key_stability(mut v in prop::collection::vec((0u8..4, any::<u32>()), 0..500)) {
        // Tag with original index; after sorting by the small key, equal
        // keys must preserve index order (stability).
        let tagged: Vec<(u8, usize)> = v.iter().enumerate().map(|(i, &(k, _))| (k, i)).collect();
        let mut sorted = tagged.clone();
        lsd_radix_sort_by(&mut sorted, |t| t.0 as u32);
        for w in sorted.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
        v.clear(); // silence unused-mut lint paths
    }

    #[test]
    fn accumulate_is_histogram(v in prop::collection::vec(0u64..50, 0..2000)) {
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let acc = accumulate(&sorted);
        // Compare against a HashMap histogram.
        let mut hist: HashMap<u64, u32> = HashMap::new();
        for x in &v {
            *hist.entry(*x).or_default() += 1;
        }
        prop_assert_eq!(acc.len(), hist.len());
        for (val, count) in &acc {
            prop_assert_eq!(hist[val], *count);
        }
        // Output sorted strictly by value.
        prop_assert!(acc.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn accumulate_weighted_equals_expanding(pairs in prop::collection::vec((0u64..20, 1u32..5), 0..300)) {
        let mut sorted = pairs.clone();
        sorted.sort_unstable_by_key(|p| p.0);
        let weighted = accumulate_weighted(&sorted);
        // Expand pairs into repeats and accumulate plainly.
        let mut expanded: Vec<u64> = Vec::new();
        for &(v, c) in &sorted {
            expanded.extend(std::iter::repeat_n(v, c as usize));
        }
        let plain = accumulate(&expanded);
        prop_assert_eq!(weighted, plain);
    }

    #[test]
    fn accumulate_into_matches_owning(v in prop::collection::vec(0u64..50, 0..2000)) {
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let mut buf: Vec<(u64, u32)> = vec![(99, 99); 7]; // stale content must be cleared
        accumulate_into(&sorted, &mut buf);
        prop_assert_eq!(buf, accumulate(&sorted));
    }

    #[test]
    fn accumulate_weighted_into_matches_owning(pairs in prop::collection::vec((0u64..20, 1u32..5), 0..300)) {
        let mut sorted = pairs.clone();
        sorted.sort_unstable_by_key(|p| p.0);
        let mut buf: Vec<(u64, u32)> = vec![(1, 1)];
        accumulate_weighted_into(&sorted, &mut buf);
        prop_assert_eq!(buf, accumulate_weighted(&sorted));
    }

    #[test]
    fn distinct_estimate_never_exceeds_len(v in prop::collection::vec(0u64..64, 0..3000)) {
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let est = distinct_runs_estimate(&sorted);
        prop_assert!(est <= sorted.len());
        if !sorted.is_empty() {
            prop_assert!(est >= 1);
        }
    }

    #[test]
    fn hybrid_from_top_level_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..3000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        hybrid_sort_from(&mut v, <u64 as RadixKey>::LEVELS - 1);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn hybrid_from_respects_constant_prefix(low in prop::collection::vec(any::<u16>(), 0..3000), hi in any::<u16>()) {
        // Constant top six bytes, so sorting may start at level 1.
        let mut v: Vec<u64> = low.iter().map(|&x| ((hi as u64) << 48) | x as u64).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        hybrid_sort_from(&mut v, 1);
        prop_assert_eq!(v, expect);
    }
}
