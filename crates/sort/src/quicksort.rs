//! Median-of-three quicksort.
//!
//! The sort the *original* PakMan k-mer kernel used (paper §VI-A, Fig 6).
//! We keep it deliberately classic — recursive, comparison-based, insertion
//! sort below a small cutoff — so the Figure 6 experiment ("replacing
//! quicksort with radix sort speeds PakMan's kernel ≈2×") reruns against a
//! faithful comparator rather than against `std`'s heavily engineered
//! pattern-defeating sort.

/// Cutoff below which insertion sort finishes a partition.
const INSERTION_CUTOFF: usize = 24;

/// Sorts `data` ascending in place (unstable) with median-of-three
/// quicksort.
pub fn quicksort<T: Ord + Copy>(data: &mut [T]) {
    quicksort_rec(data, 0);
}

fn quicksort_rec<T: Ord + Copy>(data: &mut [T], depth: u32) {
    let n = data.len();
    if n <= INSERTION_CUTOFF {
        insertion_sort(data);
        return;
    }
    // Depth guard: degrade to heap-ish behaviour by switching to the
    // guaranteed-n·log n std sort rather than risking stack overflow on
    // adversarial inputs (e.g. the heavy-hitter arrays of complex genomes).
    if depth > 2 * (usize::BITS - n.leading_zeros()) {
        data.sort_unstable();
        return;
    }

    // Median-of-three pivot of first, middle, last.
    let mid = n / 2;
    let (a, b, c) = (data[0], data[mid], data[n - 1]);
    let pivot = median3(a, b, c);

    // Three-way (Dutch national flag) partition: essential for the massive
    // duplicate runs k-mer data produces.
    let (mut lo, mut i, mut hi) = (0usize, 0usize, n);
    while i < hi {
        match data[i].cmp(&pivot) {
            std::cmp::Ordering::Less => {
                data.swap(lo, i);
                lo += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                hi -= 1;
                data.swap(i, hi);
            }
            std::cmp::Ordering::Equal => i += 1,
        }
    }
    let (left, rest) = data.split_at_mut(lo);
    let right = &mut rest[hi - lo..];
    quicksort_rec(left, depth + 1);
    quicksort_rec(right, depth + 1);
}

fn median3<T: Ord>(a: T, b: T, c: T) -> T {
    if a < b {
        if b < c {
            b
        } else if a < c {
            c
        } else {
            a
        }
    } else if a < c {
        a
    } else if b < c {
        c
    } else {
        b
    }
}

fn insertion_sort<T: Ord + Copy>(data: &mut [T]) {
    for i in 1..data.len() {
        let x = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > x {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(n: usize, mut x: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn random_matches_std() {
        let mut v = xorshift_vec(50_000, 31337);
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorted_and_reverse() {
        let mut v: Vec<u64> = (0..5_000).collect();
        quicksort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let mut v: Vec<u64> = (0..5_000).rev().collect();
        quicksort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn heavy_duplicates() {
        let mut v: Vec<u64> = (0..50_000).map(|i| i % 3).collect();
        quicksort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn all_equal_terminates() {
        let mut v = vec![42u64; 100_000];
        quicksort(&mut v);
        assert!(v.iter().all(|&x| x == 42));
    }

    #[test]
    fn median3_cases() {
        assert_eq!(median3(1, 2, 3), 2);
        assert_eq!(median3(3, 2, 1), 2);
        assert_eq!(median3(2, 1, 3), 2);
        assert_eq!(median3(1, 3, 2), 2);
        assert_eq!(median3(2, 3, 1), 2);
        assert_eq!(median3(3, 1, 2), 2);
        assert_eq!(median3(1, 1, 2), 1);
    }

    #[test]
    fn tiny_inputs() {
        let mut v: Vec<u64> = vec![];
        quicksort(&mut v);
        let mut v = vec![1u64];
        quicksort(&mut v);
        let mut v = vec![2u64, 1];
        quicksort(&mut v);
        assert_eq!(v, vec![1, 2]);
    }
}
