//! The `Accumulate` sweep of Algorithm 1.
//!
//! Sweeps a *sorted* array once, emitting `{value, run length}` pairs. The
//! weighted variant consumes `{value, count}` pairs sorted by value —
//! exactly what the owner PE receives on the L3 HEAVY channel, where
//! senders pre-accumulated their local heavy hitters.
//!
//! Two allocation disciplines are offered: the owning functions
//! ([`accumulate`], [`accumulate_weighted`]) reserve output capacity from a
//! sampled distinct-run estimate so the output vector is sized in one
//! allocation, and the `_into` variants ([`accumulate_into`],
//! [`accumulate_weighted_into`]) refill a caller-owned buffer so hot loops
//! (the threaded engine's L3 drain runs once per `C3` k-mers) allocate
//! nothing at steady state.

/// Estimates the number of distinct runs in a sorted slice by sampling up
/// to 512 adjacent pairs at a fixed stride and extrapolating the boundary
/// density. Always within `1..=len` for non-empty input; exact for slices
/// with at most 513 elements.
pub fn distinct_runs_estimate<T: Ord>(sorted: &[T]) -> usize {
    let n = sorted.len();
    if n <= 1 {
        return n;
    }
    let pairs = n - 1;
    let stride = pairs.div_ceil(512);
    let mut sampled = 0usize;
    let mut boundaries = 0usize;
    let mut i = 0;
    while i < pairs {
        sampled += 1;
        if sorted[i] != sorted[i + 1] {
            boundaries += 1;
        }
        i += stride;
    }
    // runs = boundaries + 1, extrapolated from the sampled fraction.
    (boundaries * pairs / sampled + 1).min(n)
}

/// Collapses a sorted slice into `(value, frequency)` pairs.
///
/// Counts saturate at `u32::MAX` (the paper counts "from 1 to the maximum
/// supported count").
///
/// # Panics
///
/// Debug builds panic if `sorted` is not ascending.
pub fn accumulate<T: Ord + Copy>(sorted: &[T]) -> Vec<(T, u32)> {
    let mut out: Vec<(T, u32)> = Vec::with_capacity(distinct_runs_estimate(sorted));
    accumulate_append(sorted, &mut out);
    out
}

/// [`accumulate`] into a caller-owned buffer: clears `out` and refills it,
/// reusing its capacity. The allocation-free path for per-flush sweeps.
pub fn accumulate_into<T: Ord + Copy>(sorted: &[T], out: &mut Vec<(T, u32)>) {
    out.clear();
    accumulate_append(sorted, out);
}

fn accumulate_append<T: Ord + Copy>(sorted: &[T], out: &mut Vec<(T, u32)>) {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    for &v in sorted {
        match out.last_mut() {
            Some((last, c)) if *last == v => *c = c.saturating_add(1),
            _ => out.push((v, 1)),
        }
    }
}

/// Collapses `(value, count)` pairs sorted by value, summing counts of
/// equal values (saturating).
pub fn accumulate_weighted<T: Ord + Copy>(sorted_pairs: &[(T, u32)]) -> Vec<(T, u32)> {
    let mut out: Vec<(T, u32)> = Vec::with_capacity(distinct_runs_estimate(sorted_pairs));
    accumulate_weighted_append(sorted_pairs, &mut out);
    out
}

/// [`accumulate_weighted`] into a caller-owned buffer: clears `out` and
/// refills it, reusing its capacity.
pub fn accumulate_weighted_into<T: Ord + Copy>(
    sorted_pairs: &[(T, u32)],
    out: &mut Vec<(T, u32)>,
) {
    out.clear();
    accumulate_weighted_append(sorted_pairs, out);
}

fn accumulate_weighted_append<T: Ord + Copy>(sorted_pairs: &[(T, u32)], out: &mut Vec<(T, u32)>) {
    debug_assert!(
        sorted_pairs.windows(2).all(|w| w[0].0 <= w[1].0),
        "input must be sorted by value"
    );
    for &(v, c) in sorted_pairs {
        match out.last_mut() {
            Some((last, total)) if *last == v => *total = total.saturating_add(c),
            _ => out.push((v, c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_runs() {
        assert_eq!(accumulate(&[1, 1, 2, 3, 3, 3]), vec![(1, 2), (2, 1), (3, 3)]);
    }

    #[test]
    fn empty_input() {
        assert!(accumulate::<u64>(&[]).is_empty());
        assert!(accumulate_weighted::<u64>(&[]).is_empty());
    }

    #[test]
    fn single_run() {
        assert_eq!(accumulate(&[5u64; 10]), vec![(5, 10)]);
    }

    #[test]
    fn all_distinct() {
        let v: Vec<u64> = (0..100).collect();
        let acc = accumulate(&v);
        assert_eq!(acc.len(), 100);
        assert!(acc.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn weighted_sums_runs() {
        let pairs = [(1u64, 2), (1, 3), (2, 1), (5, 4), (5, 1)];
        assert_eq!(accumulate_weighted(&pairs), vec![(1, 5), (2, 1), (5, 5)]);
    }

    #[test]
    fn weighted_saturates() {
        let pairs = [(1u64, u32::MAX), (1, 10)];
        assert_eq!(accumulate_weighted(&pairs), vec![(1, u32::MAX)]);
    }

    #[test]
    fn accumulate_total_preserved() {
        let v = [3u64, 3, 3, 7, 9, 9];
        let total: u64 = accumulate(&v).iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, v.len() as u64);
    }

    #[test]
    fn into_variants_reuse_buffer() {
        let mut buf: Vec<(u64, u32)> = Vec::new();
        accumulate_into(&[1, 1, 2], &mut buf);
        assert_eq!(buf, vec![(1, 2), (2, 1)]);
        let cap = buf.capacity();
        accumulate_into(&[7, 7], &mut buf);
        assert_eq!(buf, vec![(7, 2)]);
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");

        let mut wbuf: Vec<(u64, u32)> = Vec::new();
        accumulate_weighted_into(&[(1, 2), (1, 3), (4, 1)], &mut wbuf);
        assert_eq!(wbuf, vec![(1, 5), (4, 1)]);
        accumulate_weighted_into(&[], &mut wbuf);
        assert!(wbuf.is_empty());
    }

    #[test]
    fn distinct_estimate_bounds() {
        assert_eq!(distinct_runs_estimate::<u64>(&[]), 0);
        assert_eq!(distinct_runs_estimate(&[9u64]), 1);
        // Exact on small inputs.
        assert_eq!(distinct_runs_estimate(&[1u64, 1, 2, 3, 3]), 3);
        assert_eq!(distinct_runs_estimate(&[5u64; 100]), 1);
        // Large all-distinct input: estimate must land on n (every sampled
        // pair is a boundary) and never exceed it.
        let v: Vec<u64> = (0..100_000).collect();
        assert_eq!(distinct_runs_estimate(&v), v.len());
        // Large constant input: estimate is the single run.
        let c = vec![42u64; 100_000];
        assert_eq!(distinct_runs_estimate(&c), 1);
    }
}
