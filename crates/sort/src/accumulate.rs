//! The `Accumulate` sweep of Algorithm 1.
//!
//! Sweeps a *sorted* array once, emitting `{value, run length}` pairs. The
//! weighted variant consumes `{value, count}` pairs sorted by value —
//! exactly what the owner PE receives on the L3 HEAVY channel, where
//! senders pre-accumulated their local heavy hitters.

/// Collapses a sorted slice into `(value, frequency)` pairs.
///
/// Counts saturate at `u32::MAX` (the paper counts "from 1 to the maximum
/// supported count").
///
/// # Panics
///
/// Debug builds panic if `sorted` is not ascending.
pub fn accumulate<T: Ord + Copy>(sorted: &[T]) -> Vec<(T, u32)> {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let mut out: Vec<(T, u32)> = Vec::new();
    for &v in sorted {
        match out.last_mut() {
            Some((last, c)) if *last == v => *c = c.saturating_add(1),
            _ => out.push((v, 1)),
        }
    }
    out
}

/// Collapses `(value, count)` pairs sorted by value, summing counts of
/// equal values (saturating).
pub fn accumulate_weighted<T: Ord + Copy>(sorted_pairs: &[(T, u32)]) -> Vec<(T, u32)> {
    debug_assert!(
        sorted_pairs.windows(2).all(|w| w[0].0 <= w[1].0),
        "input must be sorted by value"
    );
    let mut out: Vec<(T, u32)> = Vec::new();
    for &(v, c) in sorted_pairs {
        match out.last_mut() {
            Some((last, total)) if *last == v => *total = total.saturating_add(c),
            _ => out.push((v, c)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_runs() {
        assert_eq!(accumulate(&[1, 1, 2, 3, 3, 3]), vec![(1, 2), (2, 1), (3, 3)]);
    }

    #[test]
    fn empty_input() {
        assert!(accumulate::<u64>(&[]).is_empty());
        assert!(accumulate_weighted::<u64>(&[]).is_empty());
    }

    #[test]
    fn single_run() {
        assert_eq!(accumulate(&[5u64; 10]), vec![(5, 10)]);
    }

    #[test]
    fn all_distinct() {
        let v: Vec<u64> = (0..100).collect();
        let acc = accumulate(&v);
        assert_eq!(acc.len(), 100);
        assert!(acc.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn weighted_sums_runs() {
        let pairs = [(1u64, 2), (1, 3), (2, 1), (5, 4), (5, 1)];
        assert_eq!(accumulate_weighted(&pairs), vec![(1, 5), (2, 1), (5, 5)]);
    }

    #[test]
    fn weighted_saturates() {
        let pairs = [(1u64, u32::MAX), (1, 10)];
        assert_eq!(accumulate_weighted(&pairs), vec![(1, u32::MAX)]);
    }

    #[test]
    fn accumulate_total_preserved() {
        let v = [3u64, 3, 3, 7, 9, 9];
        let total: u64 = accumulate(&v).iter().map(|&(_, c)| c as u64).sum();
        assert_eq!(total, v.len() as u64);
    }
}
