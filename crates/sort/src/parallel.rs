//! Multi-threaded radix sort on scoped threads.
//!
//! This is the intra-node "hybrid parallelism" substrate of the HySortK and
//! KMC3 baselines (paper §II): a two-phase bucket sort —
//!
//! 1. **Partition** (parallel over input chunks): each worker splits its
//!    chunk into 256 thread-local buckets by the most significant digit.
//! 2. **Sort** (parallel over buckets): each of the 256 output buckets is a
//!    contiguous, disjoint region of the output; workers concatenate the
//!    per-thread pieces for their bucket and finish it with the sequential
//!    [`crate::hybrid_sort`].
//!
//! Both phases are safe Rust: phase 1 writes only thread-local vectors and
//! phase 2 hands each worker disjoint `&mut` bucket slices obtained by
//! `split_at_mut`, so data-race freedom is by construction (the Rayon
//! design rule), with no `unsafe` scatter.

use crate::{hybrid_sort, RadixKey};

/// Sorts `data` ascending using up to `threads` worker threads.
///
/// Falls back to the sequential hybrid sort for small inputs or
/// `threads <= 1`.
pub fn parallel_radix_sort<K: RadixKey>(data: &mut Vec<K>, threads: usize) {
    const PARALLEL_CUTOFF: usize = 1 << 14;
    if threads <= 1 || data.len() < PARALLEL_CUTOFF {
        hybrid_sort(data);
        return;
    }
    let threads = threads.min(data.len() / 1024).max(1);
    let top = K::LEVELS - 1;

    // Phase 1: parallel partition into per-thread bucket vectors.
    let chunk = data.len().div_ceil(threads);
    let chunks: Vec<&[K]> = data.chunks(chunk).collect();
    let partitioned: Vec<Vec<Vec<K>>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| {
                s.spawn(move || {
                    let mut buckets: Vec<Vec<K>> = vec![Vec::new(); 256];
                    for &k in *c {
                        buckets[k.radix_at(top) as usize].push(k);
                    }
                    buckets
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("partition worker")).collect()
    });

    // Bucket sizes across all threads.
    let mut sizes = [0usize; 256];
    for per_thread in &partitioned {
        for (b, v) in per_thread.iter().enumerate() {
            sizes[b] += v.len();
        }
    }

    // Carve the output into 256 disjoint mutable bucket slices.
    let mut rest: &mut [K] = data.as_mut_slice();
    let mut bucket_slices: Vec<&mut [K]> = Vec::with_capacity(256);
    for &sz in &sizes {
        let (head, tail) = rest.split_at_mut(sz);
        bucket_slices.push(head);
        rest = tail;
    }
    debug_assert!(rest.is_empty());

    // Phase 2: fill and sort each bucket in parallel. Buckets are handed
    // out round-robin so one worker never owns all the big ones.
    std::thread::scope(|s| {
        let partitioned = &partitioned;
        let mut work: Vec<(usize, &mut [K])> = bucket_slices.into_iter().enumerate().collect();
        let mut lanes: Vec<Vec<(usize, &mut [K])>> = (0..threads).map(|_| Vec::new()).collect();
        // Largest buckets first, round-robin across lanes.
        work.sort_by_key(|(_, s)| std::cmp::Reverse(s.len()));
        for (i, item) in work.into_iter().enumerate() {
            lanes[i % threads].push(item);
        }
        for lane in lanes {
            s.spawn(move || {
                for (b, slice) in lane {
                    let mut at = 0usize;
                    for per_thread in partitioned {
                        let piece = &per_thread[b];
                        slice[at..at + piece.len()].copy_from_slice(piece);
                        at += piece.len();
                    }
                    debug_assert_eq!(at, slice.len());
                    hybrid_sort(slice);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(n: usize, mut x: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn matches_sequential_on_random() {
        for threads in [2, 4, 8] {
            let mut v = xorshift_vec(100_000, 42);
            let mut expect = v.clone();
            expect.sort_unstable();
            parallel_radix_sort(&mut v, threads);
            assert_eq!(v, expect, "threads = {threads}");
        }
    }

    #[test]
    fn small_input_falls_back() {
        let mut v = vec![3u64, 1, 2];
        parallel_radix_sort(&mut v, 8);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn single_thread_falls_back() {
        let mut v = xorshift_vec(50_000, 7);
        let mut expect = v.clone();
        expect.sort_unstable();
        parallel_radix_sort(&mut v, 1);
        assert_eq!(v, expect);
    }

    #[test]
    fn skewed_top_byte() {
        // All keys share the top byte: one giant bucket.
        let mut v: Vec<u64> = xorshift_vec(60_000, 9)
            .into_iter()
            .map(|x| x & 0x00FF_FFFF_FFFF_FFFF)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        parallel_radix_sort(&mut v, 4);
        assert_eq!(v, expect);
    }

    #[test]
    fn u128_parallel() {
        let mut v: Vec<u128> = xorshift_vec(40_000, 21)
            .into_iter()
            .map(|x| (x as u128) << 60)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        parallel_radix_sort(&mut v, 4);
        assert_eq!(v, expect);
    }
}
