//! Least-significant-digit radix sort.
//!
//! The stable out-of-place counting sort the distributed counters run on
//! their received k-mer arrays. Runs `K::LEVELS` passes of 256-way counting
//! sort, ping-ponging between the input and one scratch buffer, and skips
//! any pass whose digit is constant across the whole array — for `k = 31`
//! k-mers the top two bits of every word are zero, so the top pass is
//! usually free, matching the "skip trivial passes" behaviour of RADULS-style
//! sorters the paper's baselines use.

use crate::RadixKey;

/// Sorts `data` ascending, stably, in `O(LEVELS · n)` time and `n` extra
/// space.
pub fn lsd_radix_sort<K: RadixKey>(data: &mut Vec<K>) {
    lsd_radix_sort_by(data, |k| *k);
}

/// Sorts arbitrary records ascending by a [`RadixKey`] extracted from each,
/// stably. This is what sorts `{k-mer, count}` pairs by k-mer on the L3
/// heavy-hitter path.
pub fn lsd_radix_sort_by<T: Copy, K: RadixKey>(data: &mut Vec<T>, key: impl Fn(&T) -> K) {
    if data.len() <= 1 {
        return;
    }
    let mut scratch: Vec<T> = Vec::with_capacity(data.len());
    // Safety-free ping-pong: `src` and `dst` alternate roles per pass.
    let mut in_data = true; // true: current contents live in `data`
    scratch.resize(data.len(), data[0]);

    for level in 0..K::LEVELS {
        let (src, dst): (&mut Vec<T>, &mut Vec<T>) = if in_data {
            (data, &mut scratch)
        } else {
            (&mut scratch, data)
        };

        let mut hist = [0usize; 256];
        for t in src.iter() {
            hist[key(t).radix_at(level) as usize] += 1;
        }
        // Constant digit ⇒ the pass is the identity permutation; skip it.
        if hist.contains(&src.len()) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut sum = 0usize;
        for (o, &c) in offsets.iter_mut().zip(hist.iter()) {
            *o = sum;
            sum += c;
        }
        for t in src.iter() {
            let d = key(t).radix_at(level) as usize;
            dst[offsets[d]] = *t;
            offsets[d] += 1;
        }
        in_data = !in_data;
    }
    if !in_data {
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_u64() {
        let mut v: Vec<u64> = vec![5, 3, 3, 99, 0, u64::MAX, 7];
        lsd_radix_sort(&mut v);
        assert_eq!(v, vec![0, 3, 3, 5, 7, 99, u64::MAX]);
    }

    #[test]
    fn sorts_u128() {
        let mut v: Vec<u128> = vec![1u128 << 100, 1, 1u128 << 64, 0];
        lsd_radix_sort(&mut v);
        assert_eq!(v, vec![0, 1, 1u128 << 64, 1u128 << 100]);
    }

    #[test]
    fn empty_and_singleton() {
        let mut v: Vec<u64> = vec![];
        lsd_radix_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42u64];
        lsd_radix_sort(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn already_sorted_unchanged() {
        let mut v: Vec<u64> = (0..1000).collect();
        lsd_radix_sort(&mut v);
        assert_eq!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_sorted() {
        let mut v: Vec<u64> = (0..1000).rev().collect();
        lsd_radix_sort(&mut v);
        assert_eq!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn sort_by_key_is_stable() {
        // Pairs (key, original index); equal keys must keep index order.
        let mut v: Vec<(u64, u32)> = vec![(2, 0), (1, 1), (2, 2), (1, 3), (2, 4)];
        lsd_radix_sort_by(&mut v, |p| p.0);
        assert_eq!(v, vec![(1, 1), (1, 3), (2, 0), (2, 2), (2, 4)]);
    }

    #[test]
    fn matches_std_sort_on_random_data() {
        // Deterministic xorshift fill.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut v: Vec<u64> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        lsd_radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn low_entropy_keys_2bit_encoded() {
        // Only low 2k bits populated, like real k-mers with k = 9.
        let mut x = 7u64;
        let mut v: Vec<u64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x & ((1 << 18) - 1)
            })
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        lsd_radix_sort(&mut v);
        assert_eq!(v, expect);
    }
}
