//! In-place MSD ("American flag") radix sort.
//!
//! Partitions by the most significant digit using cycle-chasing swaps (no
//! scratch buffer), then recurses into each bucket. This is the in-place
//! radix sort the paper's hybrid sorter (§V, [47]) starts with; the paper's
//! phase-2 model assumes its worst case of one pass per key byte.

use crate::RadixKey;

/// Buckets smaller than this are insertion-sorted instead of recursed.
const INSERTION_CUTOFF: usize = 32;

/// Sorts `data` ascending, in place (unstable), using American-flag
/// partitioning from the most significant digit down.
pub fn msd_radix_sort<K: RadixKey>(data: &mut [K]) {
    if data.len() > 1 {
        sort_level(data, K::LEVELS - 1);
    }
}

fn sort_level<K: RadixKey>(data: &mut [K], level: usize) {
    if data.len() <= INSERTION_CUTOFF {
        insertion_sort(data);
        return;
    }

    let mut hist = [0usize; 256];
    for k in data.iter() {
        hist[k.radix_at(level) as usize] += 1;
    }

    // A constant digit contributes nothing; descend directly.
    if hist.contains(&data.len()) {
        if level > 0 {
            sort_level(data, level - 1);
        } else {
            // All keys equal on every remaining digit ⇒ already sorted.
        }
        return;
    }

    // Bucket start offsets.
    let mut start = [0usize; 256];
    let mut sum = 0usize;
    for (s, &c) in start.iter_mut().zip(hist.iter()) {
        *s = sum;
        sum += c;
    }
    let bucket_start = start; // immutable copy for recursion bounds
    let mut next = start; // next free slot per bucket
    let mut end = [0usize; 256];
    for (e, (&s, &c)) in end.iter_mut().zip(bucket_start.iter().zip(hist.iter())) {
        *e = s + c;
    }

    // Cycle-chasing permutation: place each element into its bucket.
    for b in 0..256 {
        while next[b] < end[b] {
            let mut i = next[b];
            loop {
                let d = data[i].radix_at(level) as usize;
                if d == b {
                    next[b] += 1;
                    break;
                }
                data.swap(i, next[d]);
                next[d] += 1;
                i = next[b];
                // `i` still points at the slot we must fill for bucket b.
            }
        }
    }

    if level > 0 {
        for b in 0..256 {
            let (lo, hi) = (bucket_start[b], end[b]);
            if hi - lo > 1 {
                sort_level(&mut data[lo..hi], level - 1);
            }
        }
    }
}

/// Binary insertion-free classic insertion sort for tiny buckets.
fn insertion_sort<K: Ord + Copy>(data: &mut [K]) {
    for i in 1..data.len() {
        let x = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > x {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(n: usize, mut x: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn sorts_small() {
        let mut v: Vec<u64> = vec![9, 1, 4, 1, 0];
        msd_radix_sort(&mut v);
        assert_eq!(v, vec![0, 1, 1, 4, 9]);
    }

    #[test]
    fn sorts_large_random() {
        let mut v = xorshift_vec(20_000, 0xDEAD_BEEF);
        let mut expect = v.clone();
        expect.sort_unstable();
        msd_radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_u128() {
        let mut v: Vec<u128> = xorshift_vec(5_000, 42)
            .into_iter()
            .map(|x| (x as u128) << 64 | (x.rotate_left(17) as u128))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        msd_radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn handles_duplicates_heavy() {
        // Mimics a heavy-hitter k-mer distribution: 90% one value.
        let mut v: Vec<u64> = Vec::new();
        for i in 0..10_000u64 {
            v.push(if i % 10 == 0 { i } else { 0xAAAA });
        }
        let mut expect = v.clone();
        expect.sort_unstable();
        msd_radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn empty_and_tiny() {
        let mut v: Vec<u64> = vec![];
        msd_radix_sort(&mut v);
        let mut v = vec![3u64, 1];
        msd_radix_sort(&mut v);
        assert_eq!(v, vec![1, 3]);
    }

    #[test]
    fn all_equal() {
        let mut v = vec![7u64; 1000];
        msd_radix_sort(&mut v);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn low_entropy_kmer_like() {
        let mut v: Vec<u64> = xorshift_vec(8_000, 99)
            .into_iter()
            .map(|x| x & ((1 << 62) - 1)) // k = 31 two-bit window
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        msd_radix_sort(&mut v);
        assert_eq!(v, expect);
    }
}
