//! # dakc-sort — the sorting substrate
//!
//! Every k-mer counter in this workspace is *sorting-based* (paper §III-A):
//! count = sort the k-mer array, then sweep it accumulating run lengths.
//! This crate provides the sorting algorithms the paper's systems use:
//!
//! * [`lsd`] — least-significant-digit radix sort (the `Θ(mn)` workhorse of
//!   KMC3, HySortK, PakMan\* and DAKC), for any [`RadixKey`] and for
//!   arbitrary records via a key extractor.
//! * [`msd`] — in-place most-significant-digit ("American flag") radix sort.
//! * [`hybrid`] — the ska-sort-style hybrid the paper cites ([47]): MSD
//!   radix with a comparison-sort fallback heuristic for small buckets and a
//!   pre-pass that skips already-sorted input (the behaviour §V-A relies on
//!   when the model over-predicts phase-2 cache misses).
//! * [`parallel`] — multi-threaded radix sort on scoped threads
//!   (the intra-node hybrid parallelism of HySortK and KMC3).
//! * [`quicksort`] — a classic median-of-three quicksort: the sort used by
//!   the *original* PakMan kernel, kept as a baseline so Figure 6's
//!   "radix sort makes PakMan ≈2× faster" experiment can be rerun.
//! * [`accumulate`] — the `Accumulate` sweep of Algorithm 1, plus the
//!   weighted variant the L3 heavy-hitter path needs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod accumulate;
pub mod hybrid;
pub mod lsd;
pub mod msd;
pub mod parallel;
pub mod quicksort;

pub use accumulate::{
    accumulate, accumulate_into, accumulate_weighted, accumulate_weighted_into,
    distinct_runs_estimate,
};
pub use hybrid::{hybrid_sort, hybrid_sort_from};
pub use lsd::{lsd_radix_sort, lsd_radix_sort_by};
pub use msd::msd_radix_sort;
pub use parallel::parallel_radix_sort;
pub use quicksort::quicksort;

/// A fixed-width unsigned key that radix sorts can digit-decompose.
///
/// `LEVELS` is the number of 8-bit digits; `radix_at(0)` is the *least*
/// significant byte.
pub trait RadixKey: Copy + Ord + Send + Sync + 'static {
    /// Number of 8-bit digit levels in the key.
    const LEVELS: usize;

    /// The 8-bit digit at `level` (0 = least significant).
    fn radix_at(self, level: usize) -> u8;
}

impl RadixKey for u32 {
    const LEVELS: usize = 4;

    #[inline]
    fn radix_at(self, level: usize) -> u8 {
        (self >> (8 * level)) as u8
    }
}

impl RadixKey for u64 {
    const LEVELS: usize = 8;

    #[inline]
    fn radix_at(self, level: usize) -> u8 {
        (self >> (8 * level)) as u8
    }
}

impl RadixKey for u128 {
    const LEVELS: usize = 16;

    #[inline]
    fn radix_at(self, level: usize) -> u8 {
        (self >> (8 * level)) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_digits_of_u64() {
        let x: u64 = 0x0102_0304_0506_0708;
        assert_eq!(x.radix_at(0), 0x08);
        assert_eq!(x.radix_at(7), 0x01);
    }

    #[test]
    fn radix_digits_of_u128() {
        let x: u128 = 0xAB << 120;
        assert_eq!(x.radix_at(15), 0xAB);
        assert_eq!(x.radix_at(0), 0);
    }

    #[test]
    fn radix_digits_of_u32() {
        let x: u32 = 0xDEAD_BEEF;
        assert_eq!(x.radix_at(0), 0xEF);
        assert_eq!(x.radix_at(3), 0xDE);
    }
}
