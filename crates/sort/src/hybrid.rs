//! The hybrid sorter of the paper (§V phase 2, citation [47]).
//!
//! Skarupke's "I wrote a faster sorting algorithm" design: start with
//! in-place MSD radix partitioning, but fall back to a comparison sort when
//! a bucket is small or when radix partitioning stops paying (many
//! recursion levels over near-constant digits). Two behaviours the paper's
//! model discussion depends on are reproduced here:
//!
//! 1. **Sorted-input detection** — fused into the same scan that feeds
//!    the first histogram level: the sortedness check goes quiet at the
//!    first inversion, sorted input returns after exactly one pass, and
//!    unsorted input pays no separate pre-pass before partitioning. Sorted
//!    input skipping is why measured phase-2 cache misses come in *below*
//!    the model's worst-case radix prediction (paper §V-A).
//! 2. **Comparison fallback** — small buckets use pattern-defeating
//!    comparison sorting rather than further radix passes.

use crate::RadixKey;

/// Buckets at or below this size use the comparison fallback.
const COMPARISON_CUTOFF: usize = 128;

/// Sorts ascending, in place (unstable). The entry point used by every
/// engine's phase 2.
pub fn hybrid_sort<K: RadixKey>(data: &mut [K]) {
    hybrid_sort_from(data, K::LEVELS - 1);
}

/// Like [`hybrid_sort`], but radix partitioning starts at digit `level`
/// instead of the key's top byte. The caller guarantees every digit above
/// `level` is constant across `data` — the contract of radix-partitioned
/// phase 2, where each bucket shares its top byte by construction and
/// re-deriving that from a histogram pass per bucket would be wasted work.
pub fn hybrid_sort_from<K: RadixKey>(data: &mut [K], level: usize) {
    if data.len() <= 1 {
        return;
    }
    if data.len() <= COMPARISON_CUTOFF {
        data.sort_unstable();
        return;
    }
    // One fused scan: build the first-level histogram and detect sorted
    // input together. The comparison arm goes quiet at the first inversion,
    // so unsorted data pays no separate pre-pass before partitioning and
    // sorted data returns after exactly one read of the array.
    let mut hist = [0usize; 256];
    let mut sorted = true;
    let mut prev = data[0];
    for &x in data.iter() {
        hist[x.radix_at(level) as usize] += 1;
        if sorted && x < prev {
            sorted = false;
        }
        prev = x;
    }
    if sorted {
        return;
    }
    partition_rec(data, level, &hist);
}

fn sort_rec<K: RadixKey>(data: &mut [K], level: usize) {
    if data.len() <= COMPARISON_CUTOFF {
        data.sort_unstable();
        return;
    }

    let mut hist = [0usize; 256];
    for k in data.iter() {
        hist[k.radix_at(level) as usize] += 1;
    }
    partition_rec(data, level, &hist);
}

/// Partitions `data` by the digit at `level` using its precomputed
/// histogram, then recurses into each bucket.
fn partition_rec<K: RadixKey>(data: &mut [K], level: usize, hist: &[usize; 256]) {
    if hist.contains(&data.len()) {
        // Constant digit: either descend or, at the last level, done
        // (all remaining digits equal ⇒ keys equal ⇒ sorted).
        if level > 0 {
            sort_rec(data, level - 1);
        }
        return;
    }

    let mut start = [0usize; 256];
    let mut sum = 0usize;
    for (s, &c) in start.iter_mut().zip(hist.iter()) {
        *s = sum;
        sum += c;
    }
    let bucket_start = start;
    let mut next = start;
    let mut end = [0usize; 256];
    for (e, (&s, &c)) in end.iter_mut().zip(bucket_start.iter().zip(hist.iter())) {
        *e = s + c;
    }

    for b in 0..256 {
        while next[b] < end[b] {
            let mut i = next[b];
            loop {
                let d = data[i].radix_at(level) as usize;
                if d == b {
                    next[b] += 1;
                    break;
                }
                data.swap(i, next[d]);
                next[d] += 1;
                i = next[b];
            }
        }
    }

    if level > 0 {
        for b in 0..256 {
            let (lo, hi) = (bucket_start[b], end[b]);
            if hi - lo > 1 {
                sort_rec(&mut data[lo..hi], level - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_vec(n: usize, mut x: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn random_matches_std() {
        let mut v = xorshift_vec(30_000, 1234);
        let mut expect = v.clone();
        expect.sort_unstable();
        hybrid_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorted_input_fast_path_is_correct() {
        let mut v: Vec<u64> = (0..10_000).collect();
        hybrid_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn small_inputs_use_comparison_path() {
        let mut v: Vec<u64> = vec![3, 1, 2];
        hybrid_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn u128_keys() {
        let mut v: Vec<u128> = xorshift_vec(9_000, 777)
            .into_iter()
            .map(|x| (x as u128) * 0x1_0000_0001)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        hybrid_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn from_level_sorts_bucket_with_constant_top_bytes() {
        // Keys sharing their top five bytes: partitioning may start at
        // level 2 directly.
        let base = 0xAABB_CCDD_EE00_0000u64;
        let mut v: Vec<u64> = xorshift_vec(5_000, 99)
            .into_iter()
            .map(|x| base | (x & 0x00FF_FFFF))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        hybrid_sort_from(&mut v, 2);
        assert_eq!(v, expect);
    }

    #[test]
    fn nearly_sorted_input() {
        // One inversion at the front: the fused pre-pass must not bail to
        // the sorted fast path.
        let mut v: Vec<u64> = (0..10_000).collect();
        v.swap(0, 1);
        hybrid_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn heavy_hitter_distribution() {
        // (AATGG)n-style repeat dominating the array.
        let repeat = 0x0303_0202_0000u64;
        let mut v: Vec<u64> = xorshift_vec(20_000, 5)
            .into_iter()
            .enumerate()
            .map(|(i, x)| if i % 5 != 0 { repeat } else { x })
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        hybrid_sort(&mut v);
        assert_eq!(v, expect);
    }
}
