//! In-process serve clusters over loopback meshes.
//!
//! This is the single-machine composition of the whole subsystem: count
//! a read set across `S` loopback ranks with [`count_partition`], freeze
//! each rank's owned run into the shard wire format (and re-load it
//! through the validated parser, so even the in-memory path exercises
//! the same checks a file load would), then stand the shards up behind
//! [`serve_shard`] threads on an `S + 1`-rank mesh with a
//! [`QueryClient`] as the last rank. Tests, benches, and
//! `dakc serve --backend loopback` all go through here; the TCP path in
//! the CLI differs only in transport construction.

use std::thread::JoinHandle;

use dakc::{count_partition, DakcConfig, Partition, RunOpts};
use dakc_io::ReadSet;
use dakc_kmer::{KmerCount, KmerWord};
use dakc_net::{ChaosConfig, ChaosTransport, Loopback, NetTuning};
use dakc_sim::telemetry::MetricsRegistry;
use dakc_sort::RadixKey;

use crate::client::QueryClient;
use crate::error::{ServeError, ServeResult};
use crate::server::{serve_shards, ServeOpts, ServeStats};
use crate::shard::{encode_shard, Shard};

/// Counts `reads` across `servers` loopback ranks and returns each
/// rank's owner-partitioned shard, round-tripped through the wire
/// format's validated loader. Shard `r` holds exactly the k-mers
/// `owner_pe` assigns to rank `r` of `servers` — the invariant the
/// query router depends on.
pub fn build_shards<W>(
    reads: &ReadSet,
    cfg: &DakcConfig,
    servers: usize,
) -> ServeResult<Vec<Shard<W>>>
where
    W: KmerWord + RadixKey + Send,
{
    let opts = RunOpts::default();
    let mesh = Loopback::mesh(servers);
    let runs: Vec<Vec<KmerCount<W>>> = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|t| {
                let opts = &opts;
                s.spawn(move || {
                    count_partition::<W, _>(reads, cfg, t, opts)
                        .map(|Partition { counts, .. }| counts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("build rank panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let canonical = cfg.canonical == dakc_kmer::CanonicalMode::Canonical;
    runs.into_iter()
        .enumerate()
        .map(|(rank, counts)| {
            let bytes = encode_shard(&counts, cfg.k, canonical, rank, servers);
            Shard::from_bytes(&bytes)
        })
        .collect()
}

/// One server rank's chaos injection for [`start_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterChaos {
    /// The server rank whose serve transport gets the fault plan.
    pub rank: usize,
    /// Profile string, e.g. `"die:1@40"` (see [`ChaosConfig::parse`]).
    pub profile: String,
    /// Deterministic seed for the fault schedule.
    pub seed: u64,
}

/// A running in-process serve cluster: `servers` threads answering
/// queries, and the client endpoint to ask them with.
pub struct ServeCluster<W: KmerWord> {
    /// The query frontend, connected and READY-handshaken.
    pub client: QueryClient<W, Loopback>,
    handles: Vec<JoinHandle<ServeResult<ServeStats>>>,
}

impl<W: KmerWord + Send + 'static> ServeCluster<W> {
    /// Ends the session: shuts the client down, joins every server
    /// thread, and returns the client metrics plus each server's
    /// outcome (a chaos-killed server reports its typed error here).
    pub fn shutdown(self) -> ServeResult<(MetricsRegistry, Vec<ServeResult<ServeStats>>)> {
        let metrics = self.client.shutdown()?;
        let outcomes = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("server thread panicked"))
            .collect();
        Ok((metrics, outcomes))
    }
}

/// Stands `shards` up as serve threads on a fresh `len + 1`-rank
/// loopback mesh and connects a [`QueryClient`] to them. Shard `r` must
/// be the `owner_pe` partition for rank `r` (as [`build_shards`]
/// produces). With `chaos`, the named server's transport is wrapped in
/// a [`ChaosTransport`] so its mid-serve death can be rehearsed; a
/// loopback mesh has no disconnect signal, so the client detects the
/// dead rank by the collective deadline — keep `tuning` short in tests.
pub fn start_cluster<W>(
    shards: Vec<Shard<W>>,
    tuning: NetTuning,
    chaos: Option<ClusterChaos>,
) -> ServeResult<ServeCluster<W>>
where
    W: KmerWord + Send + 'static,
{
    start_cluster_replicated(shards, tuning, chaos, 1)
}

/// [`start_cluster`] with shard replication: server rank `r` holds the
/// shards of owners `r, r-1, …, r-(replicas-1) (mod servers)`, so owner
/// `o`'s shard is answerable on ranks `o..o+replicas-1 (mod servers)`
/// and the [`QueryClient`] fails a dead holder's keys over to the next
/// copy instead of reporting them unavailable.
pub fn start_cluster_replicated<W>(
    shards: Vec<Shard<W>>,
    tuning: NetTuning,
    chaos: Option<ClusterChaos>,
    replicas: usize,
) -> ServeResult<ServeCluster<W>>
where
    W: KmerWord + Send + 'static,
{
    let servers = shards.len();
    assert!(servers > 0, "a serve cluster needs at least one shard");
    assert!(
        (1..=servers).contains(&replicas),
        "replicas must be in 1..={servers}, got {replicas}"
    );
    let mut mesh = Loopback::mesh_tuned(servers + 1, tuning.clone());
    let client_ep = mesh.pop().expect("mesh has servers + 1 endpoints");
    let handles: Vec<JoinHandle<ServeResult<ServeStats>>> = mesh
        .into_iter()
        .enumerate()
        .map(|(rank, transport)| {
            let held: Vec<Shard<W>> = (0..replicas)
                .map(|j| shards[(rank + servers - j) % servers].clone())
                .collect();
            let plan = match &chaos {
                Some(c) if c.rank == rank => Some(
                    ChaosConfig::parse(&c.profile, c.seed, rank)
                        .map_err(|detail| ServeError::BadHeader { detail })?,
                ),
                _ => None,
            };
            Ok(std::thread::spawn(move || {
                let opts = ServeOpts::default();
                match plan {
                    Some(cfg) => {
                        serve_shards(&held, ChaosTransport::new(transport, cfg), &opts)
                    }
                    None => serve_shards(&held, transport, &opts),
                }
            }))
        })
        .collect::<ServeResult<Vec<_>>>()?;
    let client = QueryClient::connect(client_ep, tuning)?;
    Ok(ServeCluster { client, handles })
}
