//! The typed [`ServeError`] taxonomy.
//!
//! Mirrors the `dakc-net` philosophy: every failure the serve subsystem
//! can observe — a damaged shard file, a malformed query payload, a dead
//! server rank — surfaces as a typed, attributable error, never a panic
//! and never a hang. The corruption variants are deliberately distinct
//! per damage class so tests (and operators) can tell a short file from
//! a flipped record block from a mismatched footer checksum.

use dakc_net::NetError;

/// Result alias for serve operations.
pub type ServeResult<T> = Result<T, ServeError>;

/// Everything that can go wrong building, loading, or serving a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The file ends before the fixed-size header does.
    TruncatedHeader {
        /// Bytes actually present.
        got: usize,
        /// Bytes the header needs.
        want: usize,
    },
    /// The file is shorter than the record/index/footer layout the header
    /// announces.
    Truncated {
        /// Which region ran short (`records`, `index`, `footer`).
        what: &'static str,
        /// Bytes the header-announced layout requires.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A magic string is wrong (not a shard file, or its tail was
    /// overwritten).
    BadMagic {
        /// Which magic failed (`header` or `footer`).
        at: &'static str,
    },
    /// The format version is one this build cannot read.
    BadVersion {
        /// Version found in the header.
        got: u32,
        /// Version this build writes.
        want: u32,
    },
    /// A header field is out of range or internally inconsistent.
    BadHeader {
        /// What was wrong.
        detail: String,
    },
    /// The footer checksum over header + index bytes does not match:
    /// metadata corruption.
    ChecksumMismatch {
        /// Checksum stored in the footer.
        expected: u64,
        /// Checksum recomputed from the bytes.
        got: u64,
    },
    /// One record block's content checksum does not match: record
    /// corruption (a flipped bit in the sorted `{kmer, count}` region).
    CorruptBlock {
        /// Zero-based index of the damaged block.
        block: usize,
        /// Checksum stored in the sampled index.
        expected: u64,
        /// Checksum recomputed from the block's bytes.
        got: u64,
    },
    /// Records are not strictly sorted by k-mer (a logically invalid
    /// writer; binary search would silently miss keys).
    Unsorted {
        /// Block where the order violation was found.
        block: usize,
    },
    /// An I/O failure reading or writing a shard file.
    Io {
        /// What was being done (usually a path).
        context: String,
        /// The OS error.
        detail: String,
    },
    /// A malformed serve-protocol payload arrived on the mesh.
    Wire {
        /// Rank the payload came from.
        from: usize,
        /// What was malformed.
        detail: String,
    },
    /// A server rank is gone (or silent past the collective deadline):
    /// queries routed to its shard get this as a typed partial-results
    /// error instead of a hang.
    ShardUnavailable {
        /// The dead or unresponsive server rank.
        rank: usize,
        /// Why it is considered unavailable.
        detail: String,
    },
    /// Shards disagree on `k`, word width, or canonicality — they were
    /// not built by one job.
    Mismatch {
        /// The disagreement.
        detail: String,
    },
    /// A transport-level failure underneath the serve protocol.
    Net(NetError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::TruncatedHeader { got, want } => {
                write!(f, "truncated shard header: {got} bytes, want {want}")
            }
            ServeError::Truncated { what, expected, got } => {
                write!(f, "truncated shard {what}: {got} bytes, want {expected}")
            }
            ServeError::BadMagic { at } => write!(f, "bad shard magic at {at}"),
            ServeError::BadVersion { got, want } => {
                write!(f, "unsupported shard version {got} (this build reads {want})")
            }
            ServeError::BadHeader { detail } => write!(f, "bad shard header: {detail}"),
            ServeError::ChecksumMismatch { expected, got } => write!(
                f,
                "shard metadata checksum mismatch: footer says {expected:#018x}, bytes hash to {got:#018x}"
            ),
            ServeError::CorruptBlock { block, expected, got } => write!(
                f,
                "corrupt record block {block}: index says {expected:#018x}, bytes hash to {got:#018x}"
            ),
            ServeError::Unsorted { block } => {
                write!(f, "shard records out of order in block {block}")
            }
            ServeError::Io { context, detail } => write!(f, "{context}: {detail}"),
            ServeError::Wire { from, detail } => {
                write!(f, "malformed serve payload from rank {from}: {detail}")
            }
            ServeError::ShardUnavailable { rank, detail } => {
                write!(f, "shard on rank {rank} unavailable: {detail}")
            }
            ServeError::Mismatch { detail } => write!(f, "shard mismatch: {detail}"),
            ServeError::Net(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NetError> for ServeError {
    fn from(e: NetError) -> Self {
        ServeError::Net(e)
    }
}

impl ServeError {
    /// Wraps an I/O error with its context (usually the path involved).
    pub fn io(context: impl Into<String>, e: &std::io::Error) -> Self {
        ServeError::Io { context: context.into(), detail: e.to_string() }
    }

    /// The rank this error points at, when it names one — the serve
    /// analogue of [`NetError::rank`], used by workers to fill the
    /// obituary `blame` field.
    pub fn rank(&self) -> Option<usize> {
        match self {
            ServeError::Wire { from, .. } => Some(*from),
            ServeError::ShardUnavailable { rank, .. } => Some(*rank),
            ServeError::Net(e) => e.rank(),
            _ => None,
        }
    }
}
