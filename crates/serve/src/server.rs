//! The resident server runtime: one rank's request loop over its shard.
//!
//! The serve mesh has `S + 1` ranks: servers `0..S` (each holding the
//! shard its rank owns under the count-time `owner_pe` hash) and the
//! client frontend as the last rank. Unlike the count path, the loop
//! never runs termination rounds — quiescence is the *opposite* of what
//! a service wants — which is exactly why [`dakc::count_partition`]
//! hands the transport back alive. Liveness is the supervisor's job: the
//! worker's heartbeat thread keeps beating while this loop spins, so a
//! hung server surfaces at the launcher as a stale rank, and the phase
//! it reports is [`Phase::Serve`].
//!
//! Exit conditions: a client SHUTDOWN (clean, returns stats), the client
//! disconnecting (clean — the session is over), or a typed transport
//! error (propagated so the worker can file an obituary).
//!
//! [`Phase::Serve`]: dakc_net::Phase::Serve

use std::sync::Arc;
use std::time::{Duration, Instant};

use dakc_kmer::{owner_pe, KmerWord};
use dakc_net::{FrameKind, HeartbeatState, Phase, Transport};

use crate::error::{ServeError, ServeResult};
use crate::shard::Shard;
use crate::wire::{
    decode_request, encode_ready, encode_response, Ready, Request, Response,
};

/// How long the request loop sleeps when the mesh is idle.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// How often idle-loop traffic totals are pushed to the heartbeat state.
const MONITOR_PERIOD: Duration = Duration::from_millis(100);

/// Server-side options.
#[derive(Debug, Clone, Default)]
pub struct ServeOpts {
    /// When set, the request loop publishes [`Phase::Serve`] and traffic
    /// totals here for the worker's heartbeat sender.
    pub monitor: Option<Arc<HeartbeatState>>,
}

/// What one serve session handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (lookup batches, histograms, top-Ns).
    pub requests: u64,
    /// Individual keys looked up.
    pub lookups: u64,
    /// Lookups that found their key.
    pub hits: u64,
}

/// Runs one rank's request loop until shutdown, answering queries
/// against `shard`. `transport` must be an `S + 1`-rank mesh with this
/// endpoint at a server rank (`rank < num_ranks - 1`); the last rank is
/// the client. Announces READY, then serves until the client says
/// SHUTDOWN or disconnects.
pub fn serve_shard<W, T>(
    shard: &Shard<W>,
    transport: T,
    opts: &ServeOpts,
) -> ServeResult<ServeStats>
where
    W: KmerWord,
    T: Transport,
{
    serve_shards(std::slice::from_ref(shard), transport, opts)
}

/// [`serve_shard`] over a replicated shard set: this rank's own shard
/// plus the replica copies it holds for its predecessor owners (owner
/// `o`'s shard lives on ranks `o..o+R-1 (mod S)`). Each shard's
/// `meta.rank` names the owner it answers for. Lookups hash every key
/// to its owner and consult that owner's copy; aggregate requests name
/// a shard explicitly via the `_OWNER` opcodes when failing over. The
/// READY hello announces the rank's *own* shard (so the client's record
/// total counts each owner partition once) plus the replication factor.
pub fn serve_shards<W, T>(
    shards: &[Shard<W>],
    mut transport: T,
    opts: &ServeOpts,
) -> ServeResult<ServeStats>
where
    W: KmerWord,
    T: Transport,
{
    let me = transport.rank();
    let n = transport.num_ranks();
    let client = n - 1;
    assert!(me < client, "serve_shards must run on a server rank, not the client");
    let servers = client;
    let own = shards
        .iter()
        .find(|s| s.meta().rank as usize == me)
        .expect("serve_shards: the rank's own shard must be in the set");
    for s in shards {
        assert_eq!(
            (s.meta().k, s.meta().word_bytes, s.meta().canonical),
            (own.meta().k, own.meta().word_bytes, own.meta().canonical),
            "serve_shards: replica shards must share the job parameters"
        );
    }
    // owner rank → shard held here (the owner-routing table for lookups
    // and `_OWNER` aggregates).
    let mut by_owner: Vec<Option<&Shard<W>>> = vec![None; servers];
    for s in shards {
        let o = s.meta().rank as usize;
        assert!(o < servers, "serve_shards: shard owner {o} out of range 0..{servers}");
        by_owner[o] = Some(s);
    }
    if let Some(m) = &opts.monitor {
        m.set_phase(Phase::Serve);
    }
    let shard_for = |owner: usize, src: usize| -> ServeResult<&Shard<W>> {
        by_owner.get(owner).copied().flatten().ok_or_else(|| ServeError::Wire {
            from: src,
            detail: format!("rank {me} holds no replica of owner {owner}'s shard"),
        })
    };
    let word_bytes = own.meta().word_bytes as usize;
    let hello = Ready {
        rank: me as u32,
        k: own.meta().k,
        word_bytes: own.meta().word_bytes,
        canonical: own.meta().canonical,
        n_records: own.meta().n_records,
        replicas: shards.len() as u32,
    };
    transport.send_kind(client, FrameKind::Reply, &encode_ready(&hello))?;
    transport.flush()?;

    let mut stats = ServeStats::default();
    let mut last_monitor = Instant::now();
    loop {
        let frame = transport.try_recv()?;
        let Some((src, bytes)) = frame else {
            if transport.peer_dead(client) {
                // The client is gone: the session is over. Not an error —
                // a one-shot client that exits after its queries is the
                // normal end of a serve session.
                break;
            }
            if let Some(m) = &opts.monitor {
                if last_monitor.elapsed() >= MONITOR_PERIOD {
                    let s = transport.stats();
                    m.record_traffic(s.frames_sent(), s.frames_recv(), s.retries);
                    last_monitor = Instant::now();
                }
            }
            std::thread::sleep(IDLE_SLEEP);
            continue;
        };
        if src != client {
            // Server peers never originate requests; their frames would
            // be protocol confusion. Tolerate nothing.
            return Err(ServeError::Wire {
                from: src,
                detail: "request from a non-client rank".to_string(),
            });
        }
        let reply = match decode_request::<W>(src, &bytes, word_bytes)? {
            Request::Shutdown => break,
            Request::Lookup { id, keys } => {
                stats.lookups += keys.len() as u64;
                // Each key is answered from its owner's shard — the
                // same hash that routed it at count time — so a batch
                // failed over to this replica holder needs no special
                // request form.
                let counts: Vec<u32> = keys
                    .iter()
                    .map(|&k| {
                        let c = shard_for(owner_pe(k, servers), src)?.get(k).unwrap_or(0);
                        if c > 0 {
                            stats.hits += 1;
                        }
                        Ok(c)
                    })
                    .collect::<ServeResult<_>>()?;
                Response::Lookup { id, counts }
            }
            Request::Histogram { id, max, owner } => {
                let shard = shard_for(owner.map_or(me, |o| o as usize), src)?;
                // Bound the reply size: a hostile max must not allocate
                // gigabytes of buckets.
                let max = max.min(1 << 20);
                Response::Histogram { id, buckets: shard.spectrum(max) }
            }
            Request::TopN { id, n, owner } => {
                let shard = shard_for(owner.map_or(me, |o| o as usize), src)?;
                Response::TopN { id, records: shard.top_n(n as usize) }
            }
        };
        stats.requests += 1;
        transport.send_kind(client, FrameKind::Reply, &encode_response(&reply, word_bytes))?;
        transport.flush()?;
    }
    if let Some(m) = &opts.monitor {
        let s = transport.stats();
        m.record_traffic(s.frames_sent(), s.frames_recv(), s.retries);
        m.set_phase(Phase::Done);
    }
    Ok(stats)
}
