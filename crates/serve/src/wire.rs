//! The serve-protocol payload format.
//!
//! Requests and responses travel as [`FrameKind::Query`] /
//! [`FrameKind::Reply`] frames on the serve mesh (in-process backends
//! have no frame header, so the payload is self-describing: the leading
//! opcode byte tells the receiver what it holds). All integers are
//! little-endian; k-mer words are written at the job's word width,
//! exactly as in the shard record format.
//!
//! ```text
//! READY      1: [rank u32][k u32][word_bytes u32][canonical u8][n_records u64]
//!               (+ [replicas u32] only when the service replicates)
//! LOOKUP     2: [id u64][n u32][n × kmer]
//! LOOKUP_RE  3: [id u64][n u32][n × count u32]      (0 = not present)
//! HIST       4: [id u64][max u32]
//! HIST_RE    5: [id u64][max u32][(max+1) × u64]
//! TOPN       6: [id u64][n u32]
//! TOPN_RE    7: [id u64][n u32][n × (kmer, count u32)]
//! SHUTDOWN   8: []
//! HIST_OWNER 9: [id u64][max u32][owner u32]        (failover: replica shard)
//! TOPN_OWNER 10:[id u64][n u32][owner u32]          (failover: replica shard)
//! ```
//!
//! Point lookups are 1-key LOOKUPs; the batched multi-lookup is the same
//! opcode. A failed-over LOOKUP needs no new opcode — the server hashes
//! each key to its owner and consults that owner's replica shard — but
//! aggregates are per-shard, so the `_OWNER` variants name the shard
//! explicitly. A non-replicated service (`replicas = 1`) emits exactly
//! the pre-replication wire bytes: the READY suffix and the `_OWNER`
//! opcodes only ever appear when failover is possible. Malformed
//! payloads decode to [`ServeError::Wire`] naming the sender — a hostile
//! or corrupt peer cannot panic a server.
//!
//! [`FrameKind::Query`]: dakc_net::FrameKind::Query
//! [`FrameKind::Reply`]: dakc_net::FrameKind::Reply

use dakc_kmer::{KmerCount, KmerWord};

use crate::error::{ServeError, ServeResult};

/// Opcode byte values.
mod op {
    pub const READY: u8 = 1;
    pub const LOOKUP: u8 = 2;
    pub const LOOKUP_RE: u8 = 3;
    pub const HIST: u8 = 4;
    pub const HIST_RE: u8 = 5;
    pub const TOPN: u8 = 6;
    pub const TOPN_RE: u8 = 7;
    pub const SHUTDOWN: u8 = 8;
    pub const HIST_OWNER: u8 = 9;
    pub const TOPN_OWNER: u8 = 10;
}

/// A server's hello: what it serves. Sent once per client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ready {
    /// The serving rank.
    pub rank: u32,
    /// K-mer length of the shard.
    pub k: u32,
    /// Bytes per k-mer word on the wire.
    pub word_bytes: u32,
    /// Whether counts are canonical.
    pub canonical: bool,
    /// Records in the rank's shard.
    pub n_records: u64,
    /// Replication factor: owner `o`'s shard is held by ranks
    /// `o..o+replicas-1 (mod servers)`. `1` means no replication and is
    /// omitted from the wire (the pre-replication READY layout).
    pub replicas: u32,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request<W> {
    /// Count each key (a point lookup is a 1-key batch).
    Lookup {
        /// Correlates the response to this request.
        id: u64,
        /// Keys, already owner-routed to this server.
        keys: Vec<W>,
    },
    /// The shard's count spectrum up to multiplicity `max`.
    Histogram {
        /// Correlation id.
        id: u64,
        /// Highest explicit multiplicity bucket.
        max: u32,
        /// Which owner's shard to read; `None` (the common case) means
        /// the server's own. `Some` is the failover form: a client
        /// asking a replica holder for a dead owner's shard.
        owner: Option<u32>,
    },
    /// The shard's `n` highest-count records.
    TopN {
        /// Correlation id.
        id: u64,
        /// Records wanted.
        n: u32,
        /// Which owner's shard to read (see [`Request::Histogram`]).
        owner: Option<u32>,
    },
    /// End the serve session; the server exits its request loop.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response<W> {
    /// Per-key counts, parallel to the request's keys (0 = not present).
    Lookup {
        /// The request's correlation id.
        id: u64,
        /// One count per requested key.
        counts: Vec<u32>,
    },
    /// Spectrum buckets (`max + 1` of them, overflow last).
    Histogram {
        /// The request's correlation id.
        id: u64,
        /// Bucket values.
        buckets: Vec<u64>,
    },
    /// Highest-count records, count-descending.
    TopN {
        /// The request's correlation id.
        id: u64,
        /// The records.
        records: Vec<KmerCount<W>>,
    },
}

fn push_word<W: KmerWord>(out: &mut Vec<u8>, w: W, word_bytes: usize) {
    out.extend_from_slice(&w.to_u128().to_le_bytes()[..word_bytes]);
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    from: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> ServeResult<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(
            || ServeError::Wire {
                from: self.from,
                detail: format!(
                    "{what}: need {n} bytes at offset {}, payload is {}",
                    self.at,
                    self.bytes.len()
                ),
            },
        )?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> ServeResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> ServeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> ServeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn word<W: KmerWord>(&mut self, word_bytes: usize, what: &str) -> ServeResult<W> {
        let b = self.take(word_bytes, what)?;
        let mut buf = [0u8; 16];
        buf[..word_bytes].copy_from_slice(b);
        Ok(W::from_u128(u128::from_le_bytes(buf)))
    }

    fn done(&self, what: &str) -> ServeResult<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(ServeError::Wire {
                from: self.from,
                detail: format!(
                    "{what}: {} trailing bytes",
                    self.bytes.len() - self.at
                ),
            })
        }
    }
}

/// A count-capped element budget for decoded vectors: the serve mesh's
/// frame-size bound already limits payloads, this guards the arithmetic.
const MAX_ELEMS: u64 = 1 << 24;

fn check_elems(from: usize, n: u64, what: &str) -> ServeResult<usize> {
    if n > MAX_ELEMS {
        return Err(ServeError::Wire {
            from,
            detail: format!("{what}: {n} elements exceeds the {MAX_ELEMS} cap"),
        });
    }
    Ok(n as usize)
}

/// Encodes a server hello.
pub fn encode_ready(r: &Ready) -> Vec<u8> {
    let mut out = Vec::with_capacity(22);
    out.push(op::READY);
    out.extend_from_slice(&r.rank.to_le_bytes());
    out.extend_from_slice(&r.k.to_le_bytes());
    out.extend_from_slice(&r.word_bytes.to_le_bytes());
    out.push(u8::from(r.canonical));
    out.extend_from_slice(&r.n_records.to_le_bytes());
    // Wire compatibility: a non-replicated hello is byte-identical to
    // the pre-replication format; the suffix appears only when it
    // carries information.
    if r.replicas > 1 {
        out.extend_from_slice(&r.replicas.to_le_bytes());
    }
    out
}

/// Decodes a server hello (or `Ok(None)` when the payload is some other
/// opcode — the client skips non-hello traffic while connecting).
pub fn decode_ready(from: usize, bytes: &[u8]) -> ServeResult<Option<Ready>> {
    let mut r = Reader { bytes, at: 0, from };
    if r.u8("opcode")? != op::READY {
        return Ok(None);
    }
    let mut ready = Ready {
        rank: r.u32("ready rank")?,
        k: r.u32("ready k")?,
        word_bytes: r.u32("ready word_bytes")?,
        canonical: r.u8("ready canonical")? != 0,
        n_records: r.u64("ready n_records")?,
        replicas: 1,
    };
    // Optional replication suffix (absent on non-replicated services).
    if r.at < r.bytes.len() {
        ready.replicas = r.u32("ready replicas")?;
        if ready.replicas < 2 {
            return Err(ServeError::Wire {
                from,
                detail: format!(
                    "ready carries a replication suffix of {} (must be ≥ 2 when present)",
                    ready.replicas
                ),
            });
        }
    }
    r.done("ready")?;
    Ok(Some(ready))
}

/// Encodes a request at the given word width.
pub fn encode_request<W: KmerWord>(req: &Request<W>, word_bytes: usize) -> Vec<u8> {
    match req {
        Request::Lookup { id, keys } => {
            let mut out = Vec::with_capacity(13 + keys.len() * word_bytes);
            out.push(op::LOOKUP);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for &k in keys {
                push_word(&mut out, k, word_bytes);
            }
            out
        }
        Request::Histogram { id, max, owner } => {
            let mut out = Vec::with_capacity(17);
            out.push(if owner.is_some() { op::HIST_OWNER } else { op::HIST });
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&max.to_le_bytes());
            if let Some(o) = owner {
                out.extend_from_slice(&o.to_le_bytes());
            }
            out
        }
        Request::TopN { id, n, owner } => {
            let mut out = Vec::with_capacity(17);
            out.push(if owner.is_some() { op::TOPN_OWNER } else { op::TOPN });
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
            if let Some(o) = owner {
                out.extend_from_slice(&o.to_le_bytes());
            }
            out
        }
        Request::Shutdown => vec![op::SHUTDOWN],
    }
}

/// Decodes a request (server side).
pub fn decode_request<W: KmerWord>(
    from: usize,
    bytes: &[u8],
    word_bytes: usize,
) -> ServeResult<Request<W>> {
    let mut r = Reader { bytes, at: 0, from };
    let opcode = r.u8("opcode")?;
    let req = match opcode {
        op::LOOKUP => {
            let id = r.u64("lookup id")?;
            let n = check_elems(from, u64::from(r.u32("lookup n")?), "lookup keys")?;
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                keys.push(r.word::<W>(word_bytes, "lookup key")?);
            }
            Request::Lookup { id, keys }
        }
        op::HIST => {
            Request::Histogram { id: r.u64("hist id")?, max: r.u32("hist max")?, owner: None }
        }
        op::TOPN => Request::TopN { id: r.u64("topn id")?, n: r.u32("topn n")?, owner: None },
        op::HIST_OWNER => Request::Histogram {
            id: r.u64("hist id")?,
            max: r.u32("hist max")?,
            owner: Some(r.u32("hist owner")?),
        },
        op::TOPN_OWNER => Request::TopN {
            id: r.u64("topn id")?,
            n: r.u32("topn n")?,
            owner: Some(r.u32("topn owner")?),
        },
        op::SHUTDOWN => Request::Shutdown,
        other => {
            return Err(ServeError::Wire {
                from,
                detail: format!("unknown request opcode {other}"),
            })
        }
    };
    r.done("request")?;
    Ok(req)
}

/// Encodes a response at the given word width.
pub fn encode_response<W: KmerWord>(resp: &Response<W>, word_bytes: usize) -> Vec<u8> {
    match resp {
        Response::Lookup { id, counts } => {
            let mut out = Vec::with_capacity(13 + counts.len() * 4);
            out.push(op::LOOKUP_RE);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(counts.len() as u32).to_le_bytes());
            for c in counts {
                out.extend_from_slice(&c.to_le_bytes());
            }
            out
        }
        Response::Histogram { id, buckets } => {
            let mut out = Vec::with_capacity(13 + buckets.len() * 8);
            out.push(op::HIST_RE);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&((buckets.len() as u32).saturating_sub(1)).to_le_bytes());
            for b in buckets {
                out.extend_from_slice(&b.to_le_bytes());
            }
            out
        }
        Response::TopN { id, records } => {
            let mut out = Vec::with_capacity(13 + records.len() * (word_bytes + 4));
            out.push(op::TOPN_RE);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for rec in records {
                push_word(&mut out, rec.kmer, word_bytes);
                out.extend_from_slice(&rec.count.to_le_bytes());
            }
            out
        }
    }
}

/// Decodes a response (client side). Returns `Ok(None)` for a READY
/// payload (a late hello during the first batch is skipped, not fatal).
pub fn decode_response<W: KmerWord>(
    from: usize,
    bytes: &[u8],
    word_bytes: usize,
) -> ServeResult<Option<Response<W>>> {
    let mut r = Reader { bytes, at: 0, from };
    let opcode = r.u8("opcode")?;
    let resp = match opcode {
        op::READY => return Ok(None),
        op::LOOKUP_RE => {
            let id = r.u64("lookup-response id")?;
            let n =
                check_elems(from, u64::from(r.u32("lookup-response n")?), "lookup counts")?;
            let mut counts = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                counts.push(r.u32("lookup-response count")?);
            }
            Response::Lookup { id, counts }
        }
        op::HIST_RE => {
            let id = r.u64("hist-response id")?;
            let max =
                check_elems(from, u64::from(r.u32("hist-response max")?), "hist buckets")?;
            let mut buckets = Vec::with_capacity((max + 1).min(4096));
            for _ in 0..=max {
                buckets.push(r.u64("hist-response bucket")?);
            }
            Response::Histogram { id, buckets }
        }
        op::TOPN_RE => {
            let id = r.u64("topn-response id")?;
            let n =
                check_elems(from, u64::from(r.u32("topn-response n")?), "topn records")?;
            let mut records = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let w = r.word::<W>(word_bytes, "topn-response kmer")?;
                let c = r.u32("topn-response count")?;
                records.push(KmerCount::new(w, c));
            }
            Response::TopN { id, records }
        }
        other => {
            return Err(ServeError::Wire {
                from,
                detail: format!("unknown response opcode {other}"),
            })
        }
    };
    r.done("response")?;
    Ok(Some(resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ready_roundtrip() {
        let r = Ready {
            rank: 3,
            k: 31,
            word_bytes: 8,
            canonical: true,
            n_records: 12345,
            replicas: 1,
        };
        assert_eq!(decode_ready(3, &encode_ready(&r)).unwrap(), Some(r));
        // Non-ready payloads skip as None.
        let req = encode_request::<u64>(&Request::Shutdown, 8);
        assert_eq!(decode_ready(0, &req).unwrap(), None);
    }

    #[test]
    fn ready_replication_suffix_roundtrips_and_stays_off_the_wire() {
        let plain = Ready {
            rank: 0,
            k: 21,
            word_bytes: 8,
            canonical: false,
            n_records: 7,
            replicas: 1,
        };
        // replicas = 1 must be byte-identical to the pre-replication
        // format: 22 bytes, no suffix.
        assert_eq!(encode_ready(&plain).len(), 22);
        let replicated = Ready { replicas: 3, ..plain };
        let wire = encode_ready(&replicated);
        assert_eq!(wire.len(), 26);
        assert_eq!(decode_ready(0, &wire).unwrap(), Some(replicated));
        // A suffix of 0 or 1 is protocol confusion, not silently 1.
        let mut bad = encode_ready(&plain);
        bad.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(decode_ready(0, &bad), Err(ServeError::Wire { .. })));
    }

    #[test]
    fn request_roundtrips() {
        for req in [
            Request::Lookup { id: 7, keys: vec![1u64, 99, u64::MAX] },
            Request::Lookup { id: 8, keys: vec![] },
            Request::Histogram { id: 9, max: 64, owner: None },
            Request::Histogram { id: 9, max: 64, owner: Some(2) },
            Request::TopN { id: 10, n: 25, owner: None },
            Request::TopN { id: 10, n: 25, owner: Some(0) },
            Request::Shutdown,
        ] {
            let wire = encode_request(&req, 8);
            assert_eq!(decode_request::<u64>(1, &wire, 8).unwrap(), req);
        }
        let req = Request::Lookup { id: 1, keys: vec![u128::MAX >> 2, 5u128] };
        let wire = encode_request(&req, 16);
        assert_eq!(decode_request::<u128>(1, &wire, 16).unwrap(), req);
    }

    #[test]
    fn response_roundtrips() {
        for resp in [
            Response::Lookup { id: 1, counts: vec![0, 3, 9] },
            Response::Histogram { id: 2, buckets: vec![5, 0, 1, 7] },
            Response::TopN {
                id: 3,
                records: vec![KmerCount::new(42u64, 17), KmerCount::new(7, 1)],
            },
        ] {
            let wire = encode_response(&resp, 8);
            assert_eq!(decode_response::<u64>(2, &wire, 8).unwrap(), Some(resp));
        }
        // A READY seen mid-stream is skipped, not an error.
        let hello = encode_ready(&Ready {
            rank: 0,
            k: 15,
            word_bytes: 8,
            canonical: false,
            n_records: 0,
            replicas: 1,
        });
        assert_eq!(decode_response::<u64>(0, &hello, 8).unwrap(), None);
    }

    #[test]
    fn truncated_and_unknown_payloads_are_typed() {
        let wire = encode_request(&Request::Lookup { id: 7, keys: vec![1u64, 2] }, 8);
        for cut in 0..wire.len() {
            match decode_request::<u64>(4, &wire[..cut], 8) {
                Err(ServeError::Wire { from: 4, .. }) => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
        assert!(matches!(
            decode_request::<u64>(0, &[200], 8),
            Err(ServeError::Wire { .. })
        ));
        // A count field promising more elements than the payload holds.
        let mut short = encode_request(&Request::Lookup { id: 1, keys: vec![9u64] }, 8);
        short[9] = 200; // n = 200, one key present
        assert!(matches!(
            decode_request::<u64>(0, &short, 8),
            Err(ServeError::Wire { .. })
        ));
    }

    proptest! {
        // Hostile request/response payloads never panic the decoders.
        #[test]
        fn hostile_payloads_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_request::<u64>(0, &bytes, 8);
            let _ = decode_response::<u64>(0, &bytes, 8);
            let _ = decode_ready(0, &bytes);
            let _ = decode_request::<u128>(0, &bytes, 16);
            let _ = decode_response::<u128>(0, &bytes, 16);
        }

        // The serve mesh's Query/Reply frames pass through the
        // transport's length-capped [`FrameDecoder`] before any payload
        // is buffered. An adversarial length prefix must surface as a
        // typed `Oversized` (or a typed bad-kind error), never as an
        // attacker-sized allocation: the decoder's buffered bytes stay
        // bounded by what was actually fed.
        #[test]
        fn adversarial_length_prefix_is_typed_never_allocated(
            len in any::<u32>(),
            kind in any::<u8>(),
        ) {
            use dakc_net::{FrameDecoder, FrameError};
            const CAP: usize = 1 << 20;
            let mut dec = FrameDecoder::with_max_len(CAP);
            let mut bytes = len.to_le_bytes().to_vec();
            bytes.push(kind);
            dec.feed(&bytes);
            match dec.next_frame() {
                Err(FrameError::Oversized { len: l, max }) => {
                    prop_assert!(l as usize > CAP);
                    prop_assert_eq!(max as usize, CAP);
                }
                // Complete, incomplete, or a typed bad-kind error — all
                // fine as long as an oversized prefix didn't slip by.
                _ => prop_assert!(len as usize <= CAP),
            }
            prop_assert!(dec.pending_bytes() <= bytes.len());
        }

        #[test]
        fn lookup_roundtrip_prop(
            id in any::<u64>(),
            keys in prop::collection::vec(any::<u64>(), 0..300),
        ) {
            let req = Request::Lookup { id, keys };
            let wire = encode_request(&req, 8);
            prop_assert_eq!(decode_request::<u64>(0, &wire, 8).unwrap(), req);
        }
    }
}
