//! `dakc-serve`: a persistent, sharded k-mer query service over dakc-net.
//!
//! The counting pipeline ends where most uses of a k-mer table begin:
//! once the distributed count reaches quiescence, every rank holds a
//! sorted `{kmer, count}` run partitioned by the `owner_pe` hash. This
//! crate keeps that partition alive as a service instead of gathering
//! it to rank 0 and exiting:
//!
//! - [`shard`] — the immutable on-disk shard format: a versioned
//!   header, the 2-bit-packed sorted records, a sampled prefix index
//!   for `O(log B)` block lookup with per-block content checksums, and
//!   a checksummed footer. Loading is fallible and typed
//!   ([`ServeError`]) — a damaged file names its damage class, never
//!   panics.
//! - [`wire`] — the request/response protocol (point lookup, batched
//!   multi-lookup, count histogram, top-N) carried in the transport's
//!   `Query`/`Reply` frame kinds.
//! - [`server`] — the resident request loop: a rank announces READY,
//!   then answers queries against its shard until the client shuts the
//!   session down. Heartbeats keep flowing ([`Phase::Serve`]), so the
//!   supervisor doubles as the health check.
//! - [`client`] — the batching frontend: keys grouped by owner rank,
//!   one frame per owner, per-query latency through the standard
//!   `flow.*` histograms, and typed partial results
//!   ([`LookupResult::Unavailable`]) when a server dies mid-session.
//! - [`cluster`] — in-process loopback composition of all of the
//!   above, for tests, benches, and `dakc serve --backend loopback`.
//!
//! [`Phase::Serve`]: dakc_net::Phase::Serve

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod error;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::{Aggregate, BatchOutcome, LookupResult, QueryClient};
pub use cluster::{
    build_shards, start_cluster, start_cluster_replicated, ClusterChaos, ServeCluster,
};
pub use error::{ServeError, ServeResult};
pub use server::{serve_shard, serve_shards, ServeOpts, ServeStats};
pub use shard::{
    encode_shard, shard_path, write_shard, Shard, ShardMeta, DEFAULT_BLOCK_RECORDS,
    SHARD_MAGIC, SHARD_VERSION,
};
pub use wire::{Ready, Request, Response};
