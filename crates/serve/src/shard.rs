//! The immutable on-disk shard format and its fallible loader.
//!
//! One shard file holds one rank's owner-partitioned, sorted
//! `{kmer, count}` run — exactly the table [`dakc::count_partition`]
//! leaves each rank holding after phase 2. The layout is Gerbil-style
//! two-stage: a flat sorted record region plus a sampled prefix index
//! (the first k-mer of every block), so a point lookup is one binary
//! search over the sampled index followed by one within a single block.
//!
//! ```text
//! offset  size          field
//! 0       8             magic "DAKSHRD1"
//! 8       4             version (u32 LE)
//! 12      4             k (u32 LE)
//! 16      4             word_bytes (u32 LE: 8 for u64, 16 for u128)
//! 20      1             canonical (0 or 1)
//! 21      3             zero padding
//! 24      4             rank (u32 LE)
//! 28      4             ranks (u32 LE)
//! 32      8             n_records (u64 LE)
//! 40      4             block_records (u32 LE)
//! 44      4             zero padding
//! 48      n*(wb+4)      records: sorted (kmer: wb bytes LE, count: u32 LE)
//! ...     B*(wb+8)      index: per block, first kmer + content checksum
//! ...     8             footer checksum (u64 LE over header + index bytes)
//! ...     8             end magic "DAKEND1\0"
//! ```
//!
//! The k-mer words are the engine's native 2-bit-packed encoding, written
//! little-endian at the job's word width. Integrity is layered so damage
//! classes stay distinguishable: the footer checksum covers the header
//! and the index (metadata), while each block carries its own content
//! checksum in the index — so a flipped bit in the record region always
//! surfaces as [`ServeError::CorruptBlock`] naming the block, never as a
//! generic mismatch. [`Shard::load`] verifies everything eagerly and
//! never panics on hostile bytes.

use std::path::{Path, PathBuf};

use dakc_kmer::{splitmix64, KmerCount, KmerWord};

use crate::error::{ServeError, ServeResult};

/// Leading magic of every shard file.
pub const SHARD_MAGIC: &[u8; 8] = b"DAKSHRD1";

/// Trailing magic (catches truncation-by-rewrite of the tail).
pub const SHARD_END_MAGIC: &[u8; 8] = b"DAKEND1\0";

/// Format version this build reads and writes.
pub const SHARD_VERSION: u32 = 1;

/// Fixed header size in bytes.
pub const SHARD_HEADER_BYTES: usize = 48;

/// Records per index block. 256 records keep the sampled index ~0.4% of
/// the record region at `u64` width while one block still fits well
/// inside a cache-friendly 3 KiB scan window.
pub const DEFAULT_BLOCK_RECORDS: u32 = 256;

/// Everything the header says about a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// K-mer length the table was counted at.
    pub k: u32,
    /// Bytes per k-mer word on disk (8 for `u64`, 16 for `u128`).
    pub word_bytes: u32,
    /// Whether counts are canonical (strand-neutral).
    pub canonical: bool,
    /// Owner rank this shard belongs to.
    pub rank: u32,
    /// Total ranks of the job that built the shard set.
    pub ranks: u32,
    /// Records in this shard.
    pub n_records: u64,
    /// Records per index block.
    pub block_records: u32,
}

/// Rolling 64-bit content checksum: splitmix64 chained over 8-byte
/// little-endian chunks, seeded with the length so a shifted prefix or a
/// dropped tail changes the digest too.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = splitmix64(bytes.len() as u64 ^ 0x9e37_79b9_7f4a_7c15);
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

/// Canonical shard file name for `rank` of a `ranks`-way build.
pub fn shard_path(dir: &Path, rank: usize, ranks: usize) -> PathBuf {
    dir.join(format!("shard-{rank}-of-{ranks}.dakshard"))
}

fn read_word<W: KmerWord>(bytes: &[u8], word_bytes: usize) -> W {
    let mut buf = [0u8; 16];
    buf[..word_bytes].copy_from_slice(&bytes[..word_bytes]);
    W::from_u128(u128::from_le_bytes(buf))
}

fn push_word<W: KmerWord>(out: &mut Vec<u8>, w: W, word_bytes: usize) {
    out.extend_from_slice(&w.to_u128().to_le_bytes()[..word_bytes]);
}

/// Serializes a sorted `{kmer, count}` table into shard wire format.
///
/// The input must be strictly sorted by k-mer (phase 2's output is);
/// this is asserted because an unsorted shard would fail its own loader.
pub fn encode_shard<W: KmerWord>(
    counts: &[KmerCount<W>],
    k: usize,
    canonical: bool,
    rank: usize,
    ranks: usize,
) -> Vec<u8> {
    let word_bytes = if W::BITS <= 64 { 8usize } else { 16 };
    debug_assert!(
        counts.windows(2).all(|w| w[0].kmer < w[1].kmer),
        "shard input must be strictly sorted"
    );
    let rec_bytes = word_bytes + 4;
    let n = counts.len();
    let block = DEFAULT_BLOCK_RECORDS as usize;
    let n_blocks = n.div_ceil(block);

    let mut out = Vec::with_capacity(
        SHARD_HEADER_BYTES + n * rec_bytes + n_blocks * (word_bytes + 8) + 16,
    );
    out.extend_from_slice(SHARD_MAGIC);
    out.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(word_bytes as u32).to_le_bytes());
    out.push(u8::from(canonical));
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&(rank as u32).to_le_bytes());
    out.extend_from_slice(&(ranks as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&DEFAULT_BLOCK_RECORDS.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    debug_assert_eq!(out.len(), SHARD_HEADER_BYTES);

    for c in counts {
        push_word(&mut out, c.kmer, word_bytes);
        out.extend_from_slice(&c.count.to_le_bytes());
    }

    let records_at = SHARD_HEADER_BYTES;
    for b in 0..n_blocks {
        let first = counts[b * block].kmer;
        push_word(&mut out, first, word_bytes);
        let lo = records_at + b * block * rec_bytes;
        let hi = (lo + block * rec_bytes).min(records_at + n * rec_bytes);
        let sum = checksum64(&out[lo..hi]);
        out.extend_from_slice(&sum.to_le_bytes());
    }

    // Footer checksum covers header + index (the record region has its
    // per-block sums); splice the two ranges together for the digest.
    let index_at = records_at + n * rec_bytes;
    let mut meta = Vec::with_capacity(SHARD_HEADER_BYTES + (out.len() - index_at));
    meta.extend_from_slice(&out[..SHARD_HEADER_BYTES]);
    meta.extend_from_slice(&out[index_at..]);
    let footer = checksum64(&meta);
    out.extend_from_slice(&footer.to_le_bytes());
    out.extend_from_slice(SHARD_END_MAGIC);
    out
}

/// Writes one rank's table as a shard file (atomic rename, so a crashed
/// writer never leaves a half-shard under the final name).
pub fn write_shard<W: KmerWord>(
    path: &Path,
    counts: &[KmerCount<W>],
    k: usize,
    canonical: bool,
    rank: usize,
    ranks: usize,
) -> ServeResult<()> {
    let bytes = encode_shard(counts, k, canonical, rank, ranks);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)
        .map_err(|e| ServeError::io(format!("write {}", tmp.display()), &e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ServeError::io(format!("rename to {}", path.display()), &e))?;
    Ok(())
}

/// A loaded, fully verified shard, ready to answer lookups.
#[derive(Debug, Clone)]
pub struct Shard<W> {
    meta: ShardMeta,
    /// Raw record region (fixed-stride `{kmer, count}` entries).
    records: Vec<u8>,
    /// First k-mer of each block (the sampled prefix index, decoded).
    index: Vec<W>,
}

impl<W: KmerWord> Shard<W> {
    /// Reads and verifies a shard file. Eager verification: magic,
    /// version, layout arithmetic, footer checksum, every block checksum
    /// and record ordering — so a served shard can never silently return
    /// wrong answers for damaged bytes.
    pub fn load(path: &Path) -> ServeResult<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::io(format!("read {}", path.display()), &e))?;
        Self::from_bytes(&bytes)
    }

    /// [`Shard::load`] over an in-memory image.
    pub fn from_bytes(bytes: &[u8]) -> ServeResult<Self> {
        if bytes.len() < SHARD_HEADER_BYTES {
            return Err(ServeError::TruncatedHeader {
                got: bytes.len(),
                want: SHARD_HEADER_BYTES,
            });
        }
        if &bytes[..8] != SHARD_MAGIC {
            return Err(ServeError::BadMagic { at: "header" });
        }
        let u32_at = |at: usize| {
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
        };
        let version = u32_at(8);
        if version != SHARD_VERSION {
            return Err(ServeError::BadVersion { got: version, want: SHARD_VERSION });
        }
        let k = u32_at(12);
        let word_bytes = u32_at(16);
        let canonical = match bytes[20] {
            0 => false,
            1 => true,
            other => {
                return Err(ServeError::BadHeader {
                    detail: format!("canonical flag is {other}, want 0 or 1"),
                })
            }
        };
        let rank = u32_at(24);
        let ranks = u32_at(28);
        let n_records =
            u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
        let block_records = u32_at(40);
        let expected_wb = if W::BITS <= 64 { 8 } else { 16 };
        if word_bytes != expected_wb {
            return Err(ServeError::BadHeader {
                detail: format!(
                    "word_bytes is {word_bytes}, this reader expects {expected_wb}"
                ),
            });
        }
        if k == 0 || k as usize > W::MAX_K {
            return Err(ServeError::BadHeader {
                detail: format!("k = {k} out of range 1..={}", W::MAX_K),
            });
        }
        if block_records == 0 {
            return Err(ServeError::BadHeader { detail: "block_records is 0".into() });
        }
        if ranks == 0 || rank >= ranks {
            return Err(ServeError::BadHeader {
                detail: format!("rank {rank} out of range for {ranks} ranks"),
            });
        }

        let rec_bytes = word_bytes as u64 + 4;
        let n_blocks = n_records.div_ceil(u64::from(block_records));
        let idx_entry = word_bytes as u64 + 8;
        let expected_len = (SHARD_HEADER_BYTES as u64)
            .checked_add(n_records.checked_mul(rec_bytes).ok_or_else(|| {
                ServeError::BadHeader { detail: format!("n_records {n_records} overflows") }
            })?)
            .and_then(|v| v.checked_add(n_blocks * idx_entry))
            .and_then(|v| v.checked_add(16))
            .ok_or_else(|| ServeError::BadHeader {
                detail: format!("n_records {n_records} overflows"),
            })?;
        if (bytes.len() as u64) < expected_len {
            let what = {
                let records_end =
                    SHARD_HEADER_BYTES as u64 + n_records * rec_bytes;
                if (bytes.len() as u64) < records_end {
                    "records"
                } else if (bytes.len() as u64) < records_end + n_blocks * idx_entry {
                    "index"
                } else {
                    "footer"
                }
            };
            return Err(ServeError::Truncated {
                what,
                expected: expected_len,
                got: bytes.len() as u64,
            });
        }
        if bytes.len() as u64 > expected_len {
            return Err(ServeError::BadHeader {
                detail: format!(
                    "{} trailing bytes after the end magic",
                    bytes.len() as u64 - expected_len
                ),
            });
        }
        if &bytes[bytes.len() - 8..] != SHARD_END_MAGIC {
            return Err(ServeError::BadMagic { at: "footer" });
        }

        let records_at = SHARD_HEADER_BYTES;
        let index_at = records_at + (n_records * rec_bytes) as usize;
        let footer_at = index_at + (n_blocks * idx_entry) as usize;

        // Metadata first: header + index under the footer checksum.
        let stored = u64::from_le_bytes(
            bytes[footer_at..footer_at + 8].try_into().expect("8 bytes"),
        );
        let mut meta_bytes =
            Vec::with_capacity(SHARD_HEADER_BYTES + (footer_at - index_at));
        meta_bytes.extend_from_slice(&bytes[..SHARD_HEADER_BYTES]);
        meta_bytes.extend_from_slice(&bytes[index_at..footer_at]);
        let got = checksum64(&meta_bytes);
        if got != stored {
            return Err(ServeError::ChecksumMismatch { expected: stored, got });
        }

        // Then every block: content checksum, then strict ordering.
        let wb = word_bytes as usize;
        let rec = rec_bytes as usize;
        let mut index = Vec::with_capacity(n_blocks as usize);
        for b in 0..n_blocks as usize {
            let e = index_at + b * idx_entry as usize;
            let first: W = read_word(&bytes[e..], wb);
            let stored_sum =
                u64::from_le_bytes(bytes[e + wb..e + wb + 8].try_into().expect("8 bytes"));
            let lo = records_at + b * block_records as usize * rec;
            let hi = (lo + block_records as usize * rec).min(index_at);
            let got_sum = checksum64(&bytes[lo..hi]);
            if got_sum != stored_sum {
                return Err(ServeError::CorruptBlock {
                    block: b,
                    expected: stored_sum,
                    got: got_sum,
                });
            }
            let block_first: W = read_word(&bytes[lo..], wb);
            if block_first != first {
                return Err(ServeError::Unsorted { block: b });
            }
            index.push(first);
        }
        let records = bytes[records_at..index_at].to_vec();
        let mut prev: Option<W> = None;
        for (i, chunk) in records.chunks_exact(rec).enumerate() {
            let w: W = read_word(chunk, wb);
            if let Some(p) = prev {
                if p >= w {
                    return Err(ServeError::Unsorted {
                        block: i / block_records as usize,
                    });
                }
            }
            prev = Some(w);
        }

        Ok(Self {
            meta: ShardMeta {
                k,
                word_bytes,
                canonical,
                rank,
                ranks,
                n_records,
                block_records,
            },
            records,
            index,
        })
    }

    /// The header metadata.
    pub fn meta(&self) -> &ShardMeta {
        &self.meta
    }

    /// Records in the shard.
    pub fn len(&self) -> usize {
        self.meta.n_records as usize
    }

    /// Whether the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.meta.n_records == 0
    }

    fn record(&self, i: usize) -> (W, u32) {
        let rec = self.meta.word_bytes as usize + 4;
        let at = i * rec;
        let w = read_word(&self.records[at..], self.meta.word_bytes as usize);
        let c = u32::from_le_bytes(
            self.records[at + self.meta.word_bytes as usize..at + rec]
                .try_into()
                .expect("4 bytes"),
        );
        (w, c)
    }

    /// Point lookup: the count of `w`, or `None` when the k-mer is not in
    /// this shard. O(log B) over the sampled index, then O(log block).
    pub fn get(&self, w: W) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        // Last block whose first key is <= w.
        let b = self.index.partition_point(|&first| first <= w);
        if b == 0 {
            return None;
        }
        let b = b - 1;
        let block = self.meta.block_records as usize;
        let lo = b * block;
        let hi = (lo + block).min(self.len());
        let mut left = lo;
        let mut right = hi;
        while left < right {
            let mid = (left + right) / 2;
            let (k, c) = self.record(mid);
            match k.cmp(&w) {
                std::cmp::Ordering::Equal => return Some(c),
                std::cmp::Ordering::Less => left = mid + 1,
                std::cmp::Ordering::Greater => right = mid,
            }
        }
        None
    }

    /// Iterates every record in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (W, u32)> + '_ {
        (0..self.len()).map(|i| self.record(i))
    }

    /// Count spectrum: bucket `i` (0-based) holds how many distinct
    /// k-mers occur exactly `i + 1` times; the final bucket holds the
    /// overflow (multiplicity above `max`). `max + 1` buckets total.
    pub fn spectrum(&self, max: u32) -> Vec<u64> {
        let mut buckets = vec![0u64; max as usize + 1];
        for (_, c) in self.iter() {
            let slot = if c > max { max as usize } else { (c - 1) as usize };
            buckets[slot] += 1;
        }
        buckets
    }

    /// The `n` highest-count records, ordered by count descending, k-mer
    /// ascending among ties.
    pub fn top_n(&self, n: usize) -> Vec<KmerCount<W>> {
        let mut all: Vec<KmerCount<W>> =
            self.iter().map(|(w, c)| KmerCount::new(w, c)).collect();
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.kmer.cmp(&b.kmer)));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table(n: u64) -> Vec<KmerCount<u64>> {
        // Spread keys so multiple index blocks exist at n > 256.
        (0..n)
            .map(|i| KmerCount::new(i * 7 + 3, (i % 9 + 1) as u32))
            .collect()
    }

    #[test]
    fn roundtrip_small() {
        let t = table(10);
        let bytes = encode_shard(&t, 15, true, 2, 4);
        let s: Shard<u64> = Shard::from_bytes(&bytes).unwrap();
        assert_eq!(s.meta().k, 15);
        assert_eq!(s.meta().rank, 2);
        assert_eq!(s.meta().ranks, 4);
        assert!(s.meta().canonical);
        assert_eq!(s.len(), 10);
        for c in &t {
            assert_eq!(s.get(c.kmer), Some(c.count));
        }
        assert_eq!(s.get(1), None);
        assert_eq!(s.get(u64::MAX), None);
    }

    #[test]
    fn roundtrip_multi_block_and_u128() {
        let t = table(1000);
        let bytes = encode_shard(&t, 31, false, 0, 1);
        let s: Shard<u64> = Shard::from_bytes(&bytes).unwrap();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.index.len(), 4, "1000 records at 256/block");
        for c in &t {
            assert_eq!(s.get(c.kmer), Some(c.count));
        }
        // Misses on both sides of every block boundary.
        for probe in [0u64, 1, 2, 4, 5, 6, 9, 7 * 999 + 4, u64::MAX] {
            assert_eq!(s.get(probe), None, "probe {probe}");
        }

        let t128: Vec<KmerCount<u128>> = (0..300u128)
            .map(|i| KmerCount::new(i * 11 + 1, (i % 5 + 1) as u32))
            .collect();
        let bytes = encode_shard(&t128, 33, true, 0, 2);
        let s: Shard<u128> = Shard::from_bytes(&bytes).unwrap();
        assert_eq!(s.meta().word_bytes, 16);
        for c in &t128 {
            assert_eq!(s.get(c.kmer), Some(c.count));
        }
    }

    #[test]
    fn empty_shard_roundtrips() {
        let bytes = encode_shard::<u64>(&[], 21, true, 0, 1);
        let s: Shard<u64> = Shard::from_bytes(&bytes).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.get(0), None);
        assert_eq!(s.top_n(5), vec![]);
        assert_eq!(s.spectrum(3), vec![0, 0, 0, 0]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dakc-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = shard_path(&dir, 1, 4);
        let t = table(500);
        write_shard(&path, &t, 21, true, 1, 4).unwrap();
        let s: Shard<u64> = Shard::load(&path).unwrap();
        assert_eq!(s.len(), 500);
        assert_eq!(s.get(t[499].kmer), Some(t[499].count));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spectrum_and_top_n() {
        let t = vec![
            KmerCount::new(1u64, 1),
            KmerCount::new(5, 3),
            KmerCount::new(9, 1),
            KmerCount::new(12, 7),
            KmerCount::new(20, 3),
        ];
        let bytes = encode_shard(&t, 15, true, 0, 1);
        let s: Shard<u64> = Shard::from_bytes(&bytes).unwrap();
        // 2 singletons, nothing at 2, two 3s, overflow (>3) holds the 7.
        assert_eq!(s.spectrum(3), vec![2, 0, 2, 1]);
        let top = s.top_n(3);
        assert_eq!(
            top,
            vec![KmerCount::new(12, 7), KmerCount::new(5, 3), KmerCount::new(20, 3)]
        );
    }

    #[test]
    fn truncated_header_is_typed() {
        let bytes = encode_shard(&table(10), 15, true, 0, 1);
        for cut in [0, 1, 7, 8, 30, SHARD_HEADER_BYTES - 1] {
            match Shard::<u64>::from_bytes(&bytes[..cut]) {
                Err(ServeError::TruncatedHeader { got, want }) => {
                    assert_eq!(got, cut);
                    assert_eq!(want, SHARD_HEADER_BYTES);
                }
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_is_typed() {
        let bytes = encode_shard(&table(10), 15, true, 0, 1);
        match Shard::<u64>::from_bytes(&bytes[..bytes.len() - 1]) {
            Err(ServeError::Truncated { what: "footer", .. }) => {}
            other => panic!("{other:?}"),
        }
        match Shard::<u64>::from_bytes(&bytes[..SHARD_HEADER_BYTES + 5]) {
            Err(ServeError::Truncated { what: "records", .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode_shard(&table(4), 15, true, 0, 1);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Shard::<u64>::from_bytes(&bytes),
            Err(ServeError::BadMagic { at: "header" })
        ));
        let mut bytes = encode_shard(&table(4), 15, true, 0, 1);
        bytes[8] = 99;
        assert!(matches!(
            Shard::<u64>::from_bytes(&bytes),
            Err(ServeError::BadVersion { got: 99, want: SHARD_VERSION })
        ));
    }

    #[test]
    fn flipped_record_bit_is_a_corrupt_block() {
        let t = table(600); // 3 blocks
        let clean = encode_shard(&t, 15, true, 0, 1);
        let rec = 12; // 8 + 4
        for (target_block, rec_idx) in [(0usize, 0usize), (1, 300), (2, 599)] {
            let mut bytes = clean.clone();
            let at = SHARD_HEADER_BYTES + rec_idx * rec + 3;
            bytes[at] ^= 0x10;
            match Shard::<u64>::from_bytes(&bytes) {
                Err(ServeError::CorruptBlock { block, .. }) => {
                    assert_eq!(block, target_block)
                }
                other => panic!("block {target_block}: {other:?}"),
            }
        }
    }

    #[test]
    fn damaged_footer_checksum_is_typed() {
        let clean = encode_shard(&table(100), 15, true, 0, 1);
        // Flip a bit inside the stored footer checksum itself.
        let mut bytes = clean.clone();
        let at = bytes.len() - 16;
        bytes[at] ^= 0x01;
        assert!(matches!(
            Shard::<u64>::from_bytes(&bytes),
            Err(ServeError::ChecksumMismatch { .. })
        ));
        // And a bit inside the index region (covered by the footer sum).
        let mut bytes = clean;
        let idx_at = SHARD_HEADER_BYTES + 100 * 12;
        bytes[idx_at + 2] ^= 0x40;
        assert!(matches!(
            Shard::<u64>::from_bytes(&bytes),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    proptest! {
        // Any single flipped bit in the record region surfaces as
        // CorruptBlock naming the damaged block — never a panic, never a
        // silent success.
        #[test]
        fn any_record_flip_is_caught(
            n in 1u64..700,
            byte_mille in 0usize..1000,
            bit in 0u8..8,
        ) {
            let t = table(n);
            let mut bytes = encode_shard(&t, 15, true, 0, 1);
            let rec_region = n as usize * 12;
            let off = (byte_mille * rec_region / 1000).min(rec_region - 1);
            bytes[SHARD_HEADER_BYTES + off] ^= 1 << bit;
            let expect_block = off / (12 * DEFAULT_BLOCK_RECORDS as usize);
            match Shard::<u64>::from_bytes(&bytes) {
                Err(ServeError::CorruptBlock { block, .. }) => {
                    prop_assert_eq!(block, expect_block);
                }
                other => prop_assert!(false, "expected CorruptBlock, got {:?}", other),
            }
        }

        // Any truncation point yields a typed truncation/magic error —
        // loaders must never panic on a short file.
        #[test]
        fn any_truncation_is_typed(n in 0u64..300, keep_mille in 0usize..1000) {
            let t = table(n);
            let bytes = encode_shard(&t, 15, true, 0, 1);
            let keep = (keep_mille * bytes.len() / 1000).min(bytes.len() - 1);
            match Shard::<u64>::from_bytes(&bytes[..keep]) {
                Err(
                    ServeError::TruncatedHeader { .. } | ServeError::Truncated { .. },
                ) => {}
                other => prop_assert!(false, "keep {}: {:?}", keep, other),
            }
        }

        // Arbitrary hostile bytes never panic the loader.
        #[test]
        fn hostile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
            let _ = Shard::<u64>::from_bytes(&bytes);
        }
    }
}
