//! The query frontend: owner-grouped batching, latency histograms, and
//! typed partial-results degradation.
//!
//! The client joins the serve mesh as its last rank. Each batch of keys
//! is grouped by `owner_pe(key, servers)` — the same hash that routed
//! the k-mers at count time, so every key's answer lives on exactly the
//! rank the group is sent to — and shipped as one LOOKUP frame per
//! owner: the L2-aggregation idea applied to reads. Per-key and
//! per-batch latencies feed `flow.serve.*` histograms in the standard
//! flow-latency bounds, so `--metrics` output reports lookup p50/p95/p99
//! through the existing plumbing.
//!
//! Degradation is staged. When the service replicates (`--replicas R`,
//! announced in the READY hello), owner `o`'s shard also lives on ranks
//! `o+1..o+R-1 (mod S)`, and a request whose holder is dead or
//! deadline-silent *fails over*: the same keys are re-sent to the next
//! live copy (counted in `serve.failovers`, its extra latency in
//! `flow.serve.failover_s`) before any key is given up on. Only when
//! every copy of a shard is gone does the client yield
//! [`LookupResult::Unavailable`] for exactly that owner's key range —
//! typed partial results, never a hang. Once a rank is marked dead the
//! client stops routing to it; later batches go straight to a replica.

use std::collections::HashMap;
use std::time::Instant;

use dakc_kmer::{owner_pe, KmerCount, KmerWord};
use dakc_net::{FrameKind, NetError, NetTuning, Transport};
use dakc_sim::telemetry::{metrics::LATENCY_BOUNDS, MetricsRegistry};

use crate::error::{ServeError, ServeResult};
use crate::wire::{
    decode_ready, decode_response, encode_request, Ready, Request, Response,
};

/// One key's outcome in a batch lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The key's count (0 = not present in the table).
    Count(u32),
    /// The owning shard's server is dead or silent: no answer for this
    /// key range, typed instead of hung.
    Unavailable {
        /// The unreachable server rank.
        rank: usize,
    },
}

/// A batch's results plus the ranks that failed to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Per-key results, parallel to the query keys.
    pub results: Vec<LookupResult>,
    /// Server ranks that were (or became) unavailable this batch.
    pub unavailable: Vec<usize>,
}

impl BatchOutcome {
    /// Whether every key got a real count.
    pub fn complete(&self) -> bool {
        self.unavailable.is_empty()
    }
}

/// An aggregate (histogram or top-N) plus the ranks it is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregate<V> {
    /// The merged value over the servers that answered.
    pub value: V,
    /// Server ranks whose shard is not reflected in `value`.
    pub unavailable: Vec<usize>,
}

/// The serve-mesh client endpoint.
#[derive(Debug)]
pub struct QueryClient<W, T> {
    transport: T,
    servers: usize,
    /// Replication factor the service announced (1 = no replication).
    replicas: usize,
    k: usize,
    word_bytes: usize,
    canonical: bool,
    total_records: u64,
    tuning: NetTuning,
    next_id: u64,
    /// Servers observed dead (disconnected or deadline-silent).
    dead: Vec<bool>,
    metrics: MetricsRegistry,
    _marker: std::marker::PhantomData<W>,
}

impl<W: KmerWord, T: Transport> QueryClient<W, T> {
    /// Joins the serve mesh (this endpoint must be the last rank) and
    /// waits for every server's READY hello, learning `k`, the word
    /// width, and the canonicality mode from the service itself. A
    /// server that dies before its hello arrives fails the connect with
    /// [`ServeError::ShardUnavailable`]; silence past the connect
    /// deadline fails with a timeout naming the missing ranks.
    pub fn connect(mut transport: T, tuning: NetTuning) -> ServeResult<Self> {
        let n = transport.num_ranks();
        let me = transport.rank();
        assert_eq!(me, n - 1, "the query client must be the mesh's last rank");
        let servers = n - 1;
        assert!(servers > 0, "a serve mesh needs at least one server");
        let mut hellos: Vec<Option<Ready>> = vec![None; servers];
        let start = Instant::now();
        while hellos.iter().any(Option::is_none) {
            match transport.try_recv().map_err(ServeError::from)? {
                Some((src, bytes)) => {
                    if src >= servers {
                        continue;
                    }
                    if let Some(hello) = decode_ready(src, &bytes)? {
                        hellos[src] = Some(hello);
                    }
                }
                None => {
                    if let Some(dead) = (0..servers)
                        .find(|&r| hellos[r].is_none() && transport.peer_dead(r))
                    {
                        return Err(ServeError::ShardUnavailable {
                            rank: dead,
                            detail: "server died before announcing its shard".to_string(),
                        });
                    }
                    if start.elapsed() >= tuning.connect_timeout {
                        let missing: Vec<usize> =
                            (0..servers).filter(|&r| hellos[r].is_none()).collect();
                        return Err(ServeError::Net(NetError::timeout(
                            "serve-connect",
                            start.elapsed(),
                            format!("no READY from server ranks {missing:?}"),
                        )));
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        }
        let hellos: Vec<Ready> = hellos.into_iter().map(|h| h.expect("filled")).collect();
        let first = hellos[0];
        for h in &hellos[1..] {
            if (h.k, h.word_bytes, h.canonical, h.replicas)
                != (first.k, first.word_bytes, first.canonical, first.replicas)
            {
                return Err(ServeError::Mismatch {
                    detail: format!(
                        "rank {} serves k={} wb={} canonical={} replicas={}, \
                         rank 0 serves k={} wb={} canonical={} replicas={}",
                        h.rank, h.k, h.word_bytes, h.canonical, h.replicas,
                        first.k, first.word_bytes, first.canonical, first.replicas
                    ),
                });
            }
        }
        if first.replicas as usize > servers {
            return Err(ServeError::Mismatch {
                detail: format!(
                    "service announces {} replicas over only {servers} server(s)",
                    first.replicas
                ),
            });
        }
        let expected_wb = if W::BITS <= 64 { 8 } else { 16 };
        if first.word_bytes as usize != expected_wb {
            return Err(ServeError::Mismatch {
                detail: format!(
                    "service word width is {}, this client is built for {expected_wb}",
                    first.word_bytes
                ),
            });
        }
        Ok(Self {
            transport,
            servers,
            replicas: (first.replicas as usize).max(1),
            k: first.k as usize,
            word_bytes: first.word_bytes as usize,
            canonical: first.canonical,
            total_records: hellos.iter().map(|h| h.n_records).sum(),
            tuning,
            next_id: 0,
            dead: vec![false; servers],
            metrics: MetricsRegistry::new(),
            _marker: std::marker::PhantomData,
        })
    }

    /// K-mer length the service was counted at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the service's counts are canonical.
    pub fn canonical(&self) -> bool {
        self.canonical
    }

    /// Server ranks in the mesh.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Replication factor the service announced (1 = no replication).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total records across every announced shard.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Server ranks currently considered unavailable.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.servers).filter(|&r| self.dead[r]).collect()
    }

    /// The client-side metrics: `serve.*` counters and `flow.serve.*`
    /// latency histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn mark_dead(&mut self, rank: usize, _why: &str) {
        if !self.dead[rank] {
            self.dead[rank] = true;
            self.metrics.inc("serve.servers_lost", 1);
        }
    }

    /// The rank holding the `j`-th copy of `owner`'s shard.
    fn replica_rank(&self, owner: usize, j: usize) -> usize {
        (owner + j) % self.servers
    }

    /// The first live copy of `owner`'s shard at or after attempt
    /// `from`, as `(attempt, holder rank)`; `None` when every copy is
    /// on a dead rank.
    fn next_attempt(&self, owner: usize, from: usize) -> Option<(usize, usize)> {
        (from..self.replicas).find_map(|j| {
            let t = self.replica_rank(owner, j);
            (!self.dead[t]).then_some((j, t))
        })
    }

    /// Sends one request for `owner`'s shard to its first live copy at
    /// or after attempt `from`. `mk(id, target)` builds the payload —
    /// it sees the holder rank so aggregate requests can tag the owner
    /// only when failing over. A holder that turns out dead at send
    /// time is marked and skipped, not batch-fatal; returns the
    /// `(attempt, id)` that went out, or `None` when every copy is
    /// gone. Any redirected send (attempt > 0) counts as a failover.
    fn send_with_failover(
        &mut self,
        owner: usize,
        from: usize,
        mut mk: impl FnMut(u64, usize) -> Vec<u8>,
    ) -> ServeResult<Option<(usize, u64)>> {
        let mut from = from;
        loop {
            let Some((j, target)) = self.next_attempt(owner, from) else {
                return Ok(None);
            };
            let id = self.fresh_id();
            let wire = mk(id, target);
            match self.transport.send_kind(target, FrameKind::Query, &wire) {
                Ok(()) => {
                    if j > 0 {
                        self.metrics.inc("serve.failovers", 1);
                    }
                    return Ok(Some((j, id)));
                }
                Err(e) if e.rank() == Some(target) => {
                    // The holder died between batches; the next copy
                    // answers for it.
                    self.mark_dead(target, "send failed");
                    from = j + 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Looks up a batch of keys. Keys are grouped by owner rank and
    /// shipped as one frame per owner; results come back in key order.
    /// A dead or deadline-silent holder fails over to the next live
    /// replica of the owner's shard; only when every copy is gone do
    /// the owner's keys yield [`LookupResult::Unavailable`] (and the
    /// dead ranks are remembered, so later batches route around them
    /// without waiting again).
    pub fn lookup_batch(&mut self, keys: &[W]) -> ServeResult<BatchOutcome> {
        let mut results = vec![LookupResult::Count(0); keys.len()];
        if keys.is_empty() {
            return Ok(BatchOutcome { results, unavailable: vec![] });
        }
        let t0 = Instant::now();
        // Owner-grouped routing: positions[owner] lists the indices of
        // the keys that rank owns, in key order.
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); self.servers];
        for (i, &w) in keys.iter().enumerate() {
            positions[owner_pe(w, self.servers)].push(i as u32);
        }
        // In-flight request id → (owner whose keys it carries, replica
        // attempt that sent it).
        let mut pending: HashMap<u64, (usize, usize)> = HashMap::new();
        let mut unavailable: Vec<usize> = Vec::new();
        let wb = self.word_bytes;
        for (owner, pos) in positions.iter().enumerate() {
            if pos.is_empty() {
                continue;
            }
            let group: Vec<W> = pos.iter().map(|&i| keys[i as usize]).collect();
            match self.send_with_failover(owner, 0, |id, _| {
                encode_request(&Request::Lookup { id, keys: group.clone() }, wb)
            })? {
                Some((j, id)) => {
                    pending.insert(id, (owner, j));
                }
                None => {
                    for &i in pos {
                        results[i as usize] = LookupResult::Unavailable { rank: owner };
                    }
                    unavailable.push(owner);
                }
            }
        }
        self.transport.flush()?;

        // The deadline is per wave of progress, not per batch: every
        // failover resend restarts the clock, and each silent wave
        // marks at least one holder dead, so the loop is bounded by the
        // replica count even under cascading failures.
        let deadline = self.tuning.collective_timeout;
        let mut last_progress = Instant::now();
        while !pending.is_empty() {
            match self.transport.try_recv().map_err(ServeError::from)? {
                Some((src, bytes)) => {
                    let Some(resp) = decode_response::<W>(src, &bytes, self.word_bytes)?
                    else {
                        continue; // late hello
                    };
                    let Response::Lookup { id, counts } = resp else {
                        continue; // stale aggregate from an abandoned call
                    };
                    let Some((owner, attempt)) = pending.remove(&id) else {
                        continue; // stale reply from a timed-out batch
                    };
                    if counts.len() != positions[owner].len() {
                        return Err(ServeError::Wire {
                            from: src,
                            detail: format!(
                                "lookup reply has {} counts for {} keys",
                                counts.len(),
                                positions[owner].len()
                            ),
                        });
                    }
                    let elapsed = t0.elapsed().as_secs_f64();
                    if attempt > 0 {
                        // The answer came from a replica: record what
                        // the detour cost end to end.
                        self.metrics.observe("flow.serve.failover_s", LATENCY_BOUNDS, elapsed);
                    }
                    for (&i, c) in positions[owner].iter().zip(counts) {
                        results[i as usize] = LookupResult::Count(c);
                        self.metrics.observe("flow.serve.lookup_s", LATENCY_BOUNDS, elapsed);
                    }
                    last_progress = Instant::now();
                }
                None => {
                    let timed_out = last_progress.elapsed() >= deadline;
                    let lost: Vec<(u64, usize, usize)> = pending
                        .iter()
                        .filter(|&(_, &(o, j))| {
                            timed_out || self.transport.peer_dead(self.replica_rank(o, j))
                        })
                        .map(|(&id, &(o, j))| (id, o, j))
                        .collect();
                    for (id, owner, attempt) in lost {
                        pending.remove(&id);
                        let holder = self.replica_rank(owner, attempt);
                        let why = if timed_out { "deadline-silent" } else { "disconnected" };
                        self.mark_dead(holder, why);
                        let group: Vec<W> =
                            positions[owner].iter().map(|&i| keys[i as usize]).collect();
                        match self.send_with_failover(owner, attempt + 1, |id, _| {
                            encode_request(&Request::Lookup { id, keys: group.clone() }, wb)
                        })? {
                            Some((j, id)) => {
                                self.transport.flush()?;
                                pending.insert(id, (owner, j));
                                last_progress = Instant::now();
                            }
                            None => {
                                for &i in &positions[owner] {
                                    results[i as usize] =
                                        LookupResult::Unavailable { rank: owner };
                                }
                                unavailable.push(owner);
                            }
                        }
                    }
                    if !pending.is_empty() {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            }
        }
        unavailable.sort_unstable();
        unavailable.dedup();
        self.metrics.inc("serve.lookups", keys.len() as u64);
        self.metrics.inc("serve.batches", 1);
        self.metrics
            .observe("flow.serve.batch_s", LATENCY_BOUNDS, t0.elapsed().as_secs_f64());
        Ok(BatchOutcome { results, unavailable })
    }

    /// Runs one aggregate request per owner shard (normally against the
    /// owner itself, via the `_OWNER` failover form against a replica
    /// holder when the owner is dead) and merges the answers with
    /// `fold`. `req(id, owner_tag)` builds the request; `owner_tag` is
    /// `Some(owner)` exactly when the request is redirected. Owners
    /// whose every copy is gone are reported in `unavailable`.
    fn aggregate<V>(
        &mut self,
        req: impl Fn(u64, Option<u32>) -> Request<W>,
        mut fold: impl FnMut(&mut V, Response<W>) -> ServeResult<()>,
        mut value: V,
    ) -> ServeResult<Aggregate<V>> {
        let t0 = Instant::now();
        let mut pending: HashMap<u64, (usize, usize)> = HashMap::new();
        let mut unavailable: Vec<usize> = Vec::new();
        let wb = self.word_bytes;
        for owner in 0..self.servers {
            match self.send_with_failover(owner, 0, |id, target| {
                let tag = (target != owner).then_some(owner as u32);
                encode_request(&req(id, tag), wb)
            })? {
                Some((j, id)) => {
                    pending.insert(id, (owner, j));
                }
                None => unavailable.push(owner),
            }
        }
        self.transport.flush()?;
        let deadline = self.tuning.collective_timeout;
        let mut last_progress = Instant::now();
        while !pending.is_empty() {
            match self.transport.try_recv().map_err(ServeError::from)? {
                Some((src, bytes)) => {
                    let Some(resp) = decode_response::<W>(src, &bytes, self.word_bytes)?
                    else {
                        continue;
                    };
                    if let Response::Lookup { .. } = resp {
                        continue; // stale lookup reply from a timed-out batch
                    }
                    let id = match &resp {
                        Response::Histogram { id, .. } | Response::TopN { id, .. } => *id,
                        Response::Lookup { .. } => unreachable!(),
                    };
                    let Some((_, attempt)) = pending.remove(&id) else {
                        continue;
                    };
                    if attempt > 0 {
                        self.metrics.observe(
                            "flow.serve.failover_s",
                            LATENCY_BOUNDS,
                            t0.elapsed().as_secs_f64(),
                        );
                    }
                    fold(&mut value, resp)?;
                    last_progress = Instant::now();
                }
                None => {
                    let timed_out = last_progress.elapsed() >= deadline;
                    let lost: Vec<(u64, usize, usize)> = pending
                        .iter()
                        .filter(|&(_, &(o, j))| {
                            timed_out || self.transport.peer_dead(self.replica_rank(o, j))
                        })
                        .map(|(&id, &(o, j))| (id, o, j))
                        .collect();
                    for (id, owner, attempt) in lost {
                        pending.remove(&id);
                        self.mark_dead(self.replica_rank(owner, attempt), "aggregate");
                        match self.send_with_failover(owner, attempt + 1, |id, target| {
                            let tag = (target != owner).then_some(owner as u32);
                            encode_request(&req(id, tag), wb)
                        })? {
                            Some((j, id)) => {
                                self.transport.flush()?;
                                pending.insert(id, (owner, j));
                                last_progress = Instant::now();
                            }
                            None => unavailable.push(owner),
                        }
                    }
                    if !pending.is_empty() {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            }
        }
        unavailable.sort_unstable();
        unavailable.dedup();
        Ok(Aggregate { value, unavailable })
    }

    /// The global count spectrum up to multiplicity `max` (bucket `i`
    /// holds distinct k-mers of multiplicity `i + 1`; the final bucket
    /// is overflow), summed across every live server's shard.
    pub fn histogram(&mut self, max: u32) -> ServeResult<Aggregate<Vec<u64>>> {
        self.aggregate(
            |id, owner| Request::Histogram { id, max, owner },
            |acc: &mut Vec<u64>, resp| {
                if let Response::Histogram { buckets, .. } = resp {
                    for (a, b) in acc.iter_mut().zip(buckets) {
                        *a += b;
                    }
                }
                Ok(())
            },
            vec![0u64; max as usize + 1],
        )
    }

    /// The `n` globally highest-count records across every live server's
    /// shard (count descending, k-mer ascending among ties).
    pub fn top_n(&mut self, n: usize) -> ServeResult<Aggregate<Vec<KmerCount<W>>>> {
        let mut out = self.aggregate(
            |id, owner| Request::TopN { id, n: n as u32, owner },
            |acc: &mut Vec<KmerCount<W>>, resp| {
                if let Response::TopN { records, .. } = resp {
                    acc.extend(records);
                }
                Ok(())
            },
            Vec::new(),
        )?;
        out.value
            .sort_by(|a, b| b.count.cmp(&a.count).then(a.kmer.cmp(&b.kmer)));
        out.value.truncate(n);
        Ok(out)
    }

    /// Ends the serve session: tells every live server to shut down and
    /// returns the client's metrics. Dropping the transport afterwards
    /// closes the sockets, which is what lets TCP servers observe the
    /// session end even if a SHUTDOWN frame was lost.
    pub fn shutdown(mut self) -> ServeResult<MetricsRegistry> {
        for owner in 0..self.servers {
            if !self.dead[owner] {
                let wire = encode_request::<W>(&Request::Shutdown, self.word_bytes);
                // A server that died mid-session must not fail the
                // farewell to the others.
                if self.transport.send_kind(owner, FrameKind::Query, &wire).is_err() {
                    self.mark_dead(owner, "shutdown");
                }
            }
        }
        let _ = self.transport.flush();
        Ok(self.metrics)
    }
}
