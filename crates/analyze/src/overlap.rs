//! Per-rank load balance and compute↔comm overlap.
//!
//! The paper's central claim is that the conveyor cascade keeps
//! communication *hidden*: the wire is busy while PEs keep parsing and
//! counting, instead of the bulk-synchronous exchange-then-compute
//! rhythm. This module measures that on a recorded trace:
//!
//! * A rank's **comm windows** are the net-stage residencies of the
//!   flows it originated — `[close − drain − net, close − drain]` per
//!   `FlowRecv`, i.e. the span its sampled packets were on the wire.
//! * A rank's **compute windows** are its active span minus the periods
//!   when *every* PE on the rank sat inside a barrier.
//! * The **overlap fraction** is `|comm ∩ compute| / |comm|` — 1.0 when
//!   every wire second was hidden behind compute, 0.0 when the rank
//!   stopped dead for every transfer. Ranks that sent nothing report
//!   1.0 (no exposed communication). Always in `[0, 1]`.
//!
//! The same sweep yields the load report: per-rank busy time (active
//! span minus whole-rank barrier idle), the straggler (max busy), and
//! the imbalance factor `max/mean` the paper's scaling sections track.

use std::collections::BTreeMap;

use dakc_sim::telemetry::{EventKind, ParsedTrace};

/// Sorted, disjoint half-open intervals in seconds.
type Intervals = Vec<(f64, f64)>;

/// Merges possibly-overlapping intervals into sorted disjoint form.
fn union(mut v: Intervals) -> Intervals {
    v.retain(|&(a, b)| b > a);
    v.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut out: Intervals = Vec::with_capacity(v.len());
    for (a, b) in v {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Intersection of two sorted disjoint interval sets.
fn intersect(a: &[(f64, f64)], b: &[(f64, f64)]) -> Intervals {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            out.push((lo, hi));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// `a \ b` for sorted disjoint interval sets.
fn subtract(a: &[(f64, f64)], b: &[(f64, f64)]) -> Intervals {
    let mut out = Vec::new();
    for &(mut lo, hi) in a {
        for &(blo, bhi) in b {
            if bhi <= lo || blo >= hi {
                continue;
            }
            if blo > lo {
                out.push((lo, blo));
            }
            lo = lo.max(bhi);
            if lo >= hi {
                break;
            }
        }
        if hi > lo {
            out.push((lo, hi));
        }
    }
    out
}

fn total(v: &[(f64, f64)]) -> f64 {
    // + 0.0 because the empty f64 sum is -0.0, which fmt_secs would
    // render with its sign.
    v.iter().map(|&(a, b)| b - a).sum::<f64>() + 0.0
}

/// One rank's activity summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RankActivity {
    /// Node (process track) id.
    pub node: u32,
    /// First event → last event on the rank, seconds.
    pub span_s: f64,
    /// Time the whole rank was parked in barriers.
    pub barrier_s: f64,
    /// Busy time: `span − barrier` (what load balance compares).
    pub busy_s: f64,
    /// Total wire time of flows this rank originated.
    pub comm_s: f64,
    /// Wire time that coincided with compute.
    pub overlap_s: f64,
    /// `overlap_s / comm_s`, in `[0, 1]`; 1.0 when `comm_s == 0`.
    pub overlap: f64,
}

/// Whole-run load/overlap report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Per-rank activity, ascending node id.
    pub ranks: Vec<RankActivity>,
    /// `max busy / mean busy` (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Node id with the most busy time.
    pub straggler: u32,
}

/// Computes the per-rank activity and overlap report for a trace.
pub fn rank_overlap(trace: &ParsedTrace) -> LoadReport {
    // Bucket events by node; within a node, track per-PE barrier state.
    let mut span: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    let mut barriers: BTreeMap<u32, BTreeMap<u32, Intervals>> = BTreeMap::new();
    let mut open_barrier: BTreeMap<u32, f64> = BTreeMap::new();
    let mut comm: BTreeMap<u32, Intervals> = BTreeMap::new();
    let mut pes_seen: BTreeMap<u32, Vec<u32>> = BTreeMap::new();

    for e in &trace.events {
        let node = trace.node_of(e.pe);
        let s = span.entry(node).or_insert((e.ts, e.ts));
        s.0 = s.0.min(e.ts);
        s.1 = s.1.max(e.ts);
        let pes = pes_seen.entry(node).or_default();
        if !pes.contains(&e.pe) {
            pes.push(e.pe);
        }
        match e.kind {
            EventKind::BarrierEnter => {
                open_barrier.insert(e.pe, e.ts);
            }
            EventKind::BarrierExit { .. } => {
                if let Some(start) = open_barrier.remove(&e.pe) {
                    barriers
                        .entry(node)
                        .or_default()
                        .entry(e.pe)
                        .or_default()
                        .push((start, e.ts));
                }
            }
            EventKind::FlowRecv { src, net_s, drain_s, .. } => {
                // Attribute wire time to the *originating* rank: that is
                // whose asynchrony hides (or fails to hide) it.
                let origin = trace.node_of(src);
                let close = e.ts - drain_s;
                comm.entry(origin).or_default().push((close - net_s, close));
            }
            _ => {}
        }
    }

    let mut ranks = Vec::new();
    for (&node, &(lo, hi)) in &span {
        let active = vec![(lo, hi)];
        // The rank is idle only while EVERY PE it hosts is in a barrier:
        // intersect the per-PE barrier unions across the node's PEs.
        let idle = match barriers.get(&node) {
            Some(per_pe) if per_pe.len() == pes_seen[&node].len() => {
                let mut iter = per_pe.values().map(|v| union(v.clone()));
                let first = iter.next().unwrap_or_default();
                iter.fold(first, |acc, next| intersect(&acc, &next))
            }
            // A PE with no barrier intervals keeps the rank busy
            // throughout, so there is no whole-rank idle time.
            _ => Vec::new(),
        };
        let compute = subtract(&active, &idle);
        let comm_iv = union(comm.remove(&node).unwrap_or_default());
        let comm_s = total(&comm_iv);
        let overlap_s = total(&intersect(&comm_iv, &compute));
        let overlap = if comm_s > 0.0 {
            (overlap_s / comm_s).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let barrier_s = total(&idle);
        ranks.push(RankActivity {
            node,
            span_s: hi - lo,
            barrier_s,
            busy_s: (hi - lo) - barrier_s,
            comm_s,
            overlap_s,
            overlap,
        });
    }

    let (mut imbalance, mut straggler) = (1.0, 0);
    if !ranks.is_empty() {
        let mean = ranks.iter().map(|r| r.busy_s).sum::<f64>() / ranks.len() as f64;
        let max = ranks
            .iter()
            .max_by(|a, b| a.busy_s.total_cmp(&b.busy_s).then(b.node.cmp(&a.node)))
            .unwrap();
        straggler = max.node;
        if mean > 0.0 {
            imbalance = max.busy_s / mean;
        }
    }
    LoadReport { ranks, imbalance, straggler }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_sim::telemetry::Event;

    fn ev(ts: f64, pe: u32, kind: EventKind) -> Event {
        Event { ts, pe, kind }
    }

    fn flow_recv(ts: f64, pe: u32, src: u32, net_s: f64, drain_s: f64) -> Event {
        ev(ts, pe, EventKind::FlowRecv {
            flow: 1,
            channel: 0,
            src,
            l3_s: 0.0,
            l2_s: 0.0,
            l1_s: 0.0,
            l0_s: 0.0,
            net_s,
            drain_s,
            e2e_s: net_s + drain_s,
        })
    }

    #[test]
    fn interval_algebra() {
        let u = union(vec![(2.0, 3.0), (0.0, 1.0), (0.5, 1.5)]);
        assert_eq!(u, vec![(0.0, 1.5), (2.0, 3.0)]);
        assert_eq!(intersect(&u, &[(1.0, 2.5)]), vec![(1.0, 1.5), (2.0, 2.5)]);
        assert_eq!(
            subtract(&[(0.0, 4.0)], &[(1.0, 2.0), (3.0, 5.0)]),
            vec![(0.0, 1.0), (2.0, 3.0)]
        );
        assert!((total(&u) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fully_hidden_comm_scores_one() {
        // Rank 0 computes over [0, 1] with no barriers; its flow is on
        // the wire [0.4, 0.6] — fully overlapped.
        let t = ParsedTrace {
            events: vec![
                ev(0.0, 0, EventKind::Phase { phase: 1 }),
                flow_recv(0.65, 1, 0, 0.2, 0.05),
                ev(1.0, 0, EventKind::Phase { phase: 3 }),
                ev(1.0, 1, EventKind::Phase { phase: 3 }),
            ],
            ..ParsedTrace::default()
        };
        let r = rank_overlap(&t);
        let r0 = r.ranks.iter().find(|r| r.node == 0).unwrap();
        assert!((r0.overlap - 1.0).abs() < 1e-12, "{r0:?}");
        assert!((r0.comm_s - 0.2).abs() < 1e-12);
    }

    #[test]
    fn comm_during_whole_rank_barrier_is_exposed() {
        // Rank 0's only PE sits in a barrier [0.3, 0.7]; its flow rides
        // the wire [0.4, 0.6] — zero overlap.
        let t = ParsedTrace {
            events: vec![
                ev(0.0, 0, EventKind::Phase { phase: 1 }),
                ev(0.3, 0, EventKind::BarrierEnter),
                flow_recv(0.65, 1, 0, 0.2, 0.05),
                ev(0.7, 0, EventKind::BarrierExit { waited_s: 0.4 }),
                ev(1.0, 0, EventKind::Phase { phase: 3 }),
                ev(1.0, 1, EventKind::Phase { phase: 3 }),
            ],
            ..ParsedTrace::default()
        };
        let r = rank_overlap(&t);
        let r0 = r.ranks.iter().find(|r| r.node == 0).unwrap();
        assert!(r0.overlap.abs() < 1e-12, "{r0:?}");
        assert!((r0.barrier_s - 0.4).abs() < 1e-12);
        // Fractions stay in range on every rank, silent or not.
        for r in &r.ranks {
            assert!((0.0..=1.0).contains(&r.overlap));
        }
    }

    #[test]
    fn multi_pe_rank_idles_only_when_all_pes_barrier() {
        // PEs 0 and 1 share node 0 (pe_node map). PE 0 barriers
        // [0.2, 0.8], PE 1 barriers [0.4, 0.6]: whole-rank idle is only
        // the intersection [0.4, 0.6].
        let t = ParsedTrace {
            events: vec![
                ev(0.0, 0, EventKind::Phase { phase: 1 }),
                ev(0.0, 1, EventKind::Phase { phase: 1 }),
                ev(0.2, 0, EventKind::BarrierEnter),
                ev(0.4, 1, EventKind::BarrierEnter),
                ev(0.6, 1, EventKind::BarrierExit { waited_s: 0.2 }),
                ev(0.8, 0, EventKind::BarrierExit { waited_s: 0.6 }),
                ev(1.0, 0, EventKind::Phase { phase: 3 }),
                ev(1.0, 1, EventKind::Phase { phase: 3 }),
            ],
            pe_node: vec![(0, 0), (1, 0)],
            ..ParsedTrace::default()
        };
        let r = rank_overlap(&t);
        assert_eq!(r.ranks.len(), 1);
        assert!((r.ranks[0].barrier_s - 0.2).abs() < 1e-12, "{:?}", r.ranks[0]);
        assert!((r.ranks[0].busy_s - 0.8).abs() < 1e-12);
    }

    #[test]
    fn straggler_and_imbalance() {
        let t = ParsedTrace {
            events: vec![
                ev(0.0, 0, EventKind::Phase { phase: 1 }),
                ev(1.0, 0, EventKind::Phase { phase: 3 }),
                ev(0.0, 1, EventKind::Phase { phase: 1 }),
                ev(3.0, 1, EventKind::Phase { phase: 3 }),
            ],
            ..ParsedTrace::default()
        };
        let r = rank_overlap(&t);
        assert_eq!(r.straggler, 1);
        assert!((r.imbalance - 1.5).abs() < 1e-12, "{}", r.imbalance);
    }
}
