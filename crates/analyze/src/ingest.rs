//! Input classification: one loader for every artifact a run writes.
//!
//! `dakc analyze` accepts whatever telemetry file is at hand and decides
//! what it is from its shape, not its name: a Chrome trace has a
//! top-level `traceEvents` array, a bench artifact is schema-versioned
//! (see [`dakc_bench::artifact::validate`]), and a metrics JSON dump has
//! top-level `counters`/`histograms` objects. Anything else is an error
//! naming what was tried.

use std::path::Path;

use dakc_sim::telemetry::json::{parse, JsonValue};
use dakc_sim::telemetry::{read_chrome_trace, MetricsRegistry, ParsedTrace};

/// One classified input file.
pub enum Input {
    /// A Chrome trace-event document (`--trace` output, sim or launch).
    Trace(ParsedTrace),
    /// A metrics registry dump (`--metrics` output).
    Metrics(MetricsRegistry),
    /// A schema-versioned bench artifact (`results/*.json`), kept as
    /// parsed JSON plus the raw body for the compare machinery.
    Artifact {
        /// Harness name from the artifact header.
        harness: String,
        /// Parsed document.
        doc: JsonValue,
        /// Raw body, for [`dakc_bench::compare::compare_bodies`].
        body: String,
    },
}

impl Input {
    /// Short human label for progress messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Input::Trace(_) => "trace",
            Input::Metrics(_) => "metrics",
            Input::Artifact { .. } => "artifact",
        }
    }
}

/// Classifies a JSON body by shape.
pub fn classify(body: &str) -> Result<Input, String> {
    let doc = parse(body)?;
    if doc.get("traceEvents").is_some() {
        return read_chrome_trace(body).map(Input::Trace);
    }
    if doc.get("schema_version").is_some() {
        let harness = dakc_bench::artifact::validate(body)?;
        return Ok(Input::Artifact { harness, doc, body: body.to_string() });
    }
    if doc.get("counters").is_some() && doc.get("histograms").is_some() {
        return MetricsRegistry::from_json(body).map(Input::Metrics);
    }
    Err("not a trace (traceEvents), bench artifact (schema_version) or metrics dump (counters)"
        .into())
}

/// Reads and classifies one file.
pub fn load(path: &Path) -> Result<Input, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    classify(&body).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_sim::telemetry::{chrome_trace, Event, EventKind};

    #[test]
    fn classifies_all_three_shapes() {
        let events = [Event {
            ts: 1.0,
            pe: 0,
            kind: EventKind::MsgSend { dst: 1, tag: 7, bytes: 64 },
        }];
        let trace = chrome_trace(&events, 1);
        assert!(matches!(classify(&trace), Ok(Input::Trace(_))));

        let mut m = MetricsRegistry::new();
        m.inc("runs", 1);
        assert!(matches!(classify(&m.to_json()), Ok(Input::Metrics(_))));

        let artifact = "{\"schema_version\":1,\"harness\":\"h\",\"params\":{\"scale_shift\":12,\
                        \"pes_per_node\":6,\"seed\":42,\"quick\":true},\
                        \"rows\":[{\"Nodes\":\"4\"}],\
                        \"metrics\":{\"counters\":{},\"histograms\":{}}}";
        match classify(artifact) {
            Ok(Input::Artifact { harness, .. }) => assert_eq!(harness, "h"),
            other => panic!("expected artifact, got {:?}", other.map(|i| i.kind())),
        }
    }

    #[test]
    fn rejects_unrecognized_json_and_garbage() {
        assert!(classify("{\"x\":1}").is_err());
        assert!(classify("not json at all").is_err());
    }
}
