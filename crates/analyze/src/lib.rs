//! # dakc-analyze — post-run trace analytics
//!
//! The telemetry layer (`dakc-sim::telemetry`) records what happened;
//! this crate explains it. It ingests the artifacts a run already writes
//! — Chrome trace-event JSON from `--trace`, metrics JSON from
//! `--metrics`, schema-versioned bench artifacts under `results/` — and
//! answers the three questions the paper's evaluation keeps returning to:
//!
//! * **Where did the time go?** [`critical`] chases the sampled flow
//!   arrows (`FlowSend` → `FlowRecv`) across ranks and reports the
//!   longest dependency-respecting chain, with every second attributed
//!   to one of the telescoping conveyor stages
//!   ([`dakc_conveyors::Stage`]: l3/l2/l1/l0/net/drain) or to compute
//!   gaps between chained messages. Stage times plus compute telescope
//!   exactly to the chain's end-to-end span, by construction.
//! * **Did communication hide behind compute?** [`overlap`] builds
//!   per-rank comm windows from flow net-stage residencies, intersects
//!   them with the rank's non-barrier activity, and reports the overlap
//!   fraction in `[0, 1]` plus a load-imbalance/straggler summary —
//!   the asynchrony claim of the paper, measured on a real artifact.
//! * **Who talked to whom?** [`matrix`] assembles the full P×P
//!   communication matrix from per-peer transport counters (trace
//!   metadata or metrics JSON) or from `MsgSend` events, rendered as a
//!   terminal heatmap and exported as a bench-schema artifact so
//!   [`dakc_bench::compare`] can diff two runs.
//!
//! Everything is deterministic: the same artifact analyzes to the same
//! report, byte for byte, so re-analysis is diffable.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod critical;
pub mod ingest;
pub mod matrix;
pub mod overlap;
pub mod report;

pub use critical::{critical_path, segments, CriticalPath, Segment};
pub use ingest::{classify, load, Input};
pub use matrix::CommMatrix;
pub use overlap::{rank_overlap, LoadReport, RankActivity};
pub use report::{analyze, diff_bodies, metrics_artifact, Analysis};
