//! The P×P communication matrix: who sent how much to whom.
//!
//! Three sources, in order of fidelity:
//!
//! 1. **Trace metadata** — launch traces embed the transport's exact
//!    per-peer counters as a top-level `"dakc"` object (see
//!    [`dakc_sim::telemetry::chrome_trace_with`]); this covers every
//!    frame, not just sampled ones.
//! 2. **Metrics JSON** — the gathered `net.rank<i>.to<j>.bytes_sent` /
//!    `frames_sent` counters from `--metrics` output.
//! 3. **Trace events** — summing `MsgSend` instants, mapping PEs to
//!    nodes; exact for simulator traces (every message is an event),
//!    the only option for traces with no metadata.
//!
//! The matrix renders as a terminal heatmap (rows = senders) and
//! round-trips through metrics counters so it lands in the analysis
//! artifact and diffs across runs.

use dakc_bench::fmt_bytes;
use dakc_sim::telemetry::json::JsonValue;
use dakc_sim::telemetry::{EventKind, MetricsRegistry, ParsedTrace};

/// Dense row-major P×P traffic matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommMatrix {
    /// Number of ranks (rows == columns).
    pub n: usize,
    /// Bytes sent, `bytes[src * n + dst]`.
    pub bytes: Vec<u64>,
    /// Frames (or messages) sent, same layout.
    pub frames: Vec<u64>,
}

impl CommMatrix {
    /// An all-zero P×P matrix.
    pub fn zero(n: usize) -> Self {
        Self { n, bytes: vec![0; n * n], frames: vec![0; n * n] }
    }

    /// Adds one transfer, growing the matrix if a rank id exceeds it.
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64, frames: u64) {
        let need = src.max(dst) + 1;
        if need > self.n {
            self.grow(need);
        }
        self.bytes[src * self.n + dst] += bytes;
        self.frames[src * self.n + dst] += frames;
    }

    fn grow(&mut self, n: usize) {
        let mut next = Self::zero(n);
        for s in 0..self.n {
            for d in 0..self.n {
                next.bytes[s * n + d] = self.bytes[s * self.n + d];
                next.frames[s * n + d] = self.frames[s * self.n + d];
            }
        }
        *self = next;
    }

    /// Bytes sent from `src` to `dst` (0 outside the matrix).
    pub fn bytes_at(&self, src: usize, dst: usize) -> u64 {
        if src < self.n && dst < self.n {
            self.bytes[src * self.n + dst]
        } else {
            0
        }
    }

    /// Total bytes across all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// True when no traffic was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.n == 0 || self.total_bytes() == 0 && self.frames.iter().all(|&f| f == 0)
    }

    /// Builds the matrix from a trace: embedded metadata when present,
    /// otherwise summed `MsgSend` events (PEs mapped to nodes).
    pub fn from_trace(trace: &ParsedTrace) -> Self {
        if let Some(meta) = &trace.dakc {
            if let Some(m) = Self::from_dakc_meta(meta) {
                return m;
            }
        }
        let mut m = Self::zero(trace.nodes());
        for e in &trace.events {
            if let EventKind::MsgSend { dst, bytes, .. } = e.kind {
                m.add(
                    trace.node_of(e.pe) as usize,
                    trace.node_of(dst) as usize,
                    bytes as u64,
                    1,
                );
            }
        }
        m
    }

    /// Decodes the `"dakc"` trace-metadata object:
    /// `{"ranks":N,"bytes_sent":[[..]],"frames_sent":[[..]]}`.
    pub fn from_dakc_meta(meta: &JsonValue) -> Option<Self> {
        let n = meta.get("ranks").and_then(JsonValue::as_f64)? as usize;
        let mut m = Self::zero(n);
        let grid = |key: &str| -> Option<Vec<Vec<u64>>> {
            meta.get(key).and_then(JsonValue::as_arr).map(|rows| {
                rows.iter()
                    .map(|r| {
                        r.as_arr()
                            .map(|cells| {
                                cells.iter().filter_map(JsonValue::as_f64).map(|v| v as u64).collect()
                            })
                            .unwrap_or_default()
                    })
                    .collect()
            })
        };
        let bytes = grid("bytes_sent")?;
        let frames = grid("frames_sent").unwrap_or_default();
        for (s, row) in bytes.iter().enumerate().take(n) {
            for (d, &v) in row.iter().enumerate().take(n) {
                m.bytes[s * n + d] = v;
            }
        }
        for (s, row) in frames.iter().enumerate().take(n) {
            for (d, &v) in row.iter().enumerate().take(n) {
                m.frames[s * n + d] = v;
            }
        }
        Some(m)
    }

    /// Builds the matrix from gathered per-peer transport counters
    /// (`net.rank<i>.to<j>.bytes_sent` / `frames_sent`).
    pub fn from_metrics(m: &MetricsRegistry) -> Self {
        let mut out = Self::default();
        for (name, v) in m.counters() {
            let Some((src, dst, field)) = parse_peer_counter(name) else {
                continue;
            };
            match field {
                "bytes_sent" => out.add(src, dst, v, 0),
                "frames_sent" => out.add(src, dst, 0, v),
                _ => {}
            }
        }
        out
    }

    /// Renders the matrix back into per-peer counters, so the analysis
    /// artifact carries it in compare-able form.
    pub fn to_metrics(&self, m: &mut MetricsRegistry) {
        for s in 0..self.n {
            for d in 0..self.n {
                m.inc(&format!("net.rank{s}.to{d}.bytes_sent"), self.bytes[s * self.n + d]);
                m.inc(&format!("net.rank{s}.to{d}.frames_sent"), self.frames[s * self.n + d]);
            }
        }
    }

    /// Serializes as the `"dakc"` trace-metadata object.
    pub fn to_dakc_meta(&self) -> String {
        let grid = |v: &[u64]| {
            let rows: Vec<String> = (0..self.n)
                .map(|s| {
                    let cells: Vec<String> =
                        (0..self.n).map(|d| v[s * self.n + d].to_string()).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            format!("[{}]", rows.join(","))
        };
        format!(
            "{{\"ranks\":{},\"bytes_sent\":{},\"frames_sent\":{}}}",
            self.n,
            grid(&self.bytes),
            grid(&self.frames)
        )
    }

    /// Terminal heatmap: one row per sender, shaded by bytes relative
    /// to the hottest cell, with per-row totals.
    pub fn render(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self.bytes.iter().copied().max().unwrap_or(0);
        let mut out = String::new();
        out.push_str("      ");
        for d in 0..self.n {
            out.push_str(&format!("{:>3}", d % 1000));
        }
        out.push_str("   bytes out\n");
        for s in 0..self.n {
            out.push_str(&format!("  r{s:<3} "));
            let mut row_total = 0u64;
            for d in 0..self.n {
                let b = self.bytes[s * self.n + d];
                row_total += b;
                let shade = if max == 0 || b == 0 {
                    SHADES[0]
                } else {
                    // Linear bucket over (0, max]: non-zero never rounds
                    // down to blank, the hottest cell always gets '@'.
                    let i = 1 + (b * (SHADES.len() as u64 - 2) / max) as usize;
                    SHADES[i.min(SHADES.len() - 1)]
                };
                out.push_str(&format!(" {} ", shade as char));
            }
            out.push_str(&format!("  {}\n", fmt_bytes(row_total)));
        }
        out
    }
}

/// Parses `net.rank<i>.to<j>.<field>` counter names.
fn parse_peer_counter(name: &str) -> Option<(usize, usize, &str)> {
    let rest = name.strip_prefix("net.rank")?;
    let dot = rest.find('.')?;
    let src: usize = rest[..dot].parse().ok()?;
    let rest = rest[dot + 1..].strip_prefix("to")?;
    let dot = rest.find('.')?;
    let dst: usize = rest[..dot].parse().ok()?;
    Some((src, dst, &rest[dot + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dakc_sim::telemetry::json::parse;
    use dakc_sim::telemetry::Event;

    #[test]
    fn from_events_maps_pes_to_nodes() {
        // 2 PEs per node: PEs 0,1 → node 0; PEs 2,3 → node 1.
        let t = ParsedTrace {
            events: vec![
                Event { ts: 0.1, pe: 0, kind: EventKind::MsgSend { dst: 2, tag: 1, bytes: 100 } },
                Event { ts: 0.2, pe: 1, kind: EventKind::MsgSend { dst: 3, tag: 1, bytes: 50 } },
                Event { ts: 0.3, pe: 3, kind: EventKind::MsgSend { dst: 0, tag: 1, bytes: 10 } },
            ],
            pe_node: vec![(0, 0), (1, 0), (2, 1), (3, 1)],
            ..ParsedTrace::default()
        };
        let m = CommMatrix::from_trace(&t);
        assert_eq!(m.n, 2);
        assert_eq!(m.bytes_at(0, 1), 150);
        assert_eq!(m.bytes_at(1, 0), 10);
        assert_eq!(m.bytes_at(0, 0), 0);
        assert_eq!(m.frames[1], 2);
    }

    #[test]
    fn meta_and_metrics_round_trip() {
        let mut m = CommMatrix::zero(3);
        m.add(0, 1, 500, 2);
        m.add(2, 0, 80, 1);
        // Through dakc-meta JSON.
        let meta = parse(&m.to_dakc_meta()).unwrap();
        assert_eq!(CommMatrix::from_dakc_meta(&meta).unwrap(), m);
        // Through metrics counters (full matrix: zeros materialize too).
        let mut reg = MetricsRegistry::new();
        m.to_metrics(&mut reg);
        assert_eq!(CommMatrix::from_metrics(&reg), m);
        assert_eq!(reg.counter("net.rank0.to1.bytes_sent"), 500);
        assert_eq!(reg.counter("net.rank1.to2.bytes_sent"), 0);
    }

    #[test]
    fn meta_takes_priority_over_events() {
        let meta = parse("{\"ranks\":2,\"bytes_sent\":[[0,9],[9,0]],\"frames_sent\":[[0,1],[1,0]]}")
            .unwrap();
        let t = ParsedTrace {
            events: vec![Event {
                ts: 0.1,
                pe: 0,
                kind: EventKind::MsgSend { dst: 1, tag: 1, bytes: 12345 },
            }],
            dakc: Some(meta),
            ..ParsedTrace::default()
        };
        let m = CommMatrix::from_trace(&t);
        assert_eq!(m.bytes_at(0, 1), 9);
    }

    #[test]
    fn render_is_square_and_shades_hot_cells() {
        let mut m = CommMatrix::zero(2);
        m.add(0, 1, 1 << 20, 1);
        let r = m.render();
        assert_eq!(r.lines().count(), 3);
        assert!(r.contains('@'), "{r}");
        assert!(r.contains("1.00MiB"), "{r}");
    }

    #[test]
    fn peer_counter_parsing() {
        assert_eq!(parse_peer_counter("net.rank0.to12.bytes_sent"), Some((0, 12, "bytes_sent")));
        assert_eq!(parse_peer_counter("net.rank3.frames_sent"), None);
        assert_eq!(parse_peer_counter("flow.stage_s.net"), None);
    }
}
